GO ?= go

.PHONY: ci vet build test race bench bench-smoke bench-json clean

# ci is the gate for every change: static analysis, a full build, the
# test suite under the race detector, and a one-iteration benchmark smoke
# run so the hot-path benchmarks cannot silently rot.
ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-smoke runs every tensor/nn microbenchmark for a single iteration
# under -short (skips the 1024 GEMM), as a correctness check in ci.
bench-smoke:
	$(GO) test -short -run=^$$ -bench=. -benchtime=1x ./internal/tensor ./internal/nn

# bench-json re-measures the training hot-path benchmarks and writes
# BENCH_tensor.json with the committed pre-optimisation baseline
# (BENCH_baseline.txt) alongside the fresh numbers.
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkMatMul$$|BenchmarkIm2ColBatch$$' -benchmem ./internal/tensor > bench-current.tmp
	$(GO) test -run=^$$ -bench='BenchmarkConvForwardBackward$$|BenchmarkTrainStep$$' -benchmem ./internal/nn >> bench-current.tmp
	@{ \
	  echo '{'; \
	  echo '  "baseline": '; awk -f scripts/benchjson.awk BENCH_baseline.txt; \
	  echo '  ,"current": '; awk -f scripts/benchjson.awk bench-current.tmp; \
	  echo '}'; \
	} > BENCH_tensor.json
	@rm -f bench-current.tmp
	@echo wrote BENCH_tensor.json

clean:
	$(GO) clean -testcache
	rm -f bench-current.tmp
