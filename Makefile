GO ?= go

.PHONY: ci lint vet build test race race-broker race-health race-sched race-obs race-tsdb bench bench-smoke bench-gate bench-json chaos-soak service-e2e clean

# ci is the gate for every change: formatting and static analysis, a
# full build, the test suite under the race detector (plus a dedicated
# high-iteration pass over the event broker, the one component built
# for hundreds of concurrent subscribers, a stress pass over the
# health monitors and alert manager against a fault-injected search,
# and a stress pass over the fair-share fleet scheduler and job
# manager), a one-iteration benchmark smoke run so the hot-path
# benchmarks cannot silently rot, the allocation-regression gates on
# the training and observability hot paths, the crash-recovery soak
# that kills the real CLI at seeded crash points and resumes it to
# completion, and the service e2e that kills a live multi-job
# a4nn-serve and resumes every submission.
ci: lint build race race-broker race-health race-sched race-obs race-tsdb bench-smoke bench-gate chaos-soak service-e2e

# lint fails on unformatted files (gofmt -l) and vet findings.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomises test order so accidental inter-test state
# dependencies surface in ci rather than on a laptop.
race:
	$(GO) test -race -shuffle=on ./...

# race-broker stresses the event fanout specifically: repeated runs of
# the broker tests under the race detector, since its eviction path
# only races under unlucky publisher/subscriber interleavings.
race-broker:
	$(GO) test -race -run Broker -count 5 ./internal/obs

# race-health stresses the in-situ health monitor: the full monitor and
# alert-manager suite, then the end-to-end fault-injected search whose
# engine consumes the broker concurrently with the running workflow.
race-health:
	$(GO) test -race -count 3 ./internal/health
	$(GO) test -race -run TestHealthMonitorEndToEnd -count 3 .

# race-sched stresses the multi-tenant scheduling layer: high-count
# runs of the fair-share fleet arbiter (whose grant path only races
# under unlucky acquire/release/unregister interleavings) and the job
# manager driving many concurrent gated searches, mirroring
# race-broker/race-health.
race-sched:
	$(GO) test -race -run Fleet -count 5 ./internal/sched
	$(GO) test -race -count 3 ./internal/jobs

# race-tsdb stresses the run-history store: the sampler goroutine
# appending concurrently with queries, flushes, and compaction, since
# every dashboard range query races the sampling tick.
race-tsdb:
	$(GO) test -race -count 3 ./internal/tsdb

# race-obs stresses the per-job observability layer: scoped-registry
# churn (concurrent scope/update/export/retire) and the flight
# recorder's ring, arm/disarm set, and dump path under the race
# detector, since both sit on the journal hot path of every tenant.
race-obs:
	$(GO) test -race -run 'Scope|Recorder' -count 5 ./internal/obs

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-smoke runs every tensor/nn microbenchmark for a single iteration
# under -short (skips the 1024 GEMM), as a correctness check in ci.
bench-smoke:
	$(GO) test -short -run=^$$ -bench=. -benchtime=1x ./internal/tensor ./internal/nn

# bench-gate fails when BenchmarkTrainStep allocates more per step than
# the committed BENCH_tensor.json current value — the PR-2 zero-alloc
# hot path must not regress — or when any disabled observability path
# (per-layer profiler, span tracer, health monitor) costs allocations.
bench-gate:
	GO="$(GO)" sh scripts/benchgate.sh

# chaos-soak sweeps seeded crash plans through the real CLI: crash at a
# named durable-state transition, relaunch with -resume until the search
# completes, and require the same Pareto front as a fault-free run.
chaos-soak:
	GO="$(GO)" sh scripts/chaossoak.sh

# service-e2e boots a real a4nn-serve -jobs over HTTP, submits two
# concurrent searches, SIGKILLs the process mid-run, restarts it with
# -resume, and requires both jobs to complete with monotone journals
# and records identical to same-seed solo runs.
service-e2e:
	$(GO) test -run TestServiceKillResumeE2E -count 1 .

# bench-json re-measures the training hot-path benchmarks and writes
# BENCH_tensor.json with the committed pre-optimisation baseline
# (BENCH_baseline.txt) alongside the fresh numbers, then re-measures the
# disabled-observability benchmarks into BENCH_obs.json — the committed
# proof that tracing and health monitoring cost nothing when off.
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkMatMul$$|BenchmarkIm2ColBatch$$' -benchmem ./internal/tensor > bench-current.tmp
	$(GO) test -run=^$$ -bench='BenchmarkConvForwardBackward$$|BenchmarkTrainStep$$' -benchmem ./internal/nn >> bench-current.tmp
	@{ \
	  echo '{'; \
	  echo '  "baseline": '; awk -f scripts/benchjson.awk BENCH_baseline.txt; \
	  echo '  ,"current": '; awk -f scripts/benchjson.awk bench-current.tmp; \
	  echo '}'; \
	} > BENCH_tensor.json
	@rm -f bench-current.tmp
	@echo wrote BENCH_tensor.json
	$(GO) test -run=^$$ -bench='BenchmarkDisabledObs$$' -benchmem ./internal/obs > bench-obs.tmp
	$(GO) test -run=^$$ -bench='BenchmarkDisabledHealth$$|BenchmarkHealthObserve$$' -benchmem ./internal/health >> bench-obs.tmp
	@{ \
	  echo '{'; \
	  echo '  "current": '; awk -f scripts/benchjson.awk bench-obs.tmp; \
	  echo '}'; \
	} > BENCH_obs.json
	@rm -f bench-obs.tmp
	@echo wrote BENCH_obs.json

clean:
	$(GO) clean -testcache
	rm -f bench-current.tmp bench-obs.tmp
