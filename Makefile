GO ?= go

.PHONY: ci vet build test race bench clean

# ci is the gate for every change: static analysis, a full build, and
# the test suite under the race detector.
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean -testcache
