// Package a4nn is the public API of the A4NN workflow — a Go
// reproduction of "Composable Workflow for Accelerating Neural
// Architecture Search Using In Situ Analytics for Protein Classification"
// (Channing et al., ICPP 2023).
//
// A4NN wraps a neural architecture search (NSGA-II over the NSGA-Net
// macro search space) with an in situ parametric fitness-prediction
// engine that terminates each network's training as soon as its
// extrapolated final fitness has stabilised, a resource manager that
// spreads every generation across accelerators with FIFO dynamic
// scheduling, and a lineage tracker that records each network's full
// training lifespan into a local data commons.
//
// Quickstart:
//
//	trainer, _ := a4nn.SurrogateTrainer(a4nn.MediumBeam)
//	cfg := a4nn.DefaultConfig(trainer) // Tables 1 and 2 of the paper
//	result, err := a4nn.Run(cfg)
//
// Set cfg.Engine = nil for the standalone-NAS baseline, cfg.Devices = 4
// to distribute training, and cfg.Store to persist record trails. For
// genuine gradient-descent training on synthetic XFEL diffraction data,
// build a dataset with GenerateXFEL and a trainer with NewRealTrainer.
package a4nn

import (
	"context"
	"time"

	"a4nn/internal/analyzer"
	"a4nn/internal/chaos"
	"a4nn/internal/commons"
	"a4nn/internal/core"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/health"
	"a4nn/internal/jobs"
	"a4nn/internal/nn"
	"a4nn/internal/nsga"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
	"a4nn/internal/simtrain"
	"a4nn/internal/tsdb"
	"a4nn/internal/xfel"
)

// Core workflow types.
type (
	// Config assembles a full A4NN (or standalone-NAS) run; see
	// DefaultConfig for the paper's evaluation settings.
	Config = core.Config
	// Result is the outcome of a run: the NAS populations, one
	// ModelResult per evaluated network, resource-manager accounting,
	// epoch totals, and measured engine overhead.
	Result = core.Result
	// ModelResult pairs an evaluated genome with its record trail.
	ModelResult = core.ModelResult
	// Trainer builds trainable models from genomes; implement it to plug
	// in a custom training backend.
	Trainer = core.Trainer
	// Trainable is one model mid-training.
	Trainable = core.Trainable
	// EpochMetrics reports one training epoch.
	EpochMetrics = core.EpochMetrics
	// Orchestrator runs Algorithm 1 around a single model; most callers
	// use Run, which orchestrates whole searches.
	Orchestrator = core.Orchestrator
	// RealTrainerConfig configures gradient-descent training of decoded
	// genomes.
	RealTrainerConfig = core.RealTrainerConfig
	// MicroConfig assembles a search over the micro (cell-based) space.
	MicroConfig = core.MicroConfig
	// MicroTrainer builds models from micro genomes.
	MicroTrainer = core.MicroTrainer
)

// Prediction-engine types (paper §2.1).
type (
	// EngineConfig mirrors Table 1 (function family, C_min, e_pred, N, r).
	EngineConfig = predict.Config
	// Engine is the parametric prediction engine.
	Engine = predict.Engine
	// CurveFamily is a parametric learning-curve family; ExpApproach is
	// the paper's F(x) = a − b^(c−x).
	CurveFamily = predict.CurveFamily
	// ExpApproach is the paper's curve family.
	ExpApproach = predict.ExpApproach
	// PowerLaw is an alternative family for ablations.
	PowerLaw = predict.PowerLaw
)

// Search-space and NAS types.
type (
	// Genome encodes one architecture in the NSGA-Net macro space.
	Genome = genome.Genome
	// MicroGenome encodes one cell of the micro search space.
	MicroGenome = genome.MicroGenome
	// DecodeConfig shapes decoded networks.
	DecodeConfig = genome.DecodeConfig
	// NASConfig mirrors Table 2 (population, offspring, generations).
	NASConfig = nsga.Config
)

// Dataset and beam types (paper §3.1).
type (
	// BeamIntensity is the XFEL pulse intensity, the paper's noise proxy.
	BeamIntensity = xfel.BeamIntensity
	// SimulatorParams configures the diffraction simulator.
	SimulatorParams = xfel.SimulatorParams
	// Dataset is an in-memory labelled image collection.
	Dataset = dataset.Dataset
	// Store is the local data commons of record trails and snapshots.
	Store = commons.Store
)

// The paper's three beam intensities.
const (
	LowBeam    = xfel.LowBeam
	MediumBeam = xfel.MediumBeam
	HighBeam   = xfel.HighBeam
)

// Device is one simulated accelerator; Orchestrator.TrainModel charges
// each epoch against its throughput.
type Device = sched.Device

// Fault-tolerance types (resource-manager robustness layer).
type (
	// FaultPlan deterministically injects device crashes, transient task
	// errors, and stragglers into a run (Config.Faults).
	FaultPlan = sched.FaultPlan
	// DeviceCrash schedules one explicit device failure in a FaultPlan.
	DeviceCrash = sched.DeviceCrash
	// RetryPolicy tunes transient-failure retry (Config.Retry).
	RetryPolicy = sched.RetryPolicy
	// TaskCtx describes one dispatch of a task onto a device, for callers
	// driving a sched pool directly.
	TaskCtx = sched.TaskCtx
)

// Observability types (metrics registry, span tracing, run telemetry,
// event journal).
type (
	// Observer bundles a metrics registry, a span tracer, and an event
	// journal; set Config.Obs (or MicroConfig.Obs) to instrument a run.
	// A nil Observer disables observability at ~one branch per event.
	Observer = obs.Observer
	// Telemetry is a run's aggregate telemetry, loaded back from the
	// spans and metrics files its observer flushed into the commons
	// directory.
	Telemetry = obs.Telemetry
	// GenTelemetry aggregates one generation: device utilisation, queue
	// wait, retries, and the prediction engine's epoch savings.
	GenTelemetry = obs.GenTelemetry
	// Journal is a run's structured event stream: every emit is appended
	// to events.jsonl (when a file is attached) and fanned out to live
	// subscribers without ever blocking the search.
	Journal = obs.Journal
	// Event is one structured journal record (generation progress, task
	// dispatch/fault, epoch reports, prediction terminations, Pareto
	// front updates, ...); consumers switch on Event.Type.
	Event = obs.Event
	// EventSubscriber is one live receiver on a journal's broker.
	EventSubscriber = obs.Subscriber
)

// In-situ health monitoring (streaming anomaly detection over the event
// journal and metrics registry; see internal/health).
type (
	// HealthEngine evaluates in-situ monitors — training divergence,
	// learning-curve plateau, prediction miscalibration, device-pool
	// degradation, queue saturation, journal backpressure, and a Go
	// runtime sampler — over a run's event stream and turns findings
	// into deduplicated, flap-suppressed alerts. A nil *HealthEngine is
	// the disabled monitor: Observe is one nil check, zero allocations.
	HealthEngine = health.Engine
	// HealthConfig tunes the monitors' thresholds and the alert
	// lifecycle; the zero value of any field keeps its default.
	HealthConfig = health.Config
	// HealthStatus is the aggregate run health (ok/degraded/critical).
	HealthStatus = health.Status
	// HealthReport is the /healthz payload: aggregate status plus
	// per-monitor detail and the active alerts.
	HealthReport = health.Report
	// Alert is one tracked anomaly over its fire/dedup/resolve
	// lifecycle, as persisted to alerts.jsonl.
	Alert = health.Alert
)

// EventsFile is the journal's file name inside the telemetry directory.
const EventsFile = obs.EventsFile

// AlertsFile is the health monitor's alert log inside the telemetry
// directory (JSON Lines, one line per alert state transition).
const AlertsFile = health.AlertsFile

// ReadEvents loads an events.jsonl journal, skipping a torn final line.
func ReadEvents(path string) ([]Event, error) { return obs.ReadEvents(path) }

// NewObserver returns an observer with a fresh metrics registry, a
// bounded span tracer, and an event journal. After a run, FlushTo
// writes spans.jsonl and metrics.json atomically into a directory
// LoadTelemetry can read back; attach Journal().OpenFile to also
// persist the event stream.
func NewObserver() *Observer { return obs.NewObserver() }

// EnableLayerProfiler installs the process-wide per-layer training
// profiler: every decoded network's forward/backward wall time and
// FLOPs are accounted per layer kind into the observer's registry
// (a4nn_nn_layer_* series), along with the tensor GEMM kernel totals.
// Disabled (the default) the hooks cost one atomic load per pass and
// zero allocations.
func EnableLayerProfiler(o *Observer) { nn.SetProfiler(nn.NewProfiler(o.Registry())) }

// DisableLayerProfiler uninstalls the per-layer profiler.
func DisableLayerProfiler() { nn.SetProfiler(nil) }

// SyncLayerProfiler copies the tensor kernel totals into the profiler's
// gauges; call before flushing metrics. No-op when profiling is off.
func SyncLayerProfiler() { nn.ActiveProfiler().SyncKernelCounters() }

// LoadTelemetry loads per-generation telemetry from a directory an
// Observer flushed to (normally the run's commons directory).
func LoadTelemetry(dir string) (*Telemetry, error) { return obs.LoadTelemetry(dir) }

// DefaultHealthConfig returns the health monitor's default thresholds.
func DefaultHealthConfig() HealthConfig { return health.DefaultConfig() }

// ParseHealthConfig parses the compact CLI health specification, e.g.
// "divergence-window=5;min-capacity=0.6;gc-pause-ms=20".
func ParseHealthConfig(spec string) (HealthConfig, error) { return health.ParseConfig(spec) }

// NewHealthEngine builds an in-situ health engine over the observer's
// event journal and metrics registry. Call Start to consume the live
// stream (Close to drain and stop), OpenAlertsFile to persist alerts
// next to the journal, and mount HealthzHandler/AlertsHandler (package
// health) or webui.Server.SetHealth to surface it over HTTP.
func NewHealthEngine(cfg HealthConfig, o *Observer) (*HealthEngine, error) {
	return health.New(cfg, o)
}

// ReadAlerts loads an alerts.jsonl file, folding per-transition lines
// into the latest state of each alert.
func ReadAlerts(path string) ([]Alert, error) { return health.ReadAlerts(path) }

// SLO is a per-run (or per-job) service-level objective set the health
// engine tracks as error budgets with fast/slow burn-rate alerting.
type SLO = health.SLO

// ParseSLO parses the compact CLI objective specification, e.g.
// "queue_wait_p99=2s,job_turnaround=10m,event_drop_rate=0.01".
func ParseSLO(spec string) (*SLO, error) { return health.ParseSLO(spec) }

// Run-history time series (an embedded, append-only store the sampler
// fills from the metrics registry; see internal/tsdb).
type (
	// HistoryDB is an on-disk metrics time-series store: CRC-framed,
	// delta-and-XOR-compressed blocks, torn-tail tolerant on reopen.
	// A nil *HistoryDB ignores appends and answers queries empty.
	HistoryDB = tsdb.DB
	// HistorySampler periodically snapshots a metrics registry into a
	// HistoryDB.
	HistorySampler = tsdb.Sampler
	// HistoryResult is one range-query response: step-aligned,
	// gap-annotated points.
	HistoryResult = tsdb.Result
	// RegressionBaseline is a committed per-series reference (means and
	// worse-directions) the health engine compares live runs against.
	RegressionBaseline = health.Baseline
)

// SeriesFile is the history store's file name inside the telemetry
// directory.
const SeriesFile = tsdb.SeriesFile

// OpenHistory opens (or creates) dir's series store for appending.
func OpenHistory(dir string) (*HistoryDB, error) { return tsdb.Open(dir) }

// OpenHistoryRead opens dir's series store read-only, tolerating a
// torn tail from a crashed writer.
func OpenHistoryRead(dir string) (*HistoryDB, error) { return tsdb.OpenRead(dir) }

// NewHistorySampler samples the observer's registry into db every
// interval once started. Close takes a final sample and flushes.
func NewHistorySampler(db *HistoryDB, o *Observer, interval time.Duration) *HistorySampler {
	return tsdb.NewSampler(db, o.Registry(), interval)
}

// LoadRegressionBaseline reads a baseline JSON written by
// `a4nn-analyze series -baseline-out` (or RegressionBaseline.Save).
func LoadRegressionBaseline(path string) (RegressionBaseline, error) {
	return health.LoadBaseline(path)
}

// Postmortem is one decoded flight-recorder bundle — the black box a
// dying run leaves behind under <dir>/postmortem.
type Postmortem = obs.Postmortem

// FindPostmortems lists the bundle files under dir/postmortem.
func FindPostmortems(dir string) ([]string, error) { return obs.FindBundles(dir) }

// DecodePostmortem reads and CRC-verifies one bundle file; torn or
// corrupted bundles error, never decode as wrong data.
func DecodePostmortem(path string) (*Postmortem, error) { return obs.DecodeBundle(path) }

// ParseFaultPlan parses the compact CLI fault specification, e.g.
// "transient=0.05;crash=1@2;slowdown=0.1;seed=7".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return sched.ParseFaultPlan(spec) }

// Multi-tenant job service (many concurrent searches over one shared
// device fleet with weighted fair-share scheduling; see internal/jobs
// and webui.Server.SetJobs for the HTTP surface).
type (
	// JobManager queues and runs submitted searches, each in its own
	// isolated commons directory (records, journal, alerts, checkpoints),
	// arbitrated per generation by a shared Fleet.
	JobManager = jobs.Manager
	// JobOptions configures a JobManager: the jobs root directory and
	// the shared fleet's slot count.
	JobOptions = jobs.Options
	// JobConfig is one search submission (the POST /api/jobs body).
	JobConfig = jobs.Config
	// JobStatus is a job's externally visible state and live progress.
	JobStatus = jobs.Status
	// JobState is a job's lifecycle position:
	// queued → running ⇄ paused → completed | failed | canceled.
	JobState = jobs.State
	// JobManifest is the durable per-job record (job.json) a killed
	// service leaves behind for Recover.
	JobManifest = jobs.Manifest
	// Fleet arbitrates device slots across jobs with weighted
	// fair-share (stride) scheduling; preemption happens at generation
	// boundaries via Config.Gate.
	Fleet = sched.Fleet
	// FleetStatus is a point-in-time snapshot of the arbiter.
	FleetStatus = sched.FleetStatus
	// GenerationGate admits each generation before dispatch — the hook a
	// multi-job scheduler uses to share one fleet across searches.
	GenerationGate = core.GenerationGate
)

// Job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobPaused    = jobs.StatePaused
	JobCompleted = jobs.StateCompleted
	JobFailed    = jobs.StateFailed
	JobCanceled  = jobs.StateCanceled
)

// NewJobManager builds the job service rooted at opts.Root.
func NewJobManager(opts JobOptions) (*JobManager, error) { return jobs.NewManager(opts) }

// NewFleet builds a shared device arbiter with the given slot capacity.
func NewFleet(capacity int) (*Fleet, error) { return sched.NewFleet(capacity) }

// ReadJobManifests scans a jobs root for per-job manifests.
func ReadJobManifests(root string) ([]JobManifest, error) { return jobs.ReadManifests(root) }

// BuildJobSearchConfig assembles the core Config a job submission runs
// — identical to the same-flag cmd/a4nn invocation, which is what makes
// service results byte-comparable to solo runs.
func BuildJobSearchConfig(jc JobConfig) (Config, error) { return jobs.BuildSearchConfig(jc) }

// Crash-consistency types (model-level checkpointing, corruption
// recovery, and process-level fault injection; see internal/chaos and
// DESIGN.md §8).
type (
	// Checkpoint is one model's durable mid-training progress: completed
	// epochs, serialized weights with a digest, the predictor's curve
	// observations, and the accounting needed to resume inside an
	// interrupted generation (Config.Checkpoints).
	Checkpoint = commons.Checkpoint
	// RecoveryReport summarises the resume preflight: valid records and
	// checkpoints, quarantined corrupt files, stale checkpoints removed,
	// and records the journal saw finish but the crash lost.
	RecoveryReport = core.RecoveryReport
	// QuarantinedFile is one corrupt file recovery moved into .corrupt/.
	QuarantinedFile = core.QuarantinedFile
	// ChaosPlan is a parsed crash-injection plan; Install arms it
	// process-wide.
	ChaosPlan = chaos.Plan
)

// ChaosExitCode is the process exit code of an injected crash (86),
// distinguishing planned kills from real failures in soak harnesses.
const ChaosExitCode = chaos.ExitCode

// ParseChaosPlan parses the compact -chaos specification, e.g.
// "crash=commons.record.pre_rename@3;seed=7" (crash on the 3rd record
// commit) or "err=journal.append.pre_write%0.1" (fail ~10% of journal
// appends). ChaosPoints lists the named crash points.
func ParseChaosPlan(spec string) (*ChaosPlan, error) { return chaos.Parse(spec) }

// InstallChaosPlan arms a crash plan process-wide (nil disarms). With
// no plan installed every crash point is a single atomic load and zero
// allocations.
func InstallChaosPlan(p *ChaosPlan) { chaos.Install(p) }

// ChaosPoints returns the named crash points, sorted.
func ChaosPoints() []string { return chaos.Points() }

// RecoverCommons scans a commons store for crash damage — torn records,
// corrupt or stale checkpoints, records the journal saw finish but the
// disk lost — quarantines what cannot be trusted, rebuilds index.json,
// and reports what it did. Run automatically by Config.Resume; exposed
// for offline repair.
func RecoverCommons(store *Store, journal *Journal) (*RecoveryReport, error) {
	return core.RecoverStore(store, journal)
}

// DefaultDevice returns a single accelerator with the default (V100-like)
// effective throughput.
func DefaultDevice() Device { return Device{ID: 0, Throughput: sched.DefaultThroughput} }

// Run executes a search with the given configuration.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RunCtx is Run with cancellation: when ctx is canceled, in-flight
// training stops between epochs and the run returns the context error.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) { return core.RunCtx(ctx, cfg) }

// RunMicro executes a search over the micro (cell-based) space — the
// same workflow applied to NSGA-Net's second encoding.
func RunMicro(cfg MicroConfig) (*Result, error) { return core.RunMicro(cfg) }

// RunMicroCtx is RunMicro with cancellation, mirroring RunCtx.
func RunMicroCtx(ctx context.Context, cfg MicroConfig) (*Result, error) {
	return core.RunMicroCtx(ctx, cfg)
}

// NewRealMicroTrainer returns a trainer that decodes micro cells into
// CNNs and trains them by SGD on real data.
func NewRealMicroTrainer(train, val *Dataset, cfg RealTrainerConfig) (MicroTrainer, error) {
	return core.NewRealMicroTrainer(train, val, cfg)
}

// DefaultConfig returns the paper's evaluation setup for a trainer:
// population 10, offspring 10, 10 generations, 25 epochs, the Table 1
// prediction engine, one device.
func DefaultConfig(trainer Trainer) Config { return core.DefaultConfig(trainer) }

// DefaultEngineConfig returns Table 1: F(x)=a−b^(c−x), C_min=3, e_pred=25,
// N=3, r=0.5, fitness bounds [0,100].
func DefaultEngineConfig() EngineConfig { return predict.DefaultConfig() }

// NewEngine builds a prediction engine for standalone use (for example to
// augment a non-NSGA search; see examples/custom_nas).
func NewEngine(cfg EngineConfig) (*Engine, error) { return predict.NewEngine(cfg) }

// SurrogateTrainer returns the calibrated surrogate trainer for a beam
// intensity: learning curves are drawn from the paper's own parametric
// family with beam-dependent noise, so full paper-scale searches run in
// seconds (see internal/simtrain for the calibration).
func SurrogateTrainer(beam BeamIntensity) (Trainer, error) {
	return simtrain.ForBeam(beam)
}

// NewRealTrainer returns a trainer that decodes genomes into CNNs and
// trains them by SGD on real data.
func NewRealTrainer(train, val *Dataset, cfg RealTrainerConfig) (Trainer, error) {
	return core.NewRealTrainer(train, val, cfg)
}

// DefaultDecodeConfig mirrors the laptop-scale networks (32×32 inputs,
// widths 8→16→32); PaperDecodeConfig mirrors the paper-scale ones.
func DefaultDecodeConfig() DecodeConfig { return genome.DefaultDecodeConfig() }

// PaperDecodeConfig returns the paper-scale decode configuration
// (128×128 inputs, widths 16→32→64).
func PaperDecodeConfig() DecodeConfig { return genome.PaperDecodeConfig() }

// DefaultSimulatorParams returns the laptop-scale XFEL simulator
// configuration (32×32 detectors).
func DefaultSimulatorParams() SimulatorParams { return xfel.DefaultSimulatorParams() }

// GenerateXFEL synthesises a balanced two-conformation diffraction
// dataset at the given beam intensity.
func GenerateXFEL(seed int64, count int, beam BeamIntensity, params SimulatorParams) (*Dataset, error) {
	sim, err := xfel.NewSimulator(seed, params)
	if err != nil {
		return nil, err
	}
	pats, err := sim.GenerateBatch(seed+1, count, beam)
	if err != nil {
		return nil, err
	}
	return dataset.FromPatterns(pats)
}

// OpenCommons opens (creating if needed) a data commons directory.
func OpenCommons(dir string) (*Store, error) { return commons.Open(dir) }

// ParetoFrontier returns the Pareto-optimal models of a run (maximal
// accuracy, minimal MFLOPs), sorted by increasing MFLOPs.
func ParetoFrontier(models []*ModelResult) []analyzer.Point {
	return analyzer.ParetoFrontier(models)
}

// RandomGenome draws an architecture uniformly from the macro search
// space (phases × nodesPerPhase), for custom searches.
func RandomGenome(seed int64, phases, nodesPerPhase int) (*Genome, error) {
	return genome.NewRandom(newRand(seed), phases, nodesPerPhase)
}
