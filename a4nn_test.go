package a4nn

import (
	"math/rand"
	"testing"
)

func TestPublicAPISurrogateSearch(t *testing.T) {
	trainer, err := SurrogateTrainer(MediumBeam)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(trainer)
	cfg.NAS = NASConfig{PopulationSize: 4, Offspring: 4, Generations: 2, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 8 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}
	front := ParetoFrontier(res.Models)
	if len(front) == 0 {
		t.Fatal("empty Pareto frontier")
	}
}

func TestPublicAPIEngine(t *testing.T) {
	eng, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Config().EPred != 25 {
		t.Fatalf("engine e_pred %d", eng.Config().EPred)
	}
	bad := DefaultEngineConfig()
	bad.N = 0
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("invalid engine config must fail")
	}
}

func TestPublicAPIDatasetAndRealTrainer(t *testing.T) {
	params := DefaultSimulatorParams()
	params.Size = 16
	ds, err := GenerateXFEL(5, 60, HighBeam, params)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 60 || ds.NumClasses != 2 {
		t.Fatalf("dataset %d samples, %d classes", ds.Len(), ds.NumClasses)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewRealTrainer(train, val, RealTrainerConfig{
		Decode: DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if trainer.TrainSamples() != train.Len() {
		t.Fatal("trainer sample count wrong")
	}
}

func TestPublicAPIGenomeAndCommons(t *testing.T) {
	g, err := RandomGenome(7, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	store, err := OpenCommons(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids, err := store.List()
	if err != nil || len(ids) != 0 {
		t.Fatalf("fresh commons: %v, %v", ids, err)
	}
	if DefaultDecodeConfig().InShape[1] != 32 || PaperDecodeConfig().InShape[1] != 128 {
		t.Fatal("decode configs wrong")
	}
}
