// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md §4. Each
// benchmark reports the headline shape metrics of its figure through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// experiment harness (cmd/experiments prints the same data as tables).
package a4nn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"a4nn/internal/analyzer"
	"a4nn/internal/core"
	"a4nn/internal/dataset"
	"a4nn/internal/experiments"
	"a4nn/internal/genome"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
	"a4nn/internal/simtrain"
	"a4nn/internal/xfel"
	"a4nn/internal/xpsi"
)

// BenchmarkFig2PredictionConvergence traces the prediction engine on one
// learning curve (Figure 2) and reports the convergence epoch.
func BenchmarkFig2PredictionConvergence(b *testing.B) {
	var converged int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(3)
		if err != nil {
			b.Fatal(err)
		}
		converged = r.ConvergedAt
	}
	b.ReportMetric(float64(converged), "converge-epoch")
}

// BenchmarkFig6ParetoFrontiers runs one full A4NN search per beam and
// extracts the Pareto frontier (Figure 6); it reports the best accuracy
// found on the medium beam.
func BenchmarkFig6ParetoFrontiers(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSearch(xfel.MediumBeam, experiments.A4NN1, 1)
		if err != nil {
			b.Fatal(err)
		}
		front := analyzer.ParetoFrontier(res.Models)
		if len(front) == 0 {
			b.Fatal("empty frontier")
		}
		best = analyzer.BestAccuracy(res.Models)
	}
	b.ReportMetric(best, "best-accuracy-%")
}

// BenchmarkFig7EpochSavings runs A4NN and standalone on the medium beam
// (Figure 7) and reports the percentage of epochs saved.
func BenchmarkFig7EpochSavings(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		a4, err := experiments.RunSearch(xfel.MediumBeam, experiments.A4NN1, 1)
		if err != nil {
			b.Fatal(err)
		}
		std, err := experiments.RunSearch(xfel.MediumBeam, experiments.Standalone, 1)
		if err != nil {
			b.Fatal(err)
		}
		saved = 100 * (1 - float64(a4.TotalEpochs)/float64(std.TotalEpochs))
	}
	b.ReportMetric(saved, "epochs-saved-%")
}

// BenchmarkFig8TerminationHistogram runs an A4NN search per beam and
// reports the mean termination epoch on the low beam (Figure 8's
// late-convergence case).
func BenchmarkFig8TerminationHistogram(b *testing.B) {
	var meanEt, termPct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSearch(xfel.LowBeam, experiments.A4NN1, 1)
		if err != nil {
			b.Fatal(err)
		}
		ets := res.TerminationEpochs()
		if _, err := analyzer.HistogramInts(ets, 5, 25, 3); err != nil {
			b.Fatal(err)
		}
		meanEt = analyzer.MeanInt(ets)
		termPct = 100 * float64(len(ets)) / float64(len(res.Models))
	}
	b.ReportMetric(meanEt, "mean-et")
	b.ReportMetric(termPct, "terminated-%")
}

// BenchmarkFig9WallTime runs A4NN on one and four devices (Figure 9) and
// reports the 4-device wall-time speed-up.
func BenchmarkFig9WallTime(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		one, err := experiments.RunSearch(xfel.HighBeam, experiments.A4NN1, 1)
		if err != nil {
			b.Fatal(err)
		}
		four, err := experiments.RunSearch(xfel.HighBeam, experiments.A4NN4, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = one.Totals.WallSeconds / four.Totals.WallSeconds
	}
	b.ReportMetric(speedup, "4gpu-speedup-x")
}

// BenchmarkPredictionEngineOverhead measures one Algorithm-1 interaction
// with the prediction engine — the §4.3.1 overhead (the paper reports
// ~28 ms per interaction on their platform).
func BenchmarkPredictionEngineOverhead(b *testing.B) {
	engine, err := predict.NewEngine(predict.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	hist := make([]float64, 0, 12)
	for e := 1; e <= 12; e++ {
		hist = append(hist, 92-math.Exp(0.4*(2-float64(e)))+rng.NormFloat64()*0.2)
	}
	preds := []float64{91.8, 91.9, 92.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p, ok := engine.Predict(hist); ok {
			preds[i%3] = p
		}
		engine.Converged(preds)
	}
}

// BenchmarkTable3XPSIComparison trains the real XPSI baseline on a
// high-beam dataset (Table 3) and reports its accuracy.
func BenchmarkTable3XPSIComparison(b *testing.B) {
	params := xfel.DefaultSimulatorParams()
	params.Size = 16
	params.OrientationSpread = 0.35
	sim, err := xfel.NewSimulator(11, params)
	if err != nil {
		b.Fatal(err)
	}
	pats, err := sim.GenerateBatch(12, 240, xfel.HighBeam)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		b.Fatal(err)
	}
	train, test, err := ds.Split(0.8, rand.New(rand.NewSource(13)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		pipe, err := xpsi.Train(train, xpsi.DefaultConfig(), 14)
		if err != nil {
			b.Fatal(err)
		}
		acc, err = pipe.Evaluate(test)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(acc, "xpsi-accuracy-%")
}

// ablationCohort trains a cohort of surrogate models under the given
// engine configuration and returns (epochs saved fraction, mean absolute
// prediction error of terminated models against their true asymptote).
func ablationCohort(b *testing.B, cfg predict.Config, n int) (saved float64, termPct float64) {
	b.Helper()
	engine, err := predict.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	trainer, err := simtrain.ForBeam(xfel.MediumBeam)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	totalEpochs, terminated := 0, 0
	for i := 0; i < n; i++ {
		g, err := genome.NewRandom(rng, 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		m, err := trainer.NewModel(g, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		orch := &core.Orchestrator{Engine: engine, MaxEpochs: 25}
		out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e12}, 100, nil)
		if err != nil {
			b.Fatal(err)
		}
		totalEpochs += out.EpochsTrained
		if out.Terminated {
			terminated++
		}
	}
	return 100 * (1 - float64(totalEpochs)/float64(n*25)), 100 * float64(terminated) / float64(n)
}

// BenchmarkAblationCurveFamilies compares the paper's a−b^(c−x) family
// against the power-law and last-value alternatives (DESIGN.md §4).
func BenchmarkAblationCurveFamilies(b *testing.B) {
	for _, tc := range []struct {
		name   string
		family predict.CurveFamily
	}{
		{"ExpApproach", predict.ExpApproach{}},
		{"PowerLaw", predict.PowerLaw{}},
		{"Logistic", predict.Logistic{}},
		{"LastValue", predict.LastValue{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := predict.DefaultConfig()
			cfg.Family = tc.family
			if cfg.CMin < tc.family.NumParams() {
				cfg.CMin = tc.family.NumParams()
			}
			var saved, term float64
			for i := 0; i < b.N; i++ {
				saved, term = ablationCohort(b, cfg, 40)
			}
			b.ReportMetric(saved, "epochs-saved-%")
			b.ReportMetric(term, "terminated-%")
		})
	}
}

// BenchmarkAblationNr sweeps the convergence window N and tolerance r.
func BenchmarkAblationNr(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int
		r    float64
	}{
		{"N2_r0.5", 2, 0.5},
		{"N3_r0.5", 3, 0.5}, // the paper's setting
		{"N5_r0.5", 5, 0.5},
		{"N3_r0.1", 3, 0.1},
		{"N3_r2.0", 3, 2.0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := predict.DefaultConfig()
			cfg.N, cfg.R = tc.n, tc.r
			var saved float64
			for i := 0; i < b.N; i++ {
				saved, _ = ablationCohort(b, cfg, 40)
			}
			b.ReportMetric(saved, "epochs-saved-%")
		})
	}
}

// BenchmarkAblationCmin sweeps the minimum history before predicting.
func BenchmarkAblationCmin(b *testing.B) {
	for _, cmin := range []int{3, 5, 8} {
		b.Run(map[int]string{3: "Cmin3", 5: "Cmin5", 8: "Cmin8"}[cmin], func(b *testing.B) {
			cfg := predict.DefaultConfig()
			cfg.CMin = cmin
			var saved float64
			for i := 0; i < b.N; i++ {
				saved, _ = ablationCohort(b, cfg, 40)
			}
			b.ReportMetric(saved, "epochs-saved-%")
		})
	}
}

// BenchmarkAblationRecencyWeight sweeps the fit's recency weighting
// (0 = the paper's uniform weighting).
func BenchmarkAblationRecencyWeight(b *testing.B) {
	for _, tc := range []struct {
		name string
		w    float64
	}{{"uniform", 0}, {"recency1", 1}, {"recency3", 3}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := predict.DefaultConfig()
			cfg.RecencyWeight = tc.w
			var saved float64
			for i := 0; i < b.N; i++ {
				saved, _ = ablationCohort(b, cfg, 40)
			}
			b.ReportMetric(saved, "epochs-saved-%")
		})
	}
}

// BenchmarkAblationScheduling compares FIFO dynamic scheduling (the
// paper's Ray policy) against static round-robin on the task durations of
// a real A4NN generation mix.
func BenchmarkAblationScheduling(b *testing.B) {
	res, err := experiments.RunSearch(xfel.HighBeam, experiments.A4NN1, 1)
	if err != nil {
		b.Fatal(err)
	}
	durations := make([]float64, len(res.Models))
	for i, m := range res.Models {
		durations[i] = m.Record.SimSeconds()
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fifo, err := sched.SimulateFIFO(4, durations)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := sched.SimulateRoundRobin(4, durations)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rr.WallSeconds / fifo.WallSeconds
	}
	b.ReportMetric(ratio, "rr/fifo-makespan")
}

// BenchmarkFullSuite runs the entire evaluation grid once per iteration —
// the cost of regenerating every figure of the paper.
func BenchmarkFullSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("full grid in -short mode")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSuite(1); err != nil {
			b.Fatal(err)
		}
	}
}
