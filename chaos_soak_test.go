package a4nn

// Chaos soak: crash the real CLI at randomly chosen seeded crash
// points, relaunch it with -resume until the search completes, and
// assert the crash-consistency contract — the journal sequence stays
// monotone, no model retrains epochs its checkpoint already covers,
// every store file still decodes, and the final Pareto front is
// byte-identical to a fault-free run with the same seed.
//
// `go test` runs a handful of plans; `make chaos-soak` sets
// CHAOS_SOAK_ITERS=20 for the acceptance sweep.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"a4nn/internal/chaos"
)

// soakSearchArgs is the shared search configuration; the reference run
// and every chaos run must match for the fronts to be comparable.
// One device, because the device ID participates in each model's
// training seed and with several devices the task→device assignment is
// a real goroutine race: even two fault-free same-seed runs then
// differ, so byte-identical fronts are only a meaningful contract on a
// single device.
var soakSearchArgs = []string{
	"-beam", "medium", "-population", "6", "-offspring", "6",
	"-generations", "3", "-epochs", "10", "-devices", "1", "-seed", "42",
}

// repeatablePoints are visited only for NEW durable work (records and
// checkpoints of models not yet committed), so a crash@N plan makes at
// least N-1 transitions of progress per launch and can stay armed
// across every relaunch. Points that replayed work re-visits (journal
// appends, generation commits) would livelock if re-armed, so those
// plans crash once and relaunch clean.
var repeatablePoints = []string{
	chaos.PointRecordPreRename,
	chaos.PointRecordPostRename,
	chaos.PointCheckpointPreRename,
	chaos.PointCheckpointPostRename,
	chaos.PointModelPostRecord,
}

var oneshotPoints = []string{
	chaos.PointGenerationCommit,
	chaos.PointJournalAppend,
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	bins := buildTools(t, "a4nn")

	// Fault-free reference: same seed, same search, no chaos.
	refStore := filepath.Join(scratchDir(t, "ref"), "ref")
	refOut := run(t, bins["a4nn"],
		append(append([]string{}, soakSearchArgs...), "-store", refStore, "-checkpoints", "-events")...)
	refFront := paretoSection(t, refOut)

	iters := 4
	if s := os.Getenv("CHAOS_SOAK_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_SOAK_ITERS = %q", s)
		}
		iters = n
	}

	rng := rand.New(rand.NewSource(20260808))
	totalCrashes := 0
	for it := 0; it < iters; it++ {
		// Draw the plan outside the subtest so the sequence only depends
		// on the iteration count.
		var point string
		repeat := rng.Intn(10) < 7
		if repeat {
			point = repeatablePoints[rng.Intn(len(repeatablePoints))]
		} else {
			point = oneshotPoints[rng.Intn(len(oneshotPoints))]
		}
		// The visit count sets the progress per launch (N-1 durable
		// transitions before the crash), so scale it to how often each
		// point fires: checkpoints are written every epoch (~160 visits a
		// run), records once per model (18), generation commits 3 times.
		visit := 2 + rng.Intn(4)
		switch point {
		case chaos.PointCheckpointPreRename, chaos.PointCheckpointPostRename:
			visit = 10 + rng.Intn(30)
		case chaos.PointGenerationCommit:
			visit = 2 + rng.Intn(2)
		}
		plan := fmt.Sprintf("crash=%s@%d;seed=%d", point, visit, rng.Int63())
		t.Run(fmt.Sprintf("plan%02d", it), func(t *testing.T) {
			totalCrashes += soakOnePlan(t, bins["a4nn"], plan, repeat, refFront)
		})
	}
	if totalCrashes == 0 {
		t.Fatalf("no plan ever fired across %d iterations — the crash points are not being visited", iters)
	}
	t.Logf("soak: %d iterations, %d injected crashes", iters, totalCrashes)
}

// soakOnePlan crashes and relaunches one store to completion and
// checks the crash-consistency contract. Returns the crash count.
func soakOnePlan(t *testing.T, bin, plan string, rearm bool, refFront string) int {
	t.Helper()
	store := filepath.Join(scratchDir(t, "plan"), "runs")
	base := append(append([]string{}, soakSearchArgs...), "-store", store, "-checkpoints", "-events")

	crashes := 0
	var out string
	for attempt := 0; ; attempt++ {
		if attempt > 60 {
			t.Fatalf("plan %q: search did not complete after %d relaunches", plan, attempt)
		}
		args := append([]string{}, base...)
		if attempt > 0 {
			args = append(args, "-resume")
		}
		if attempt == 0 || rearm {
			args = append(args, "-chaos", plan)
		}
		b, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			out = string(b)
			break
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) && ee.ExitCode() == chaos.ExitCode {
			crashes++
			continue
		}
		t.Fatalf("plan %q attempt %d: unexpected failure: %v\n%s", plan, attempt, err, b)
	}

	// 1. The final Pareto front is byte-identical to the fault-free run.
	if got := paretoSection(t, out); got != refFront {
		t.Errorf("plan %q (%d crashes): Pareto front diverged from the fault-free run\ngot:\n%s\nwant:\n%s",
			plan, crashes, got, refFront)
	}

	// 2. Journal sequence numbers stay strictly monotone across every
	// crash and relaunch, and 3. no model retrains an epoch its
	// checkpoint already covers.
	events, err := ReadEvents(filepath.Join(store, EventsFile))
	if err != nil {
		t.Fatalf("plan %q: read journal: %v", plan, err)
	}
	var lastSeq uint64
	resumedAt := make(map[string]int)
	for _, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("plan %q: journal seq %d after %d is not monotone", plan, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Type {
		case "model_resume":
			resumedAt[e.Model] = e.Epoch
		case "epoch":
			if k, ok := resumedAt[e.Model]; ok && e.Epoch <= k {
				t.Errorf("plan %q: model %s trained epoch %d twice — its checkpoint already covered epoch %d",
					plan, e.Model, e.Epoch, k)
			}
		}
	}

	// 4. Every record decodes and no checkpoint outlives its record.
	cstore, err := OpenCommons(store)
	if err != nil {
		t.Fatalf("plan %q: reopen store: %v", plan, err)
	}
	ids, err := cstore.List()
	if err != nil {
		t.Fatalf("plan %q: list records: %v", plan, err)
	}
	if want := 6 + 6*2; len(ids) != want {
		t.Errorf("plan %q: %d records in store, want %d", plan, len(ids), want)
	}
	for _, id := range ids {
		if _, err := cstore.GetRecord(id); err != nil {
			t.Errorf("plan %q: record %s does not decode: %v", plan, id, err)
		}
	}
	if cps, err := cstore.Checkpoints(); err != nil {
		t.Errorf("plan %q: list checkpoints: %v", plan, err)
	} else if len(cps) != 0 {
		t.Errorf("plan %q: %d checkpoint(s) left after a completed run: %v", plan, len(cps), cps)
	}
	return crashes
}

// paretoSection extracts the Pareto table from a run's stdout so two
// runs over different store paths compare equal.
func paretoSection(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "Pareto-optimal models")
	if i < 0 {
		t.Fatalf("no Pareto section in output:\n%s", out)
	}
	s := out[i:]
	if j := strings.Index(s, "\nrecord trails written"); j >= 0 {
		s = s[:j]
	}
	return s
}
