package a4nn

// End-to-end tests of the command-line tools: build the binaries and
// drive the xfelgen → a4nn → a4nn-analyze pipeline through their real
// CLIs, the way a user would.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the cmd binaries once into a shared temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

// scratchDir returns a fresh directory for a test's store scratch.
// Under CI, A4NN_CI_SCRATCH names a persistent root that gets uploaded
// as a failure artifact (the soak and service-e2e stores hold the
// events.jsonl / alerts.jsonl needed to debug a red run); passing
// tests remove their scratch so only failures leave anything behind.
// Without the variable it is a plain test temp dir.
func scratchDir(t *testing.T, name string) string {
	t.Helper()
	root := os.Getenv("A4NN_CI_SCRATCH")
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	prefix := strings.ReplaceAll(t.Name(), "/", "_") + "-" + name + "-"
	dir, err := os.MkdirTemp(root, prefix)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	bins := buildTools(t, "xfelgen", "a4nn", "a4nn-analyze")
	work := t.TempDir()
	dsPath := filepath.Join(work, "medium.gob")
	store := filepath.Join(work, "runs")

	// 1. Generate a dataset with a preview.
	out := run(t, bins["xfelgen"], "-beam", "medium", "-count", "40", "-size", "16",
		"-seed", "3", "-out", dsPath, "-preview")
	if !strings.Contains(out, "generated 40 medium-beam patterns") {
		t.Fatalf("xfelgen output:\n%s", out)
	}
	if !strings.Contains(out, "conf-A") {
		t.Fatalf("preview missing:\n%s", out)
	}
	if _, err := os.Stat(dsPath); err != nil {
		t.Fatal(err)
	}

	// 2. Surrogate search with a commons store (fast; real training is
	//    covered by the library integration tests).
	out = run(t, bins["a4nn"], "-beam", "medium", "-population", "4", "-offspring", "4",
		"-generations", "2", "-seed", "5", "-store", store)
	for _, want := range []string{"evaluated networks: 8", "Pareto-optimal models", "record trails written"} {
		if !strings.Contains(out, want) {
			t.Fatalf("a4nn output missing %q:\n%s", want, out)
		}
	}

	// 3. Analyze the commons.
	out = run(t, bins["a4nn-analyze"], "-store", store, "list")
	ids := strings.Fields(strings.TrimSpace(out))
	if len(ids) != 8 {
		t.Fatalf("analyze list returned %d ids:\n%s", len(ids), out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "summary")
	if !strings.Contains(out, "records:            8") {
		t.Fatalf("summary output:\n%s", out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "show", ids[0])
	if !strings.Contains(out, "fitness curve") || !strings.Contains(out, "genome:") {
		t.Fatalf("show output:\n%s", out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "dot", ids[0])
	if !strings.Contains(out, "digraph") {
		t.Fatalf("dot output:\n%s", out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "top", "-n", "3")
	if !strings.Contains(out, "fitness %") {
		t.Fatalf("top output:\n%s", out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "correlate")
	if !strings.Contains(out, "Pearson") {
		t.Fatalf("correlate output:\n%s", out)
	}
	out = run(t, bins["a4nn-analyze"], "-store", store, "diversity")
	if !strings.Contains(out, "Hamming") {
		t.Fatalf("diversity output:\n%s", out)
	}

	// 4. Replay the search from the commons: identical accounting,
	//    explicitly reported.
	out = run(t, bins["a4nn"], "-beam", "medium", "-population", "4", "-offspring", "4",
		"-generations", "2", "-seed", "5", "-replay", store)
	if !strings.Contains(out, "replayed:           8") {
		t.Fatalf("replay output:\n%s", out)
	}
}

// TestCLISignalFlush interrupts a long search mid-run and checks that
// the exit path still flushes every telemetry sink — spans, metrics,
// events, and the health monitor's alerts.jsonl — before the process
// dies, so a crashed or cancelled run is as analyzable as a finished one.
func TestCLISignalFlush(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI in -short mode")
	}
	bins := buildTools(t, "a4nn")
	store := filepath.Join(t.TempDir(), "runs")

	// A search far too large to finish: the interrupt must end it.
	cmd := exec.Command(bins["a4nn"], "-beam", "medium", "-population", "100",
		"-offspring", "100", "-generations", "500", "-seed", "7",
		"-store", store, "-events", "-health")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until the journal file exists (setup is done and the signal
	// handler is installed), then let the search run a moment.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(store, "events.jsonl")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("events.jsonl never appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("interrupted run exited zero")
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr missing interrupt notice:\n%s", stderr.String())
	}

	// Every sink flushed on the way out.
	for _, name := range []string{"events.jsonl", "spans.jsonl", "metrics.json", "alerts.jsonl"} {
		if _, err := os.Stat(filepath.Join(store, name)); err != nil {
			t.Errorf("%s not flushed after SIGINT: %v", name, err)
		}
	}
}

func TestCLIExperimentsTables(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI in -short mode")
	}
	bins := buildTools(t, "experiments")
	out := run(t, bins["experiments"], "-table1", "-table2")
	for _, want := range []string{"a-b^(c-x)", "population", "25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiments output missing %q:\n%s", want, out)
		}
	}
}
