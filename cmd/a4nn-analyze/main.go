// Command a4nn-analyze is the CLI counterpart of the paper's
// Jupyter-notebook analyzer (§2.4): it queries a data commons produced by
// cmd/a4nn -store, summarises runs, inspects individual record trails
// (learning-curve sparklines, prediction histories), and renders
// architectures as ASCII or Graphviz DOT.
//
// Usage:
//
//	a4nn-analyze -store DIR list
//	a4nn-analyze -store DIR summary [-beam low]
//	a4nn-analyze -store DIR show MODEL-ID
//	a4nn-analyze -store DIR dot MODEL-ID      # Graphviz to stdout
//	a4nn-analyze -store DIR top [-n 5]        # best models by fitness
//	a4nn-analyze -store DIR correlate         # accuracy vs FLOPs (§6)
//	a4nn-analyze -store DIR diversity         # structural similarity (§6)
//	a4nn-analyze -store DIR gens              # per-generation convergence
//	a4nn-analyze -store DIR telemetry         # utilisation, queue wait, savings
//	a4nn-analyze -store DIR profile           # per-layer time and FLOP breakdown
//	a4nn-analyze -store DIR health            # alert history from the health monitor
//	a4nn-analyze -store DIR recovery          # crash-recovery history (resumes, quarantines)
//	a4nn-analyze -store DIR jobs              # job-service manifests under DIR/jobs
//	a4nn-analyze -store DIR postmortem        # decode crash flight-recorder bundles
//	a4nn-analyze -store DIR series            # run-history series catalogue (from -history)
//	a4nn-analyze -store DIR series NAME       # one series: stats and sparkline
//	a4nn-analyze -store DIR -baseline-out base.json series   # export regression baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"a4nn/internal/analyzer"
	"a4nn/internal/commons"
	"a4nn/internal/core"
	"a4nn/internal/genome"
	"a4nn/internal/health"
	"a4nn/internal/jobs"
	"a4nn/internal/lineage"
	"a4nn/internal/obs"
	"a4nn/internal/tsdb"
)

func main() {
	var (
		storeDir    = flag.String("store", "", "data commons directory (required)")
		beam        = flag.String("beam", "", "filter by beam (low, medium, high)")
		topN        = flag.Int("n", 5, "how many models 'top' lists")
		baselineOut = flag.String("baseline-out", "", "with 'series': also export a regression baseline JSON (feed it to a4nn -regress-baseline)")
	)
	flag.Parse()
	if *storeDir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: a4nn-analyze -store DIR {list|summary|show ID|dot ID|top}")
		os.Exit(2)
	}
	store, err := commons.Open(*storeDir)
	if err != nil {
		fatal(err)
	}

	switch cmd := flag.Arg(0); cmd {
	case "list":
		ids, err := store.List()
		if err != nil {
			fatal(err)
		}
		for _, id := range ids {
			fmt.Println(id)
		}
	case "summary":
		sum, err := store.Summarize(*beam)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("records:            %d\n", sum.Records)
		fmt.Printf("epochs trained:     %d (mean %.1f per network)\n", sum.TotalEpochsTrained, sum.MeanEpochsTrained)
		fmt.Printf("terminated early:   %d\n", sum.TerminatedEarly)
		fmt.Printf("mean final fitness: %.2f%%\n", sum.MeanFinalFitness)
		fmt.Printf("best final fitness: %.2f%%\n", sum.BestFinalFitness)
		fmt.Printf("simulated training: %.2f h\n", sum.TotalSimSeconds/3600)
	case "show":
		rec := mustRecord(store, flag.Arg(1))
		stats := analyzer.Stats(rec)
		fmt.Printf("model %s (generation %d, %s beam, device %d)\n", rec.ID, rec.Generation, rec.Beam, rec.DeviceID)
		fmt.Printf("genome: %s\n", rec.Genome)
		fmt.Printf("params: %d   FLOPs: %d (%.1f MFLOPs)\n", rec.NumParams, rec.FLOPs, float64(rec.FLOPs)/1e6)
		fmt.Printf("epochs: %d   terminated early: %v   final fitness: %.2f%%\n",
			stats.Epochs, stats.Terminated, stats.FinalFitness)
		fmt.Printf("fitness curve:    %s\n", analyzer.Sparkline(rec.FitnessHistory()))
		if preds := rec.PredictionHistory(); len(preds) > 0 {
			fmt.Printf("prediction curve: %s (%d predictions)\n", analyzer.Sparkline(preds), len(preds))
		}
		g, err := genome.Parse(rec.Genome, rec.NodesPerPhase)
		if err == nil {
			if art, err := analyzer.GenomeASCII(g); err == nil {
				fmt.Printf("\narchitecture:\n%s", art)
			}
		}
		fmt.Printf("\n%s", rec.Architecture)
	case "dot":
		rec := mustRecord(store, flag.Arg(1))
		g, err := genome.Parse(rec.Genome, rec.NodesPerPhase)
		if err != nil {
			fatal(err)
		}
		dot, err := analyzer.GenomeDOT(g, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	case "top":
		recs, err := store.Query(func(r *lineage.Record) bool {
			return *beam == "" || r.Beam == *beam
		})
		if err != nil {
			fatal(err)
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].FinalFitness > recs[b].FinalFitness })
		if len(recs) > *topN {
			recs = recs[:*topN]
		}
		var rows [][]string
		for _, r := range recs {
			rows = append(rows, []string{
				r.ID,
				fmt.Sprintf("%.2f", r.FinalFitness),
				fmt.Sprintf("%.1f", float64(r.FLOPs)/1e6),
				fmt.Sprint(r.EpochsTrained()),
				fmt.Sprint(r.Terminated),
			})
		}
		fmt.Print(analyzer.FormatTable([]string{"model", "fitness %", "MFLOPs", "epochs", "terminated"}, rows))
	case "gens":
		models := loadModels(store, *beam)
		var rows [][]string
		for _, gs := range analyzer.ByGeneration(models) {
			rows = append(rows, []string{
				fmt.Sprint(gs.Generation),
				fmt.Sprint(gs.Models),
				fmt.Sprintf("%.2f", gs.BestFitness),
				fmt.Sprintf("%.2f", gs.MeanFitness),
				fmt.Sprintf("%.1f", gs.MeanMFLOPs),
			})
		}
		fmt.Print(analyzer.FormatTable(
			[]string{"generation", "models", "best fitness %", "mean fitness %", "mean MFLOPs"}, rows))
	case "telemetry":
		// The observer flushes spans.jsonl and metrics.json next to the
		// lineage records, so the store directory is the telemetry root.
		t, err := obs.LoadTelemetry(*storeDir)
		if err != nil {
			fatal(fmt.Errorf("load telemetry: %w (record it with cmd/a4nn -store or -trace)", err))
		}
		fmt.Print(analyzer.FormatTelemetry(t))
	case "profile":
		t, err := obs.LoadTelemetry(*storeDir)
		if err != nil {
			fatal(fmt.Errorf("load telemetry: %w (record it with cmd/a4nn -profile-layers -store)", err))
		}
		fmt.Print(analyzer.FormatLayerProfile(&t.Metrics))
	case "health":
		// The health engine appends alert transitions next to the lineage
		// records; fold them into each alert's final state.
		alerts, err := health.ReadAlerts(filepath.Join(*storeDir, health.AlertsFile))
		if err != nil {
			fatal(fmt.Errorf("load alerts: %w (record them with cmd/a4nn -health -store)", err))
		}
		fmt.Print(analyzer.FormatAlerts(alerts))
	case "recovery":
		events, err := obs.ReadEvents(filepath.Join(*storeDir, obs.EventsFile))
		if err != nil {
			fatal(fmt.Errorf("load events: %w (record them with cmd/a4nn -events -store)", err))
		}
		fmt.Print(analyzer.FormatRecovery(events))
		// Checkpoints still on disk mean a run is in flight or a crash
		// has not been resumed yet.
		if ids, err := store.Checkpoints(); err == nil && len(ids) > 0 {
			fmt.Printf("pending checkpoints: %d (resume with cmd/a4nn -resume -checkpoints)\n", len(ids))
		}
	case "jobs":
		// The job service keeps one manifest per submission under
		// <store>/jobs; this is the offline view of the fleet.
		manifests, err := jobs.ReadManifests(filepath.Join(*storeDir, "jobs"))
		if err != nil {
			fatal(err)
		}
		if len(manifests) == 0 {
			fmt.Println("no jobs recorded (submit with a4nn-serve -jobs)")
			return
		}
		var rows [][]string
		for _, m := range manifests {
			shape := fmt.Sprintf("%d+%d×%d", m.Config.Population, m.Config.Offspring, m.Config.Generations)
			dur := "–"
			if !m.Finished.IsZero() && !m.Created.IsZero() {
				dur = m.Finished.Sub(m.Created).Round(time.Second).String()
			}
			note := m.Error
			if note == "" && m.Resumes > 0 {
				note = fmt.Sprintf("resumed ×%d", m.Resumes)
			}
			rows = append(rows, []string{
				m.Config.ID, string(m.State), m.Config.Beam, shape,
				fmt.Sprint(m.Config.Seed), fmt.Sprint(m.Config.Priority), dur, note,
			})
		}
		fmt.Print(analyzer.FormatTable(
			[]string{"job", "state", "beam", "shape", "seed", "prio", "duration", "note"}, rows))
	case "postmortem":
		// Flight-recorder bundles land under <dir>/postmortem for plain
		// runs and <store>/jobs/<id>/postmortem for job-service tenants;
		// sweep both so one command covers either deployment shape.
		paths, err := obs.FindBundles(*storeDir)
		if err != nil {
			fatal(err)
		}
		if jobDirs, err := filepath.Glob(filepath.Join(*storeDir, "jobs", "*")); err == nil {
			for _, jd := range jobDirs {
				if more, err := obs.FindBundles(jd); err == nil {
					paths = append(paths, more...)
				}
			}
		}
		if len(paths) == 0 {
			fmt.Println("no postmortem bundles found (they are written on fatal errors, chaos kills, and unresolved-critical shutdowns)")
			return
		}
		for i, p := range paths {
			pm, err := obs.DecodeBundle(p)
			if err != nil {
				// A torn bundle is itself a finding; report it and keep
				// decoding the rest.
				fmt.Fprintf(os.Stderr, "a4nn-analyze: %s: %v\n", p, err)
				continue
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(analyzer.FormatPostmortem(pm, 10))
		}
	case "series":
		// The sampler persists the run's metrics history next to the
		// lineage records; decode it read-only (torn tails tolerated).
		db, err := tsdb.OpenRead(*storeDir)
		if err != nil {
			fatal(fmt.Errorf("load history: %w (record it with cmd/a4nn -history -store)", err))
		}
		infos := db.Series()
		if name := flag.Arg(1); name != "" {
			res, err := db.Query(name, 0, 0, 0)
			if err != nil {
				fatal(err)
			}
			if len(res.Points) == 0 {
				fatal(fmt.Errorf("series %s has no samples", name))
			}
			vals := make([]float64, len(res.Points))
			minV, maxV, sum, gaps := res.Points[0].V, res.Points[0].V, 0.0, 0
			for i, p := range res.Points {
				vals[i] = p.V
				sum += p.V
				if p.V < minV {
					minV = p.V
				}
				if p.V > maxV {
					maxV = p.V
				}
				if p.Gap {
					gaps++
				}
			}
			first := time.UnixMilli(res.Points[0].T).UTC()
			last := time.UnixMilli(res.Points[len(res.Points)-1].T).UTC()
			fmt.Printf("series %s\n", name)
			fmt.Printf("samples: %d   window: %s → %s (%s)   gaps: %d\n",
				len(res.Points), first.Format(time.RFC3339), last.Format(time.RFC3339),
				last.Sub(first).Round(time.Second), gaps)
			fmt.Printf("min: %.4g   mean: %.4g   max: %.4g   last: %.4g\n",
				minV, sum/float64(len(vals)), maxV, vals[len(vals)-1])
			fmt.Printf("history: %s\n", analyzer.Sparkline(vals))
		} else {
			var rows [][]string
			for _, info := range infos {
				span := "–"
				if info.Samples > 0 {
					span = time.UnixMilli(info.MaxT).Sub(time.UnixMilli(info.MinT)).Round(time.Second).String()
				}
				rows = append(rows, []string{info.Name, fmt.Sprint(info.Samples), span})
			}
			fmt.Print(analyzer.FormatTable([]string{"series", "samples", "span"}, rows))
		}
		if *baselineOut != "" {
			names := make([]string, 0, len(infos))
			for _, info := range infos {
				names = append(names, info.Name)
			}
			base := health.BaselineFrom(db.Mean, names, 0, 0)
			if err := base.Save(*baselineOut); err != nil {
				fatal(err)
			}
			fmt.Printf("baseline over %d series written to %s (compare a future run with a4nn -regress-baseline)\n",
				len(base.Series), *baselineOut)
		}
	case "correlate":
		models := loadModels(store, *beam)
		fmt.Println(analyzer.AccuracyFLOPsCorrelation(models))
	case "diversity":
		models := loadModels(store, *beam)
		var all []*genome.Genome
		for _, m := range models {
			if m.Genome != nil {
				all = append(all, m.Genome)
			}
		}
		rep, err := analyzer.Diversity(all)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("all evaluated:  %s\n", rep)
		pareto := analyzer.ParetoGenomes(models)
		if len(pareto) > 1 {
			prep, err := analyzer.Diversity(pareto)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("Pareto set:     %s\n", prep)
		} else {
			fmt.Printf("Pareto set:     %d genome(s), diversity undefined\n", len(pareto))
		}
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

// loadModels reconstructs ModelResults from the commons' record trails so
// the analyzer's run-level statistics apply to stored runs.
func loadModels(store *commons.Store, beam string) []*core.ModelResult {
	recs, err := store.Query(func(r *lineage.Record) bool {
		return beam == "" || r.Beam == beam
	})
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in store"))
	}
	models := make([]*core.ModelResult, 0, len(recs))
	skipped := 0
	for _, r := range recs {
		// Micro-space records carry a cell encoding; macro analyses skip
		// them rather than fail.
		g, err := genome.Parse(r.Genome, r.NodesPerPhase)
		if err != nil {
			skipped++
			models = append(models, &core.ModelResult{
				Record:  r,
				Fitness: r.FinalFitness,
				MFLOPs:  float64(r.FLOPs) / 1e6,
			})
			continue
		}
		models = append(models, &core.ModelResult{
			Genome:  g,
			Record:  r,
			Fitness: r.FinalFitness,
			MFLOPs:  float64(r.FLOPs) / 1e6,
		})
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "a4nn-analyze: %d records are not macro genomes; structural analyses skip them\n", skipped)
	}
	return models
}

func mustRecord(store *commons.Store, id string) *lineage.Record {
	if id == "" {
		fatal(fmt.Errorf("missing model ID"))
	}
	rec, err := store.GetRecord(id)
	if err != nil {
		fatal(err)
	}
	return rec
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a4nn-analyze:", err)
	os.Exit(1)
}
