// Command a4nn-serve exposes a data commons over HTTP — the shareable
// interface counterpart of the paper's Dataverse deposit (§2.3): a
// read-only JSON API plus an HTML index with per-model learning-curve
// sparklines.
//
// Usage:
//
//	a4nn-serve -store ./runs -addr :8080
//	a4nn-serve -store ./runs -follow          # + live /events SSE and /dashboard
//	a4nn-serve -store ./runs -follow -health  # + /healthz and /api/alerts
//	curl localhost:8080/api/summary
//	curl localhost:8080/api/records/<id>/dot | dot -Tsvg > model.svg
//
// With -jobs the server becomes a multi-tenant search service: POST
// /api/jobs submits searches that run in this process, queued over a
// shared device fleet (-fleet slots) with weighted fair-share
// scheduling, each in its own commons directory under <store>/jobs.
// -resume continues every search a killed service left unfinished:
//
//	a4nn-serve -store ./runs -jobs -fleet 4 -resume
//	curl -X POST localhost:8080/api/jobs -d '{"seed":42,"priority":20}'
//	open http://localhost:8080/fleet
//
// With -history the service samples its metrics roll-up (and each job's
// scope) into on-disk series stores, serving range queries on
// /api/query and /api/jobs/{id}/query and historical chart backfill on
// /dashboard and /fleet:
//
//	a4nn-serve -store ./runs -jobs -history 5s
//	curl 'localhost:8080/api/query?series=a4nn_fleet_in_use_slots&step=60000'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"a4nn/internal/chaos"
	"a4nn/internal/commons"
	"a4nn/internal/health"
	"a4nn/internal/jobs"
	"a4nn/internal/obs"
	"a4nn/internal/tsdb"
	"a4nn/internal/webui"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "data commons directory (required)")
		addr      = flag.String("addr", "localhost:8080", "listen address")
		follow    = flag.Bool("follow", false, "tail the store's events.jsonl and stream it live on /events and /dashboard")
		healthOn  = flag.Bool("health", false, "run the in-situ health monitor over the followed event stream and serve /healthz and /api/alerts (requires -follow)")
		healthCfg = flag.String("health-config", "", `health thresholds (requires -health), e.g. "divergence-window=5;min-capacity=0.6"`)
		jobsOn    = flag.Bool("jobs", false, "accept search submissions on POST /api/jobs and run them in-process over a shared device fleet")
		fleetN    = flag.Int("fleet", 4, "device slots in the shared fleet (requires -jobs)")
		resumeOn  = flag.Bool("resume", false, "resume every non-terminal job found under <store>/jobs (requires -jobs)")
		sloSpec   = flag.String("slo", "", `per-job service-level objectives (requires -jobs), e.g. "queue_wait_p99=2s,job_turnaround=10m,event_drop_rate=0.01"`)
		chaosSpec = flag.String("chaos", "", `crash-injection plan for fault drills against the job service, e.g. "crash=core.generation.commit@2;seed=7"`)
		histEvery = flag.Duration("history", 0, "sample service and per-job metrics into on-disk series stores at this interval (e.g. 5s; 0 = off), serving range queries on /api/query and /api/jobs/{id}/query")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: a4nn-serve -store DIR [-addr host:port] [-follow [-health]]")
		os.Exit(2)
	}
	if *healthOn && !*follow {
		fatal(errors.New("-health needs -follow (the monitor consumes the live event stream)"))
	}
	if *healthCfg != "" && !*healthOn {
		fatal(errors.New("-health-config needs -health"))
	}
	if !*jobsOn && *resumeOn {
		fatal(errors.New("-resume needs -jobs (it recovers interrupted job submissions)"))
	}
	if *sloSpec != "" && !*jobsOn {
		fatal(errors.New("-slo needs -jobs (objectives are tracked per job)"))
	}
	var slo *health.SLO
	if *sloSpec != "" {
		var err error
		if slo, err = health.ParseSLO(*sloSpec); err != nil {
			fatal(err)
		}
	}
	// Arm the crash plan before the first job starts so every journal
	// append and generation commit inside the service is eligible. The
	// injected kill dumps each armed job's flight-recorder bundle into
	// its own directory on the way down (see internal/obs).
	if *chaosSpec != "" {
		plan, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		chaos.Install(plan)
		fmt.Printf("chaos plan armed: %s\n", *chaosSpec)
	}
	store, err := commons.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	srv, err := webui.New(store)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving data commons %s on http://%s\n", *storeDir, ln.Addr())

	// SIGINT/SIGTERM drain in-flight requests before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One service-level observer backs both modes: -jobs rolls every
	// job's metrics scope up into its registry (served on /metrics with
	// `job="id"` labels, bounded by live jobs), and -follow pumps the
	// followed journal through it.
	var observer *obs.Observer
	if *jobsOn || *follow || *histEvery > 0 {
		observer = obs.NewObserver()
		srv.SetObserver(observer)
	}

	var manager *jobs.Manager
	if *jobsOn {
		manager, err = jobs.NewManager(jobs.Options{
			Root:       filepath.Join(*storeDir, "jobs"),
			FleetSlots: *fleetN,
			Obs:        observer,
			SLO:        slo,
			History:    *histEvery,
		})
		if err != nil {
			fatal(err)
		}
		if *resumeOn {
			recovered, err := manager.Recover()
			if err != nil {
				fatal(err)
			}
			for _, id := range recovered {
				fmt.Printf("resumed job %s\n", id)
			}
		}
		srv.SetJobs(manager)
		fmt.Printf("job service on — %d fleet slots, submit with POST http://%s/api/jobs, fleet view on http://%s/fleet\n",
			*fleetN, ln.Addr(), ln.Addr())
	}

	// Service-level run history: sample the roll-up registry (job scopes
	// included, plus a fleet snapshot refreshed just before each sample)
	// into <store>/series.a4ts, feeding /api/query and the historical
	// charts on /dashboard and /fleet across restarts.
	var histDB *tsdb.DB
	var histSampler *tsdb.Sampler
	if *histEvery > 0 {
		histDB, err = tsdb.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		histSampler = tsdb.NewSampler(histDB, observer.Registry(), *histEvery)
		if manager != nil {
			fleet := manager.Fleet()
			reg := observer.Registry()
			histSampler.SetPreSample(func() {
				fs := fleet.Status()
				reg.Gauge("a4nn_fleet_capacity_slots").Set(float64(fs.Capacity))
				reg.Gauge("a4nn_fleet_in_use_slots").Set(float64(fs.InUse))
				reg.Gauge("a4nn_fleet_waiting_jobs").Set(float64(fs.Waiting))
			})
		}
		histSampler.Start()
		srv.SetHistory(histDB)
		fmt.Printf("history sampling every %s into %s\n", *histEvery, filepath.Join(*storeDir, tsdb.SeriesFile))
	}

	if *follow {
		// Follow mode tails the journal a concurrently running `a4nn
		// -events` search appends to, so this viewer process serves the
		// live dashboard for a run it did not start.
		if *healthOn {
			// Sidecar monitoring: the engine watches the same event stream
			// the dashboard renders, so a plain viewer process doubles as
			// the alerting endpoint for a search running elsewhere.
			cfg, err := health.ParseConfig(*healthCfg)
			if err != nil {
				fatal(err)
			}
			eng, err := health.New(cfg, observer)
			if err != nil {
				fatal(err)
			}
			eng.Start()
			defer eng.Close()
			srv.SetHealth(eng)
			fmt.Printf("health monitor on — http://%s/healthz\n", ln.Addr())
		}
		go obs.FollowFile(ctx, filepath.Join(*storeDir, obs.EventsFile), observer.Journal(), 0)
		fmt.Printf("following %s — live dashboard on http://%s/dashboard\n",
			filepath.Join(*storeDir, obs.EventsFile), ln.Addr())
	}
	httpSrv := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fatal(err)
		}
		if manager != nil {
			// Interrupt running searches without writing terminal states:
			// their manifests stay non-terminal, so a restart with
			// -jobs -resume continues each one from its checkpoints.
			dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer dcancel()
			if err := manager.Close(dctx); err != nil {
				fatal(err)
			}
		}
	}
	// Seal the service history last (after the manager closed its per-job
	// stores): one final sample, flush, release the file. A relaunch with
	// the same -store appends to the same series files, so range queries
	// span restarts.
	if histSampler != nil {
		histSampler.Close()
	}
	if histDB != nil {
		if err := histDB.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "a4nn-serve: history:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a4nn-serve:", err)
	os.Exit(1)
}
