package main

import (
	"errors"
	"fmt"
	"os"
)

// flagSpec is the subset of the CLI surface whose combinations can
// silently do nothing; validateFlags rejects the no-op pairings up
// front (instead of running a long search and discarding the part the
// user asked for) and returns warnings for combinations that are legal
// but probably not what was meant. Pure function, unit-tested.
type flagSpec struct {
	Store       string // -store
	Trace       string // -trace
	MetricsAddr string // -metrics-addr
	Snapshots   bool   // -snapshots
	Events      bool   // -events
	Pprof       bool   // -pprof
	ProfLayers  bool   // -profile-layers
	DataPath    string // -data
	Health      bool   // -health
	HealthSpec  string // -health-config
	SLOSpec     string // -slo
	Strict      bool   // -health-strict
	Checkpoints bool   // -checkpoints
	Resume      bool   // -resume
	Chaos       string // -chaos
	AlertCmd    string // -alert-cmd
	History     bool   // -history
	HistorySet  bool   // -history-interval explicitly set
	Baseline    string // -regress-baseline
}

// flushDir is where telemetry lands: -trace wins, else the commons.
func (f flagSpec) flushDir() string {
	if f.Trace != "" {
		return f.Trace
	}
	return f.Store
}

// validateFlags returns an error for flag combinations that would
// silently no-op and advisory warnings for dubious-but-legal ones.
func validateFlags(f flagSpec) (warnings []string, err error) {
	if f.Events && f.flushDir() == "" {
		return nil, errors.New("-events needs a telemetry directory: set -store or -trace")
	}
	if f.Pprof && f.MetricsAddr == "" {
		return nil, errors.New("-pprof needs -metrics-addr")
	}
	if f.Snapshots && f.Store == "" {
		return nil, errors.New("-snapshots needs -store (snapshots live inside the data commons)")
	}
	if f.HealthSpec != "" && !f.Health {
		return nil, errors.New("-health-config needs -health")
	}
	if f.Strict && !f.Health {
		return nil, errors.New("-health-strict needs -health")
	}
	if f.SLOSpec != "" && !f.Health {
		return nil, errors.New("-slo needs -health (objectives are tracked by the health monitor)")
	}
	if f.Checkpoints && f.Store == "" {
		return nil, errors.New("-checkpoints needs -store (checkpoints live inside the data commons)")
	}
	if f.AlertCmd != "" && !f.Health {
		return nil, errors.New("-alert-cmd needs -health (alerts come from the health monitor)")
	}
	if f.History && f.flushDir() == "" {
		return nil, errors.New("-history needs a telemetry directory: set -store or -trace (the series file lives there)")
	}
	if f.HistorySet && !f.History {
		return nil, errors.New("-history-interval needs -history")
	}
	if f.Baseline != "" && !f.History {
		return nil, errors.New("-regress-baseline needs -history (regressions are judged over sampled series)")
	}
	if f.Baseline != "" && !f.Health {
		return nil, errors.New("-regress-baseline needs -health (regressions alert through the health monitor)")
	}
	if f.Chaos != "" {
		warnings = append(warnings,
			"-chaos is armed: this process will crash (exit 86) or fail I/O on purpose per the plan")
		if f.Store != "" && !f.Checkpoints {
			warnings = append(warnings,
				"-chaos without -checkpoints: a relaunch with -resume replays committed records but retrains any model that was mid-training")
		}
	}
	if f.Health && f.flushDir() == "" && f.MetricsAddr == "" && !f.Strict {
		warnings = append(warnings,
			"-health without -store/-trace (alerts.jsonl), -metrics-addr (/healthz), or -health-strict only prints a summary at exit")
	}
	if f.ProfLayers && f.DataPath == "" {
		warnings = append(warnings,
			"-profile-layers only accounts real training; the surrogate trainer (no -data) decodes no networks")
	}
	return warnings, nil
}

// printWarnings reports advisory flag warnings on stderr.
func printWarnings(warnings []string) {
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "a4nn: warning:", w)
	}
}
