package main

import (
	"strings"
	"testing"
)

func TestValidateFlagsRejectsNoOpCombos(t *testing.T) {
	cases := []struct {
		name string
		f    flagSpec
		want string // substring of the error, "" for valid
	}{
		{"bare run", flagSpec{}, ""},
		{"events without sink", flagSpec{Events: true}, "-events needs"},
		{"events with store", flagSpec{Events: true, Store: "runs"}, ""},
		{"events with trace", flagSpec{Events: true, Trace: "tel"}, ""},
		{"pprof without metrics", flagSpec{Pprof: true}, "-pprof needs"},
		{"pprof with metrics", flagSpec{Pprof: true, MetricsAddr: ":0"}, ""},
		{"snapshots without store", flagSpec{Snapshots: true}, "-snapshots needs"},
		{"snapshots with store", flagSpec{Snapshots: true, Store: "runs"}, ""},
		{"health-config without health", flagSpec{HealthSpec: "resolve-after=2"}, "-health-config needs"},
		{"health-strict without health", flagSpec{Strict: true}, "-health-strict needs"},
		{"health full", flagSpec{Health: true, HealthSpec: "resolve-after=2", Strict: true, Store: "runs"}, ""},
		{"checkpoints without store", flagSpec{Checkpoints: true}, "-checkpoints needs"},
		{"checkpoints with store", flagSpec{Checkpoints: true, Store: "runs"}, ""},
		{"alert-cmd without health", flagSpec{AlertCmd: "notify-send a4nn"}, "-alert-cmd needs"},
		{"alert-cmd with health", flagSpec{AlertCmd: "notify-send a4nn", Health: true, Store: "runs"}, ""},
		{"history without sink", flagSpec{History: true}, "-history needs"},
		{"history with store", flagSpec{History: true, Store: "runs"}, ""},
		{"history with trace", flagSpec{History: true, Trace: "tel"}, ""},
		{"history-interval without history", flagSpec{HistorySet: true}, "-history-interval needs"},
		{"history-interval with history", flagSpec{HistorySet: true, History: true, Store: "runs"}, ""},
		{"baseline without history", flagSpec{Baseline: "base.json", Health: true, Store: "runs"}, "-regress-baseline needs -history"},
		{"baseline without health", flagSpec{Baseline: "base.json", History: true, Store: "runs"}, "-regress-baseline needs -health"},
		{"baseline full", flagSpec{Baseline: "base.json", History: true, Health: true, Store: "runs"}, ""},
	}
	for _, tc := range cases {
		_, err := validateFlags(tc.f)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateFlagsWarnings(t *testing.T) {
	// -health with no sink at all: legal, but warned about.
	w, err := validateFlags(flagSpec{Health: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || !strings.Contains(w[0], "-health") {
		t.Fatalf("warnings = %q", w)
	}
	// Any one sink (or strict mode) silences it.
	for _, f := range []flagSpec{
		{Health: true, Store: "runs"},
		{Health: true, Trace: "tel"},
		{Health: true, MetricsAddr: ":0"},
		{Health: true, Strict: true},
	} {
		if w, _ := validateFlags(f); len(w) != 0 {
			t.Errorf("%+v warned: %q", f, w)
		}
	}
	// -profile-layers on the surrogate trainer does nothing.
	w, err = validateFlags(flagSpec{ProfLayers: true, Trace: "tel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || !strings.Contains(w[0], "-profile-layers") {
		t.Fatalf("warnings = %q", w)
	}
	if w, _ := validateFlags(flagSpec{ProfLayers: true, DataPath: "d.gob", Trace: "tel"}); len(w) != 0 {
		t.Errorf("profile-layers with -data warned: %q", w)
	}
	// An armed chaos plan always warns; without -checkpoints it also
	// warns that a mid-training model will be retrained on resume.
	w, err = validateFlags(flagSpec{Chaos: "crash=core.generation.commit@1", Store: "runs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || !strings.Contains(w[0], "-chaos is armed") || !strings.Contains(w[1], "-checkpoints") {
		t.Fatalf("chaos warnings = %q", w)
	}
	w, err = validateFlags(flagSpec{Chaos: "crash=core.generation.commit@1", Store: "runs", Checkpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || !strings.Contains(w[0], "-chaos is armed") {
		t.Fatalf("chaos+checkpoints warnings = %q", w)
	}
}
