// Command experiments regenerates the paper's tables and figures from the
// calibrated surrogate searches (plus real XPSI training for Table 3).
//
// Usage:
//
//	experiments [-seed N] [-table1] [-table2] [-fig2] [-fig6] [-fig7]
//	            [-fig8] [-fig9] [-overhead] [-table3] [-all]
//
// With no selection flags, -all is assumed.
package main

import (
	"flag"
	"fmt"
	"os"

	"a4nn/internal/experiments"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed for all searches")
		table1   = flag.Bool("table1", false, "print the prediction-engine configuration (Table 1)")
		table2   = flag.Bool("table2", false, "print the NSGA-Net configuration (Table 2)")
		fig2     = flag.Bool("fig2", false, "trace the prediction-convergence example (Figure 2)")
		fig6     = flag.Bool("fig6", false, "print the Pareto frontiers (Figure 6)")
		fig7     = flag.Bool("fig7", false, "print epoch savings (Figure 7)")
		fig8     = flag.Bool("fig8", false, "print termination-epoch distributions (Figure 8)")
		fig9     = flag.Bool("fig9", false, "print wall times and speedups (Figure 9)")
		overhead = flag.Bool("overhead", false, "print measured engine overhead (§4.3.1)")
		table3   = flag.Bool("table3", false, "print the XPSI comparison (Table 3)")
		seeds    = flag.Int("seeds", 0, "additionally aggregate Figure 7 savings over N seeds")
		jsonOut  = flag.Bool("json", false, "emit the whole evaluation as JSON instead of tables")
		all      = flag.Bool("all", false, "print everything")
	)
	flag.Parse()

	any := *table1 || *table2 || *fig2 || *fig6 || *fig7 || *fig8 || *fig9 || *overhead || *table3 || *seeds > 1 || *jsonOut
	if !any || *all {
		*table1, *table2, *fig2, *fig6, *fig7, *fig8, *fig9, *overhead, *table3 =
			true, true, true, true, true, true, true, true, true
	}

	if *table1 {
		fmt.Println("Table 1: Prediction Engine Configuration")
		fmt.Println(experiments.Table1())
	}
	if *table2 {
		fmt.Println("Table 2: NSGA-Net Configuration")
		fmt.Println(experiments.Table2())
	}
	if *fig2 {
		r, err := experiments.Fig2(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig2(r))
	}

	if *seeds > 1 {
		fmt.Fprintf(os.Stderr, "aggregating Figure 7 over %d seeds...\n", *seeds)
		rows, err := experiments.MultiSeedFig7(*seed, *seeds)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatMultiSeed(rows))
	}

	needSuite := *fig6 || *fig7 || *fig8 || *fig9 || *overhead || *table3 || *jsonOut
	if !needSuite {
		return
	}
	fmt.Fprintln(os.Stderr, "running the evaluation grid (3 beams × {standalone, A4NN×1, A4NN×4}, 100 networks each)...")
	suite, err := experiments.RunSuite(*seed)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		var t3 []experiments.Table3Row
		if *table3 {
			rows, err := suite.Table3(&experiments.Table3Options{Seed: *seed + 10})
			if err != nil {
				fatal(err)
			}
			t3 = rows
		}
		exp, err := suite.Export(t3)
		if err != nil {
			fatal(err)
		}
		data, err := exp.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	if *fig6 {
		fmt.Println(experiments.FormatFig6(suite.Fig6()))
		hv, err := suite.Fig6Hypervolume()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig6Quality(hv))
	}
	if *fig7 {
		fmt.Println(experiments.FormatFig7(suite.Fig7()))
	}
	if *fig8 {
		fmt.Println(experiments.FormatFig8(suite.Fig8()))
	}
	if *fig9 {
		fmt.Println(experiments.FormatFig9(suite.Fig9()))
	}
	if *overhead {
		fmt.Println(experiments.FormatOverhead(suite.Overhead()))
	}
	if *table3 {
		fmt.Fprintln(os.Stderr, "training the real XPSI baseline per beam...")
		rows, err := suite.Table3(&experiments.Table3Options{Seed: *seed + 10})
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable3(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
