// Command xfelgen generates synthetic XFEL protein-diffraction datasets
// (the substitute for the paper's spsim/Xmipp pipeline) and writes them in
// the gob format consumed by cmd/a4nn -data.
//
// Examples:
//
//	xfelgen -beam medium -count 2000 -out medium.gob
//	xfelgen -beam low -count 4 -preview        # print patterns as ASCII
package main

import (
	"flag"
	"fmt"
	"os"

	"a4nn/internal/dataset"
	"a4nn/internal/xfel"
)

func main() {
	var (
		beamName = flag.String("beam", "medium", "beam intensity: low, medium, or high")
		count    = flag.Int("count", 1000, "number of patterns (balanced across conformations)")
		size     = flag.Int("size", 32, "detector edge length in pixels")
		spread   = flag.Float64("spread", 0.2, "orientation spread in [0,1]; 1 = uniform SO(3)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output dataset file (gob)")
		preview  = flag.Bool("preview", false, "print the first patterns as ASCII art")
	)
	flag.Parse()

	beam, err := xfel.ParseBeam(*beamName)
	if err != nil {
		fatal(err)
	}
	params := xfel.DefaultSimulatorParams()
	params.Size = *size
	params.OrientationSpread = *spread
	sim, err := xfel.NewSimulator(*seed, params)
	if err != nil {
		fatal(err)
	}
	pats, err := sim.GenerateBatch(*seed+1, *count, beam)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d %s-beam patterns (%dx%d, spread %.2f)\n",
		len(pats), beam, *size, *size, *spread)

	if *preview {
		n := 4
		if n > len(pats) {
			n = len(pats)
		}
		for _, p := range pats[:n] {
			fmt.Printf("\n%s (%s beam):\n%s", p.Label, p.Beam, p.ASCII())
		}
	}
	if *out != "" {
		ds, err := dataset.FromPatterns(pats)
		if err != nil {
			fatal(err)
		}
		if err := ds.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("dataset written to %s (%d classes: %v samples per class)\n",
			*out, ds.NumClasses, ds.ClassCounts())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfelgen:", err)
	os.Exit(1)
}
