package a4nn

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"a4nn/internal/webui"
)

// collectSSE reads /events frames until stop returns true for a frame
// (inclusive) or the timeout expires, returning the events in arrival
// order. The request context is canceled on return, detaching the
// subscriber. Safe to call from any goroutine (errors are returned,
// not reported via t).
func collectSSE(url, lastEventID string, timeout time.Duration, stop func(Event) bool) ([]Event, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("/events status %d", resp.StatusCode)
	}
	var out []Event
	var cur Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.Seq, _ = strconv.ParseUint(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.Type = line[7:]
		case line == "":
			out = append(out, cur)
			if stop(cur) {
				return out, nil
			}
			cur = Event{}
		}
	}
	return out, fmt.Errorf("stream ended after %d events: %v", len(out), sc.Err())
}

// TestEventStreamEndToEnd runs a real (surrogate) search with the
// journal attached and a live SSE client watching /events, then
// reconnects with Last-Event-ID and checks the gap is replayed — the
// full in situ analytics path of the PR: search → journal → broker →
// SSE → dashboard consumer.
func TestEventStreamEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCommons(dir)
	if err != nil {
		t.Fatal(err)
	}
	observer := NewObserver()
	if err := observer.Journal().OpenFile(filepath.Join(dir, EventsFile)); err != nil {
		t.Fatal(err)
	}
	srv, err := webui.New(store)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetObserver(observer)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The live client connects before the search starts; with no
	// Last-Event-ID it replays from the beginning, so it sees every
	// event regardless of connection timing.
	type streamResult struct {
		events []Event
		err    error
	}
	liveDone := make(chan streamResult, 1)
	go func() {
		evs, err := collectSSE(ts.URL+"/events", "", 60*time.Second,
			func(e Event) bool { return e.Type == "run_end" })
		liveDone <- streamResult{evs, err}
	}()

	trainer, err := SurrogateTrainer(MediumBeam)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(trainer)
	cfg.NAS = NASConfig{PopulationSize: 4, Offspring: 4, Generations: 2, Seed: 7}
	cfg.MaxEpochs = 8
	cfg.Devices = 2
	cfg.Store = store
	cfg.Beam = "medium"
	cfg.Obs = observer
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 8 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}

	var live []Event
	select {
	case r := <-liveDone:
		if r.err != nil {
			t.Fatal(r.err)
		}
		live = r.events
	case <-time.After(60 * time.Second):
		t.Fatal("live client never saw run_end")
	}

	// Ordered, gap-free, and shaped like a run.
	seen := map[string]int{}
	for i, e := range live {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		seen[e.Type]++
	}
	if live[0].Type != "run_start" || live[len(live)-1].Type != "run_end" {
		t.Fatalf("stream starts with %q and ends with %q", live[0].Type, live[len(live)-1].Type)
	}
	if seen["generation_start"] != 2 || seen["generation_end"] != 2 {
		t.Fatalf("generation events %d/%d, want 2/2", seen["generation_start"], seen["generation_end"])
	}
	for _, typ := range []string{"task_dispatch", "epoch", "model_done", "pareto_update"} {
		if seen[typ] == 0 {
			t.Fatalf("no %s events in %v", typ, seen)
		}
	}

	// A client that disconnected mid-run reconnects with Last-Event-ID
	// and receives exactly the events it missed, in order.
	gapFrom := len(live) / 2
	lastSeen := live[gapFrom-1].Seq
	replay, err := collectSSE(ts.URL+"/events", strconv.FormatUint(lastSeen, 10), 30*time.Second,
		func(e Event) bool { return e.Seq == live[len(live)-1].Seq })
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(live)-gapFrom {
		t.Fatalf("replay returned %d events, want %d", len(replay), len(live)-gapFrom)
	}
	for i, e := range replay {
		if want := live[gapFrom+i]; e.Seq != want.Seq || e.Type != want.Type {
			t.Fatalf("replay[%d] = seq %d %q, want seq %d %q", i, e.Seq, e.Type, want.Seq, want.Type)
		}
	}

	// The crash-safe journal on disk holds the same stream.
	fromDisk, err := ReadEvents(filepath.Join(dir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDisk) != len(live) {
		t.Fatalf("events.jsonl holds %d events, stream delivered %d", len(fromDisk), len(live))
	}
	for i, e := range fromDisk {
		if e.Seq != live[i].Seq || e.Type != live[i].Type {
			t.Fatalf("disk[%d] = seq %d %q, stream had seq %d %q", i, e.Seq, e.Type, live[i].Seq, live[i].Type)
		}
	}
}
