// Composability (paper §2, §6): the prediction engine is decoupled from
// the search, so it can augment any NAS — not just NSGA-Net. This example
// plugs the engine into a plain random search over the same genome space:
// each sampled architecture trains under Algorithm 1 and is cut short as
// soon as its fitness prediction stabilises, and the search keeps the
// best architecture by predicted fitness.
package main

import (
	"context"
	"fmt"
	"log"

	"a4nn"
)

func main() {
	trainer, err := a4nn.SurrogateTrainer(a4nn.HighBeam)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := a4nn.NewEngine(a4nn.DefaultEngineConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Random search: sample 20 genomes, train each under the engine.
	orch := &a4nn.Orchestrator{Engine: engine, MaxEpochs: 25}
	const budget = 20
	var (
		bestFitness float64
		bestGenome  *a4nn.Genome
		totalEpochs int
		terminated  int
	)
	for i := 0; i < budget; i++ {
		g, err := a4nn.RandomGenome(int64(100+i), 3, 4)
		if err != nil {
			log.Fatal(err)
		}
		model, err := trainer.NewModel(g, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		// Train on a single simulated device; the orchestrator runs
		// Algorithm 1 (train → predict → converged?).
		outcome, err := orch.TrainModel(context.Background(), model, a4nn.DefaultDevice(), trainer.TrainSamples(), nil)
		if err != nil {
			log.Fatal(err)
		}
		totalEpochs += outcome.EpochsTrained
		if outcome.Terminated {
			terminated++
		}
		marker := " "
		if outcome.FinalFitness > bestFitness {
			bestFitness, bestGenome = outcome.FinalFitness, g
			marker = "*"
		}
		fmt.Printf("%s genome %s  fitness %.2f%%  epochs %d  terminated=%v\n",
			marker, g.Hash(), outcome.FinalFitness, outcome.EpochsTrained, outcome.Terminated)
	}

	fmt.Printf("\nrandom search with the A4NN engine: %d/%d epochs (%.0f%% saved), %d/%d terminated early\n",
		totalEpochs, budget*25, 100*(1-float64(totalEpochs)/float64(budget*25)), terminated, budget)
	fmt.Printf("best architecture %s at %.2f%% predicted fitness\n", bestGenome.Hash(), bestFitness)
	fmt.Printf("genome: %s\n", bestGenome)
}
