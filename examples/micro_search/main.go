// Micro search space (advanced): this example composes the workflow's
// pieces by hand — NSGA-II, the prediction engine's Algorithm-1
// orchestrator, the device pool, and real training — over NSGA-Net's
// *micro* (cell-based) search space, which the paper's evaluation does
// not use but its NAS supports. It shows that every component is
// independently reusable. For the one-call version of the same search,
// use a4nn.RunMicro with a4nn.NewRealMicroTrainer.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"

	"a4nn"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/nn"
	"a4nn/internal/nsga"
	"a4nn/internal/sched"
)

// microModel adapts a decoded micro network to the orchestrator's
// Trainable interface.
type microModel struct {
	net        *nn.Network
	opt        nn.Optimizer
	train, val *dataset.Dataset
	rng        *rand.Rand
	flops      int64
}

func (m *microModel) TrainEpoch() (a4nn.EpochMetrics, error) {
	batches, err := m.train.Batches(32, m.rng)
	if err != nil {
		return a4nn.EpochMetrics{}, err
	}
	loss, err := nn.TrainEpoch(m.net, m.opt, batches)
	if err != nil {
		return a4nn.EpochMetrics{}, err
	}
	vb, err := m.val.Batches(32, nil)
	if err != nil {
		return a4nn.EpochMetrics{}, err
	}
	acc, err := nn.EvaluateClassifier(m.net, vb)
	if err != nil {
		return a4nn.EpochMetrics{}, err
	}
	return a4nn.EpochMetrics{TrainLoss: loss, ValAccuracy: acc, TrainAccuracy: acc}, nil
}
func (m *microModel) SaveState() ([]byte, error) { return m.net.SaveState() }
func (m *microModel) FLOPs() int64               { return m.flops }
func (m *microModel) NumParams() int             { return m.net.NumParams() }
func (m *microModel) Describe() string           { return m.net.Describe() }

// microOps plugs the micro variation operators into NSGA-II.
type microOps struct{ nodes int }

func (o microOps) Random(rng *rand.Rand) (*genome.MicroGenome, error) {
	return genome.NewRandomMicro(rng, o.nodes)
}
func (o microOps) Crossover(rng *rand.Rand, a, b *genome.MicroGenome) (*genome.MicroGenome, error) {
	return genome.CrossoverMicro(rng, a, b)
}
func (o microOps) Mutate(rng *rand.Rand, g *genome.MicroGenome) (*genome.MicroGenome, error) {
	return g.Mutate(rng, 0.15), nil
}

func main() {
	const maxEpochs = 10

	// Data: a small high-beam diffraction set.
	params := a4nn.DefaultSimulatorParams()
	params.Size = 16
	ds, err := a4nn.GenerateXFEL(7, 200, a4nn.HighBeam, params)
	if err != nil {
		log.Fatal(err)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// The prediction engine, retargeted to this budget.
	engineCfg := a4nn.DefaultEngineConfig()
	engineCfg.EPred = maxEpochs
	engine, err := a4nn.NewEngine(engineCfg)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := sched.NewPool(2, 0) // two simulated devices
	if err != nil {
		log.Fatal(err)
	}
	decode := genome.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{6, 12}, NumClasses: 2}

	var totalEpochs, terminated, built atomic.Int64 // tasks run on two devices concurrently
	evaluator := nsga.EvaluatorFunc[*genome.MicroGenome](func(gen int, cands []*genome.MicroGenome) ([][]float64, error) {
		objs := make([][]float64, len(cands))
		tasks := make([]sched.Task, len(cands))
		for i, g := range cands {
			i, g := i, g
			tasks[i] = func(tc sched.TaskCtx) (float64, error) {
				dev := tc.Dev
				rng := rand.New(rand.NewSource(int64(gen*100 + i)))
				net, err := genome.DecodeMicro(g, decode, rng)
				if err != nil {
					return 0, err
				}
				opt, err := nn.NewSGD(0.08, 0.9, 0)
				if err != nil {
					return 0, err
				}
				flops, err := net.FLOPs()
				if err != nil {
					return 0, err
				}
				model := &microModel{net: net, opt: opt, train: train, val: val, rng: rng, flops: flops}
				orch := &a4nn.Orchestrator{Engine: engine, MaxEpochs: maxEpochs}
				out, err := orch.TrainModel(tc.Ctx, model, dev, train.Len(), nil)
				if err != nil {
					return 0, err
				}
				totalEpochs.Add(int64(out.EpochsTrained))
				built.Add(1)
				if out.Terminated {
					terminated.Add(1)
				}
				objs[i] = []float64{100 - out.FinalFitness, float64(flops) / 1e6}
				fmt.Printf("gen %d cell %-40s fitness %5.1f%%  %.2f MFLOPs  epochs %d\n",
					gen, g, out.FinalFitness, float64(flops)/1e6, out.EpochsTrained)
				return out.SimSeconds, nil
			}
		}
		if _, err := pool.RunGeneration(context.Background(), tasks); err != nil {
			return nil, err
		}
		return objs, nil
	})

	res, err := nsga.Run[*genome.MicroGenome](
		nsga.Config{PopulationSize: 4, Offspring: 4, Generations: 2, Seed: 11},
		microOps{nodes: 3}, evaluator)
	if err != nil {
		log.Fatal(err)
	}

	n, e := built.Load(), totalEpochs.Load()
	fmt.Printf("\nmicro search: %d cells trained, %d/%d epochs (%.0f%% saved), %d terminated early\n",
		n, e, n*maxEpochs, 100*(1-float64(e)/float64(n*maxEpochs)), terminated.Load())
	fmt.Println("final population (fitness% / MFLOPs):")
	for _, ind := range res.Population {
		fmt.Printf("  %-40s %5.1f%%  %.2f\n", ind.Payload, 100-ind.Objectives[0], ind.Objectives[1])
	}
}
