// Standalone use of the parametric prediction engine (paper §2.1,
// Figure 2): feed a learning curve to the engine epoch by epoch, watch
// its extrapolations of the epoch-25 fitness, and stop as soon as the
// prediction analyzer declares convergence. The curve here is a recorded
// trace shaped like a real medium-beam run; replace it with your own
// validation-accuracy history to decide when to stop a training job.
package main

import (
	"fmt"
	"log"

	"a4nn"
	"a4nn/internal/predict"
)

func main() {
	// The engine as configured in Table 1 of the paper.
	cfg := a4nn.DefaultEngineConfig()
	engine, err := a4nn.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: F(x)=%s, C_min=%d, e_pred=%d, N=%d, r=%v\n\n",
		cfg.Family.Name(), cfg.CMin, cfg.EPred, cfg.N, cfg.R)

	// A recorded validation-accuracy history (percent per epoch).
	curve := []float64{
		57.8, 71.2, 79.5, 84.8, 88.1, 90.0, 91.4, 92.1, 92.8, 93.0,
		93.4, 93.3, 93.6, 93.8, 93.7, 93.9, 94.0, 93.9, 94.1, 94.0,
		94.1, 94.2, 94.1, 94.2, 94.2,
	}

	tracker := predict.NewTracker(engine)
	for epoch, fitness := range curve {
		converged := tracker.Observe(fitness)
		line := fmt.Sprintf("epoch %2d  fitness %5.1f%%", epoch+1, fitness)
		if n := len(tracker.P); n > 0 && tracker.PredEpochs[n-1] == epoch+1 {
			line += fmt.Sprintf("  predicted@%d: %5.2f%%", cfg.EPred, tracker.P[n-1])
		}
		fmt.Println(line)
		if converged {
			final, _ := tracker.FinalFitness()
			fmt.Printf("\npredictions converged at epoch %d — terminate training.\n", epoch+1)
			fmt.Printf("fitness reported to the search: %.2f%% (vs %.1f%% actually reached at epoch 25)\n",
				final, curve[len(curve)-1])
			fmt.Printf("epochs saved: %d of %d\n", len(curve)-(epoch+1), len(curve))
			return
		}
	}
	fmt.Println("\npredictions never converged; the network trained its full budget")
}
