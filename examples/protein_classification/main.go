// Protein classification end to end, the paper's use case with genuine
// training: synthesise an XFEL diffraction dataset for two protein
// conformations, run a small A4NN search with real gradient-descent
// training of every decoded architecture, run the same search standalone,
// and compare accuracy and epoch cost. Everything is laptop-scale (16×16
// detectors, a few hundred images, 6 networks × ≤8 epochs) but exercises
// the identical code paths as a paper-scale run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"a4nn"
)

func main() {
	// 1. Simulate the XFEL experiment (paper §3.1): two conformations,
	//    high beam intensity (low noise), restricted beam orientations so
	//    a few hundred images suffice.
	params := a4nn.DefaultSimulatorParams()
	params.Size = 16
	params.OrientationSpread = 0.3 // harder than the default, so curves rise over many epochs
	ds, err := a4nn.GenerateXFEL(7, 240, a4nn.HighBeam, params)
	if err != nil {
		log.Fatal(err)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(1))) // the paper's 80/20 split
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d val diffraction patterns (%v per class)\n",
		train.Len(), val.Len(), ds.ClassCounts())

	// 2. A trainer that decodes each genome into a CNN and trains it.
	trainer, err := a4nn.NewRealTrainer(train, val, a4nn.RealTrainerConfig{
		Decode: a4nn.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, engineOn bool) {
		cfg := a4nn.DefaultConfig(trainer)
		cfg.NAS = a4nn.NASConfig{PopulationSize: 3, Offspring: 3, Generations: 2, Seed: 5}
		cfg.MaxEpochs = 12
		cfg.Beam = "high"
		if engineOn {
			engineCfg := a4nn.DefaultEngineConfig()
			engineCfg.EPred = cfg.MaxEpochs // predict the end of this budget
			cfg.Engine = &engineCfg
		} else {
			cfg.Engine = nil
		}
		res, err := a4nn.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		best := 0.0
		for _, m := range res.Models {
			if m.Fitness > best {
				best = m.Fitness
			}
		}
		budget := len(res.Models) * cfg.MaxEpochs
		fmt.Printf("\n%s: %d networks, %d/%d epochs (%.0f%% saved), best accuracy %.1f%%\n",
			name, len(res.Models), res.TotalEpochs, budget,
			100*(1-float64(res.TotalEpochs)/float64(budget)), best)
		for _, p := range a4nn.ParetoFrontier(res.Models) {
			fmt.Printf("  pareto: %s  %.1f%%  %.2f MFLOPs\n", p.ID, p.Accuracy, p.MFLOPs)
		}
	}

	// 3. A4NN versus the standalone baseline (paper §4.2).
	run("A4NN (prediction engine on)", true)
	run("standalone NSGA-Net", false)
}
