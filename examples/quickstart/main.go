// Quickstart: run a full A4NN search (prediction engine + NSGA-II +
// resource manager) with the paper's Table 1/2 configuration on the
// calibrated surrogate trainer, then print what the workflow saved and
// the Pareto-optimal architectures it found.
package main

import (
	"fmt"
	"log"

	"a4nn"
)

func main() {
	trainer, err := a4nn.SurrogateTrainer(a4nn.MediumBeam)
	if err != nil {
		log.Fatal(err)
	}

	cfg := a4nn.DefaultConfig(trainer) // Tables 1 & 2: 100 networks × ≤25 epochs
	cfg.Beam = "medium"

	result, err := a4nn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	budget := len(result.Models) * cfg.MaxEpochs
	fmt.Printf("evaluated %d networks\n", len(result.Models))
	fmt.Printf("epochs: %d of %d (%.1f%% saved by early termination)\n",
		result.TotalEpochs, budget, 100*(1-float64(result.TotalEpochs)/float64(budget)))
	fmt.Printf("terminated early: %d networks\n", result.TerminatedEarly)
	fmt.Printf("simulated wall time: %.1f hours on %d device(s)\n",
		result.Totals.WallSeconds/3600, result.Totals.Devices)

	fmt.Println("\nPareto-optimal models (accuracy vs MFLOPs):")
	for _, p := range a4nn.ParetoFrontier(result.Models) {
		fmt.Printf("  %s  %.2f%%  %.1f MFLOPs\n", p.ID, p.Accuracy, p.MFLOPs)
	}
}
