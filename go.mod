module a4nn

go 1.22
