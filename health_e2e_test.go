package a4nn

// End-to-end test of the in-situ health monitor: a fault-injected
// search with a rigged diverging-then-recovering trainer, observed
// live through the full alerting pipeline — monitors → alert manager →
// journal events → SSE stream → /healthz → /api/alerts → alerts.jsonl.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"a4nn/internal/health"
	"a4nn/internal/webui"
)

// divergeTrainer builds models whose training loss rises for the first
// six epochs and recovers afterwards: every model deterministically
// trips the divergence monitor (loss rising ≥ 3 consecutive epochs)
// and then comes back, so its alert must fire, deduplicate across
// checks, and resolve.
type divergeTrainer struct{}

func (divergeTrainer) TrainSamples() int { return 100 }
func (divergeTrainer) NewModel(g *Genome, seed int64) (Trainable, error) {
	return &divergeModel{}, nil
}

type divergeModel struct{ epoch int }

func (m *divergeModel) TrainEpoch() (EpochMetrics, error) {
	m.epoch++
	// Loss: 0.8, 1.1, 1.4, 1.7, 2.0, 2.3, then recovery 1.65, 1.0.
	loss := 0.5 + 0.3*float64(m.epoch)
	if m.epoch > 6 {
		loss = 2.3 - 0.65*float64(m.epoch-6)
	}
	// Accuracy climbs a point per epoch: no collapse, no plateau.
	acc := 50 + float64(m.epoch)
	return EpochMetrics{TrainLoss: loss, TrainAccuracy: acc, ValAccuracy: acc}, nil
}
func (m *divergeModel) SaveState() ([]byte, error) { return nil, nil }
func (m *divergeModel) FLOPs() int64               { return 1e6 }
func (m *divergeModel) NumParams() int             { return 1000 }
func (m *divergeModel) Describe() string           { return "rigged diverging model" }

func TestHealthMonitorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCommons(dir)
	if err != nil {
		t.Fatal(err)
	}
	observer := NewObserver()
	if err := observer.Journal().OpenFile(filepath.Join(dir, EventsFile)); err != nil {
		t.Fatal(err)
	}

	healthCfg := DefaultHealthConfig()
	healthCfg.MinCapacity = 0.6 // 1 of 2 devices alive (50%) is critical
	healthCfg.ResolveAfter = 3
	healthCfg.SampleInterval = time.Hour // event-driven checks only: deterministic
	eng, err := NewHealthEngine(healthCfg, observer)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenAlertsFile(filepath.Join(dir, AlertsFile)); err != nil {
		t.Fatal(err)
	}
	eng.Start()

	srv, err := webui.New(store)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetObserver(observer)
	srv.SetHealth(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A fresh engine is healthy: /healthz answers 200 ok.
	code, rep := getHealthz(t, ts.URL)
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("fresh /healthz = %d %q", code, rep.Status)
	}

	// Live SSE client: alert events ride the same stream as everything
	// else, so the dashboard's alert strip needs no extra endpoint.
	type streamResult struct {
		events []Event
		err    error
	}
	liveDone := make(chan streamResult, 1)
	go func() {
		evs, err := collectSSE(ts.URL+"/events", "", 60*time.Second,
			func(e Event) bool { return e.Type == "run_end" })
		liveDone <- streamResult{evs, err}
	}()

	// Fault-injected standalone search: device 1 of 2 crashes during the
	// final generation, and every model's loss diverges then recovers.
	cfg := DefaultConfig(divergeTrainer{})
	cfg.NAS = NASConfig{PopulationSize: 4, Offspring: 4, Generations: 2, Seed: 11}
	cfg.MaxEpochs = 8
	cfg.Devices = 2
	cfg.Engine = nil // rigged curves must run to completion
	cfg.Store = store
	cfg.Beam = "medium"
	cfg.Obs = observer
	cfg.Faults = &FaultPlan{Seed: 3, Crashes: []DeviceCrash{{Device: 1, Generation: 1, AfterTasks: 1}}}
	cfg.Retry.MaxAttempts = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 8 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}
	if res.Totals.DeadDevices != 1 {
		t.Fatalf("dead devices %d, want 1", res.Totals.DeadDevices)
	}

	// Drain the engine: every event the run emitted has been evaluated
	// and the final alert state is on disk.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Divergence fired and resolved live, during the run, on the SSE
	// stream (the capacity alert may land after run_end, so only the
	// divergence lifecycle is asserted here).
	var live []Event
	select {
	case r := <-liveDone:
		if r.err != nil {
			t.Fatal(r.err)
		}
		live = r.events
	case <-time.After(60 * time.Second):
		t.Fatal("live client never saw run_end")
	}
	fired, resolved := 0, 0
	for _, e := range live {
		switch e.Type {
		case "alert":
			fired++
		case "alert_resolved":
			resolved++
		}
	}
	if fired == 0 || resolved == 0 {
		t.Fatalf("SSE stream carried %d alert and %d alert_resolved events, want both > 0", fired, resolved)
	}

	// The run ended with the device pool below MinCapacity: aggregate
	// status is critical and /healthz says so with a 503.
	if eng.Status() != health.StatusCritical {
		t.Fatalf("status = %v, want critical", eng.Status())
	}
	if eng.CriticalActive() == 0 {
		t.Fatal("no active critical alerts")
	}
	code, rep = getHealthz(t, ts.URL)
	if code != 503 || rep.Status != "critical" {
		t.Fatalf("post-run /healthz = %d %q", code, rep.Status)
	}

	// /api/alerts: capacity active, divergence resolved.
	var alertsBody struct {
		Status   string  `json:"status"`
		Active   []Alert `json:"active"`
		Resolved []Alert `json:"resolved"`
	}
	getJSON(t, ts.URL+"/api/alerts", &alertsBody)
	if !hasAlert(alertsBody.Active, "devices/capacity") {
		t.Fatalf("active alerts %v missing devices/capacity", alertIDs(alertsBody.Active))
	}
	if !hasPrefix(alertsBody.Resolved, "divergence/") {
		t.Fatalf("resolved alerts %v missing a divergence alert", alertIDs(alertsBody.Resolved))
	}

	// The crash-safe alerts.jsonl folds to the same story: every model
	// diverged and recovered (dedup kept one alert per model, Count
	// counting the repeated checks), and the capacity alert is still
	// active and critical.
	onDisk, err := ReadAlerts(filepath.Join(dir, AlertsFile))
	if err != nil {
		t.Fatal(err)
	}
	divergences := 0
	for _, a := range onDisk {
		if strings.HasPrefix(a.ID, "divergence/") {
			divergences++
			if !a.Resolved {
				t.Fatalf("divergence alert %s not resolved: %+v", a.ID, a)
			}
			if a.Count < 2 {
				t.Fatalf("divergence alert %s Count = %d, want ≥ 2 (dedup across checks)", a.ID, a.Count)
			}
		}
		if a.ID == "devices/capacity" {
			if a.Resolved || a.Severity != health.SevCritical {
				t.Fatalf("capacity alert = %+v, want active critical", a)
			}
		}
	}
	if divergences != 8 {
		t.Fatalf("alerts.jsonl holds %d divergence alerts, want one per model (8)", divergences)
	}
	if !hasAlert(onDisk, "devices/capacity") {
		t.Fatalf("alerts.jsonl %v missing devices/capacity", alertIDs(onDisk))
	}
}

func getHealthz(t *testing.T, base string) (int, HealthReport) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rep
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func hasAlert(alerts []Alert, id string) bool {
	for _, a := range alerts {
		if a.ID == id {
			return true
		}
	}
	return false
}

func hasPrefix(alerts []Alert, prefix string) bool {
	for _, a := range alerts {
		if strings.HasPrefix(a.ID, prefix) {
			return true
		}
	}
	return false
}

func alertIDs(alerts []Alert) []string {
	ids := make([]string, len(alerts))
	for i, a := range alerts {
		ids[i] = fmt.Sprintf("%s(%s)", a.ID, a.Severity)
	}
	return ids
}
