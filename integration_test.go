package a4nn

// Integration tests: the full user-facing pipeline from data generation
// through search to the data commons and back, exactly as the cmd tools
// drive it (xfelgen → a4nn -data -store → a4nn-analyze).

import (
	"math/rand"
	"path/filepath"
	"testing"

	"a4nn/internal/analyzer"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/lineage"
	"a4nn/internal/nn"
)

func TestIntegrationFilePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration in -short mode")
	}
	dir := t.TempDir()

	// 1. xfelgen: generate a dataset and persist it.
	params := DefaultSimulatorParams()
	params.Size = 16
	ds, err := GenerateXFEL(3, 160, HighBeam, params)
	if err != nil {
		t.Fatal(err)
	}
	dsPath := filepath.Join(dir, "high.gob")
	if err := ds.Save(dsPath); err != nil {
		t.Fatal(err)
	}

	// 2. a4nn -data -store: load, split, real-train a tiny search with
	//    record trails and per-epoch snapshots.
	loaded, err := dataset.Load(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := loaded.Split(0.8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := nn.NewCosineLR(0.08, 0.005, 6)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewRealTrainer(train, val, RealTrainerConfig{
		Decode:    DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenCommons(filepath.Join(dir, "commons"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(trainer)
	cfg.NAS = NASConfig{PopulationSize: 3, Offspring: 3, Generations: 2, Seed: 9}
	cfg.MaxEpochs = 6
	engineCfg := DefaultEngineConfig()
	engineCfg.EPred = 6
	cfg.Engine = &engineCfg
	cfg.Beam = "high"
	cfg.Store = store
	cfg.SnapshotEpochs = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 6 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}

	// 3. a4nn-analyze: everything written must round-trip and reload.
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("store has %d records", len(ids))
	}
	sum, err := store.Summarize("high")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 6 || sum.BestFinalFitness <= 50 {
		t.Fatalf("summary %+v", sum)
	}

	rec, err := store.GetRecord(res.Models[0].Record.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The record's genome decodes and its architecture renders.
	g, err := genome.Parse(rec.Genome, rec.NodesPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analyzer.GenomeDOT(g, nil); err != nil {
		t.Fatal(err)
	}

	// 4. A stored per-epoch snapshot restores into a decoded network and
	//    reproduces the recorded validation accuracy (§2.2.2: models can
	//    be re-evaluated from any point of training).
	epochs, err := store.Snapshots(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != rec.EpochsTrained() {
		t.Fatalf("%d snapshots for %d epochs", len(epochs), rec.EpochsTrained())
	}
	state, err := store.GetSnapshot(rec.ID, epochs[len(epochs)-1])
	if err != nil {
		t.Fatal(err)
	}
	net, err := genome.Decode(g, genome.DecodeConfig{
		InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2,
	}, rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.LoadState(state); err != nil {
		t.Fatal(err)
	}
	batches, err := val.Batches(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nn.EvaluateClassifier(net, batches)
	if err != nil {
		t.Fatal(err)
	}
	recorded := rec.Epochs[len(rec.Epochs)-1].ValAccuracy
	if acc != recorded {
		t.Fatalf("restored model evaluates to %v, record says %v", acc, recorded)
	}

	// 5. §6 analyses run on the stored models.
	var genomes []*genome.Genome
	var models []*ModelResult
	for _, id := range ids {
		r, err := store.GetRecord(id)
		if err != nil {
			t.Fatal(err)
		}
		gg, err := genome.Parse(r.Genome, r.NodesPerPhase)
		if err != nil {
			t.Fatal(err)
		}
		genomes = append(genomes, gg)
		models = append(models, &ModelResult{Genome: gg, Record: r,
			Fitness: r.FinalFitness, MFLOPs: float64(r.FLOPs) / 1e6})
	}
	if _, err := analyzer.Diversity(genomes); err != nil {
		t.Fatal(err)
	}
	corr := analyzer.AccuracyFLOPsCorrelation(models)
	if corr.N != 6 {
		t.Fatalf("correlation report %+v", corr)
	}
}

// TestIntegrationLineageConsistency cross-checks the lineage records of a
// surrogate run against the run's own accounting.
func TestIntegrationLineageConsistency(t *testing.T) {
	trainer, err := SurrogateTrainer(LowBeam)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(trainer)
	cfg.NAS = NASConfig{PopulationSize: 5, Offspring: 5, Generations: 3, Seed: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalEpochs := 0
	for _, m := range res.Models {
		if err := m.Record.Validate(); err != nil {
			t.Fatal(err)
		}
		totalEpochs += m.Record.EpochsTrained()
		// Fitness history matches the recorded epochs.
		if len(m.Record.FitnessHistory()) != m.Record.EpochsTrained() {
			t.Fatal("fitness history length mismatch")
		}
		// Early-terminated records carry at least N predictions (the
		// analyzer needs N in the window to converge).
		if m.Record.Terminated && len(m.Record.PredictionHistory()) < 3 {
			t.Fatalf("record %s terminated with %d predictions", m.Record.ID, len(m.Record.PredictionHistory()))
		}
	}
	if totalEpochs != res.TotalEpochs {
		t.Fatalf("records sum to %d epochs, result says %d", totalEpochs, res.TotalEpochs)
	}
	_ = lineage.EngineParams{} // keep the lineage import for the doc reference
}

// TestIntegrationMultiClass drives the §6 generalisation: four protein
// conformations, a 4-class dataset, and real training of a decoded
// genome that must beat chance (25%) comfortably.
func TestIntegrationMultiClass(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-class training in -short mode")
	}
	params := DefaultSimulatorParams()
	params.Size = 16
	params.Protein.NumConformations = 4
	ds, err := GenerateXFEL(9, 240, HighBeam, params)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses != 4 {
		t.Fatalf("classes %d", ds.NumClasses)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewRealTrainer(train, val, RealTrainerConfig{
		Decode:   DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{6, 12, 12}, NumClasses: 4},
		ClipNorm: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := genome.Parse("1010001|1100111|1000000", 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := trainer.NewModel(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for e := 0; e < 10; e++ {
		m, err := model.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if m.ValAccuracy > best {
			best = m.ValAccuracy
		}
	}
	if best < 55 {
		t.Fatalf("4-class accuracy %v, want well above 25%% chance", best)
	}
}
