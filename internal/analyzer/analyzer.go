// Package analyzer provides the analysis layer of the A4NN workflow
// (paper §2.4): Pareto-frontier extraction for the accuracy-vs-FLOPs
// plots (Figure 6), termination-epoch histograms (Figure 8), epoch and
// wall-time aggregation (Figures 7 and 9), learning-curve sparklines, and
// architecture visualisation (ASCII and Graphviz DOT) — the capabilities
// the paper exposes through its Jupyter-notebook analyzer, here exposed
// as a library plus the cmd/a4nn-analyze CLI.
package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"a4nn/internal/core"
	"a4nn/internal/lineage"
	"a4nn/internal/nsga"
)

// Point is one model on an accuracy/FLOPs plot.
type Point struct {
	ID       string
	Accuracy float64 // percent
	MFLOPs   float64
}

// ParetoFrontier returns the Pareto-optimal models (maximal accuracy,
// minimal MFLOPs) of a run, sorted by increasing MFLOPs — the points of
// Figure 6.
func ParetoFrontier(models []*core.ModelResult) []Point {
	if len(models) == 0 {
		return nil
	}
	objs := make([][]float64, len(models))
	for i, m := range models {
		objs[i] = []float64{m.MFLOPs, 100 - m.Fitness}
	}
	idx := nsga.ParetoFront(objs)
	pts := make([]Point, 0, len(idx))
	for _, i := range idx {
		pts = append(pts, Point{ID: models[i].Record.ID, Accuracy: models[i].Fitness, MFLOPs: models[i].MFLOPs})
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].MFLOPs < pts[b].MFLOPs })
	return pts
}

// BestAccuracy returns the highest fitness in the run.
func BestAccuracy(models []*core.ModelResult) float64 {
	best := 0.0
	for _, m := range models {
		if m.Fitness > best {
			best = m.Fitness
		}
	}
	return best
}

// Bin is one bar of a histogram over integer values.
type Bin struct {
	Lo, Hi int // inclusive bounds
	Count  int
}

// HistogramInts bins values into equal-width bins covering [lo, hi].
// Values outside the range are clamped into the boundary bins.
func HistogramInts(values []int, lo, hi, width int) ([]Bin, error) {
	if width < 1 || hi < lo {
		return nil, fmt.Errorf("analyzer: invalid histogram range [%d,%d] width %d", lo, hi, width)
	}
	nbins := (hi - lo + width) / width
	bins := make([]Bin, nbins)
	for i := range bins {
		bins[i].Lo = lo + i*width
		bins[i].Hi = bins[i].Lo + width - 1
		if bins[i].Hi > hi {
			bins[i].Hi = hi
		}
	}
	for _, v := range values {
		i := (v - lo) / width
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i].Count++
	}
	return bins, nil
}

// RenderHistogram draws bins as a horizontal ASCII bar chart.
func RenderHistogram(bins []Bin) string {
	maxCount := 0
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		barLen := 0
		if maxCount > 0 {
			barLen = b.Count * 40 / maxCount
		}
		fmt.Fprintf(&sb, "%3d-%-3d |%-40s %d\n", b.Lo, b.Hi, strings.Repeat("#", barLen), b.Count)
	}
	return sb.String()
}

// Sparkline renders a fitness curve as a compact unicode strip, useful
// for scanning learning-curve shapes in a terminal.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		i := 0
		if span > 0 {
			i = int((v - lo) / span * float64(len(levels)-1))
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}

// MeanInt returns the arithmetic mean of integer values (0 when empty).
func MeanInt(values []int) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0
	for _, v := range values {
		s += v
	}
	return float64(s) / float64(len(values))
}

// FormatTable renders rows as an aligned text table with a header rule.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// CurveStats summarises one record's learning curve.
type CurveStats struct {
	ID            string
	Epochs        int
	Terminated    bool
	FinalFitness  float64
	BestObserved  float64
	Predictions   int
	MeanEpochSecs float64
}

// Stats extracts curve statistics from a record.
func Stats(r *lineage.Record) CurveStats {
	s := CurveStats{
		ID:           r.ID,
		Epochs:       r.EpochsTrained(),
		Terminated:   r.Terminated,
		FinalFitness: r.FinalFitness,
		Predictions:  len(r.PredictionHistory()),
	}
	for _, e := range r.Epochs {
		if e.ValAccuracy > s.BestObserved {
			s.BestObserved = e.ValAccuracy
		}
		s.MeanEpochSecs += e.SimSeconds
	}
	if s.Epochs > 0 {
		s.MeanEpochSecs /= float64(s.Epochs)
	}
	return s
}
