package analyzer

import (
	"strings"
	"testing"

	"a4nn/internal/core"
	"a4nn/internal/genome"
	"a4nn/internal/lineage"
)

func model(id string, acc, mflops float64) *core.ModelResult {
	return &core.ModelResult{
		Record:  &lineage.Record{ID: id, Genome: "0000000"},
		Fitness: acc,
		MFLOPs:  mflops,
	}
}

func TestParetoFrontier(t *testing.T) {
	models := []*core.ModelResult{
		model("a", 90, 100), // dominated by c (higher acc, lower flops)
		model("b", 99, 500),
		model("c", 95, 80),
		model("d", 97, 200),
		model("e", 94, 600), // dominated
	}
	front := ParetoFrontier(models)
	ids := make([]string, len(front))
	for i, p := range front {
		ids[i] = p.ID
	}
	want := []string{"c", "d", "b"} // sorted by MFLOPs
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("front = %v, want %v", ids, want)
	}
	if ParetoFrontier(nil) != nil {
		t.Fatal("empty input must give nil")
	}
	if got := BestAccuracy(models); got != 99 {
		t.Fatalf("best accuracy %v", got)
	}
}

func TestHistogramInts(t *testing.T) {
	bins, err := HistogramInts([]int{5, 6, 7, 10, 24, 25, 30, -2}, 5, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("%d bins", len(bins))
	}
	// 5,6,7,-2 clamp → bin0 has 4; 10 → bin1; 24,25 → bin4 gets 24? bins:
	// [5-9][10-14][15-19][20-24][25-25]; 24→bin3; 25,30→bin4.
	if bins[0].Count != 4 || bins[1].Count != 1 || bins[3].Count != 1 || bins[4].Count != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	if _, err := HistogramInts(nil, 10, 5, 1); err == nil {
		t.Fatal("inverted range must fail")
	}
	if _, err := HistogramInts(nil, 0, 5, 0); err == nil {
		t.Fatal("zero width must fail")
	}
	out := RenderHistogram(bins)
	if !strings.Contains(out, "#") || !strings.Contains(out, "5-9") {
		t.Fatalf("histogram render:\n%s", out)
	}
	if RenderHistogram(nil) != "" {
		t.Fatal("empty histogram must render empty")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 50, 100})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline extremes %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat sparkline %q", flat)
		}
	}
}

func TestMeanInt(t *testing.T) {
	if MeanInt(nil) != 0 {
		t.Fatal("empty mean")
	}
	if MeanInt([]int{2, 4, 6}) != 4 {
		t.Fatal("mean wrong")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"beam", "saved"}, [][]string{{"low", "13.3%"}, {"medium", "34.1%"}})
	if !strings.Contains(out, "beam") || !strings.Contains(out, "medium") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}

func TestStats(t *testing.T) {
	r := &lineage.Record{
		ID: "m", Genome: "g",
		Epochs: []lineage.EpochEntry{
			{Epoch: 1, ValAccuracy: 60, SimSeconds: 4},
			{Epoch: 2, ValAccuracy: 80, SimSeconds: 4},
			{Epoch: 3, ValAccuracy: 75, Prediction: 85, HasPrediction: true, SimSeconds: 4},
		},
		Terminated: true, TerminationEpoch: 3, FinalFitness: 85,
	}
	s := Stats(r)
	if s.Epochs != 3 || !s.Terminated || s.FinalFitness != 85 {
		t.Fatalf("stats %+v", s)
	}
	if s.BestObserved != 80 || s.Predictions != 1 || s.MeanEpochSecs != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGenomeDOT(t *testing.T) {
	g, err := genome.Parse("1100111|0000000|1000001", 4)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := GenomeDOT(g, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "cluster_0", "proj 1x1", "maxpool", "dense softmax", "skip", "w=16"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	bad := &genome.Genome{NodesPerPhase: 4, Phases: [][]byte{{9}}}
	if _, err := GenomeDOT(bad, nil); err == nil {
		t.Fatal("invalid genome must fail")
	}
}

func TestGenomeASCII(t *testing.T) {
	g, err := genome.Parse("1010001|0000000|1111111", 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GenomeASCII(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "phase 0: in->0, 0->1, 1->2") {
		t.Fatalf("ascii:\n%s", out)
	}
	if !strings.Contains(out, "fallback") {
		t.Fatalf("empty phase must note fallback:\n%s", out)
	}
	if !strings.Contains(out, "+skip") {
		t.Fatalf("skip bit missing:\n%s", out)
	}
	bad := &genome.Genome{NodesPerPhase: 4}
	if _, err := GenomeASCII(bad); err == nil {
		t.Fatal("invalid genome must fail")
	}
}
