package analyzer

import (
	"fmt"
	"strings"
	"time"

	"a4nn/internal/health"
)

// FormatAlerts renders an alert history loaded from alerts.jsonl — one
// row per alert in firing order, then an aggregate line — the
// post-mortem counterpart of the live /healthz endpoint.
func FormatAlerts(alerts []health.Alert) string {
	if len(alerts) == 0 {
		return "no alerts: the run's health monitor recorded nothing (or was off — run cmd/a4nn with -health)\n"
	}
	var rows [][]string
	active, critical := 0, 0
	for _, a := range alerts {
		state := "active"
		if a.Resolved {
			state = fmt.Sprintf("resolved after %s", durationOf(a.FiredAt, a.ResolvedAt))
		} else {
			active++
			if a.Severity == health.SevCritical {
				critical++
			}
		}
		rows = append(rows, []string{
			time.Unix(0, a.FiredAt).Format("15:04:05"),
			string(a.Severity),
			a.ID,
			fmt.Sprint(a.Count),
			state,
			a.Message,
		})
	}
	var sb strings.Builder
	sb.WriteString(FormatTable([]string{"fired", "severity", "alert", "count", "state", "message"}, rows))
	fmt.Fprintf(&sb, "\n%d alert(s): %d still active", len(alerts), active)
	if critical > 0 {
		fmt.Fprintf(&sb, " (%d critical — the run ended unhealthy)", critical)
	}
	sb.WriteString("\n")
	return sb.String()
}

// durationOf renders the span between two unix-nano stamps compactly.
func durationOf(from, to int64) string {
	d := time.Duration(to - from)
	if d < 0 {
		d = 0
	}
	return d.Round(time.Millisecond).String()
}
