package analyzer

import (
	"strings"
	"testing"
	"time"

	"a4nn/internal/health"
)

func TestFormatAlerts(t *testing.T) {
	base := time.Date(2026, 8, 5, 9, 30, 0, 0, time.Local).UnixNano()
	alerts := []health.Alert{
		{
			ID: "divergence/model-3", Monitor: "divergence", Key: "model-3",
			Severity: health.SevCritical, Message: "loss rising for 4 consecutive epochs",
			Count: 4, FiredAt: base, Resolved: true,
			ResolvedAt: base + int64(90*time.Second),
		},
		{
			ID: "devices/capacity", Monitor: "devices", Key: "capacity",
			Severity: health.SevCritical, Message: "1/4 devices alive",
			Count: 12, FiredAt: base + int64(time.Minute),
		},
	}
	got := FormatAlerts(alerts)
	for _, want := range []string{
		"divergence/model-3", "resolved after 1m30s",
		"devices/capacity", "active", "critical",
		"2 alert(s): 1 still active (1 critical — the run ended unhealthy)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("alerts output missing %q:\n%s", want, got)
		}
	}
}

func TestFormatAlertsEmpty(t *testing.T) {
	if got := FormatAlerts(nil); !strings.Contains(got, "no alerts") {
		t.Fatalf("empty alerts rendered %q", got)
	}
}
