package analyzer

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"a4nn/internal/obs"
)

// FormatPostmortem renders one decoded flight-recorder bundle as the
// `a4nn-analyze postmortem` report: why and when the process died,
// what it looked like (heap, goroutines), which alerts were active,
// and the tail of the event ring — the run's last words.
func FormatPostmortem(pm *obs.Postmortem, tail int) string {
	if tail <= 0 {
		tail = 10
	}
	var b strings.Builder
	if pm.Path != "" {
		fmt.Fprintf(&b, "bundle:   %s\n", pm.Path)
	}
	fmt.Fprintf(&b, "reason:   %s\n", pm.Meta.Reason)
	fmt.Fprintf(&b, "time:     %s\n", time.Unix(0, pm.Meta.TimeUnixNano).UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "process:  pid %d, %s, bundle v%d\n", pm.Meta.PID, pm.Meta.GoVersion, pm.Meta.Version)

	heap := pm.Heap()
	if heap.HeapSys > 0 {
		fmt.Fprintf(&b, "runtime:  %d goroutines, heap %.1f MiB live / %.1f MiB sys, %d GCs\n",
			heap.Goroutines, float64(heap.HeapAlloc)/(1<<20), float64(heap.HeapSys)/(1<<20), heap.NumGC)
	}
	if man := pm.Sections[obs.SectionManifest]; len(man) > 0 {
		var m struct {
			Config struct {
				ID string `json:"id"`
			} `json:"config"`
			State string `json:"state"`
		}
		if json.Unmarshal(man, &m) == nil && m.Config.ID != "" {
			fmt.Fprintf(&b, "job:      %s (manifest state at dump: %s)\n", m.Config.ID, m.State)
		}
	}

	alerts := pm.Alerts()
	if len(alerts) == 0 {
		b.WriteString("\nno alerts active at dump time\n")
	} else {
		fmt.Fprintf(&b, "\nactive alerts (%d):\n", len(alerts))
		var rows [][]string
		for _, a := range alerts {
			rows = append(rows, []string{a.Severity, a.AlertID, fmt.Sprint(a.Count), a.Msg})
		}
		b.WriteString(FormatTable([]string{"severity", "alert", "count", "message"}, rows))
	}

	events := pm.Events()
	spans := pm.Spans()
	history := pm.MetricsHistory()
	fmt.Fprintf(&b, "\nblack box: %d events, %d spans, %d metrics samples\n",
		len(events), len(spans), len(history))
	if len(events) > 0 {
		if len(events) > tail {
			events = events[len(events)-tail:]
		}
		fmt.Fprintf(&b, "last %d events:\n", len(events))
		var rows [][]string
		for _, e := range events {
			rows = append(rows, []string{fmt.Sprint(e.Seq), e.Type, eventDetail(e)})
		}
		b.WriteString(FormatTable([]string{"seq", "type", "detail"}, rows))
	}
	return b.String()
}

// eventDetail picks one human-useful column for an event row.
func eventDetail(e obs.Event) string {
	switch {
	case e.Msg != "":
		return e.Msg
	case e.Err != "":
		return e.Err
	case e.Model != "":
		if e.Epoch > 0 {
			return fmt.Sprintf("%s epoch %d", e.Model, e.Epoch)
		}
		return e.Model
	case e.Type == obs.EventGenerationStart || e.Type == obs.EventGenerationEnd:
		return fmt.Sprintf("generation %d", e.Gen)
	default:
		return ""
	}
}
