package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"a4nn/internal/obs"
)

// LayerProfile aggregates one layer kind's training cost, reassembled
// from the labelled a4nn_nn_layer_* series the per-layer profiler
// exports (see internal/nn.Profiler).
type LayerProfile struct {
	Layer           string
	Calls           uint64
	ForwardSeconds  float64
	BackwardSeconds float64
	FLOPs           uint64
}

// TotalSeconds is the layer's combined forward and backward time.
func (p LayerProfile) TotalSeconds() float64 { return p.ForwardSeconds + p.BackwardSeconds }

// layerLabel extracts X from `prefix{layer="X"}`; ok is false when the
// name is not such a series.
func layerLabel(name, prefix string) (string, bool) {
	rest, found := strings.CutPrefix(name, prefix+`{layer="`)
	if !found {
		return "", false
	}
	return strings.TrimSuffix(rest, `"}`), true
}

// LayerProfiles reassembles per-layer profiles from a metrics snapshot,
// sorted by descending total time. Empty when the run was not profiled.
func LayerProfiles(snap *obs.Snapshot) []LayerProfile {
	if snap == nil {
		return nil
	}
	byKind := make(map[string]*LayerProfile)
	at := func(kind string) *LayerProfile {
		p, ok := byKind[kind]
		if !ok {
			p = &LayerProfile{Layer: kind}
			byKind[kind] = p
		}
		return p
	}
	for name, h := range snap.Histograms {
		if kind, ok := layerLabel(name, "a4nn_nn_layer_forward_seconds"); ok {
			at(kind).ForwardSeconds = h.Sum
		} else if kind, ok := layerLabel(name, "a4nn_nn_layer_backward_seconds"); ok {
			at(kind).BackwardSeconds = h.Sum
		}
	}
	for name, v := range snap.Counters {
		if kind, ok := layerLabel(name, "a4nn_nn_layer_calls_total"); ok {
			at(kind).Calls = v
		} else if kind, ok := layerLabel(name, "a4nn_nn_layer_flops_total"); ok {
			at(kind).FLOPs = v
		}
	}
	out := make([]LayerProfile, 0, len(byKind))
	for _, p := range byKind {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSeconds() != out[j].TotalSeconds() {
			return out[i].TotalSeconds() > out[j].TotalSeconds()
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// FormatLayerProfile renders the per-layer training cost breakdown of
// a profiled run (cmd/a4nn -profile-layers) — where the wall time and
// the FLOPs actually went, layer kind by layer kind.
func FormatLayerProfile(snap *obs.Snapshot) string {
	profiles := LayerProfiles(snap)
	if len(profiles) == 0 {
		return "no layer profile: run cmd/a4nn with -profile-layers and real training (-data)\n"
	}
	var total float64
	for _, p := range profiles {
		total += p.TotalSeconds()
	}
	var rows [][]string
	for _, p := range profiles {
		share := 0.0
		if total > 0 {
			share = 100 * p.TotalSeconds() / total
		}
		rows = append(rows, []string{
			p.Layer,
			fmt.Sprint(p.Calls),
			fmt.Sprintf("%.3f", p.ForwardSeconds),
			fmt.Sprintf("%.3f", p.BackwardSeconds),
			fmt.Sprintf("%.1f%%", share),
			fmt.Sprintf("%.1f", float64(p.FLOPs)/1e9),
		})
	}
	var sb strings.Builder
	sb.WriteString(FormatTable(
		[]string{"layer", "calls", "fwd s", "bwd s", "time", "GFLOPs"}, rows))
	fmt.Fprintf(&sb, "\ntotal layer time: %.3f s", total)
	if calls := snap.Gauges["a4nn_tensor_matmul_calls"]; calls > 0 {
		fmt.Fprintf(&sb, " · GEMM kernels: %.0f calls, %.1f GFLOPs",
			calls, snap.Gauges["a4nn_tensor_matmul_flops"]/1e9)
		if packed := snap.Gauges["a4nn_tensor_matmul_packed_calls"]; packed > 0 {
			fmt.Fprintf(&sb, " (%.0f packed)", packed)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
