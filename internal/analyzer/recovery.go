package analyzer

import (
	"fmt"
	"strings"

	"a4nn/internal/obs"
)

// RecoverySummary summarises a run's crash-recovery history from its
// event journal: how often the process launched, what the resume
// preflight quarantined or declared lost, and how much mid-training
// work checkpoints carried across crashes.
type RecoverySummary struct {
	// Launches counts run_start events; more than one means the search
	// was relaunched (crash + -resume, or several runs share the store).
	Launches int
	// Resumes counts models continued from a checkpoint instead of
	// restarting at epoch 1; ResumedEpochs is the training they skipped.
	Resumes       int
	ResumedEpochs int
	// Quarantined counts corrupt files moved to .corrupt/, Lost counts
	// records the journal saw finish but the crash destroyed, Stale
	// counts leftover checkpoints for already-committed records.
	Quarantined, Lost, Stale int
	// AlertCmdRuns counts -alert-cmd executions logged to the journal.
	AlertCmdRuns int
}

// RecoveryOf folds a journal's events into a recovery summary.
func RecoveryOf(events []obs.Event) RecoverySummary {
	var r RecoverySummary
	for _, e := range events {
		switch e.Type {
		case obs.EventRunStart:
			r.Launches++
		case obs.EventModelResume:
			r.Resumes++
			r.ResumedEpochs += e.Epoch
		case obs.EventRecovery:
			switch e.Reason {
			case "stale":
				r.Stale++
			case "lost":
				r.Lost++
			default:
				r.Quarantined++
			}
		case obs.EventAlertCmd:
			r.AlertCmdRuns++
		}
	}
	return r
}

// Damaged reports whether recovery found anything a human should look
// at (corruption or lost work, as opposed to clean resumes).
func (r RecoverySummary) Damaged() bool { return r.Quarantined > 0 || r.Lost > 0 }

// String renders the summary as a one-line report for CLI output.
func (r RecoverySummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "launches %d, checkpoint resumes %d", r.Launches, r.Resumes)
	if r.ResumedEpochs > 0 {
		fmt.Fprintf(&b, " (%d epochs carried over)", r.ResumedEpochs)
	}
	if r.Quarantined > 0 {
		fmt.Fprintf(&b, ", quarantined %d", r.Quarantined)
	}
	if r.Lost > 0 {
		fmt.Fprintf(&b, ", lost records %d", r.Lost)
	}
	if r.Stale > 0 {
		fmt.Fprintf(&b, ", stale checkpoints cleaned %d", r.Stale)
	}
	if r.AlertCmdRuns > 0 {
		fmt.Fprintf(&b, ", alert commands run %d", r.AlertCmdRuns)
	}
	return b.String()
}

// FormatRecovery renders the summary plus a table of the individual
// recovery and resume events, newest last, for `a4nn-analyze recovery`.
func FormatRecovery(events []obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", RecoveryOf(events))
	var rows [][]string
	for _, e := range events {
		switch e.Type {
		case obs.EventModelResume:
			rows = append(rows, []string{fmt.Sprint(e.Seq), "resume", e.Model,
				fmt.Sprintf("continued from checkpoint at epoch %d", e.Epoch)})
		case obs.EventRecovery:
			rows = append(rows, []string{fmt.Sprint(e.Seq), e.Reason, e.Model, e.Msg})
		}
	}
	if len(rows) == 0 {
		b.WriteString("no recovery events recorded\n")
		return b.String()
	}
	b.WriteString(FormatTable([]string{"seq", "kind", "model", "detail"}, rows))
	return b.String()
}
