package analyzer

import (
	"strings"
	"testing"

	"a4nn/internal/obs"
)

func TestRecoveryOf(t *testing.T) {
	events := []obs.Event{
		{Seq: 1, Type: obs.EventRunStart},
		{Seq: 2, Type: obs.EventModelResume, Model: "m1", Epoch: 7},
		{Seq: 3, Type: obs.EventRecovery, Model: "m2", Reason: "checksum", Msg: "quarantined"},
		{Seq: 4, Type: obs.EventRecovery, Model: "m3", Reason: "lost", Msg: "will retrain"},
		{Seq: 5, Type: obs.EventRecovery, Model: "m4", Reason: "stale", Msg: "removed"},
		{Seq: 6, Type: obs.EventAlertCmd, Msg: "alert-cmd fired x: exit 0"},
		{Seq: 7, Type: obs.EventRunStart},
		{Seq: 8, Type: obs.EventModelResume, Model: "m5", Epoch: 3},
	}
	r := RecoveryOf(events)
	want := RecoverySummary{
		Launches: 2, Resumes: 2, ResumedEpochs: 10,
		Quarantined: 1, Lost: 1, Stale: 1, AlertCmdRuns: 1,
	}
	if r != want {
		t.Fatalf("RecoveryOf = %+v, want %+v", r, want)
	}
	if !r.Damaged() {
		t.Error("Damaged() = false with quarantined and lost files")
	}

	s := r.String()
	for _, frag := range []string{
		"launches 2", "checkpoint resumes 2", "10 epochs carried over",
		"quarantined 1", "lost records 1", "stale checkpoints cleaned 1",
		"alert commands run 1",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}

	out := FormatRecovery(events)
	for _, frag := range []string{"resume", "m1", "checksum", "m3", "will retrain"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatRecovery missing %q in:\n%s", frag, out)
		}
	}
}

func TestRecoveryOfCleanRun(t *testing.T) {
	events := []obs.Event{{Seq: 1, Type: obs.EventRunStart}}
	r := RecoveryOf(events)
	if r.Damaged() {
		t.Error("Damaged() = true for a clean run")
	}
	if out := FormatRecovery(events); !strings.Contains(out, "no recovery events") {
		t.Errorf("FormatRecovery = %q", out)
	}
}
