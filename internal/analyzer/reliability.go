package analyzer

import (
	"fmt"
	"strings"

	"a4nn/internal/core"
)

// Reliability summarises a run's fault-tolerance behaviour alongside the
// wall-time accounting: how much was retried, how much simulated time the
// faults cost, and how many devices the search finished without.
type Reliability struct {
	// Tasks is the number of scheduled training tasks.
	Tasks int
	// Retries counts re-dispatched attempts; Faults counts fault events
	// (injected errors, crashes, deadline misses, transient failures).
	Retries, Faults int
	// DeadDevices counts accelerators lost to crashes during the run.
	DeadDevices int
	// LostSeconds is the simulated time wasted on failed attempts;
	// LostFraction is its share of total device busy time.
	LostSeconds  float64
	LostFraction float64
	// RetriedModels counts evaluated networks whose surviving record came
	// from a retry (attempt > 1); SlowedModels counts networks trained on
	// a straggling device.
	RetriedModels, SlowedModels int
}

// ReliabilityOf extracts the reliability report of a run.
func ReliabilityOf(res *core.Result) Reliability {
	rel := Reliability{
		Tasks:       res.Totals.Tasks,
		Retries:     res.Totals.Retries,
		Faults:      res.Totals.Faults,
		DeadDevices: res.Totals.DeadDevices,
		LostSeconds: res.Totals.LostSeconds,
	}
	if res.Totals.BusySeconds > 0 {
		rel.LostFraction = res.Totals.LostSeconds / res.Totals.BusySeconds
	}
	for _, m := range res.Models {
		if m.Record == nil {
			continue
		}
		if m.Record.Attempt > 1 {
			rel.RetriedModels++
		}
		if m.Record.SlowFactor > 1 {
			rel.SlowedModels++
		}
	}
	return rel
}

// String renders the report as a one-line summary suitable for CLI output.
func (r Reliability) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults %d, retries %d", r.Faults, r.Retries)
	if r.DeadDevices > 0 {
		fmt.Fprintf(&b, ", devices lost %d", r.DeadDevices)
	}
	if r.LostSeconds > 0 {
		fmt.Fprintf(&b, ", lost %.1f sim-s (%.1f%% of busy)", r.LostSeconds, 100*r.LostFraction)
	}
	if r.RetriedModels > 0 {
		fmt.Fprintf(&b, ", models recovered by retry %d", r.RetriedModels)
	}
	if r.SlowedModels > 0 {
		fmt.Fprintf(&b, ", models on stragglers %d", r.SlowedModels)
	}
	return b.String()
}
