package analyzer

import (
	"strings"
	"testing"

	"a4nn/internal/core"
	"a4nn/internal/lineage"
	"a4nn/internal/sched"
)

func reliabilityResult() *core.Result {
	return &core.Result{
		Models: []*core.ModelResult{
			{Record: &lineage.Record{ID: "a", Attempt: 1}},
			{Record: &lineage.Record{ID: "b", Attempt: 3}},
			{Record: &lineage.Record{ID: "c", Attempt: 2, SlowFactor: 4}},
			{Record: nil},
		},
		Totals: sched.Totals{
			Tasks:       4,
			Retries:     3,
			Faults:      5,
			DeadDevices: 1,
			LostSeconds: 50,
			BusySeconds: 200,
		},
	}
}

func TestReliabilityOf(t *testing.T) {
	rel := ReliabilityOf(reliabilityResult())
	if rel.Tasks != 4 || rel.Retries != 3 || rel.Faults != 5 || rel.DeadDevices != 1 {
		t.Fatalf("totals not carried over: %+v", rel)
	}
	if rel.LostSeconds != 50 || rel.LostFraction != 0.25 {
		t.Fatalf("lost accounting: %+v", rel)
	}
	if rel.RetriedModels != 2 {
		t.Fatalf("retried models %d, want 2", rel.RetriedModels)
	}
	if rel.SlowedModels != 1 {
		t.Fatalf("slowed models %d, want 1", rel.SlowedModels)
	}
}

func TestReliabilityOfFaultFree(t *testing.T) {
	rel := ReliabilityOf(&core.Result{Totals: sched.Totals{Tasks: 9, BusySeconds: 100}})
	if rel.Faults != 0 || rel.Retries != 0 || rel.LostFraction != 0 {
		t.Fatalf("clean run should report zeros: %+v", rel)
	}
	if got := rel.String(); got != "faults 0, retries 0" {
		t.Fatalf("clean summary = %q", got)
	}
}

func TestReliabilityString(t *testing.T) {
	s := ReliabilityOf(reliabilityResult()).String()
	for _, want := range []string{
		"faults 5", "retries 3", "devices lost 1",
		"lost 50.0 sim-s (25.0% of busy)",
		"models recovered by retry 2", "models on stragglers 1",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
