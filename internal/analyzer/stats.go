package analyzer

import (
	"fmt"
	"math"
	"sort"

	"a4nn/internal/core"
	"a4nn/internal/genome"
)

// This file answers the analysis questions the paper's conclusions pose
// for the data commons (§6): "Is there a significant correlation between
// high FLOPS and high validation accuracy?" and "Are there structural
// similarities between successful architectures produced by NAS?".

// Pearson returns the Pearson linear correlation coefficient of two
// equal-length samples. It returns NaN for fewer than two points or
// zero-variance inputs.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient (Pearson on
// ranks, with average ranks for ties).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CorrelationReport relates FLOPs to accuracy across a run's models.
type CorrelationReport struct {
	N        int
	Pearson  float64
	Spearman float64
}

// AccuracyFLOPsCorrelation computes the correlation between model MFLOPs
// and validation accuracy over all evaluated models.
func AccuracyFLOPsCorrelation(models []*core.ModelResult) CorrelationReport {
	xs := make([]float64, len(models))
	ys := make([]float64, len(models))
	for i, m := range models {
		xs[i] = m.MFLOPs
		ys[i] = m.Fitness
	}
	return CorrelationReport{N: len(models), Pearson: Pearson(xs, ys), Spearman: Spearman(xs, ys)}
}

// String renders the report.
func (r CorrelationReport) String() string {
	return fmt.Sprintf("accuracy vs FLOPs over %d models: Pearson r=%.3f, Spearman ρ=%.3f",
		r.N, r.Pearson, r.Spearman)
}

// HammingDistance counts differing bits between two genomes of identical
// shape; it is the natural structural distance of the NSGA-Net encoding.
func HammingDistance(a, b *genome.Genome) (int, error) {
	if a.NodesPerPhase != b.NodesPerPhase || len(a.Phases) != len(b.Phases) {
		return 0, fmt.Errorf("analyzer: genomes of different shapes (%d/%d phases)", len(a.Phases), len(b.Phases))
	}
	d := 0
	for p := range a.Phases {
		if len(a.Phases[p]) != len(b.Phases[p]) {
			return 0, fmt.Errorf("analyzer: phase %d length mismatch", p)
		}
		for i := range a.Phases[p] {
			if a.Phases[p][i] != b.Phases[p][i] {
				d++
			}
		}
	}
	return d, nil
}

// DiversityReport summarises the structural spread of a set of genomes.
type DiversityReport struct {
	N int
	// MeanPairwiseHamming is the average Hamming distance over all pairs.
	MeanPairwiseHamming float64
	// Bits is the genome length, for normalising the distance.
	Bits int
	// MeanActiveNodes is the average number of active DAG nodes.
	MeanActiveNodes float64
	// SkipRate is the fraction of phases with the residual bit set.
	SkipRate float64
}

// Diversity measures the structural diversity of genomes (all must share
// a shape). The paper's §6 asks whether successful architectures are
// structurally similar: comparing the diversity of the Pareto set against
// the whole population answers it quantitatively.
func Diversity(genomes []*genome.Genome) (DiversityReport, error) {
	rep := DiversityReport{N: len(genomes)}
	if len(genomes) == 0 {
		return rep, fmt.Errorf("analyzer: no genomes")
	}
	rep.Bits = len(genomes[0].Phases) * genome.BitsPerPhase(genomes[0].NodesPerPhase)
	pairs := 0
	for i := 0; i < len(genomes); i++ {
		for j := i + 1; j < len(genomes); j++ {
			d, err := HammingDistance(genomes[i], genomes[j])
			if err != nil {
				return rep, err
			}
			rep.MeanPairwiseHamming += float64(d)
			pairs++
		}
	}
	if pairs > 0 {
		rep.MeanPairwiseHamming /= float64(pairs)
	}
	phases := 0
	for _, g := range genomes {
		for p := range g.Phases {
			rep.MeanActiveNodes += float64(g.ActiveNodes(p))
			if g.SkipBit(p) {
				rep.SkipRate++
			}
			phases++
		}
	}
	if phases > 0 {
		rep.MeanActiveNodes = rep.MeanActiveNodes * float64(len(genomes[0].Phases)) / float64(phases)
		rep.SkipRate /= float64(phases)
	}
	return rep, nil
}

// String renders the report.
func (r DiversityReport) String() string {
	norm := 0.0
	if r.Bits > 0 {
		norm = r.MeanPairwiseHamming / float64(r.Bits)
	}
	return fmt.Sprintf("%d genomes: mean pairwise Hamming %.2f/%d bits (%.0f%%), mean active nodes %.1f, skip rate %.0f%%",
		r.N, r.MeanPairwiseHamming, r.Bits, 100*norm, r.MeanActiveNodes, 100*r.SkipRate)
}

// ParetoGenomes extracts the genomes of a run's Pareto-optimal models.
func ParetoGenomes(models []*core.ModelResult) []*genome.Genome {
	front := ParetoFrontier(models)
	ids := make(map[string]bool, len(front))
	for _, p := range front {
		ids[p.ID] = true
	}
	var out []*genome.Genome
	for _, m := range models {
		if ids[m.Record.ID] && m.Genome != nil {
			out = append(out, m.Genome)
		}
	}
	return out
}

// GenerationStats summarises one NAS generation's fitness.
type GenerationStats struct {
	Generation               int
	Models                   int
	BestFitness, MeanFitness float64
	MeanMFLOPs               float64
}

// ByGeneration aggregates models per NAS generation, the search's
// convergence trajectory ("what is the performance of our augmented
// search", paper §4).
func ByGeneration(models []*core.ModelResult) []GenerationStats {
	byGen := map[int]*GenerationStats{}
	maxGen := 0
	for _, m := range models {
		g := m.Record.Generation
		s, ok := byGen[g]
		if !ok {
			s = &GenerationStats{Generation: g}
			byGen[g] = s
		}
		s.Models++
		s.MeanFitness += m.Fitness
		s.MeanMFLOPs += m.MFLOPs
		if m.Fitness > s.BestFitness {
			s.BestFitness = m.Fitness
		}
		if g > maxGen {
			maxGen = g
		}
	}
	var out []GenerationStats
	for g := 0; g <= maxGen; g++ {
		if s, ok := byGen[g]; ok {
			s.MeanFitness /= float64(s.Models)
			s.MeanMFLOPs /= float64(s.Models)
			out = append(out, *s)
		}
	}
	return out
}
