package analyzer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"a4nn/internal/core"
	"a4nn/internal/genome"
	"a4nn/internal/lineage"
)

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, []float64{2, 4, 6, 8, 10}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive r = %v", r)
	}
	if r := Pearson(x, []float64{10, 8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative r = %v", r)
	}
	if !math.IsNaN(Pearson(x, []float64{3, 3, 3, 3, 3})) {
		t.Fatal("zero variance must give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Fatal("n<2 must give NaN")
	}
	if !math.IsNaN(Pearson(x, []float64{1, 2})) {
		t.Fatal("length mismatch must give NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman sees through monotone nonlinearity; Pearson does not fully.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	if rho := Spearman(x, y); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone Spearman = %v, want 1", rho)
	}
	// Ties get average ranks.
	if rho := Spearman([]float64{1, 1, 2}, []float64{1, 1, 2}); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied Spearman = %v", rho)
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r1, r2 := Pearson(x, y), Pearson(y, x)
		if math.IsNaN(r1) {
			return math.IsNaN(r2)
		}
		return math.Abs(r1-r2) < 1e-12 && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func statsModel(id string, g *genome.Genome, acc, mflops float64) *core.ModelResult {
	return &core.ModelResult{
		Genome:  g,
		Record:  &lineage.Record{ID: id, Genome: g.String()},
		Fitness: acc,
		MFLOPs:  mflops,
	}
}

func TestAccuracyFLOPsCorrelation(t *testing.T) {
	g, _ := genome.Parse("1010001", 4)
	models := []*core.ModelResult{
		statsModel("a", g, 80, 100),
		statsModel("b", g, 90, 200),
		statsModel("c", g, 95, 300),
		statsModel("d", g, 97, 400),
	}
	rep := AccuracyFLOPsCorrelation(models)
	if rep.N != 4 || rep.Pearson < 0.9 || rep.Spearman != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestHammingDistance(t *testing.T) {
	a, _ := genome.Parse("1010001|0000000", 4)
	b, _ := genome.Parse("1010001|0000000", 4)
	d, err := HammingDistance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical genomes d=%d err=%v", d, err)
	}
	c, _ := genome.Parse("0010001|0000011", 4)
	d, err = HammingDistance(a, c)
	if err != nil || d != 3 {
		t.Fatalf("d=%d err=%v, want 3", d, err)
	}
	short, _ := genome.Parse("1010001", 4)
	if _, err := HammingDistance(a, short); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestDiversity(t *testing.T) {
	a, _ := genome.Parse("1111111|1111111", 4)
	b, _ := genome.Parse("0000000|0000000", 4)
	rep, err := Diversity([]*genome.Genome{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 2 || rep.Bits != 14 || rep.MeanPairwiseHamming != 14 {
		t.Fatalf("report %+v", rep)
	}
	if rep.SkipRate != 0.5 {
		t.Fatalf("skip rate %v", rep.SkipRate)
	}
	if rep.String() == "" {
		t.Fatal("empty string")
	}
	if _, err := Diversity(nil); err == nil {
		t.Fatal("empty set must fail")
	}
}

func TestParetoGenomes(t *testing.T) {
	g1, _ := genome.Parse("1010001", 4)
	g2, _ := genome.Parse("1111111", 4)
	g3, _ := genome.Parse("0000000", 4)
	models := []*core.ModelResult{
		statsModel("a", g1, 95, 100), // pareto
		statsModel("b", g2, 99, 300), // pareto
		statsModel("c", g3, 90, 200), // dominated by a
	}
	got := ParetoGenomes(models)
	if len(got) != 2 {
		t.Fatalf("got %d pareto genomes", len(got))
	}
}

func TestByGeneration(t *testing.T) {
	g, _ := genome.Parse("1010001", 4)
	mk := func(gen int, acc, mflops float64) *core.ModelResult {
		m := statsModel("x", g, acc, mflops)
		m.Record.Generation = gen
		return m
	}
	stats := ByGeneration([]*core.ModelResult{
		mk(0, 80, 100), mk(0, 90, 200),
		mk(2, 95, 150), mk(2, 85, 250),
	})
	if len(stats) != 2 {
		t.Fatalf("stats %v", stats)
	}
	if stats[0].Generation != 0 || stats[0].BestFitness != 90 || stats[0].MeanFitness != 85 {
		t.Fatalf("gen0 %+v", stats[0])
	}
	if stats[1].Generation != 2 || stats[1].Models != 2 || stats[1].MeanMFLOPs != 200 {
		t.Fatalf("gen2 %+v", stats[1])
	}
	if ByGeneration(nil) != nil {
		t.Fatal("empty input must give nil")
	}
}
