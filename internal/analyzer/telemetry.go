package analyzer

import (
	"fmt"
	"strings"

	"a4nn/internal/obs"
)

// FormatTelemetry renders a run's telemetry — one row per generation
// with device utilisation, queue wait, and the prediction engine's
// epoch savings — followed by the run-level totals. It is the CLI
// counterpart of the notebook's resource-usage plots (§2.4).
func FormatTelemetry(t *obs.Telemetry) string {
	if t == nil || len(t.Generations) == 0 {
		return "no telemetry: no generation spans recorded (run cmd/a4nn with -store or -trace)\n"
	}
	var rows [][]string
	for _, g := range t.Generations {
		rows = append(rows, []string{
			fmt.Sprint(g.Generation),
			fmt.Sprint(g.Tasks),
			fmt.Sprintf("%.2f", g.WallSeconds/3600),
			fmt.Sprintf("%.0f%%", 100*g.Utilisation),
			fmt.Sprintf("%.0f", g.MeanQueueWaitSeconds),
			fmt.Sprint(g.EpochsTrained),
			fmt.Sprint(g.EpochsSaved),
			fmt.Sprint(g.Terminated),
			fmt.Sprint(g.Retries),
			fmt.Sprint(g.Faults),
		})
	}
	var sb strings.Builder
	sb.WriteString(FormatTable([]string{
		"gen", "tasks", "wall h", "util", "wait s", "epochs", "saved", "terminated", "retries", "faults"}, rows))
	budget := t.EpochsTrained + t.EpochsSaved
	fmt.Fprintf(&sb, "\nspans: %d · epochs trained: %d", t.Spans, t.EpochsTrained)
	if budget > 0 {
		fmt.Fprintf(&sb, " · saved: %d (%.1f%% of budget)", t.EpochsSaved,
			100*float64(t.EpochsSaved)/float64(budget))
	}
	fmt.Fprintf(&sb, " · terminated early: %d\n", t.Terminated)
	if emitted := t.Metrics.Counters["a4nn_events_emitted_total"]; emitted > 0 {
		fmt.Fprintf(&sb, "events: %d emitted · %d dropped to slow subscribers · %d subscribers evicted · %d file errors\n",
			emitted,
			t.Metrics.Counters["a4nn_events_dropped_total"],
			t.Metrics.Counters["a4nn_events_subscribers_evicted_total"],
			t.Metrics.Counters["a4nn_events_file_errors_total"])
	}
	info := t.Metrics.Counters[`a4nn_health_alerts_fired_total{severity="info"}`]
	warn := t.Metrics.Counters[`a4nn_health_alerts_fired_total{severity="warning"}`]
	crit := t.Metrics.Counters[`a4nn_health_alerts_fired_total{severity="critical"}`]
	if checks := t.Metrics.Counters["a4nn_health_checks_total"]; checks > 0 {
		fmt.Fprintf(&sb, "health: %d checks · alerts fired: %d critical / %d warning / %d info · %d resolved · %.0f active at exit\n",
			checks, crit, warn, info,
			t.Metrics.Counters["a4nn_health_alerts_resolved_total"],
			t.Metrics.Gauges["a4nn_health_alerts_active"])
	}
	return sb.String()
}
