package analyzer

import (
	"strings"
	"testing"

	"a4nn/internal/obs"
)

func TestFormatTelemetryEmpty(t *testing.T) {
	for _, tel := range []*obs.Telemetry{nil, {}} {
		if got := FormatTelemetry(tel); !strings.Contains(got, "no telemetry") {
			t.Fatalf("empty telemetry rendered %q", got)
		}
	}
}

func TestFormatTelemetry(t *testing.T) {
	tel := &obs.Telemetry{
		Spans: 12,
		Generations: []obs.GenTelemetry{
			{Generation: 0, Tasks: 10, WallSeconds: 7200, Utilisation: 0.85,
				MeanQueueWaitSeconds: 30, EpochsTrained: 180, EpochsSaved: 70,
				Terminated: 4, Retries: 1, Faults: 2},
			{Generation: 1, Tasks: 10, WallSeconds: 3600, Utilisation: 0.9,
				EpochsTrained: 150, EpochsSaved: 100, Terminated: 7},
		},
		EpochsTrained: 330,
		EpochsSaved:   170,
		Terminated:    11,
	}
	got := FormatTelemetry(tel)
	for _, want := range []string{
		"gen", "util", "85%", "90%",
		"spans: 12", "epochs trained: 330",
		"saved: 170 (34.0% of budget)", "terminated early: 11",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("telemetry output missing %q:\n%s", want, got)
		}
	}
	// Without event counters there must be no events line, and without
	// health counters no health line.
	if strings.Contains(got, "events:") {
		t.Fatalf("unexpected events line:\n%s", got)
	}
	if strings.Contains(got, "health:") {
		t.Fatalf("unexpected health line:\n%s", got)
	}
}

func TestFormatTelemetryHealthSection(t *testing.T) {
	tel := &obs.Telemetry{
		Generations: []obs.GenTelemetry{{Generation: 0, Tasks: 1}},
		Metrics: obs.Snapshot{
			Counters: map[string]uint64{
				"a4nn_health_checks_total":                            420,
				`a4nn_health_alerts_fired_total{severity="critical"}`: 2,
				`a4nn_health_alerts_fired_total{severity="warning"}`:  3,
				"a4nn_health_alerts_resolved_total":                   4,
			},
			Gauges: map[string]float64{"a4nn_health_alerts_active": 1},
		},
	}
	got := FormatTelemetry(tel)
	want := "health: 420 checks · alerts fired: 2 critical / 3 warning / 0 info · 4 resolved · 1 active at exit"
	if !strings.Contains(got, want) {
		t.Fatalf("health line missing or wrong:\n%s", got)
	}
}

func TestFormatTelemetryEventCounts(t *testing.T) {
	tel := &obs.Telemetry{
		Generations: []obs.GenTelemetry{{Generation: 0, Tasks: 1}},
		Metrics: obs.Snapshot{Counters: map[string]uint64{
			"a4nn_events_emitted_total":             1234,
			"a4nn_events_dropped_total":             56,
			"a4nn_events_subscribers_evicted_total": 2,
		}},
	}
	got := FormatTelemetry(tel)
	if !strings.Contains(got, "events: 1234 emitted · 56 dropped to slow subscribers · 2 subscribers evicted · 0 file errors") {
		t.Fatalf("events line missing or wrong:\n%s", got)
	}
}

func TestFormatLayerProfile(t *testing.T) {
	snap := &obs.Snapshot{
		Counters: map[string]uint64{
			`a4nn_nn_layer_calls_total{layer="conv3x3"}`: 200,
			`a4nn_nn_layer_flops_total{layer="conv3x3"}`: 4e9,
			`a4nn_nn_layer_calls_total{layer="relu"}`:    200,
			`a4nn_nn_layer_flops_total{layer="relu"}`:    1e8,
		},
		Gauges: map[string]float64{
			"a4nn_tensor_matmul_calls": 600,
			"a4nn_tensor_matmul_flops": 3.5e9,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			`a4nn_nn_layer_forward_seconds{layer="conv3x3"}`:  {Count: 200, Sum: 6},
			`a4nn_nn_layer_backward_seconds{layer="conv3x3"}`: {Count: 200, Sum: 9},
			`a4nn_nn_layer_forward_seconds{layer="relu"}`:     {Count: 200, Sum: 0.5},
			`a4nn_nn_layer_backward_seconds{layer="relu"}`:    {Count: 200, Sum: 0.5},
		},
	}
	ps := LayerProfiles(snap)
	if len(ps) != 2 || ps[0].Layer != "conv3x3" || ps[1].Layer != "relu" {
		t.Fatalf("profiles %+v", ps)
	}
	if ps[0].TotalSeconds() != 15 || ps[0].Calls != 200 || ps[0].FLOPs != 4e9 {
		t.Fatalf("conv3x3 profile %+v", ps[0])
	}
	got := FormatLayerProfile(snap)
	for _, want := range []string{
		"conv3x3", "relu", "93.8%", // 15 of 16 total seconds
		"total layer time: 16.000 s",
		"GEMM kernels: 600 calls, 3.5 GFLOPs",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("profile output missing %q:\n%s", want, got)
		}
	}
}

func TestFormatLayerProfileEmpty(t *testing.T) {
	if got := FormatLayerProfile(&obs.Snapshot{}); !strings.Contains(got, "no layer profile") {
		t.Fatalf("empty profile rendered %q", got)
	}
	if got := FormatLayerProfile(nil); !strings.Contains(got, "no layer profile") {
		t.Fatalf("nil snapshot rendered %q", got)
	}
}
