package analyzer

import (
	"fmt"
	"strings"

	"a4nn/internal/genome"
)

// GenomeDOT renders a genome's phase DAGs as a Graphviz digraph, the
// equivalent of the paper's Figure 3/10 architecture visualisations.
// widths labels each phase with its channel count; pass nil to omit.
func GenomeDOT(g *genome.Genome, widths []int) (string, error) {
	if err := g.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("digraph a4nn {\n  rankdir=LR;\n  node [shape=box, style=rounded];\n")
	sb.WriteString("  input [shape=oval];\n")
	prevOut := "input"
	for p := range g.Phases {
		label := fmt.Sprintf("phase %d", p)
		if widths != nil && p < len(widths) {
			label = fmt.Sprintf("phase %d (w=%d)", p, widths[p])
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", p, label)
		proj := fmt.Sprintf("p%d_proj", p)
		fmt.Fprintf(&sb, "    %s [label=\"proj 1x1\"];\n", proj)
		active, preds, outs, skip := phaseStructure(g, p)
		for j, a := range active {
			if !a {
				continue
			}
			fmt.Fprintf(&sb, "    p%d_n%d [label=\"conv3x3 #%d\"];\n", p, j, j)
		}
		sb.WriteString("  }\n")
		fmt.Fprintf(&sb, "  %s -> %s;\n", prevOut, proj)
		sum := fmt.Sprintf("p%d_out", p)
		anyActive := false
		for j, a := range active {
			if !a {
				continue
			}
			anyActive = true
			if len(preds[j]) == 0 {
				fmt.Fprintf(&sb, "  %s -> p%d_n%d;\n", proj, p, j)
			}
			for _, i := range preds[j] {
				fmt.Fprintf(&sb, "  p%d_n%d -> p%d_n%d;\n", p, i, p, j)
			}
		}
		if anyActive {
			fmt.Fprintf(&sb, "  %s [label=\"+\", shape=circle];\n", sum)
			for _, j := range outs {
				fmt.Fprintf(&sb, "  p%d_n%d -> %s;\n", p, j, sum)
			}
			if skip {
				fmt.Fprintf(&sb, "  %s -> %s [style=dashed, label=\"skip\"];\n", proj, sum)
			}
			prevOut = sum
		} else {
			prevOut = proj
		}
		if p < len(g.Phases)-1 {
			pool := fmt.Sprintf("pool%d", p)
			fmt.Fprintf(&sb, "  %s [label=\"maxpool 2x2\"];\n  %s -> %s;\n", pool, prevOut, pool)
			prevOut = pool
		}
	}
	fmt.Fprintf(&sb, "  gap [label=\"global avg pool\"];\n  %s -> gap;\n", prevOut)
	sb.WriteString("  dense [label=\"dense softmax\"];\n  gap -> dense;\n}\n")
	return sb.String(), nil
}

// GenomeASCII renders a genome's phase connectivity as compact text:
// one line per phase listing node edges, sinks, and the skip bit.
func GenomeASCII(g *genome.Genome) (string, error) {
	if err := g.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	for p := range g.Phases {
		active, preds, outs, skip := phaseStructure(g, p)
		var edges []string
		for j, a := range active {
			if !a {
				continue
			}
			if len(preds[j]) == 0 {
				edges = append(edges, fmt.Sprintf("in->%d", j))
			}
			for _, i := range preds[j] {
				edges = append(edges, fmt.Sprintf("%d->%d", i, j))
			}
		}
		if len(edges) == 0 {
			edges = append(edges, "in->out (fallback)")
		}
		var sinks []string
		for _, j := range outs {
			sinks = append(sinks, fmt.Sprint(j))
		}
		fmt.Fprintf(&sb, "phase %d: %s", p, strings.Join(edges, ", "))
		if len(sinks) > 0 {
			fmt.Fprintf(&sb, " | out: %s", strings.Join(sinks, ","))
		}
		if skip {
			sb.WriteString(" | +skip")
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// phaseStructure recomputes the phase DAG from the public genome API so
// the analyzer stays decoupled from genome internals.
func phaseStructure(g *genome.Genome, phase int) (active []bool, preds [][]int, outs []int, skip bool) {
	n := g.NodesPerPhase
	bits := g.Phases[phase]
	active = make([]bool, n)
	preds = make([][]int, n)
	hasSucc := make([]bool, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if bits[j*(j-1)/2+i] == 1 {
				active[i], active[j] = true, true
				preds[j] = append(preds[j], i)
				hasSucc[i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if active[i] && !hasSucc[i] {
			outs = append(outs, i)
		}
	}
	return active, preds, outs, g.SkipBit(phase)
}
