// Package chaos is the crash-point injection framework: named, seeded
// crash points threaded through every durable-state transition of the
// workflow (commons writes, journal and alert appends, the generation
// commit). A crash plan — a fault-plan-style key=value spec — kills the
// process or injects an I/O error on the Nth visit to a point, letting
// the soak harness prove that kill-and-resume converges to the same
// search result as a fault-free run.
//
// Chaos is off by default and compiled to a nil-safe no-op: with no
// plan installed, Point is one atomic load and a branch (0 allocs/op,
// enforced by BenchmarkDisabledChaos via the bench gate).
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// The crash-point catalogue. Every Point call site names one of these;
// Parse rejects unknown names so a typo in a -chaos spec fails fast
// instead of silently never firing.
const (
	// PointRecordPreRename fires after a record's temp file is written
	// but before the rename — a crash here leaves no visible record.
	PointRecordPreRename = "commons.record.pre_rename"
	// PointRecordPostRename fires just after a record rename — a crash
	// here leaves a committed record the dying process never reported.
	PointRecordPostRename = "commons.record.post_rename"
	// PointSnapshotPreRename fires before an epoch snapshot rename.
	PointSnapshotPreRename = "commons.snapshot.pre_rename"
	// PointCheckpointPreRename fires after a checkpoint's temp file is
	// written but before the rename — the previous checkpoint survives.
	PointCheckpointPreRename = "commons.checkpoint.pre_rename"
	// PointCheckpointPostRename fires just after a checkpoint rename.
	PointCheckpointPostRename = "commons.checkpoint.post_rename"
	// PointJournalAppend fires before an event line is appended to
	// events.jsonl.
	PointJournalAppend = "journal.append.pre_write"
	// PointAlertsAppend fires before an alert line is appended to
	// alerts.jsonl.
	PointAlertsAppend = "alerts.append.pre_write"
	// PointGenerationCommit fires after a generation's models are all
	// trained and recorded, before the search advances — a crash here is
	// recovered by whole-generation replay.
	PointGenerationCommit = "core.generation.commit"
	// PointModelPostRecord fires after a model's record is committed but
	// before its now-stale checkpoint is deleted.
	PointModelPostRecord = "core.model.post_record"
)

// catalogue maps every valid point name to a one-line description.
var catalogue = map[string]string{
	PointRecordPreRename:      "before a lineage record rename",
	PointRecordPostRename:     "after a lineage record rename",
	PointSnapshotPreRename:    "before an epoch snapshot rename",
	PointCheckpointPreRename:  "before a model checkpoint rename",
	PointCheckpointPostRename: "after a model checkpoint rename",
	PointJournalAppend:        "before an event journal append",
	PointAlertsAppend:         "before an alert sink append",
	PointGenerationCommit:     "after a generation's records commit",
	PointModelPostRecord:      "after a record commits, before checkpoint cleanup",
}

// Points returns the catalogue's point names, sorted.
func Points() []string {
	names := make([]string, 0, len(catalogue))
	for name := range catalogue {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe returns the catalogue description of a point name ("" when
// unknown).
func Describe(name string) string { return catalogue[name] }

// ExitCode is the process exit status of an injected crash. It is
// distinct from ordinary failure (1) so a relaunch loop can tell an
// injected kill from a real bug.
const ExitCode = 86

// InjectedError is the error returned by a point in err mode.
type InjectedError struct {
	// Point is the crash-point name that fired.
	Point string
	// Visit is the 1-based visit count at which the rule fired.
	Visit uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected I/O error at %s (visit %d)", e.Point, e.Visit)
}

// IsInjected reports whether err is (or wraps) a chaos-injected error.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// ruleMode selects what a rule does when it fires.
type ruleMode uint8

const (
	modeCrash ruleMode = iota // kill the process with ExitCode
	modeErr                   // return an InjectedError
)

// rule is one compiled trigger at a point: fire on an exact visit, or
// with a seeded per-visit probability.
type rule struct {
	mode  ruleMode
	visit uint64  // fire on exactly this visit (0 = probabilistic)
	prob  float64 // per-visit probability when visit == 0
}

// Plan is a parsed crash plan. Install compiles it; the zero Plan (or
// a nil one) injects nothing.
type Plan struct {
	// Seed drives probabilistic rules; exact @N rules ignore it.
	Seed int64
	// rules maps point name → triggers, validated against the catalogue.
	rules map[string][]rule
}

// Validate reports the first problem with the plan, or nil.
func (p *Plan) Validate() error {
	for name, rules := range p.rules {
		if _, ok := catalogue[name]; !ok {
			return fmt.Errorf("chaos: unknown crash point %q", name)
		}
		for _, r := range rules {
			if r.visit == 0 && (r.prob <= 0 || r.prob > 1) {
				return fmt.Errorf("chaos: point %s probability %v outside (0,1]", name, r.prob)
			}
		}
	}
	return nil
}

// pointState is the per-point runtime state of an installed plan.
type pointState struct {
	count atomic.Uint64
	rules []rule
}

// engine is a compiled, installed plan.
type engine struct {
	seed   int64
	points map[string]*pointState
}

var active atomic.Pointer[engine]

// exit is swapped out by tests; os.Exit deliberately skips deferred
// cleanup, approximating a SIGKILL at the crash point.
var exit = os.Exit

// crashHook is invoked once, synchronously, just before an injected
// crash exits the process — the flight recorder's chance to dump its
// black boxes. A SIGKILL would give no such chance; an injected crash
// deliberately does, because the postmortem bundle is itself part of
// what chaos drills are rehearsing.
var crashHook atomic.Pointer[func()]

// SetCrashHook installs f to run before an injected crash's exit.
// Passing nil clears it. The hook must not re-enter chaos points that
// can crash (it runs exactly once, before exit, on the crashing
// goroutine, possibly while journal or alert-sink locks are held — so
// it must not touch those either).
func SetCrashHook(f func()) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

// Install arms the plan process-wide, resetting all visit counters.
// Install(nil) disarms chaos.
func Install(p *Plan) {
	if p == nil || len(p.rules) == 0 {
		active.Store(nil)
		return
	}
	e := &engine{seed: p.Seed, points: make(map[string]*pointState, len(p.rules))}
	for name, rules := range p.rules {
		e.points[name] = &pointState{rules: rules}
	}
	active.Store(e)
}

// Installed reports whether a plan is armed.
func Installed() bool { return active.Load() != nil }

// Point marks one visit to a named crash point. With no plan installed
// it returns nil at the cost of a single atomic load. With a plan, a
// matching crash rule prints one line to stderr and exits the process
// with ExitCode; a matching err rule returns an InjectedError for the
// caller to propagate as an I/O failure.
func Point(name string) error {
	e := active.Load()
	if e == nil {
		return nil
	}
	return e.visit(name)
}

func (e *engine) visit(name string) error {
	ps := e.points[name]
	if ps == nil {
		return nil
	}
	n := ps.count.Add(1)
	for _, r := range ps.rules {
		fire := r.visit == n
		if r.visit == 0 {
			fire = e.uniform(name, n) < r.prob
		}
		if !fire {
			continue
		}
		if r.mode == modeCrash {
			fmt.Fprintf(os.Stderr, "chaos: crash at point %s (visit %d)\n", name, n)
			if h := crashHook.Load(); h != nil {
				(*h)()
			}
			exit(ExitCode)
			return nil // only reached when exit is stubbed in tests
		}
		return &InjectedError{Point: name, Visit: n}
	}
	return nil
}

// uniform derives a deterministic uniform in [0,1) from the plan seed,
// the point name, and the visit count (splitmix64, as in sched's
// FaultPlan).
func (e *engine) uniform(name string, visit uint64) float64 {
	h := uint64(e.seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h = splitmix64(h ^ uint64(name[i]))
	}
	h = splitmix64(h ^ visit)
	return float64(h>>11) / float64(uint64(1)<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Parse parses a compact crash-plan specification: ';'- or ','-separated
// key=value fields:
//
//	crash=<point>@N   kill the process (exit 86) on the Nth visit
//	crash=<point>%P   ... with per-visit probability P
//	err=<point>@N     inject an I/O error on the Nth visit
//	err=<point>%P     ... with per-visit probability P
//	seed=N            probabilistic decision seed
//
// Point names come from the catalogue (Points); unknown names are
// rejected. Example: "crash=commons.record.pre_rename@3;seed=7".
func Parse(spec string) (*Plan, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("chaos: empty crash plan spec")
	}
	plan := &Plan{rules: make(map[string][]rule)}
	for _, field := range fields {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: crash plan field %q is not key=value", field)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: crash plan field %q: %v", field, err)
			}
			plan.Seed = seed
		case "crash", "err":
			r := rule{mode: modeCrash}
			if key == "err" {
				r.mode = modeErr
			}
			name, err := parseTrigger(val, &r)
			if err != nil {
				return nil, fmt.Errorf("chaos: crash plan field %q: %v", field, err)
			}
			plan.rules[name] = append(plan.rules[name], r)
		default:
			return nil, fmt.Errorf("chaos: unknown crash plan key %q", key)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// parseTrigger parses "<point>@N" or "<point>%P" into r, returning the
// point name.
func parseTrigger(val string, r *rule) (string, error) {
	if name, nStr, ok := strings.Cut(val, "@"); ok {
		n, err := strconv.ParseUint(nStr, 10, 64)
		if err != nil {
			return "", err
		}
		if n == 0 {
			return "", fmt.Errorf("visit count must be ≥ 1")
		}
		r.visit = n
		return name, nil
	}
	if name, pStr, ok := strings.Cut(val, "%"); ok {
		p, err := strconv.ParseFloat(pStr, 64)
		if err != nil {
			return "", err
		}
		r.prob = p
		return name, nil
	}
	return "", fmt.Errorf("trigger %q needs @N or %%P", val)
}
