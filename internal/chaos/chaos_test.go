package chaos

import (
	"errors"
	"fmt"
	"testing"
)

// install arms a plan for one test and guarantees disarm + exit-stub
// restoration afterwards.
func install(t *testing.T, p *Plan) {
	t.Helper()
	Install(p)
	t.Cleanup(func() { Install(nil) })
}

func stubExit(t *testing.T) *[]int {
	t.Helper()
	var codes []int
	orig := exit
	exit = func(code int) { codes = append(codes, code) }
	t.Cleanup(func() { exit = orig })
	return &codes
}

func TestDisabledPointIsNil(t *testing.T) {
	Install(nil)
	for _, name := range Points() {
		if err := Point(name); err != nil {
			t.Fatalf("disabled Point(%s) = %v", name, err)
		}
	}
	if Installed() {
		t.Fatal("Installed() true with no plan")
	}
}

func TestErrRuleFiresOnExactVisit(t *testing.T) {
	plan, err := Parse("err=" + PointRecordPreRename + "@3")
	if err != nil {
		t.Fatal(err)
	}
	install(t, plan)
	if !Installed() {
		t.Fatal("Installed() false after Install")
	}
	for visit := 1; visit <= 5; visit++ {
		err := Point(PointRecordPreRename)
		if visit == 3 {
			if !IsInjected(err) {
				t.Fatalf("visit 3: want injected error, got %v", err)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Visit != 3 || ie.Point != PointRecordPreRename {
				t.Fatalf("visit 3: bad error detail %+v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("visit %d: unexpected %v", visit, err)
		}
	}
	// Other points are untouched.
	if err := Point(PointJournalAppend); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestCrashRuleExits(t *testing.T) {
	codes := stubExit(t)
	plan, err := Parse("crash=" + PointGenerationCommit + "@2")
	if err != nil {
		t.Fatal(err)
	}
	install(t, plan)
	if err := Point(PointGenerationCommit); err != nil {
		t.Fatalf("visit 1: %v", err)
	}
	if err := Point(PointGenerationCommit); err != nil {
		t.Fatalf("visit 2 returned error instead of exiting: %v", err)
	}
	if len(*codes) != 1 || (*codes)[0] != ExitCode {
		t.Fatalf("exit codes = %v, want [%d]", *codes, ExitCode)
	}
}

func TestInstallResetsCounters(t *testing.T) {
	plan, err := Parse("err=" + PointAlertsAppend + "@1")
	if err != nil {
		t.Fatal(err)
	}
	install(t, plan)
	if err := Point(PointAlertsAppend); !IsInjected(err) {
		t.Fatalf("first visit: %v", err)
	}
	Install(plan) // re-arm: counters reset, rule fires again on visit 1
	if err := Point(PointAlertsAppend); !IsInjected(err) {
		t.Fatalf("first visit after reinstall: %v", err)
	}
}

func TestProbabilisticRuleIsSeededAndDeterministic(t *testing.T) {
	fires := func(seed int64) []int {
		plan, err := Parse(fmt.Sprintf("err=%s%%0.3;seed=%d", PointJournalAppend, seed))
		if err != nil {
			t.Fatal(err)
		}
		Install(plan)
		defer Install(nil)
		var hits []int
		for visit := 1; visit <= 200; visit++ {
			if IsInjected(Point(PointJournalAppend)) {
				hits = append(hits, visit)
			}
		}
		return hits
	}
	a, b := fires(7), fires(7)
	if len(a) == 0 {
		t.Fatal("p=0.3 over 200 visits never fired")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(fires(8)) {
		t.Fatal("different seeds produced identical fire sequences")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                                   // empty
		"bogus",                              // not key=value
		"boom=x@1",                           // unknown key
		"crash=no.such.point@1",              // unknown point
		"crash=" + PointJournalAppend,        // no trigger
		"err=" + PointJournalAppend + "@0",   // visit 0
		"err=" + PointJournalAppend + "%1.5", // p > 1
		"seed=notanumber",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestCatalogue(t *testing.T) {
	names := Points()
	if len(names) != len(catalogue) {
		t.Fatalf("Points() returned %d names, catalogue has %d", len(names), len(catalogue))
	}
	for _, name := range names {
		if Describe(name) == "" {
			t.Errorf("point %s has no description", name)
		}
	}
}

func TestIsInjectedWrapped(t *testing.T) {
	err := fmt.Errorf("write checkpoint: %w", &InjectedError{Point: PointCheckpointPreRename, Visit: 4})
	if !IsInjected(err) {
		t.Fatal("wrapped injected error not detected")
	}
	if IsInjected(errors.New("plain")) {
		t.Fatal("plain error reported as injected")
	}
	if IsInjected(nil) {
		t.Fatal("nil reported as injected")
	}
}

// BenchmarkDisabledChaos is enforced at exactly 0 allocs/op by the
// bench gate: with no plan installed a crash point costs one atomic
// load and a branch, so production runs pay nothing for the harness.
func BenchmarkDisabledChaos(b *testing.B) {
	Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Point(PointRecordPreRename); err != nil {
			b.Fatal(err)
		}
	}
}
