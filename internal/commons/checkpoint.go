package commons

// Model-level checkpoints: per-model training progress persisted
// crash-safely so -resume continues *inside* an interrupted generation
// instead of retraining it from epoch 1. A checkpoint is written after
// every epoch (when enabled), deleted once the model's final record
// commits, and framed with a magic, a version, and a CRC so a torn or
// bit-flipped file is detected — and quarantined — rather than trusted.
//
// Frame layout (little-endian):
//
//	offset  size  field
//	0       4     magic "A4CK"
//	4       1     version (currently 1)
//	5       4     payload length
//	9       4     CRC-32 (IEEE) of the payload
//	13      n     JSON payload (Checkpoint)

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"a4nn/internal/chaos"
	"a4nn/internal/lineage"
)

var ckptMagic = [4]byte{'A', '4', 'C', 'K'}

const (
	ckptVersion    = 1
	ckptHeaderSize = 13
)

// Checkpoint is one model's mid-training progress: everything needed to
// rebuild the model (Genome + the original Seed), fast-forward or
// restore its state (State + StateDigest), rehydrate the prediction
// engine (the per-epoch entries carry H and P), and resume the lineage
// record and resource accounting exactly where the crash cut them off.
type Checkpoint struct {
	// ID is the lineage record ID the checkpoint belongs to.
	ID string `json:"id"`
	// Genome is the model's encoded architecture; a mismatch with the
	// scheduled genome marks the checkpoint stale and it is ignored.
	Genome string `json:"genome"`
	// Generation is the NAS generation the model belongs to.
	Generation int `json:"generation"`
	// Seed is the seed the model was originally built with. Resume must
	// reuse it — not the relaunched run's device-derived seed — so the
	// continued training reproduces the fault-free trajectory.
	Seed int64 `json:"seed"`
	// Epoch is the number of completed training epochs.
	Epoch int `json:"epoch"`
	// Terminated records that the prediction engine had already declared
	// convergence; resume then skips straight to the final fitness.
	Terminated bool `json:"terminated,omitempty"`
	// State is the model's serialized state after Epoch epochs.
	State []byte `json:"state,omitempty"`
	// StateDigest is the FNV-1a digest of State, re-verified against the
	// restored (or fast-forwarded) model before training continues.
	StateDigest uint64 `json:"state_digest,omitempty"`
	// Epochs are the lineage entries for epochs 1..Epoch; they carry the
	// fitness history H and the prediction history P.
	Epochs []lineage.EpochEntry `json:"epochs"`
	// SimSeconds, EngineSeconds, Interactions, and InteractionSeconds
	// snapshot the training-loop accounting at the checkpoint.
	SimSeconds         float64   `json:"sim_seconds,omitempty"`
	EngineSeconds      float64   `json:"engine_seconds,omitempty"`
	Interactions       int       `json:"interactions,omitempty"`
	InteractionSeconds []float64 `json:"interaction_seconds,omitempty"`
	// SavedAt is the wall-clock write time.
	SavedAt time.Time `json:"saved_at"`
}

// Validate reports the first problem with the checkpoint, or nil.
func (c *Checkpoint) Validate() error {
	if c.ID == "" || c.Genome == "" {
		return errors.New("checkpoint needs ID and Genome")
	}
	if c.Epoch < 1 {
		return fmt.Errorf("checkpoint epoch %d must be ≥ 1", c.Epoch)
	}
	if len(c.Epochs) != c.Epoch {
		return fmt.Errorf("checkpoint has %d epoch entries for epoch %d", len(c.Epochs), c.Epoch)
	}
	for i, e := range c.Epochs {
		if e.Epoch != i+1 {
			return fmt.Errorf("checkpoint epoch entry %d labelled %d", i, e.Epoch)
		}
	}
	return nil
}

// History returns the fitness history H recorded in the checkpoint.
func (c *Checkpoint) History() []float64 {
	h := make([]float64, len(c.Epochs))
	for i, e := range c.Epochs {
		h[i] = e.ValAccuracy
	}
	return h
}

// Predictions returns the prediction history P and the 1-based epochs
// at which each prediction was produced.
func (c *Checkpoint) Predictions() (p []float64, epochs []int) {
	for _, e := range c.Epochs {
		if e.HasPrediction {
			p = append(p, e.Prediction)
			epochs = append(epochs, e.Epoch)
		}
	}
	return p, epochs
}

// StateDigest hashes a serialized model state (FNV-1a). It is stored in
// checkpoints and re-verified at resume, catching a restored model that
// diverges from the state the checkpoint described.
func StateDigest(state []byte) uint64 {
	h := fnv.New64a()
	h.Write(state)
	return h.Sum64()
}

// CorruptionError is the typed decode failure of a framed file: Reason
// classifies what broke ("magic", "version", "truncated", "length",
// "checksum", "decode", "validate", "digest"). It unwraps to ErrCorrupt
// so existing errors.Is(err, ErrCorrupt) checks keep working.
type CorruptionError struct {
	// Path is the offending file (may be an ID when no file is involved).
	Path string
	// Reason is the typed classification, also used as the quarantine
	// file suffix.
	Reason string
	// Err is the underlying cause, when any.
	Err error
}

func (e *CorruptionError) Error() string {
	msg := fmt.Sprintf("commons: %s: corrupt (%s)", e.Path, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *CorruptionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// CorruptionReason extracts the typed reason from err ("decode" for
// corruption errors without one).
func CorruptionReason(err error) string {
	var ce *CorruptionError
	if errors.As(err, &ce) && ce.Reason != "" {
		return ce.Reason
	}
	return "decode"
}

// EncodeCheckpoint validates and frames a checkpoint.
func EncodeCheckpoint(c *Checkpoint) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("commons: encode checkpoint: %w", err)
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("commons: encode checkpoint %s: %w", c.ID, err)
	}
	buf := make([]byte, ckptHeaderSize+len(payload))
	copy(buf[:4], ckptMagic[:])
	buf[4] = ckptVersion
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[9:13], crc32.ChecksumIEEE(payload))
	copy(buf[ckptHeaderSize:], payload)
	return buf, nil
}

// DecodeCheckpoint parses a framed checkpoint. Any torn, truncated, or
// bit-flipped input returns a *CorruptionError (never a panic); path
// only labels the error.
func DecodeCheckpoint(path string, data []byte) (*Checkpoint, error) {
	if len(data) < ckptHeaderSize {
		return nil, &CorruptionError{Path: path, Reason: "truncated",
			Err: fmt.Errorf("%d bytes, header needs %d", len(data), ckptHeaderSize)}
	}
	if [4]byte(data[:4]) != ckptMagic {
		return nil, &CorruptionError{Path: path, Reason: "magic",
			Err: fmt.Errorf("bad magic %q", data[:4])}
	}
	if v := data[4]; v != ckptVersion {
		return nil, &CorruptionError{Path: path, Reason: "version",
			Err: fmt.Errorf("unsupported version %d", v)}
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	payload := data[ckptHeaderSize:]
	if uint64(n) > uint64(len(payload)) {
		return nil, &CorruptionError{Path: path, Reason: "truncated",
			Err: fmt.Errorf("payload %d of %d bytes", len(payload), n)}
	}
	if uint64(n) < uint64(len(payload)) {
		return nil, &CorruptionError{Path: path, Reason: "length",
			Err: fmt.Errorf("%d trailing bytes", len(payload)-int(n))}
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, &CorruptionError{Path: path, Reason: "checksum", Err: nil}
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, &CorruptionError{Path: path, Reason: "decode", Err: err}
	}
	if err := c.Validate(); err != nil {
		return nil, &CorruptionError{Path: path, Reason: "validate", Err: err}
	}
	return &c, nil
}

func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.root, "checkpoints", id+".ckpt")
}

// PutCheckpoint atomically writes (or replaces) a model checkpoint.
func (s *Store) PutCheckpoint(c *Checkpoint) error {
	data, err := EncodeCheckpoint(c)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := atomicWrite(s.checkpointPath(c.ID), data, 0o644,
		chaos.PointCheckpointPreRename, chaos.PointCheckpointPostRename); err != nil {
		return fmt.Errorf("commons: write checkpoint %s: %w", c.ID, err)
	}
	return nil
}

// GetCheckpoint loads a model checkpoint. A missing checkpoint returns
// an error satisfying errors.Is(err, fs.ErrNotExist); a torn or
// tampered one returns a *CorruptionError (errors.Is ErrCorrupt).
func (s *Store) GetCheckpoint(id string) (*Checkpoint, error) {
	path := s.checkpointPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("commons: read checkpoint %s: %w", id, err)
	}
	return DecodeCheckpoint(path, data)
}

// DeleteCheckpoint removes a model's checkpoint; deleting a checkpoint
// that does not exist is not an error.
func (s *Store) DeleteCheckpoint(id string) error {
	err := os.Remove(s.checkpointPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("commons: delete checkpoint %s: %w", id, err)
	}
	return nil
}

// Checkpoints lists the model IDs with a stored checkpoint, sorted.
func (s *Store) Checkpoints() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "checkpoints"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("commons: list checkpoints: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			ids = append(ids, strings.TrimSuffix(e.Name(), ".ckpt"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// QuarantineDir is where corrupt files are moved, under the store root.
const QuarantineDir = ".corrupt"

// quarantine moves a corrupt file into <root>/.corrupt/<base>.<reason>,
// suffixing a counter when the name is taken, and returns the new path.
func (s *Store) quarantine(path, reason string) (string, error) {
	if reason == "" {
		reason = "corrupt"
	}
	dir := filepath.Join(s.root, QuarantineDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("commons: create quarantine dir: %w", err)
	}
	dest := filepath.Join(dir, filepath.Base(path)+"."+reason)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dest); os.IsNotExist(err) {
			break
		}
		dest = filepath.Join(dir, fmt.Sprintf("%s.%s.%d", filepath.Base(path), reason, i))
	}
	if err := os.Rename(path, dest); err != nil {
		return "", fmt.Errorf("commons: quarantine %s: %w", path, err)
	}
	return dest, nil
}

// QuarantineRecord moves a corrupt record out of records/ into the
// quarantine directory so replay and analytics stop tripping over it;
// the typed reason becomes the file suffix. It returns the destination.
func (s *Store) QuarantineRecord(id, reason string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantine(s.recordPath(id), reason)
}

// QuarantineCheckpoint moves a corrupt checkpoint into the quarantine
// directory and returns the destination.
func (s *Store) QuarantineCheckpoint(id, reason string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantine(s.checkpointPath(id), reason)
}

// IndexFile is the rebuilt model index, under the store root.
const IndexFile = "index.json"

// WriteIndex atomically replaces the store's model index.
func (s *Store) WriteIndex(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := atomicWrite(filepath.Join(s.root, IndexFile), data, 0o644, "", ""); err != nil {
		return fmt.Errorf("commons: write index: %w", err)
	}
	return nil
}
