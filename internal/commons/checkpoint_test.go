package commons

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"a4nn/internal/lineage"
)

func testCheckpoint(id string, epoch int) *Checkpoint {
	c := &Checkpoint{
		ID:           id,
		Genome:       "1011-110",
		Generation:   2,
		Seed:         42424242,
		Epoch:        epoch,
		State:        []byte(`{"a":61.2,"epoch":3}`),
		SimSeconds:   123.5,
		Interactions: epoch,
		SavedAt:      time.Unix(1700000000, 0).UTC(),
	}
	c.StateDigest = StateDigest(c.State)
	for e := 1; e <= epoch; e++ {
		c.Epochs = append(c.Epochs, lineage.EpochEntry{
			Epoch: e, ValAccuracy: 50 + float64(e), Prediction: 60, HasPrediction: e >= 3,
		})
	}
	return c
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCheckpoint("m-g01-i03", 4)
	data, err := EncodeCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint("x.ckpt", data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != c.ID || got.Seed != c.Seed || got.Epoch != c.Epoch || got.StateDigest != c.StateDigest {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	h := got.History()
	if len(h) != 4 || h[0] != 51 {
		t.Fatalf("History() = %v", h)
	}
	p, epochs := got.Predictions()
	if len(p) != 2 || epochs[0] != 3 || epochs[1] != 4 {
		t.Fatalf("Predictions() = %v @ %v", p, epochs)
	}
}

func TestDecodeCheckpointCorruption(t *testing.T) {
	c := testCheckpoint("m", 2)
	data, err := EncodeCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"short header", func(b []byte) []byte { return b[:7] }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"torn payload", func(b []byte) []byte { return b[:len(b)-5] }, "truncated"},
		{"trailing junk", func(b []byte) []byte { return append(b, 0, 0) }, "length"},
		{"bit flip", func(b []byte) []byte { b[20] ^= 0x40; return b }, "checksum"},
	}
	for _, tc := range cases {
		buf := tc.mutate(append([]byte(nil), data...))
		_, err := DecodeCheckpoint("x.ckpt", buf)
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a CorruptionError", tc.name, err)
			continue
		}
		if ce.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, ce.Reason, tc.reason)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: does not unwrap to ErrCorrupt", tc.name)
		}
		if CorruptionReason(err) != tc.reason {
			t.Errorf("%s: CorruptionReason = %q", tc.name, CorruptionReason(err))
		}
	}
}

func TestStoreCheckpointCRUD(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetCheckpoint("nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing checkpoint: %v", err)
	}
	c := testCheckpoint("m-g00-i01", 3)
	if err := s.PutCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetCheckpoint(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Genome != c.Genome || got.Epoch != 3 {
		t.Fatalf("got %+v", got)
	}
	ids, err := s.Checkpoints()
	if err != nil || len(ids) != 1 || ids[0] != c.ID {
		t.Fatalf("Checkpoints() = %v, %v", ids, err)
	}
	if err := s.DeleteCheckpoint(c.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCheckpoint(c.ID); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if ids, _ := s.Checkpoints(); len(ids) != 0 {
		t.Fatalf("after delete: %v", ids)
	}
}

func TestQuarantine(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A torn checkpoint is detected and quarantined with its reason.
	path := s.checkpointPath("torn")
	if err := os.WriteFile(path, []byte("A4CK junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.GetCheckpoint("torn")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn checkpoint: %v", err)
	}
	dest, err := s.QuarantineCheckpoint("torn", CorruptionReason(err))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dest, QuarantineDir) || !strings.HasSuffix(dest, ".truncated") {
		t.Fatalf("quarantine dest %q", dest)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("torn checkpoint still in checkpoints/")
	}
	if _, err := os.Stat(dest); err != nil {
		t.Fatal(err)
	}

	// Name collisions get a counter suffix instead of clobbering.
	if err := os.WriteFile(path, []byte("A4CK junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	dest2, err := s.QuarantineCheckpoint("torn", "truncated")
	if err != nil {
		t.Fatal(err)
	}
	if dest2 == dest {
		t.Fatalf("second quarantine reused %q", dest)
	}

	// Records quarantine the same way.
	rpath := s.recordPath("bad")
	if err := os.WriteFile(rpath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRecord("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn record: %v", err)
	}
	rdest, err := s.QuarantineRecord("bad", "decode")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(rdest) != filepath.Join(s.Root(), QuarantineDir) {
		t.Fatalf("record quarantined to %q", rdest)
	}
	// The corrupt record no longer poisons List/All.
	if ids, err := s.List(); err != nil || len(ids) != 0 {
		t.Fatalf("List after quarantine: %v, %v", ids, err)
	}
}

func TestEncodeCheckpointValidates(t *testing.T) {
	bad := []*Checkpoint{
		{},
		{ID: "x", Genome: "g"},
		{ID: "x", Genome: "g", Epoch: 2, Epochs: []lineage.EpochEntry{{Epoch: 1}}},
		{ID: "x", Genome: "g", Epoch: 1, Epochs: []lineage.EpochEntry{{Epoch: 7}}},
	}
	for i, c := range bad {
		if _, err := EncodeCheckpoint(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// FuzzDecodeCheckpoint asserts the frame reader never panics and always
// classifies garbage as a typed corruption error.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid, err := EncodeCheckpoint(testCheckpoint("m-g01-i00", 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("A4CK"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint("fuzz.ckpt", data)
		if err == nil {
			if c == nil || c.Validate() != nil {
				t.Fatal("nil error with invalid checkpoint")
			}
			return
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
