// Package commons implements the NN data commons (paper §2.3, §4.5): a
// local, directory-backed store of lineage record trails and per-epoch
// model-state snapshots, with the query and summary operations the
// paper's Dataverse deposit exposes through its accompanying Pandas
// script (mean accuracy, filtering by attributes, retrieving any model at
// any training epoch).
package commons

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"a4nn/internal/chaos"
	"a4nn/internal/lineage"
)

// ErrCorrupt marks a record that exists on disk but cannot be decoded or
// validated — a torn write from a crash predating atomic writes, or
// external tampering. Callers resuming a search treat a corrupt record
// like a missing one and retrain.
var ErrCorrupt = errors.New("corrupt record")

// Store is a data commons rooted at a directory. Records live at
// <root>/records/<id>.json; snapshots at <root>/models/<id>/epoch_<e>.bin.
// A Store is safe for concurrent use.
type Store struct {
	root string
	mu   sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("commons: empty store path")
	}
	for _, sub := range []string{"records", "models", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("commons: create store layout: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store directory.
func (s *Store) Root() string { return s.root }

func (s *Store) recordPath(id string) string {
	return filepath.Join(s.root, "records", id+".json")
}

func (s *Store) snapshotPath(id string, epoch int) string {
	return filepath.Join(s.root, "models", id, fmt.Sprintf("epoch_%03d.bin", epoch))
}

// atomicWrite writes data to path via a temp file in the same directory
// renamed into place, so a crash mid-write can never leave a torn file.
// pre and post name the chaos crash points straddling the rename — the
// two instants whose crash semantics differ (old file still visible vs
// new file committed but unreported); both are no-ops unless a crash
// plan is armed.
func atomicWrite(path string, data []byte, perm os.FileMode, pre, post string) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := chaos.Point(pre); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return chaos.Point(post)
}

// PutRecord writes (or replaces) a record trail. The write is atomic: a
// kill mid-write leaves either the previous record or the new one, never
// a torn file that would poison replay/resume.
func (s *Store) PutRecord(r *lineage.Record) error {
	data, err := r.MarshalBytes()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := atomicWrite(s.recordPath(r.ID), data, 0o644,
		chaos.PointRecordPreRename, chaos.PointRecordPostRename); err != nil {
		return fmt.Errorf("commons: write record %s: %w", r.ID, err)
	}
	return nil
}

// GetRecord loads a record by ID. A record that exists but cannot be
// decoded or validated returns an error wrapping ErrCorrupt.
func (s *Store) GetRecord(id string) (*lineage.Record, error) {
	data, err := os.ReadFile(s.recordPath(id))
	if err != nil {
		return nil, fmt.Errorf("commons: read record %s: %w", id, err)
	}
	rec, err := lineage.UnmarshalBytes(data)
	if err != nil {
		return nil, fmt.Errorf("commons: record %s: %w: %w", id, ErrCorrupt, err)
	}
	return rec, nil
}

// PutSnapshot stores the model state after the given (1-based) epoch, the
// paper's per-epoch torch.package equivalent (§2.2.2: "each model can be
// loaded and re-evaluated from any point in the training phase").
func (s *Store) PutSnapshot(id string, epoch int, state []byte) error {
	if epoch < 1 {
		return fmt.Errorf("commons: snapshot epoch must be ≥ 1, got %d", epoch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.root, "models", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("commons: create model dir for %s: %w", id, err)
	}
	if err := atomicWrite(s.snapshotPath(id, epoch), state, 0o644,
		chaos.PointSnapshotPreRename, ""); err != nil {
		return fmt.Errorf("commons: write snapshot %s@%d: %w", id, epoch, err)
	}
	return nil
}

// GetSnapshot loads the model state saved after the given epoch.
func (s *Store) GetSnapshot(id string, epoch int) ([]byte, error) {
	data, err := os.ReadFile(s.snapshotPath(id, epoch))
	if err != nil {
		return nil, fmt.Errorf("commons: read snapshot %s@%d: %w", id, epoch, err)
	}
	return data, nil
}

// Snapshots lists the epochs with stored snapshots for a model, ascending.
func (s *Store) Snapshots(id string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "models", id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("commons: list snapshots of %s: %w", id, err)
	}
	var epochs []int
	for _, e := range entries {
		var epoch int
		if _, err := fmt.Sscanf(e.Name(), "epoch_%d.bin", &epoch); err == nil {
			epochs = append(epochs, epoch)
		}
	}
	sort.Ints(epochs)
	return epochs, nil
}

// List returns all record IDs in the store, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "records"))
	if err != nil {
		return nil, fmt.Errorf("commons: list records: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			ids = append(ids, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// All loads every record, sorted by ID.
func (s *Store) All() ([]*lineage.Record, error) {
	ids, err := s.List()
	if err != nil {
		return nil, err
	}
	records := make([]*lineage.Record, 0, len(ids))
	for _, id := range ids {
		r, err := s.GetRecord(id)
		if err != nil {
			return nil, err
		}
		records = append(records, r)
	}
	return records, nil
}

// Query returns the records satisfying pred, sorted by ID.
func (s *Store) Query(pred func(*lineage.Record) bool) ([]*lineage.Record, error) {
	all, err := s.All()
	if err != nil {
		return nil, err
	}
	var out []*lineage.Record
	for _, r := range all {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// Summary aggregates the store the way the paper's Pandas companion
// script does: counts, accuracy statistics, epoch savings.
type Summary struct {
	Records            int
	TotalEpochsTrained int
	TerminatedEarly    int
	MeanFinalFitness   float64
	BestFinalFitness   float64
	MeanEpochsTrained  float64
	TotalSimSeconds    float64
}

// Summarize computes a Summary over all records (optionally filtered by
// beam; empty string means all).
func (s *Store) Summarize(beam string) (Summary, error) {
	all, err := s.All()
	if err != nil {
		return Summary{}, err
	}
	var sum Summary
	for _, r := range all {
		if beam != "" && r.Beam != beam {
			continue
		}
		sum.Records++
		sum.TotalEpochsTrained += r.EpochsTrained()
		if r.Terminated {
			sum.TerminatedEarly++
		}
		sum.MeanFinalFitness += r.FinalFitness
		if r.FinalFitness > sum.BestFinalFitness {
			sum.BestFinalFitness = r.FinalFitness
		}
		sum.TotalSimSeconds += r.SimSeconds()
	}
	if sum.Records > 0 {
		sum.MeanFinalFitness /= float64(sum.Records)
		sum.MeanEpochsTrained = float64(sum.TotalEpochsTrained) / float64(sum.Records)
	}
	return sum, nil
}
