package commons

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"a4nn/internal/lineage"
)

func record(id, beam string, fitness float64, epochs int, terminated bool) *lineage.Record {
	r := &lineage.Record{
		ID:            id,
		Genome:        "1010001",
		NodesPerPhase: 4,
		Beam:          beam,
		FinalFitness:  fitness,
		CreatedAt:     time.Now(),
	}
	for e := 1; e <= epochs; e++ {
		r.Epochs = append(r.Epochs, lineage.EpochEntry{Epoch: e, ValAccuracy: fitness - 5, SimSeconds: 2})
	}
	r.Terminated = terminated
	if terminated {
		r.TerminationEpoch = epochs
	}
	return r
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty path must fail")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() == "" {
		t.Fatal("Root must be set")
	}
}

func TestPutGetRecord(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := record("m1", "low", 91.5, 10, true)
	if err := s.PutRecord(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecord("m1")
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalFitness != 91.5 || got.Beam != "low" || got.EpochsTrained() != 10 {
		t.Fatalf("got %+v", got)
	}
	if _, err := s.GetRecord("missing"); err == nil {
		t.Fatal("missing record must fail")
	}
	if err := s.PutRecord(&lineage.Record{}); err == nil {
		t.Fatal("invalid record must be rejected")
	}
}

func TestSnapshots(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot("m1", 1, []byte("state-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot("m1", 3, []byte("state-3")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot("m1", 0, nil); err == nil {
		t.Fatal("epoch 0 must be rejected")
	}
	got, err := s.GetSnapshot("m1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-3" {
		t.Fatalf("snapshot = %q", got)
	}
	epochs, err := s.Snapshots("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 3 {
		t.Fatalf("epochs = %v", epochs)
	}
	none, err := s.Snapshots("nobody")
	if err != nil || none != nil {
		t.Fatalf("missing model: %v, %v", none, err)
	}
	if _, err := s.GetSnapshot("m1", 2); err == nil {
		t.Fatal("missing snapshot must fail")
	}
}

func TestListAllQuery(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*lineage.Record{
		record("b", "low", 80, 25, false),
		record("a", "low", 95, 12, true),
		record("c", "high", 99, 8, true),
	} {
		if err := s.PutRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("ids = %v", ids)
	}
	all, err := s.All()
	if err != nil || len(all) != 3 {
		t.Fatalf("All: %v, %v", len(all), err)
	}
	hi, err := s.Query(func(r *lineage.Record) bool { return r.FinalFitness > 90 })
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) != 2 {
		t.Fatalf("query returned %d", len(hi))
	}
}

func TestSummarize(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*lineage.Record{
		record("a", "low", 90, 10, true),
		record("b", "low", 80, 25, false),
		record("c", "high", 99, 8, true),
	} {
		if err := s.PutRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := s.Summarize("low")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 2 || sum.TotalEpochsTrained != 35 || sum.TerminatedEarly != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.MeanFinalFitness != 85 || sum.BestFinalFitness != 90 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.MeanEpochsTrained != 17.5 {
		t.Fatalf("mean epochs %v", sum.MeanEpochsTrained)
	}
	if sum.TotalSimSeconds != 70 {
		t.Fatalf("sim seconds %v", sum.TotalSimSeconds)
	}
	all, err := s.Summarize("")
	if err != nil || all.Records != 3 {
		t.Fatalf("all-beam summary %+v, %v", all, err)
	}
	empty, err := s.Summarize("medium")
	if err != nil || empty.Records != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

func TestCorruptedRecordSurfacesError(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRecord(record("good", "low", 90, 3, false)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a record file on disk.
	path := filepath.Join(s.Root(), "records", "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRecord("bad"); err == nil {
		t.Fatal("corrupted record must surface an error")
	}
	if _, err := s.All(); err == nil {
		t.Fatal("All over a corrupted store must surface an error")
	}
	if _, err := s.Summarize(""); err == nil {
		t.Fatal("Summarize over a corrupted store must surface an error")
	}
	// Non-JSON garbage that decodes but fails validation.
	if err := os.WriteFile(path, []byte(`{"id":"bad"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRecord("bad"); err == nil {
		t.Fatal("invalid record must fail validation")
	}
}

func TestCorruptRecordIsTyped(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Root(), "records", "torn.json")
	if err := os.WriteFile(path, []byte(`{"id": "to`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.GetRecord("torn")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unparsable record: want ErrCorrupt, got %v", err)
	}
	// Decodes but fails validation → also corrupt.
	if err := os.WriteFile(path, []byte(`{"id":"torn"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRecord("torn"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("invalid record: want ErrCorrupt, got %v", err)
	}
	// A missing record is NOT corrupt — resume treats the two the same
	// way, but callers distinguishing them must be able to.
	if _, err := s.GetRecord("absent"); errors.Is(err, ErrCorrupt) {
		t.Fatal("missing record must not be ErrCorrupt")
	}
}

func TestAtomicWritesLeaveNoTempFiles(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutRecord(record(fmt.Sprintf("r%d", i), "low", 90, 2, false)); err != nil {
			t.Fatal(err)
		}
		if err := s.PutSnapshot(fmt.Sprintf("r%d", i), 1, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites go through the same atomic path.
	if err := s.PutRecord(record("r0", "low", 95, 3, true)); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecord("r0")
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalFitness != 95 {
		t.Fatalf("overwrite lost: fitness %v", got.FinalFitness)
	}
	var temps []string
	err = filepath.Walk(s.Root(), func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.Contains(filepath.Base(path), ".tmp-") {
			temps = append(temps, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != 0 {
		t.Fatalf("temp files left behind: %v", temps)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("List sees %d records, want 5 (temp names must not leak in)", len(ids))
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRecord(record("m", "low", 90, 2, false)); err != nil {
		t.Fatal(err)
	}
	// A stray non-.json file must not appear in listings.
	if err := os.WriteFile(filepath.Join(s.Root(), "records", "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "m" {
		t.Fatalf("ids = %v", ids)
	}
	// Stray files in a model dir must not be parsed as snapshots.
	if err := s.PutSnapshot("m", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Root(), "models", "m", "notes.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	snaps, err := s.Snapshots("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 1 {
		t.Fatalf("snaps = %v", snaps)
	}
}

func TestConcurrentWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := record(fmt.Sprintf("m%02d", i), "low", 90, 4, i%2 == 0)
			if err := s.PutRecord(r); err != nil {
				t.Error(err)
			}
			if err := s.PutSnapshot(r.ID, 1, []byte{byte(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 16 {
		t.Fatalf("store has %d records", len(ids))
	}
}
