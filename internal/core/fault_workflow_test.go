package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"a4nn/internal/commons"
	"a4nn/internal/genome"
	"a4nn/internal/nsga"
	"a4nn/internal/sched"
)

// hashModelTrainer builds models whose learning curve depends only on
// the genome hash — not on the seed, and therefore not on which device
// (or which retry attempt) trained it. Fault-injection tests use it so a
// faulty run's Pareto front can honestly be compared with a fault-free
// run's.
type hashModelTrainer struct{}

func (hashModelTrainer) TrainSamples() int { return 100 }
func (hashModelTrainer) NewModel(g *genome.Genome, seed int64) (Trainable, error) {
	v := 0
	for _, c := range []byte(g.Hash()) {
		v = v*31 + int(c)
	}
	if v < 0 {
		v = -v
	}
	a := 85 + float64(v%1400)/100 // asymptote in [85, 99)
	return &scriptedModel{curve: expCurve(a, 0.4, 1, 100), flops: 1e9 + int64(g.ActiveNodes(0))*1e8}, nil
}

// paretoIDs derives the Pareto-optimal set of a run as sorted
// "fitness/MFLOPs" keys (IDs differ across runs when devices differ, so
// compare the objective points themselves).
func paretoIDs(res *Result) []string {
	objs := make([][]float64, len(res.Models))
	for i, m := range res.Models {
		objs[i] = []float64{100 - m.Fitness, m.MFLOPs}
	}
	idx := nsga.ParetoFront(objs)
	keys := make([]string, 0, len(idx))
	for _, i := range idx {
		keys = append(keys, fmt.Sprintf("%.6f/%.6f", res.Models[i].Fitness, res.Models[i].MFLOPs))
	}
	sort.Strings(keys)
	return keys
}

func faultTestConfig() Config {
	cfg := DefaultConfig(hashModelTrainer{})
	cfg.NAS = nsga.Config{PopulationSize: 6, Offspring: 6, Generations: 3, Seed: 11}
	cfg.MaxEpochs = 25
	cfg.Devices = 4
	cfg.Beam = "medium"
	return cfg
}

// TestWorkflowFaultyRunMatchesFaultFreePareto is the issue's headline
// acceptance criterion: a run with one device crash and injected
// transient failures completes on the survivors, reports nonzero
// retry/fault accounting, and finds the same Pareto front as the
// fault-free run.
func TestWorkflowFaultyRunMatchesFaultFreePareto(t *testing.T) {
	clean, err := Run(faultTestConfig())
	if err != nil {
		t.Fatal(err)
	}

	faulty := faultTestConfig()
	faulty.Faults = &sched.FaultPlan{
		Seed:          5,
		TransientProb: 0.10,
		Crashes:       []sched.DeviceCrash{{Device: 1, Generation: 1, AfterTasks: 1}},
	}
	res, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}

	if res.Totals.Faults == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if res.Totals.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if res.Totals.DeadDevices != 1 {
		t.Fatalf("dead devices %d, want 1", res.Totals.DeadDevices)
	}
	if res.Totals.LostSeconds <= 0 {
		t.Fatal("faults cost no simulated time")
	}
	if len(res.Models) != len(clean.Models) {
		t.Fatalf("faulty run evaluated %d models, clean %d", len(res.Models), len(clean.Models))
	}

	cleanFront, faultyFront := paretoIDs(clean), paretoIDs(res)
	if strings.Join(cleanFront, ";") != strings.Join(faultyFront, ";") {
		t.Fatalf("Pareto front diverged under faults:\nclean:  %v\nfaulty: %v", cleanFront, faultyFront)
	}

	// The wall clock reflects the trouble: losing a device and retrying
	// work cannot be faster than the clean run.
	if res.Totals.WallSeconds < clean.Totals.WallSeconds {
		t.Fatalf("faulty wall %.1f < clean wall %.1f", res.Totals.WallSeconds, clean.Totals.WallSeconds)
	}
}

// failStepTrainer's models fail every training epoch — the transient
// classification path must retry them until attempts are exhausted.
type failStepTrainer struct{}

func (failStepTrainer) TrainSamples() int { return 100 }
func (failStepTrainer) NewModel(g *genome.Genome, seed int64) (Trainable, error) {
	return &failingModel{}, nil
}

type failingModel struct{}

func (m *failingModel) TrainEpoch() (EpochMetrics, error) {
	return EpochMetrics{}, fmt.Errorf("loss diverged")
}
func (m *failingModel) SaveState() ([]byte, error) { return nil, nil }
func (m *failingModel) FLOPs() int64               { return 1e9 }
func (m *failingModel) NumParams() int             { return 1 }
func (m *failingModel) Describe() string           { return "failing" }

func TestWorkflowRetryExhaustion(t *testing.T) {
	cfg := DefaultConfig(failStepTrainer{})
	cfg.NAS = nsga.Config{PopulationSize: 2, Offspring: 2, Generations: 1, Seed: 3}
	cfg.Devices = 2
	cfg.Retry = sched.RetryPolicy{MaxAttempts: 2}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("persistently failing training must fail the run")
	}
	if !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("error should report retry exhaustion: %v", err)
	}
	var step *TrainStepError
	if !errors.As(err, &step) {
		t.Fatalf("cause should be a TrainStepError: %v", err)
	}
}

// TestWorkflowResumeAfterKill kills a store-backed search after
// generation k (simulated by deleting all later records) and asserts
// that rerunning with Resume replays the k completed generations and
// finishes with the same Pareto set.
func TestWorkflowResumeAfterKill(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig() // single device: retraining is deterministic
	cfg.Store = store
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" after generation 0: drop every record from generations ≥ 1.
	all, err := store.All()
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, rec := range all {
		if rec.Generation >= 1 {
			if err := os.Remove(filepath.Join(store.Root(), "records", rec.ID+".json")); err != nil {
				t.Fatal(err)
			}
		} else {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("no generation-0 records to resume from")
	}

	resumed := testConfig()
	resumed.Store = store
	resumed.Resume = true
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != kept {
		t.Fatalf("replayed %d, want the %d surviving records", got.Replayed, kept)
	}
	if got.GenerationsReplayed != 1 {
		t.Fatalf("GenerationsReplayed %d, want 1", got.GenerationsReplayed)
	}
	if len(got.Models) != len(orig.Models) {
		t.Fatalf("resumed run evaluated %d models, original %d", len(got.Models), len(orig.Models))
	}
	for i := range orig.Models {
		if got.Models[i].Fitness != orig.Models[i].Fitness {
			t.Fatalf("model %d fitness diverged on resume: %v vs %v",
				i, got.Models[i].Fitness, orig.Models[i].Fitness)
		}
	}
	origFront, gotFront := paretoIDs(orig), paretoIDs(got)
	if strings.Join(origFront, ";") != strings.Join(gotFront, ";") {
		t.Fatalf("Pareto set diverged after resume:\norig:    %v\nresumed: %v", origFront, gotFront)
	}
	// The resumed store is complete again: every record restored.
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(orig.Models) {
		t.Fatalf("store has %d records after resume, want %d", len(ids), len(orig.Models))
	}
}

// TestWorkflowResumeCorruptRecord: a torn record (from a crash predating
// atomic writes, or tampering) is treated as missing — the model
// retrains and the run still completes.
func TestWorkflowResumeCorruptRecord(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = store
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := orig.Models[0].Record.ID
	path := filepath.Join(store.Root(), "records", victim+".json")
	if err := os.WriteFile(path, []byte(`{"id": "torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.GetRecord(victim); !errors.Is(err, commons.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}

	resumed := testConfig()
	resumed.Store = store
	resumed.Resume = true
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != len(orig.Models)-1 {
		t.Fatalf("replayed %d, want %d (corrupt record retrains)", got.Replayed, len(orig.Models)-1)
	}
	// The retrain overwrote the corrupt record with a valid one.
	if _, err := store.GetRecord(victim); err != nil {
		t.Fatalf("record not repaired: %v", err)
	}
}

func TestWorkflowResumeValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Resume without Store must fail validation")
	}
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	cfg.ReplayFrom = store
	if _, err := Run(cfg); err == nil {
		t.Fatal("Resume with ReplayFrom must fail validation")
	}
	bad := testConfig()
	bad.TaskTimeoutSeconds = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative task timeout must fail validation")
	}
	bad2 := testConfig()
	bad2.Faults = &sched.FaultPlan{TransientProb: 7}
	if _, err := Run(bad2); err == nil {
		t.Fatal("invalid fault plan must fail validation")
	}
}

func TestWorkflowRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, testConfig())
	if err == nil {
		t.Fatal("canceled context must abort the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestWorkflowRecordsCarryAttempt: records store the dispatch attempt, so
// the analyzer can report which networks were recovered by retry.
func TestWorkflowRecordsCarryAttempt(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Faults = &sched.FaultPlan{Seed: 5, TransientProb: 0.10,
		Crashes: []sched.DeviceCrash{{Device: 1, Generation: 1, AfterTasks: 1}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, m := range res.Models {
		if m.Record.Attempt < 1 {
			t.Fatalf("record %s has attempt %d", m.Record.ID, m.Record.Attempt)
		}
		if m.Record.Attempt > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no record marks a successful retry despite injected faults")
	}
}
