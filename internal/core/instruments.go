package core

import (
	"a4nn/internal/obs"
)

// Instruments bundles the pre-registered metric handles the training
// path updates: per-epoch counters and timing, the last-model accuracy
// gauge, and the prediction engine's stop-epoch / epochs-saved
// accounting. All methods are nil-safe, so an uninstrumented
// Orchestrator pays ~one branch per metric event and allocates nothing.
type Instruments struct {
	epochs      *obs.Counter
	models      *obs.Counter
	epochTime   *obs.Histogram
	accuracy    *obs.Gauge
	stopEpoch   *obs.Histogram
	epochsSaved *obs.Counter
	terminated  *obs.Counter
	savedRate   *obs.Gauge
	bestFitness *obs.Gauge
	paretoSize  *obs.Gauge
	journal     *obs.Journal
}

// NewInstruments registers the training metrics with the observer's
// registry and binds its event journal. A nil observer (or one without
// a registry) returns nil, which disables instrumentation.
func NewInstruments(o *obs.Observer) *Instruments {
	reg := o.Registry()
	if reg == nil {
		return nil
	}
	return &Instruments{
		epochs:      reg.Counter("a4nn_train_epochs_total"),
		models:      reg.Counter("a4nn_train_models_total"),
		epochTime:   reg.Histogram("a4nn_train_epoch_sim_seconds", obs.SecondsBuckets),
		accuracy:    reg.Gauge("a4nn_train_last_accuracy_percent"),
		stopEpoch:   reg.Histogram("a4nn_predictor_stop_epoch", obs.EpochBuckets),
		epochsSaved: reg.Counter("a4nn_predictor_epochs_saved_total"),
		terminated:  reg.Counter("a4nn_predictor_terminated_total"),
		savedRate:   reg.Gauge("a4nn_predictor_epochs_saved_rate"),
		bestFitness: reg.Gauge("a4nn_search_best_fitness_percent"),
		paretoSize:  reg.Gauge("a4nn_search_pareto_size"),
		journal:     o.Journal(),
	}
}

// events returns the bound journal (nil-safe: nil instruments emit
// nothing).
func (ins *Instruments) events() *obs.Journal {
	if ins == nil {
		return nil
	}
	return ins.journal
}

// observeEpoch books one completed training epoch.
func (ins *Instruments) observeEpoch(simSeconds, valAcc float64) {
	if ins == nil {
		return
	}
	ins.epochs.Inc()
	ins.epochTime.Observe(simSeconds)
	ins.accuracy.Set(valAcc)
}

// observeModel books one completed model training.
func (ins *Instruments) observeModel(out *TrainOutcome, maxEpochs int) {
	if ins == nil {
		return
	}
	ins.models.Inc()
	if out.Terminated {
		ins.terminated.Inc()
		ins.stopEpoch.Observe(float64(out.EpochsTrained))
		ins.epochsSaved.Add(maxEpochs - out.EpochsTrained)
	}
	// Epochs-saved rate: fraction of the epoch budget the predictor
	// avoided spending so far. A gauge (not a derived query) so the
	// history sampler captures its trajectory for the regression
	// monitor and dashboards.
	saved := float64(ins.epochsSaved.Value())
	if spent := float64(ins.epochs.Value()); spent+saved > 0 {
		ins.savedRate.Set(saved / (spent + saved))
	}
}

// observePareto books the current Pareto front: its size and its best
// accuracy, the search-progress trajectory the dashboards backfill
// from history after a reconnect.
func (ins *Instruments) observePareto(front []obs.ParetoPoint) {
	if ins == nil || len(front) == 0 {
		return
	}
	best := front[0].Accuracy
	for _, p := range front[1:] {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	ins.bestFitness.Set(best)
	ins.paretoSize.Set(float64(len(front)))
}
