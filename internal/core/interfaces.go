// Package core composes the A4NN workflow (paper §2): an existing NAS
// (internal/nsga over the NSGA-Net search space of internal/genome), the
// decoupled parametric fitness-prediction engine (internal/predict), the
// workflow orchestrator that runs Algorithm 1 around each network's
// training loop, the resource manager (internal/sched) that spreads a
// generation across accelerators, and the lineage tracker / data commons
// (internal/lineage, internal/commons) that record every network's full
// training lifespan.
//
// The NAS, the trainer, and the prediction engine are all pluggable —
// the decoupling that makes the workflow composable: Run with a nil
// engine configuration is exactly the standalone-NSGA-Net baseline the
// paper compares against.
package core

import (
	"math/rand"

	"a4nn/internal/genome"
)

// EpochMetrics reports one training epoch of one model.
type EpochMetrics struct {
	// TrainLoss is the epoch's mean training loss.
	TrainLoss float64
	// TrainAccuracy and ValAccuracy are percentages in [0, 100];
	// ValAccuracy is the fitness the prediction engine consumes.
	TrainAccuracy float64
	ValAccuracy   float64
}

// Trainable is one model mid-training. Implementations are not safe for
// concurrent use; the resource manager gives each model to one device.
type Trainable interface {
	// TrainEpoch advances training by one epoch and reports metrics.
	TrainEpoch() (EpochMetrics, error)
	// SaveState snapshots the model for the data commons.
	SaveState() ([]byte, error)
	// FLOPs is the per-sample forward cost (drives both the NAS's second
	// objective and the simulated epoch time).
	FLOPs() int64
	// NumParams is the trainable parameter count.
	NumParams() int
	// Describe renders the architecture for the lineage record.
	Describe() string
}

// Trainer creates Trainables from genomes. Implementations must be safe
// for concurrent NewModel calls (models for one generation are built on
// multiple devices at once).
type Trainer interface {
	// NewModel builds a fresh model for the genome; seed makes weight
	// initialisation (or surrogate curves) deterministic.
	NewModel(g *genome.Genome, seed int64) (Trainable, error)
	// TrainSamples is the training-set size, used for the simulated
	// per-epoch cost model.
	TrainSamples() int
}

// genomeOps adapts the genome package's variation operators to
// nsga.Operators.
type genomeOps struct {
	phases, nodes int
	mutationRate  float64
}

// Random implements nsga.Operators.
func (o genomeOps) Random(rng *rand.Rand) (*genome.Genome, error) {
	return genome.NewRandom(rng, o.phases, o.nodes)
}

// Crossover implements nsga.Operators.
func (o genomeOps) Crossover(rng *rand.Rand, a, b *genome.Genome) (*genome.Genome, error) {
	return genome.Crossover(rng, a, b)
}

// Mutate implements nsga.Operators.
func (o genomeOps) Mutate(rng *rand.Rand, g *genome.Genome) (*genome.Genome, error) {
	return g.Mutate(rng, o.mutationRate), nil
}
