package core

import (
	"context"
	"fmt"
	"math/rand"

	"a4nn/internal/commons"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/nn"
	"a4nn/internal/nsga"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// MicroTrainer builds trainable models from micro (cell-based) genomes.
type MicroTrainer interface {
	// NewModel builds a fresh model for the cell; seed makes it
	// deterministic.
	NewModel(g *genome.MicroGenome, seed int64) (Trainable, error)
	// TrainSamples is the training-set size for the epoch cost model.
	TrainSamples() int
}

// MicroConfig assembles an A4NN run over the micro search space — the
// same workflow (prediction engine, FIFO resource manager, lineage
// tracking, replay) applied to NSGA-Net's cell-based encoding.
type MicroConfig struct {
	// NAS is the NSGA-II configuration.
	NAS nsga.Config
	// Engine configures the prediction engine; nil disables early
	// termination.
	Engine *predict.Config
	// MaxEpochs is the per-network training budget.
	MaxEpochs int
	// CellNodes is the number of DAG nodes per cell (default 3).
	CellNodes int
	// MutationRate is the per-field redraw probability (default 0.15).
	MutationRate float64
	// Devices and Throughput configure the resource manager.
	Devices    int
	Throughput float64
	// Trainer builds models from cells.
	Trainer MicroTrainer
	// Beam labels the dataset variant in lineage records.
	Beam string
	// Store / SnapshotEpochs / Checkpoints / OnModel / ReplayFrom as in
	// Config.
	Store          *commons.Store
	SnapshotEpochs bool
	Checkpoints    bool
	OnModel        func(*ModelResult)
	ReplayFrom     *commons.Store
	// Resume / Faults / Retry / TaskTimeoutSeconds / Obs / Gate as in
	// Config.
	Resume             bool
	Faults             *sched.FaultPlan
	Retry              sched.RetryPolicy
	TaskTimeoutSeconds float64
	Obs                *obs.Observer
	Gate               GenerationGate
}

// Validate reports the first problem with the configuration, or nil.
func (c MicroConfig) Validate() error {
	if err := c.NAS.Validate(); err != nil {
		return err
	}
	if c.Engine != nil {
		if err := c.Engine.Validate(); err != nil {
			return err
		}
	}
	if c.MaxEpochs < 1 {
		return fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", c.MaxEpochs)
	}
	if c.CellNodes < 1 {
		return fmt.Errorf("core: CellNodes must be ≥ 1, got %d", c.CellNodes)
	}
	if c.Devices < 1 {
		return fmt.Errorf("core: Devices must be ≥ 1, got %d", c.Devices)
	}
	if c.Trainer == nil {
		return fmt.Errorf("core: Trainer must be set")
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("core: MutationRate %v outside [0,1]", c.MutationRate)
	}
	return validateFaultKnobs(c.Resume, c.Checkpoints, c.Store != nil, c.ReplayFrom != nil,
		c.Faults, c.Retry, c.TaskTimeoutSeconds)
}

// microOps adapts the micro variation operators to nsga.Operators.
type microOps struct {
	nodes        int
	mutationRate float64
}

func (o microOps) Random(rng *rand.Rand) (*genome.MicroGenome, error) {
	return genome.NewRandomMicro(rng, o.nodes)
}

func (o microOps) Crossover(rng *rand.Rand, a, b *genome.MicroGenome) (*genome.MicroGenome, error) {
	return genome.CrossoverMicro(rng, a, b)
}

func (o microOps) Mutate(rng *rand.Rand, g *genome.MicroGenome) (*genome.MicroGenome, error) {
	return g.Mutate(rng, o.mutationRate), nil
}

// RunMicro executes an A4NN search over the micro search space.
func RunMicro(cfg MicroConfig) (*Result, error) {
	return RunMicroCtx(context.Background(), cfg)
}

// RunMicroCtx is RunMicro with cancellation, mirroring RunCtx.
func RunMicroCtx(ctx context.Context, cfg MicroConfig) (*Result, error) {
	if cfg.CellNodes == 0 {
		cfg.CellNodes = 3
	}
	if cfg.MutationRate == 0 {
		cfg.MutationRate = 0.15
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	replay := nilableStore(cfg.ReplayFrom)
	if cfg.Resume {
		replay = nilableStore(cfg.Store)
	}
	var recovery *RecoveryReport
	if cfg.Resume {
		rep, err := RecoverStore(cfg.Store, cfg.Obs.Journal())
		if err != nil {
			return nil, err
		}
		recovery = rep
	}
	ctx = obs.WithTracer(ctx, cfg.Obs.Tracer())
	r, err := newRunner(runnerParams{
		engineCfg:   cfg.Engine,
		maxEpochs:   cfg.MaxEpochs,
		devices:     cfg.Devices,
		throughput:  cfg.Throughput,
		beam:        cfg.Beam,
		store:       nilableStore(cfg.Store),
		replay:      replay,
		snapshots:   cfg.SnapshotEpochs,
		checkpoints: cfg.Checkpoints,
		resume:      cfg.Resume,
		onModel:     cfg.OnModel,
		samples:     cfg.Trainer.TrainSamples(),
		seed:        cfg.NAS.Seed,
		faults:      cfg.Faults,
		retry:       cfg.Retry,
		taskTimeout: cfg.TaskTimeoutSeconds,
		observer:    cfg.Obs,
		gate:        cfg.Gate,
	})
	if err != nil {
		return nil, err
	}
	r.attachRecovery(recovery)
	r.journal.Emit(obs.Event{Type: obs.EventRunStart, Devices: cfg.Devices, Epochs: cfg.MaxEpochs})

	evaluator := nsga.EvaluatorFunc[*genome.MicroGenome](func(gen int, cands []*genome.MicroGenome) ([][]float64, error) {
		infos := make([]archInfo, len(cands))
		for i, g := range cands {
			infos[i] = archInfo{hash: g.Hash(), encoding: g.String(), micro: g}
		}
		return r.evaluateGeneration(ctx, gen, infos, func(info archInfo, seed int64) (Trainable, error) {
			return cfg.Trainer.NewModel(info.micro, seed)
		})
	})

	ops := microOps{nodes: cfg.CellNodes, mutationRate: cfg.MutationRate}
	nasRes, err := nsga.Run[*genome.MicroGenome](cfg.NAS, ops, evaluator)
	if err != nil {
		r.journal.Emit(obs.Event{Type: obs.EventRunEnd, Err: err.Error()})
		return nil, err
	}
	res := r.finish()
	res.MicroNAS = nasRes
	r.emitRunEnd(res, cfg.MaxEpochs)
	return res, nil
}

// RealMicroTrainer trains decoded micro cells on a real dataset; it is
// the micro-space counterpart of RealTrainer and shares its
// configuration.
type RealMicroTrainer struct {
	cfg        RealTrainerConfig
	train, val *dataset.Dataset
	valBatches []nn.Batch
}

// NewRealMicroTrainer validates the datasets against the decode
// configuration.
func NewRealMicroTrainer(train, val *dataset.Dataset, cfg RealTrainerConfig) (*RealMicroTrainer, error) {
	// Reuse the macro trainer's validation (identical requirements).
	base, err := NewRealTrainer(train, val, cfg)
	if err != nil {
		return nil, err
	}
	return &RealMicroTrainer{cfg: base.cfg, train: base.train, val: base.val, valBatches: base.valBatches}, nil
}

// TrainSamples implements MicroTrainer.
func (t *RealMicroTrainer) TrainSamples() int { return t.train.Len() }

// NewModel implements MicroTrainer.
func (t *RealMicroTrainer) NewModel(g *genome.MicroGenome, seed int64) (Trainable, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := genome.DecodeMicro(g, t.cfg.Decode, rng)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(t.cfg.LR, t.cfg.Momentum, t.cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	flops, err := net.FLOPs()
	if err != nil {
		return nil, err
	}
	proxy := &RealTrainer{cfg: t.cfg, train: t.train, val: t.val, valBatches: t.valBatches}
	return &realModel{trainer: proxy, net: net, opt: opt, rng: rng, flops: flops}, nil
}
