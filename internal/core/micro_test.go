package core

import (
	"fmt"
	"math/rand"
	"testing"

	"a4nn/internal/commons"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/nsga"
	"a4nn/internal/predict"
	"a4nn/internal/xfel"
)

// microCurveTrainer is a deterministic surrogate for micro-workflow tests.
type microCurveTrainer struct{ samples int }

func (t microCurveTrainer) TrainSamples() int { return t.samples }
func (t microCurveTrainer) NewModel(g *genome.MicroGenome, seed int64) (Trainable, error) {
	rng := rand.New(rand.NewSource(seed))
	a := 85 + 14*rng.Float64()
	return &scriptedModel{curve: expCurve(a, 0.4, 1, 100), flops: 1e8 + int64(len(g.OutputNodes()))*1e7}, nil
}

func microTestConfig() MicroConfig {
	engineCfg := predict.DefaultConfig()
	return MicroConfig{
		NAS:       nsga.Config{PopulationSize: 4, Offspring: 4, Generations: 2, Seed: 3},
		Engine:    &engineCfg,
		MaxEpochs: 25,
		CellNodes: 3,
		Devices:   1,
		Trainer:   microCurveTrainer{samples: 100},
		Beam:      "high",
	}
}

func TestRunMicroWorkflow(t *testing.T) {
	res, err := RunMicro(microTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 8 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}
	if res.MicroNAS == nil || res.NAS != nil {
		t.Fatal("micro result must populate MicroNAS only")
	}
	if res.TerminatedEarly == 0 {
		t.Fatal("clean curves must terminate early")
	}
	for _, m := range res.Models {
		if m.Micro == nil || m.Genome != nil {
			t.Fatal("micro models must carry Micro genomes")
		}
		if err := m.Record.Validate(); err != nil {
			t.Fatal(err)
		}
		// The record encodes the cell and decodes back.
		if _, err := genome.ParseMicro(m.Record.Genome); err != nil {
			t.Fatalf("record genome %q: %v", m.Record.Genome, err)
		}
	}
}

func TestRunMicroValidation(t *testing.T) {
	cfg := microTestConfig()
	cfg.Trainer = nil
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("nil trainer must fail")
	}
	cfg = microTestConfig()
	cfg.Devices = 0
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("0 devices must fail")
	}
	cfg = microTestConfig()
	cfg.MaxEpochs = 0
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("0 epochs must fail")
	}
	cfg = microTestConfig()
	cfg.MutationRate = 2
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("mutation rate > 1 must fail")
	}
}

func TestRunMicroReplay(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := microTestConfig()
	cfg.Store = store
	orig, err := RunMicro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay := microTestConfig()
	replay.Trainer = panicMicroTrainer{}
	replay.ReplayFrom = store
	got, err := RunMicro(replay)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != len(orig.Models) {
		t.Fatalf("replayed %d of %d", got.Replayed, len(orig.Models))
	}
}

type panicMicroTrainer struct{}

func (panicMicroTrainer) TrainSamples() int { return 100 }
func (panicMicroTrainer) NewModel(g *genome.MicroGenome, seed int64) (Trainable, error) {
	return nil, fmt.Errorf("replay run attempted to train %s", g.Hash())
}

// TestRealMicroTrainerEndToEnd runs a tiny real-training micro search.
func TestRealMicroTrainerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	params := xfel.DefaultSimulatorParams()
	params.Size = 16
	sim, err := xfel.NewSimulator(3, params)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := sim.GenerateBatch(1, 160, xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewRealMicroTrainer(train, val, RealTrainerConfig{
		Decode: genome.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8}, NumClasses: 2},
		LR:     0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	engineCfg := predict.DefaultConfig()
	engineCfg.EPred = 6
	res, err := RunMicro(MicroConfig{
		NAS:       nsga.Config{PopulationSize: 3, Offspring: 3, Generations: 2, Seed: 5},
		Engine:    &engineCfg,
		MaxEpochs: 6,
		CellNodes: 2,
		Devices:   2,
		Trainer:   trainer,
		Beam:      "high",
	})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, m := range res.Models {
		if m.Fitness > best {
			best = m.Fitness
		}
	}
	if best < 60 {
		t.Fatalf("best micro fitness %v; expected learning", best)
	}
}
