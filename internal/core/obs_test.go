package core

import (
	"testing"

	"a4nn/internal/obs"
)

// TestWorkflowObservability runs a full instrumented search and checks
// that the metrics, spans, and flushed telemetry agree with the
// workflow's own accounting.
func TestWorkflowObservability(t *testing.T) {
	cfg := testConfig()
	cfg.Obs = obs.NewObserver()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	snap := cfg.Obs.Registry().Snapshot()
	wantModels := uint64(len(res.Models))
	if got := snap.Counters["a4nn_train_models_total"]; got != wantModels {
		t.Fatalf("models counter %d, want %d", got, wantModels)
	}
	if got := snap.Counters["a4nn_train_epochs_total"]; got != uint64(res.TotalEpochs) {
		t.Fatalf("epochs counter %d, want %d", got, res.TotalEpochs)
	}
	if got := snap.Counters["a4nn_predictor_terminated_total"]; got != uint64(res.TerminatedEarly) {
		t.Fatalf("terminated counter %d, want %d", got, res.TerminatedEarly)
	}
	if got := snap.Counters["a4nn_sched_tasks_total"]; got != wantModels {
		t.Fatalf("sched tasks counter %d, want %d", got, wantModels)
	}
	if got := snap.Counters["a4nn_sched_generations_total"]; got != uint64(cfg.NAS.Generations) {
		t.Fatalf("generations counter %d, want %d", got, cfg.NAS.Generations)
	}
	if snap.Counters["a4nn_predict_predictions_total"] == 0 {
		t.Fatal("prediction engine recorded no predictions")
	}
	if hs := snap.Histograms["a4nn_sched_task_sim_seconds"]; hs.Count != wantModels {
		t.Fatalf("task latency histogram count %d, want %d", hs.Count, wantModels)
	}
	if hs := snap.Histograms["a4nn_predictor_stop_epoch"]; hs.Count != uint64(res.TerminatedEarly) {
		t.Fatalf("stop-epoch histogram count %d, want %d", hs.Count, res.TerminatedEarly)
	}
	if _, ok := snap.Gauges[`a4nn_sched_device_busy_sim_seconds{device="0"}`]; !ok {
		t.Fatalf("missing per-device busy gauge; gauges %v", snap.Gauges)
	}

	// Span accounting: one generation span per generation, one task span
	// per model, one epoch span per trained epoch.
	spans, dropped := cfg.Obs.Tracer().Snapshot()
	if dropped != 0 {
		t.Fatalf("%d spans dropped in a small run", dropped)
	}
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
	}
	if counts[obs.SpanGeneration] != cfg.NAS.Generations {
		t.Fatalf("%d generation spans, want %d", counts[obs.SpanGeneration], cfg.NAS.Generations)
	}
	if counts[obs.SpanTask] != len(res.Models) {
		t.Fatalf("%d task spans, want %d", counts[obs.SpanTask], len(res.Models))
	}
	if counts[obs.SpanEpoch] != res.TotalEpochs {
		t.Fatalf("%d epoch spans, want %d", counts[obs.SpanEpoch], res.TotalEpochs)
	}
	// Every task span is a child of a generation span, every epoch span
	// a child of a task span.
	byID := map[uint64]obs.SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		switch s.Name {
		case obs.SpanTask:
			if p, ok := byID[s.Parent]; !ok || p.Name != obs.SpanGeneration {
				t.Fatalf("task span %d has parent %+v", s.ID, p)
			}
		case obs.SpanEpoch:
			if p, ok := byID[s.Parent]; !ok || p.Name != obs.SpanTask {
				t.Fatalf("epoch span %d has parent %+v", s.ID, p)
			}
		}
	}

	// Flushed telemetry reproduces the run's savings accounting.
	dir := t.TempDir()
	if err := cfg.Obs.FlushTo(dir); err != nil {
		t.Fatal(err)
	}
	tel, err := obs.LoadTelemetry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tel.Generations) != cfg.NAS.Generations {
		t.Fatalf("telemetry covers %d generations, want %d", len(tel.Generations), cfg.NAS.Generations)
	}
	if tel.EpochsTrained != res.TotalEpochs || tel.Terminated != res.TerminatedEarly {
		t.Fatalf("telemetry epochs=%d terminated=%d, want %d and %d",
			tel.EpochsTrained, tel.Terminated, res.TotalEpochs, res.TerminatedEarly)
	}
	wantSaved := len(res.Models)*cfg.MaxEpochs - res.TotalEpochs
	if tel.EpochsSaved != wantSaved {
		t.Fatalf("telemetry saved=%d, want %d", tel.EpochsSaved, wantSaved)
	}
	for _, g := range tel.Generations {
		if g.Utilisation <= 0 || g.Utilisation > 1 {
			t.Fatalf("generation %d utilisation %v", g.Generation, g.Utilisation)
		}
		if g.WallSeconds <= 0 || g.BusySeconds <= 0 {
			t.Fatalf("generation %d accounting %+v", g.Generation, g)
		}
	}
	if tel.Metrics.Counters["a4nn_train_epochs_total"] != uint64(res.TotalEpochs) {
		t.Fatalf("flushed metrics %+v", tel.Metrics.Counters)
	}
}

// TestWorkflowWithoutObserver pins the disabled path: a nil Config.Obs
// must behave exactly like the uninstrumented workflow.
func TestWorkflowWithoutObserver(t *testing.T) {
	cfg := testConfig()
	cfg.Obs = nil
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) == 0 {
		t.Fatal("no models evaluated")
	}
}
