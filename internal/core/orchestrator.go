package core

import (
	"fmt"
	"time"

	"a4nn/internal/lineage"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// SnapshotSink receives per-epoch model states; the workflow wires it to
// the data commons. epoch is 1-based.
type SnapshotSink func(id string, epoch int, state []byte) error

// Orchestrator runs Algorithm 1 for one model: train an epoch, feed the
// fitness history to the prediction engine, append the prediction, ask
// the analyzer whether predictions converged, and terminate early when
// they have. With a nil engine it degenerates to fixed-budget training —
// the standalone-NAS baseline.
type Orchestrator struct {
	// Engine is the prediction engine; nil disables early termination.
	Engine *predict.Engine
	// MaxEpochs is the NAS's full training budget (Table 2: 25).
	MaxEpochs int
	// Snapshots, when non-nil, receives the model state after every epoch
	// (paper §2.2.2).
	Snapshots SnapshotSink
}

// TrainOutcome summarises one model's training.
type TrainOutcome struct {
	// FinalFitness is Algorithm 1's return value: the converged
	// prediction on early termination, else the last observed fitness.
	FinalFitness float64
	// EpochsTrained is the paper's e_t when Terminated, else MaxEpochs.
	EpochsTrained int
	Terminated    bool
	// SimSeconds is the summed simulated epoch cost on the device.
	SimSeconds float64
	// EngineSeconds is the real (measured) time spent inside the
	// prediction engine, the overhead of §4.3.1.
	EngineSeconds float64
	// Interactions counts prediction-engine invocations.
	Interactions int
	// InteractionSeconds holds each invocation's measured duration.
	InteractionSeconds []float64
}

// TrainModel trains one model under Algorithm 1 on the given device,
// filling rec (which must have its identity fields set) with the per-epoch
// record trail. samples is the training-set size for the epoch cost model.
func (o *Orchestrator) TrainModel(m Trainable, dev sched.Device, samples int, rec *lineage.Record) (*TrainOutcome, error) {
	if o.MaxEpochs < 1 {
		return nil, fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", o.MaxEpochs)
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	epochCost := dev.EpochCost(m.FLOPs(), samples)
	var tracker *predict.Tracker
	if o.Engine != nil {
		tracker = predict.NewTracker(o.Engine)
	}
	out := &TrainOutcome{}
	lastVal := 0.0
	for e := 1; e <= o.MaxEpochs; e++ {
		metrics, err := m.TrainEpoch()
		if err != nil {
			return nil, fmt.Errorf("core: epoch %d of %s: %w", e, rec.ID, err)
		}
		out.SimSeconds += epochCost
		out.EpochsTrained = e
		lastVal = metrics.ValAccuracy
		entry := lineage.EpochEntry{
			Epoch:         e,
			TrainLoss:     metrics.TrainLoss,
			TrainAccuracy: metrics.TrainAccuracy,
			ValAccuracy:   metrics.ValAccuracy,
			SimSeconds:    epochCost,
		}

		converged := false
		if tracker != nil {
			start := time.Now()
			nPred := len(tracker.P)
			converged = tracker.Observe(metrics.ValAccuracy)
			d := time.Since(start).Seconds()
			out.EngineSeconds += d
			out.Interactions++
			out.InteractionSeconds = append(out.InteractionSeconds, d)
			if len(tracker.P) > nPred {
				entry.Prediction = tracker.P[len(tracker.P)-1]
				entry.HasPrediction = true
			}
		}
		if rec != nil {
			rec.Epochs = append(rec.Epochs, entry)
		}
		if o.Snapshots != nil && rec != nil {
			state, err := m.SaveState()
			if err != nil {
				return nil, fmt.Errorf("core: snapshot %s@%d: %w", rec.ID, e, err)
			}
			if err := o.Snapshots(rec.ID, e, state); err != nil {
				return nil, fmt.Errorf("core: store snapshot %s@%d: %w", rec.ID, e, err)
			}
		}
		if converged {
			out.Terminated = true
			break
		}
	}

	// Lines 17–21 of Algorithm 1.
	if out.Terminated {
		if f, ok := tracker.FinalFitness(); ok {
			out.FinalFitness = f
		}
	} else {
		out.FinalFitness = lastVal
	}
	if rec != nil {
		rec.Terminated = out.Terminated
		if out.Terminated {
			rec.TerminationEpoch = len(rec.Epochs)
		}
		rec.FinalFitness = out.FinalFitness
	}
	return out, nil
}
