package core

import (
	"context"
	"fmt"
	"time"

	"a4nn/internal/commons"
	"a4nn/internal/lineage"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// SnapshotSink receives per-epoch model states; the workflow wires it to
// the data commons. epoch is 1-based.
type SnapshotSink func(id string, epoch int, state []byte) error

// CheckpointSink receives the model's full mid-training progress after
// every epoch; the workflow wires it to the commons checkpoint store.
type CheckpointSink func(cp *commons.Checkpoint) error

// TrainStepError marks a failure inside a single training epoch — the
// kind of error (a diverged batch, an OOM on one device) worth retrying
// on different hardware, as opposed to a bad genome or a broken store.
type TrainStepError struct {
	// Epoch is the 1-based epoch that failed.
	Epoch int
	// ID is the lineage record ID of the model being trained.
	ID  string
	Err error
}

func (e *TrainStepError) Error() string {
	return fmt.Sprintf("core: epoch %d of %s: %v", e.Epoch, e.ID, e.Err)
}

func (e *TrainStepError) Unwrap() error { return e.Err }

// Orchestrator runs Algorithm 1 for one model: train an epoch, feed the
// fitness history to the prediction engine, append the prediction, ask
// the analyzer whether predictions converged, and terminate early when
// they have. With a nil engine it degenerates to fixed-budget training —
// the standalone-NAS baseline.
type Orchestrator struct {
	// Engine is the prediction engine; nil disables early termination.
	Engine *predict.Engine
	// MaxEpochs is the NAS's full training budget (Table 2: 25).
	MaxEpochs int
	// Snapshots, when non-nil, receives the model state after every epoch
	// (paper §2.2.2).
	Snapshots SnapshotSink
	// Checkpoint, when non-nil, receives a crash-safe progress checkpoint
	// after every epoch, so a killed run resumes mid-model instead of
	// retraining from epoch 1.
	Checkpoint CheckpointSink
	// ResumeFrom, when non-nil, rehydrates the training loop from a prior
	// run's checkpoint: accounting, the record trail, and the prediction
	// engine's fit state resume where the crash cut them off. The model
	// itself must already be restored (ResumeModel) before TrainModel.
	ResumeFrom *commons.Checkpoint
	// Seed is the seed the model was built with, recorded into
	// checkpoints so a resumed run rebuilds the identical model.
	Seed int64
	// SlowFactor ≥ 1 inflates the simulated per-epoch cost — the
	// scheduler sets it when fault injection marks the device a
	// straggler for this generation. 0 means 1 (no slowdown).
	SlowFactor float64
	// DeadlineSeconds, when > 0, aborts training with a transient
	// sched.ErrDeadline once the accumulated simulated cost exceeds it,
	// so the scheduler can re-dispatch the model to another device.
	DeadlineSeconds float64
	// Obs, when non-nil, receives per-epoch and per-model metric events;
	// nil disables instrumentation at the cost of one branch per event.
	Obs *Instruments
}

// TrainOutcome summarises one model's training.
type TrainOutcome struct {
	// FinalFitness is Algorithm 1's return value: the converged
	// prediction on early termination, else the last observed fitness.
	FinalFitness float64
	// EpochsTrained is the paper's e_t when Terminated, else MaxEpochs.
	EpochsTrained int
	Terminated    bool
	// SimSeconds is the summed simulated epoch cost on the device.
	SimSeconds float64
	// EngineSeconds is the real (measured) time spent inside the
	// prediction engine, the overhead of §4.3.1.
	EngineSeconds float64
	// Interactions counts prediction-engine invocations.
	Interactions int
	// InteractionSeconds holds each invocation's measured duration.
	InteractionSeconds []float64
}

// recID names a record in error messages, tolerating the nil record
// TrainModel accepts.
func recID(rec *lineage.Record) string {
	if rec == nil {
		return "<unrecorded>"
	}
	return rec.ID
}

// TrainModel trains one model under Algorithm 1 on the given device,
// filling rec (which must have its identity fields set) with the per-epoch
// record trail. samples is the training-set size for the epoch cost model.
//
// ctx is checked between epochs, so cancellation stops in-flight training
// promptly rather than only between tasks. On a deadline abort the
// partial outcome is returned alongside the transient error so the
// scheduler can account for the lost simulated time.
func (o *Orchestrator) TrainModel(ctx context.Context, m Trainable, dev sched.Device, samples int, rec *lineage.Record) (*TrainOutcome, error) {
	if o.MaxEpochs < 1 {
		return nil, fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", o.MaxEpochs)
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	epochCost := dev.EpochCost(m.FLOPs(), samples)
	if o.SlowFactor > 1 {
		epochCost *= o.SlowFactor
	}
	var evModel string
	var evGen int
	if rec != nil {
		evModel, evGen = rec.ID, rec.Generation
	}
	var tracker *predict.Tracker
	if o.Engine != nil {
		tracker = predict.NewTracker(o.Engine)
		tracker.Label, tracker.Gen = evModel, evGen
	}
	out := &TrainOutcome{}
	lastVal := 0.0
	start := 1
	resumedSim := 0.0
	if cp := o.ResumeFrom; cp != nil {
		// Rehydrate the loop state the crash cut off: accounting totals,
		// the record's epoch trail, and the prediction engine's H/P fit
		// state, then continue from the next epoch. A checkpoint taken at
		// the convergence epoch resumes straight to the final fitness.
		out.SimSeconds = cp.SimSeconds
		out.EpochsTrained = cp.Epoch
		out.EngineSeconds = cp.EngineSeconds
		out.Interactions = cp.Interactions
		out.InteractionSeconds = append([]float64(nil), cp.InteractionSeconds...)
		resumedSim = cp.SimSeconds
		if h := cp.History(); len(h) > 0 {
			lastVal = h[len(h)-1]
		}
		if tracker != nil {
			p, predEpochs := cp.Predictions()
			tracker.Restore(cp.History(), p, predEpochs, cp.Terminated)
		}
		if rec != nil {
			rec.Epochs = append([]lineage.EpochEntry(nil), cp.Epochs...)
		}
		start = cp.Epoch + 1
		if cp.Terminated && tracker != nil {
			out.Terminated = true
			start = o.MaxEpochs + 1 // nothing left to train
		}
		o.Obs.events().Emit(obs.Event{
			Type:  obs.EventModelResume,
			Gen:   evGen,
			Model: evModel,
			Epoch: cp.Epoch,
		})
	}
	for e := start; e <= o.MaxEpochs; e++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("core: training %s canceled at epoch %d: %w", recID(rec), e, err)
		}
		// The epoch span measures the real epoch duration (training plus
		// any prediction-engine interaction); the simulated cost travels
		// as an attribute. With no tracer in ctx this is free.
		_, espan := obs.StartSpan(ctx, obs.SpanEpoch)
		espan.SetInt("epoch", e)
		metrics, err := m.TrainEpoch()
		if err != nil {
			espan.SetAttr("error", err.Error())
			espan.End()
			return out, &TrainStepError{Epoch: e, ID: recID(rec), Err: err}
		}
		out.SimSeconds += epochCost
		out.EpochsTrained = e
		lastVal = metrics.ValAccuracy
		// A straggler past its deadline gives the work back to the
		// scheduler for re-dispatch instead of dragging the generation
		// barrier — nothing has been committed to the record store yet.
		if o.DeadlineSeconds > 0 && out.SimSeconds-resumedSim > o.DeadlineSeconds {
			espan.SetAttr("error", "deadline")
			espan.SetFloat("sim_s", epochCost)
			espan.End()
			return out, sched.Transient("deadline",
				fmt.Errorf("core: %s at epoch %d: %.1f sim-seconds over %.1f: %w",
					recID(rec), e, out.SimSeconds, o.DeadlineSeconds, sched.ErrDeadline))
		}
		entry := lineage.EpochEntry{
			Epoch:         e,
			TrainLoss:     metrics.TrainLoss,
			TrainAccuracy: metrics.TrainAccuracy,
			ValAccuracy:   metrics.ValAccuracy,
			SimSeconds:    epochCost,
		}

		converged := false
		if tracker != nil {
			start := time.Now()
			nPred := len(tracker.P)
			converged = tracker.Observe(metrics.ValAccuracy)
			d := time.Since(start).Seconds()
			out.EngineSeconds += d
			out.Interactions++
			out.InteractionSeconds = append(out.InteractionSeconds, d)
			if len(tracker.P) > nPred {
				entry.Prediction = tracker.P[len(tracker.P)-1]
				entry.HasPrediction = true
			}
		}
		espan.SetFloat("val_acc", metrics.ValAccuracy)
		espan.SetFloat("sim_s", epochCost)
		espan.End()
		o.Obs.observeEpoch(epochCost, metrics.ValAccuracy)
		o.Obs.events().Emit(obs.Event{
			Type:       obs.EventEpoch,
			Gen:        evGen,
			Model:      evModel,
			Epoch:      e,
			ValAcc:     metrics.ValAccuracy,
			Loss:       metrics.TrainLoss,
			SimSeconds: epochCost,
		})
		if rec != nil {
			rec.Epochs = append(rec.Epochs, entry)
		}
		if (o.Snapshots != nil || o.Checkpoint != nil) && rec != nil {
			state, err := m.SaveState()
			if err != nil {
				return out, fmt.Errorf("core: snapshot %s@%d: %w", rec.ID, e, err)
			}
			if o.Snapshots != nil {
				if err := o.Snapshots(rec.ID, e, state); err != nil {
					return out, fmt.Errorf("core: store snapshot %s@%d: %w", rec.ID, e, err)
				}
			}
			if o.Checkpoint != nil {
				cp := &commons.Checkpoint{
					ID:                 rec.ID,
					Genome:             rec.Genome,
					Generation:         rec.Generation,
					Seed:               o.Seed,
					Epoch:              e,
					Terminated:         converged,
					State:              state,
					StateDigest:        commons.StateDigest(state),
					Epochs:             append([]lineage.EpochEntry(nil), rec.Epochs...),
					SimSeconds:         out.SimSeconds,
					EngineSeconds:      out.EngineSeconds,
					Interactions:       out.Interactions,
					InteractionSeconds: append([]float64(nil), out.InteractionSeconds...),
					SavedAt:            time.Now(),
				}
				if err := o.Checkpoint(cp); err != nil {
					return out, fmt.Errorf("core: checkpoint %s@%d: %w", rec.ID, e, err)
				}
			}
		}
		if converged {
			out.Terminated = true
			break
		}
	}

	// Lines 17–21 of Algorithm 1.
	if out.Terminated {
		if f, ok := tracker.FinalFitness(); ok {
			out.FinalFitness = f
		}
		// The event of record for the paper's headline mechanism: the
		// engine's converged prediction next to the accuracy actually
		// observed at the termination epoch.
		o.Obs.events().Emit(obs.Event{
			Type:        obs.EventPredictTerminate,
			Gen:         evGen,
			Model:       evModel,
			Predicted:   out.FinalFitness,
			Actual:      lastVal,
			Epochs:      out.EpochsTrained,
			SavedEpochs: o.MaxEpochs - out.EpochsTrained,
		})
	} else {
		out.FinalFitness = lastVal
	}
	if rec != nil {
		rec.Terminated = out.Terminated
		if out.Terminated {
			rec.TerminationEpoch = len(rec.Epochs)
		}
		rec.FinalFitness = out.FinalFitness
	}
	o.Obs.observeModel(out, o.MaxEpochs)
	o.Obs.events().Emit(obs.Event{
		Type:       obs.EventModelDone,
		Gen:        evGen,
		Model:      evModel,
		Fitness:    out.FinalFitness,
		Epochs:     out.EpochsTrained,
		Terminated: out.Terminated,
		SimSeconds: out.SimSeconds,
	})
	// Annotate the scheduler's task span (when one encloses this call)
	// with the training outcome, so per-generation telemetry can report
	// prediction savings without re-reading lineage records.
	if ts := obs.SpanFromContext(ctx); ts != nil {
		ts.SetInt("epochs", out.EpochsTrained)
		ts.SetInt("saved", o.MaxEpochs-out.EpochsTrained)
		ts.SetBool("terminated", out.Terminated)
		ts.SetFloat("fitness", out.FinalFitness)
		ts.SetFloat("engine_s", out.EngineSeconds)
	}
	return out, nil
}
