package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"a4nn/internal/lineage"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// scriptedModel replays a fixed fitness curve.
type scriptedModel struct {
	curve []float64
	i     int
	flops int64
}

func (m *scriptedModel) TrainEpoch() (EpochMetrics, error) {
	if m.i >= len(m.curve) {
		return EpochMetrics{}, fmt.Errorf("curve exhausted at epoch %d", m.i+1)
	}
	v := m.curve[m.i]
	m.i++
	return EpochMetrics{TrainLoss: 1 / float64(m.i), TrainAccuracy: v + 1, ValAccuracy: v}, nil
}
func (m *scriptedModel) SaveState() ([]byte, error) { return []byte{byte(m.i)}, nil }
func (m *scriptedModel) FLOPs() int64               { return m.flops }
func (m *scriptedModel) NumParams() int             { return 10 }
func (m *scriptedModel) Describe() string           { return "scripted" }

// expCurve generates the paper family a − b^(c−e).
func expCurve(a, beta, c float64, n int) []float64 {
	out := make([]float64, n)
	for e := 1; e <= n; e++ {
		out[e-1] = a - math.Exp(beta*(c-float64(e)))
	}
	return out
}

func newRecord(id string) *lineage.Record {
	return &lineage.Record{ID: id, Genome: "0000000"}
}

func TestOrchestratorStandaloneTrainsFullBudget(t *testing.T) {
	m := &scriptedModel{curve: expCurve(90, 0.5, 1, 25), flops: 1e6}
	orch := &Orchestrator{MaxEpochs: 25}
	rec := newRecord("m")
	out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 100, rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Terminated || out.EpochsTrained != 25 {
		t.Fatalf("standalone outcome %+v", out)
	}
	if len(rec.Epochs) != 25 {
		t.Fatalf("record has %d epochs", len(rec.Epochs))
	}
	// Final fitness = last observed value (Algorithm 1 line 20).
	want := m.curve[24]
	if math.Abs(out.FinalFitness-want) > 1e-12 {
		t.Fatalf("final fitness %v, want %v", out.FinalFitness, want)
	}
	// Simulated time: 25 epochs × (1e6·100·3/1e9) s.
	wantSim := 25 * sched.Device{Throughput: 1e9}.EpochCost(1e6, 100)
	if math.Abs(out.SimSeconds-wantSim) > 1e-9 {
		t.Fatalf("sim seconds %v, want %v", out.SimSeconds, wantSim)
	}
	if out.Interactions != 0 || out.EngineSeconds != 0 {
		t.Fatal("standalone run must not touch the engine")
	}
}

func TestOrchestratorTerminatesEarlyWithEngine(t *testing.T) {
	eng, err := predict.NewEngine(predict.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := &scriptedModel{curve: expCurve(92, 0.5, 1, 25), flops: 1e6}
	orch := &Orchestrator{Engine: eng, MaxEpochs: 25}
	rec := newRecord("m")
	out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 100, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Terminated {
		t.Fatal("clean curve must terminate early")
	}
	if out.EpochsTrained >= 25 {
		t.Fatalf("terminated only at %d", out.EpochsTrained)
	}
	if rec.TerminationEpoch != out.EpochsTrained || !rec.Terminated {
		t.Fatalf("record termination mismatch: %+v", rec)
	}
	// Final fitness is the converged prediction ≈ asymptote.
	if math.Abs(out.FinalFitness-92) > 1.5 {
		t.Fatalf("predicted final fitness %v, want ≈92", out.FinalFitness)
	}
	if out.Interactions != out.EpochsTrained {
		t.Fatalf("interactions %d for %d epochs", out.Interactions, out.EpochsTrained)
	}
	if len(out.InteractionSeconds) != out.Interactions {
		t.Fatal("per-interaction timings missing")
	}
	// Record must carry predictions from CMin onward.
	if !rec.Epochs[len(rec.Epochs)-1].HasPrediction {
		t.Fatal("final epoch entry lacks prediction")
	}
}

func TestOrchestratorSnapshotsEveryEpoch(t *testing.T) {
	var got []string
	sink := func(id string, epoch int, state []byte) error {
		got = append(got, fmt.Sprintf("%s@%d:%d", id, epoch, len(state)))
		return nil
	}
	m := &scriptedModel{curve: expCurve(90, 0.2, 1, 5), flops: 1e6}
	orch := &Orchestrator{MaxEpochs: 5, Snapshots: sink}
	rec := newRecord("snap")
	if _, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 10, rec); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(got))
	}
	if got[2] != "snap@3:1" {
		t.Fatalf("snapshot record %q", got[2])
	}
}

func TestOrchestratorSnapshotErrorPropagates(t *testing.T) {
	sink := func(id string, epoch int, state []byte) error { return fmt.Errorf("disk full") }
	m := &scriptedModel{curve: expCurve(90, 0.2, 1, 5), flops: 1e6}
	orch := &Orchestrator{MaxEpochs: 5, Snapshots: sink}
	if _, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 10, newRecord("x")); err == nil {
		t.Fatal("snapshot error must propagate")
	}
}

func TestOrchestratorValidation(t *testing.T) {
	orch := &Orchestrator{MaxEpochs: 0}
	if _, err := orch.TrainModel(context.Background(), &scriptedModel{}, sched.Device{}, 1, nil); err == nil {
		t.Fatal("MaxEpochs=0 must fail")
	}
	orch = &Orchestrator{MaxEpochs: 5}
	if _, err := orch.TrainModel(context.Background(), nil, sched.Device{}, 1, nil); err == nil {
		t.Fatal("nil model must fail")
	}
}

func TestOrchestratorTrainErrorPropagates(t *testing.T) {
	m := &scriptedModel{curve: expCurve(90, 0.2, 1, 2), flops: 1e6} // exhausts at epoch 3
	orch := &Orchestrator{MaxEpochs: 10}
	if _, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 10, newRecord("x")); err == nil {
		t.Fatal("training error must propagate")
	}
}

func TestOrchestratorNilRecordAllowed(t *testing.T) {
	m := &scriptedModel{curve: expCurve(88, 0.3, 1, 25), flops: 1e6}
	orch := &Orchestrator{MaxEpochs: 25}
	out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.FinalFitness-m.curve[24]) > 1e-12 {
		t.Fatalf("final fitness %v without record", out.FinalFitness)
	}
}
