package core

import (
	"fmt"
	"math/rand"

	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/nn"
)

// RealTrainerConfig configures genuine gradient-descent training of
// decoded genomes.
type RealTrainerConfig struct {
	// Decode shapes the decoded networks (input, phase widths, classes).
	Decode genome.DecodeConfig
	// BatchSize for SGD (default 32).
	BatchSize int
	// LR and Momentum for the SGD optimizer (defaults 0.05, 0.9).
	LR, Momentum float64
	// WeightDecay is the L2 penalty (default 0).
	WeightDecay float64
	// EvalTrainSubset caps the samples used to estimate training accuracy
	// each epoch (0 = 512); validation always uses the full split.
	EvalTrainSubset int
	// Scheduler, when non-nil, sets the learning rate before each epoch
	// (e.g. nn.CosineLR, the schedule NSGA-Net trains with). The LR field
	// is then only the optimizer's initial rate.
	Scheduler nn.LRScheduler
	// ClipNorm, when positive, clips the global gradient norm before each
	// optimizer step.
	ClipNorm float64
}

func (c *RealTrainerConfig) withDefaults() RealTrainerConfig {
	r := *c
	if r.BatchSize == 0 {
		r.BatchSize = 32
	}
	if r.LR == 0 {
		r.LR = 0.05
	}
	if r.Momentum == 0 {
		r.Momentum = 0.9
	}
	if r.EvalTrainSubset == 0 {
		r.EvalTrainSubset = 512
	}
	return r
}

// RealTrainer trains decoded genomes on a real dataset with the
// from-scratch NN engine. It is safe for concurrent NewModel calls; the
// underlying datasets are shared read-only.
type RealTrainer struct {
	cfg        RealTrainerConfig
	train, val *dataset.Dataset
	valBatches []nn.Batch
}

// NewRealTrainer validates the datasets against the decode configuration.
func NewRealTrainer(train, val *dataset.Dataset, cfg RealTrainerConfig) (*RealTrainer, error) {
	c := cfg.withDefaults()
	if train == nil || val == nil {
		return nil, fmt.Errorf("core: RealTrainer needs train and val datasets")
	}
	if train.Len() == 0 || val.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset (train %d, val %d)", train.Len(), val.Len())
	}
	ts := train.SampleShape()
	if len(ts) != 3 || len(c.Decode.InShape) != 3 ||
		ts[0] != c.Decode.InShape[0] || ts[1] != c.Decode.InShape[1] || ts[2] != c.Decode.InShape[2] {
		return nil, fmt.Errorf("core: dataset sample shape %v does not match decode input %v", ts, c.Decode.InShape)
	}
	if train.NumClasses > c.Decode.NumClasses {
		return nil, fmt.Errorf("core: dataset has %d classes but decoder emits %d", train.NumClasses, c.Decode.NumClasses)
	}
	valBatches, err := val.Batches(c.BatchSize, nil)
	if err != nil {
		return nil, err
	}
	return &RealTrainer{cfg: c, train: train, val: val, valBatches: valBatches}, nil
}

// TrainSamples implements Trainer.
func (t *RealTrainer) TrainSamples() int { return t.train.Len() }

// NewModel implements Trainer.
func (t *RealTrainer) NewModel(g *genome.Genome, seed int64) (Trainable, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := genome.Decode(g, t.cfg.Decode, rng)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(t.cfg.LR, t.cfg.Momentum, t.cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	flops, err := net.FLOPs()
	if err != nil {
		return nil, err
	}
	return &realModel{trainer: t, net: net, opt: opt, rng: rng, flops: flops}, nil
}

// realModel is one decoded network mid-training.
type realModel struct {
	trainer *RealTrainer
	net     *nn.Network
	opt     nn.Optimizer
	rng     *rand.Rand
	flops   int64
	epoch   int
}

// TrainEpoch implements Trainable.
func (m *realModel) TrainEpoch() (EpochMetrics, error) {
	m.epoch++
	if s := m.trainer.cfg.Scheduler; s != nil {
		if set, ok := m.opt.(nn.SetLR); ok {
			set.SetLR(s.LR(m.epoch))
		}
	}
	batches, err := m.trainer.train.Batches(m.trainer.cfg.BatchSize, m.rng)
	if err != nil {
		return EpochMetrics{}, err
	}
	loss, err := nn.TrainEpochClipped(m.net, m.opt, batches, m.trainer.cfg.ClipNorm)
	if err != nil {
		return EpochMetrics{}, err
	}
	trainAcc, err := m.trainAccuracy()
	if err != nil {
		return EpochMetrics{}, err
	}
	valAcc, err := nn.EvaluateClassifier(m.net, m.trainer.valBatches)
	if err != nil {
		return EpochMetrics{}, err
	}
	return EpochMetrics{TrainLoss: loss, TrainAccuracy: trainAcc, ValAccuracy: valAcc}, nil
}

// trainAccuracy estimates training accuracy on a bounded subset.
func (m *realModel) trainAccuracy() (float64, error) {
	n := m.trainer.train.Len()
	cap := m.trainer.cfg.EvalTrainSubset
	if n <= cap {
		batches, err := m.trainer.train.Batches(m.trainer.cfg.BatchSize, nil)
		if err != nil {
			return 0, err
		}
		return nn.EvaluateClassifier(m.net, batches)
	}
	idx := make([]int, cap)
	stride := n / cap
	for i := range idx {
		idx[i] = i * stride
	}
	sub, err := m.trainer.train.Subset(idx)
	if err != nil {
		return 0, err
	}
	batches, err := sub.Batches(m.trainer.cfg.BatchSize, nil)
	if err != nil {
		return 0, err
	}
	return nn.EvaluateClassifier(m.net, batches)
}

// SaveState implements Trainable.
func (m *realModel) SaveState() ([]byte, error) { return m.net.SaveState() }

// RestoreState implements Resumable: reload serialized weights and jump
// the epoch counter so LR schedules continue where the crash left off.
func (m *realModel) RestoreState(state []byte, epoch int) error {
	if err := m.net.LoadState(state); err != nil {
		return err
	}
	m.epoch = epoch
	return nil
}

// FLOPs implements Trainable.
func (m *realModel) FLOPs() int64 { return m.flops }

// NumParams implements Trainable.
func (m *realModel) NumParams() int { return m.net.NumParams() }

// Describe implements Trainable.
func (m *realModel) Describe() string { return m.net.Describe() }
