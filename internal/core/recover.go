package core

// Corruption recovery: the preflight a resumed run performs before
// touching the search. Every record and checkpoint on disk is decoded;
// torn or tampered files are quarantined with a typed reason, stale
// checkpoints (their record already committed) are removed, and the
// model index is rebuilt — cross-checked against events.jsonl, whose
// model_done events reveal records the dying run committed in memory
// but lost on disk. Each action is surfaced as a recovery journal
// event, which the health engine turns into alerts.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"a4nn/internal/commons"
	"a4nn/internal/obs"
)

// QuarantinedFile describes one corrupt file moved aside by recovery.
type QuarantinedFile struct {
	// ID is the record or checkpoint ID.
	ID string `json:"id"`
	// Kind is "record" or "checkpoint".
	Kind string `json:"kind"`
	// Reason is the typed corruption reason (checksum, truncated, ...).
	Reason string `json:"reason"`
	// Path is where the file now lives, under .corrupt/.
	Path string `json:"path"`
}

// RecoveryReport summarises a store recovery pass.
type RecoveryReport struct {
	// Records is the number of valid records indexed.
	Records int `json:"records"`
	// Checkpoints is the number of valid mid-training checkpoints kept.
	Checkpoints int `json:"checkpoints"`
	// Quarantined lists the corrupt files moved aside.
	Quarantined []QuarantinedFile `json:"quarantined,omitempty"`
	// StaleCheckpoints counts checkpoints deleted because their model's
	// record had already committed (a crash between commit and cleanup).
	StaleCheckpoints int `json:"stale_checkpoints,omitempty"`
	// LostRecords lists models the event journal saw finish but whose
	// records are missing from disk; the resumed search retrains them.
	LostRecords []string `json:"lost_records,omitempty"`
}

// Clean reports whether recovery found nothing to repair.
func (r *RecoveryReport) Clean() bool {
	return r == nil || (len(r.Quarantined) == 0 && r.StaleCheckpoints == 0 && len(r.LostRecords) == 0)
}

// indexEntry is one model in the rebuilt index.json.
type indexEntry struct {
	ID         string  `json:"id"`
	Generation int     `json:"gen"`
	Fitness    float64 `json:"fitness"`
	Epochs     int     `json:"epochs"`
	Terminated bool    `json:"terminated,omitempty"`
}

// RecoverStore scans a commons store for crash damage and repairs what
// it can, emitting one recovery event per action into journal (nil-safe)
// and atomically rebuilding <root>/index.json. It is idempotent: a
// second pass over a recovered store finds nothing.
func RecoverStore(store *commons.Store, journal *obs.Journal) (*RecoveryReport, error) {
	if store == nil {
		return nil, fmt.Errorf("core: RecoverStore needs a store")
	}
	rep := &RecoveryReport{}
	note := func(id, kind string, cause error) {
		reason := commons.CorruptionReason(cause)
		var move func(string, string) (string, error)
		if kind == "record" {
			move = store.QuarantineRecord
		} else {
			move = store.QuarantineCheckpoint
		}
		dest, err := move(id, reason)
		if err != nil {
			return
		}
		rep.Quarantined = append(rep.Quarantined, QuarantinedFile{ID: id, Kind: kind, Reason: reason, Path: dest})
		journal.Emit(obs.Event{
			Type:   obs.EventRecovery,
			Model:  id,
			Reason: reason,
			Path:   dest,
			Msg:    fmt.Sprintf("quarantined corrupt %s %s (%s)", kind, id, reason),
		})
	}

	ids, err := store.List()
	if err != nil {
		return nil, err
	}
	valid := make(map[string]*indexEntry, len(ids))
	for _, id := range ids {
		rec, err := store.GetRecord(id)
		if err != nil {
			note(id, "record", err)
			continue
		}
		valid[id] = &indexEntry{
			ID:         id,
			Generation: rec.Generation,
			Fitness:    rec.FinalFitness,
			Epochs:     rec.EpochsTrained(),
			Terminated: rec.Terminated,
		}
	}
	rep.Records = len(valid)

	ckpts, err := store.Checkpoints()
	if err != nil {
		return nil, err
	}
	for _, id := range ckpts {
		if _, err := store.GetCheckpoint(id); err != nil {
			note(id, "checkpoint", err)
			continue
		}
		if _, done := valid[id]; done {
			// The record committed; the crash hit between commit and
			// checkpoint cleanup.
			if err := store.DeleteCheckpoint(id); err == nil {
				rep.StaleCheckpoints++
				journal.Emit(obs.Event{
					Type:   obs.EventRecovery,
					Model:  id,
					Reason: "stale",
					Msg:    fmt.Sprintf("removed stale checkpoint %s (record already committed)", id),
				})
			}
			continue
		}
		rep.Checkpoints++
	}

	// Cross-check against the event journal: a model_done event without
	// a record on disk is work the dying run lost (e.g. a crash straight
	// after the journal append). Those models retrain; the index notes
	// them so operators can see what the crash cost.
	eventsPath := filepath.Join(store.Root(), obs.EventsFile)
	if events, err := obs.ReadEvents(eventsPath); err == nil {
		seen := map[string]bool{}
		for _, e := range events {
			if e.Type != obs.EventModelDone || e.Model == "" || seen[e.Model] {
				continue
			}
			seen[e.Model] = true
			if _, ok := valid[e.Model]; !ok {
				rep.LostRecords = append(rep.LostRecords, e.Model)
			}
		}
		sort.Strings(rep.LostRecords)
		for _, id := range rep.LostRecords {
			journal.Emit(obs.Event{
				Type:   obs.EventRecovery,
				Model:  id,
				Reason: "lost",
				Msg:    fmt.Sprintf("journal saw %s finish but its record is missing; it will retrain", id),
			})
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("core: recovery journal scan: %w", err)
	}

	entries := make([]*indexEntry, 0, len(valid))
	for _, e := range valid {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	index := struct {
		Records     int           `json:"records"`
		Checkpoints int           `json:"checkpoints"`
		Lost        []string      `json:"lost,omitempty"`
		Models      []*indexEntry `json:"models"`
	}{Records: rep.Records, Checkpoints: rep.Checkpoints, Lost: rep.LostRecords, Models: entries}
	data, err := json.MarshalIndent(index, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: marshal index: %w", err)
	}
	if err := store.WriteIndex(data); err != nil {
		return nil, err
	}
	return rep, nil
}
