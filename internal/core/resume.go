package core

// Mid-training resume: advancing a freshly built model to the epoch a
// checkpoint recorded. Trainers that can deserialise their state do so
// natively (Resumable); surrogate trainers, whose curve state includes
// an unserialisable RNG, are fast-forwarded by replaying TrainEpoch —
// deterministic trainers reproduce the identical drift stream from the
// same seed. Either way the resulting state is digest-verified against
// the checkpoint before training continues, so a checkpoint that lies
// about its model is quarantined instead of silently trusted.

import (
	"errors"
	"fmt"

	"a4nn/internal/commons"
)

// Resumable is implemented by Trainables that can restore serialized
// state directly (e.g. real gradient-descent models reloading weights);
// models without it are fast-forwarded by replaying TrainEpoch.
type Resumable interface {
	// RestoreState loads the state produced by SaveState after the given
	// number of completed epochs.
	RestoreState(state []byte, epoch int) error
}

// ResumeModel advances a freshly built model (same genome, same seed as
// the checkpointed one) to cp.Epoch. A failure — restore error, or a
// state digest that does not match the checkpoint's — means the
// checkpoint cannot be trusted; the caller quarantines it and trains
// fresh.
func ResumeModel(m Trainable, cp *commons.Checkpoint) error {
	if rs, ok := m.(Resumable); ok && len(cp.State) > 0 {
		if cp.StateDigest != 0 && commons.StateDigest(cp.State) != cp.StateDigest {
			return &commons.CorruptionError{Path: cp.ID, Reason: "digest",
				Err: errors.New("checkpoint state does not match its digest")}
		}
		if err := rs.RestoreState(cp.State, cp.Epoch); err != nil {
			return fmt.Errorf("core: restore %s at epoch %d: %w", cp.ID, cp.Epoch, err)
		}
		return nil
	}
	for e := 1; e <= cp.Epoch; e++ {
		if _, err := m.TrainEpoch(); err != nil {
			return fmt.Errorf("core: fast-forward %s to epoch %d: %w", cp.ID, e, err)
		}
	}
	if cp.StateDigest != 0 {
		state, err := m.SaveState()
		if err != nil {
			return fmt.Errorf("core: verify fast-forward of %s: %w", cp.ID, err)
		}
		if commons.StateDigest(state) != cp.StateDigest {
			return &commons.CorruptionError{Path: cp.ID, Reason: "digest",
				Err: errors.New("fast-forwarded state diverges from checkpoint")}
		}
	}
	return nil
}
