package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"a4nn/internal/chaos"
	"a4nn/internal/commons"
	"a4nn/internal/lineage"
	"a4nn/internal/obs"
	"a4nn/internal/sched"
)

// resumableModel wraps scriptedModel with a native state restore, for
// testing the Resumable fast path.
type resumableModel struct {
	scriptedModel
	restored int
}

func (m *resumableModel) RestoreState(state []byte, epoch int) error {
	m.i = int(state[0])
	m.restored = epoch
	return nil
}

func TestOrchestratorCheckpointSink(t *testing.T) {
	var cps []*commons.Checkpoint
	m := &scriptedModel{curve: expCurve(90, 0.5, 1, 25), flops: 1e6}
	orch := &Orchestrator{
		MaxEpochs: 10,
		Seed:      1234,
		Checkpoint: func(cp *commons.Checkpoint) error {
			cps = append(cps, cp)
			return nil
		},
	}
	rec := newRecord("m")
	out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 100, rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.EpochsTrained != 10 || len(cps) != 10 {
		t.Fatalf("trained %d epochs, %d checkpoints", out.EpochsTrained, len(cps))
	}
	for i, cp := range cps {
		if err := cp.Validate(); err != nil {
			t.Fatalf("checkpoint %d invalid: %v", i, err)
		}
		if cp.Epoch != i+1 || cp.ID != "m" || cp.Seed != 1234 {
			t.Fatalf("checkpoint %d: epoch %d id %q seed %d", i, cp.Epoch, cp.ID, cp.Seed)
		}
		if commons.StateDigest(cp.State) != cp.StateDigest {
			t.Fatalf("checkpoint %d digest mismatch", i)
		}
		if len(cp.History()) != cp.Epoch {
			t.Fatalf("checkpoint %d history length %d", i, len(cp.History()))
		}
	}
}

// TestOrchestratorResumeMatchesFullRun: training interrupted at epoch k
// and resumed from the checkpoint produces the same record, accounting,
// and fitness as uninterrupted training.
func TestOrchestratorResumeMatchesFullRun(t *testing.T) {
	curve := expCurve(92, 0.5, 1, 25)
	full := &scriptedModel{curve: curve, flops: 1e6}
	fullRec := newRecord("m")
	fullOut, err := (&Orchestrator{MaxEpochs: 20}).TrainModel(
		context.Background(), full, sched.Device{Throughput: 1e9}, 100, fullRec)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted attempt: capture the checkpoint at epoch 7.
	var cp *commons.Checkpoint
	m := &scriptedModel{curve: curve, flops: 1e6}
	orch := &Orchestrator{MaxEpochs: 20, Checkpoint: func(c *commons.Checkpoint) error {
		if c.Epoch == 7 {
			cp = c
		}
		return nil
	}}
	if _, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e9}, 100, newRecord("m")); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured at epoch 7")
	}

	// Resume: fresh model fast-forwarded to the checkpoint, then handed
	// to an orchestrator with ResumeFrom.
	fresh := &scriptedModel{curve: curve, flops: 1e6}
	if err := ResumeModel(fresh, cp); err != nil {
		t.Fatal(err)
	}
	resRec := newRecord("m")
	resOut, err := (&Orchestrator{MaxEpochs: 20, ResumeFrom: cp}).TrainModel(
		context.Background(), fresh, sched.Device{Throughput: 1e9}, 100, resRec)
	if err != nil {
		t.Fatal(err)
	}
	if resOut.EpochsTrained != fullOut.EpochsTrained {
		t.Fatalf("resumed epochs %d, full %d", resOut.EpochsTrained, fullOut.EpochsTrained)
	}
	if resOut.SimSeconds != fullOut.SimSeconds {
		t.Fatalf("resumed sim %v, full %v", resOut.SimSeconds, fullOut.SimSeconds)
	}
	if resOut.FinalFitness != fullOut.FinalFitness {
		t.Fatalf("resumed fitness %v, full %v", resOut.FinalFitness, fullOut.FinalFitness)
	}
	if len(resRec.Epochs) != len(fullRec.Epochs) {
		t.Fatalf("resumed record has %d epochs, full %d", len(resRec.Epochs), len(fullRec.Epochs))
	}
	for i := range fullRec.Epochs {
		if resRec.Epochs[i].ValAccuracy != fullRec.Epochs[i].ValAccuracy {
			t.Fatalf("epoch %d diverged: %v vs %v",
				i+1, resRec.Epochs[i].ValAccuracy, fullRec.Epochs[i].ValAccuracy)
		}
	}
}

func TestResumeModelNativeRestore(t *testing.T) {
	state := []byte{9}
	cp := &commons.Checkpoint{
		ID: "m", Genome: "g", Epoch: 9, Seed: 1,
		State: state, StateDigest: commons.StateDigest(state),
		Epochs: make([]lineage.EpochEntry, 9),
	}
	m := &resumableModel{scriptedModel: scriptedModel{curve: expCurve(90, 0.5, 1, 25)}}
	if err := ResumeModel(m, cp); err != nil {
		t.Fatal(err)
	}
	if m.restored != 9 || m.i != 9 {
		t.Fatalf("native restore: epoch %d, position %d", m.restored, m.i)
	}

	// A digest that does not match the state is a corrupt checkpoint.
	bad := *cp
	bad.StateDigest++
	if err := ResumeModel(&resumableModel{}, &bad); !errors.Is(err, commons.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on digest mismatch, got %v", err)
	} else if commons.CorruptionReason(err) != "digest" {
		t.Fatalf("reason %q, want digest", commons.CorruptionReason(err))
	}
}

func TestResumeModelFastForwardVerifiesDigest(t *testing.T) {
	curve := expCurve(90, 0.5, 1, 25)
	// scriptedModel's state is its epoch position, so the digest of a
	// correctly fast-forwarded model matches the checkpoint's.
	good := &commons.Checkpoint{
		ID: "m", Genome: "g", Epoch: 5, Seed: 1,
		State: []byte{5}, StateDigest: commons.StateDigest([]byte{5}),
		Epochs: make([]lineage.EpochEntry, 5),
	}
	m := &scriptedModel{curve: curve}
	if err := ResumeModel(m, good); err != nil {
		t.Fatal(err)
	}
	if m.i != 5 {
		t.Fatalf("fast-forward left model at epoch %d", m.i)
	}

	// A checkpoint claiming a different trajectory fails verification.
	lying := &commons.Checkpoint{
		ID: "m", Genome: "g", Epoch: 5, Seed: 1,
		State: []byte{7}, StateDigest: commons.StateDigest([]byte{7}),
		Epochs: make([]lineage.EpochEntry, 5),
	}
	err := ResumeModel(&scriptedModel{curve: curve}, lying)
	if !errors.Is(err, commons.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on divergent fast-forward, got %v", err)
	}
}

// TestWorkflowCheckpointResumeMidGeneration is the tentpole scenario: a
// store-backed run dies mid-generation (injected I/O error at the record
// commit), and a -resume relaunch continues from the per-model
// checkpoint instead of retraining, converging to the same result as an
// undisturbed run.
func TestWorkflowCheckpointResumeMidGeneration(t *testing.T) {
	t.Cleanup(func() { chaos.Install(nil) })

	clean, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crashCfg := testConfig()
	crashCfg.Store = store
	crashCfg.Checkpoints = true
	plan, err := chaos.Parse("err=" + chaos.PointRecordPreRename + "@3")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Install(plan)
	_, err = Run(crashCfg)
	chaos.Install(nil)
	if err == nil {
		t.Fatal("injected record-commit error must fail the run")
	}
	if !chaos.IsInjected(err) {
		t.Fatalf("failure should carry the injected error: %v", err)
	}

	// The generation drains its other tasks before reporting the
	// failure, so every record but the injected task's committed; that
	// model left a mid-training checkpoint behind instead.
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("store has %d records after crash, want 3", len(ids))
	}
	ckpts, err := store.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint survived the crash")
	}

	resumed := testConfig()
	resumed.Store = store
	resumed.Resume = true
	resumed.Checkpoints = true
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != 3 {
		t.Fatalf("replayed %d records, want 3", got.Replayed)
	}
	if got.Resumed == 0 {
		t.Fatal("no model resumed from its checkpoint")
	}
	if got.Recovery == nil {
		t.Fatal("resume preflight report missing")
	}
	if len(got.Models) != len(clean.Models) {
		t.Fatalf("resumed run evaluated %d models, clean %d", len(got.Models), len(clean.Models))
	}
	cleanFront, gotFront := paretoIDs(clean), paretoIDs(got)
	if strings.Join(cleanFront, ";") != strings.Join(gotFront, ";") {
		t.Fatalf("Pareto front diverged after checkpoint resume:\nclean:   %v\nresumed: %v", cleanFront, gotFront)
	}
	// Cleanup happened: no checkpoint outlives its committed record.
	left, err := store.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("checkpoints left after complete resume: %v", left)
	}
}

// TestWorkflowCorruptCheckpointQuarantined: a tampered checkpoint is
// quarantined by the resume preflight and the model retrains cleanly.
func TestWorkflowCorruptCheckpointQuarantined(t *testing.T) {
	t.Cleanup(func() { chaos.Install(nil) })

	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crashCfg := testConfig()
	crashCfg.Store = store
	crashCfg.Checkpoints = true
	plan, err := chaos.Parse("err=" + chaos.PointRecordPreRename + "@2")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Install(plan)
	if _, err := Run(crashCfg); err == nil {
		t.Fatal("injected error must fail the run")
	}
	chaos.Install(nil)

	ckpts, err := store.Checkpoints()
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("checkpoints %v, err %v", ckpts, err)
	}
	// Flip a byte in the payload of the surviving checkpoint.
	path := filepath.Join(store.Root(), "checkpoints", ckpts[0]+".ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := testConfig()
	resumed.Store = store
	resumed.Resume = true
	resumed.Checkpoints = true
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quarantined == 0 {
		t.Fatal("tampered checkpoint not quarantined")
	}
	if got.Resumed != 0 {
		t.Fatal("corrupt checkpoint must not be resumed from")
	}
	entries, err := os.ReadDir(filepath.Join(store.Root(), commons.QuarantineDir))
	if err != nil || len(entries) == 0 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(entries), err)
	}
}

func TestRecoverStore(t *testing.T) {
	dir := t.TempDir()
	store, err := commons.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two valid records; one torn record.
	for _, id := range []string{"a", "b"} {
		rec := newRecord(id)
		rec.Epochs = []lineage.EpochEntry{{Epoch: 1, ValAccuracy: 90}}
		if err := store.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "records", "torn.json"), []byte(`{"id":"to`), 0o644); err != nil {
		t.Fatal(err)
	}
	// One live checkpoint (no record), one stale (record committed), one
	// truncated.
	mk := func(id string) *commons.Checkpoint {
		return &commons.Checkpoint{
			ID: id, Genome: "g", Epoch: 1, Seed: 1,
			Epochs: []lineage.EpochEntry{{Epoch: 1, ValAccuracy: 50}},
		}
	}
	if err := store.PutCheckpoint(mk("live")); err != nil {
		t.Fatal(err)
	}
	if err := store.PutCheckpoint(mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", "short.ckpt"), []byte("A4"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The journal saw a model finish whose record never made it to disk.
	j := obs.NewJournal(16)
	if err := j.OpenFile(filepath.Join(dir, obs.EventsFile)); err != nil {
		t.Fatal(err)
	}
	j.Emit(obs.Event{Type: obs.EventModelDone, Model: "a"})
	j.Emit(obs.Event{Type: obs.EventModelDone, Model: "ghost"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := RecoverStore(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.Checkpoints != 1 || rep.StaleCheckpoints != 1 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined %v", rep.Quarantined)
	}
	if len(rep.LostRecords) != 1 || rep.LostRecords[0] != "ghost" {
		t.Fatalf("lost records %v", rep.LostRecords)
	}
	if rep.Clean() {
		t.Fatal("a repaired store must not report clean")
	}
	// The stale checkpoint is gone; the live one remains.
	ckpts, err := store.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0] != "live" {
		t.Fatalf("checkpoints after recovery: %v", ckpts)
	}
	// The rebuilt index exists and mentions both valid records.
	index, err := os.ReadFile(filepath.Join(dir, commons.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a"`, `"b"`, `"ghost"`} {
		if !strings.Contains(string(index), want) {
			t.Fatalf("index missing %s:\n%s", want, index)
		}
	}

	// Idempotent: a second pass quarantines and deletes nothing more.
	// (The lost record stays lost until a run retrains it, so it is
	// still reported.)
	rep2, err := RecoverStore(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 0 || rep2.StaleCheckpoints != 0 {
		t.Fatalf("second recovery pass repaired again: %+v", rep2)
	}
	if rep2.Records != 2 || rep2.Checkpoints != 1 {
		t.Fatalf("second pass report %+v", rep2)
	}
	if len(rep2.LostRecords) != 1 {
		t.Fatalf("lost record should still be reported: %+v", rep2)
	}
}

func TestCheckpointsRequireStore(t *testing.T) {
	cfg := testConfig()
	cfg.Checkpoints = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Checkpoints without Store must fail validation")
	}
}
