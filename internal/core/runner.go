package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"a4nn/internal/genome"
	"a4nn/internal/lineage"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// archInfo carries the search-space-agnostic identity of one candidate
// architecture through evaluation.
type archInfo struct {
	hash, encoding string
	nodesPerPhase  int                 // macro only; 0 for micro
	macro          *genome.Genome      // nil for micro candidates
	micro          *genome.MicroGenome // nil for macro candidates
}

// runner holds the state shared by every generation of a search: the
// device pool, the prediction engine, accounting, and the common
// train-or-replay task logic. Both Run (macro) and RunMicro (micro) are
// thin wrappers around it.
type runner struct {
	maxEpochs      int
	beam           string
	store          storeLike
	snapshotEpochs bool
	onModel        func(*ModelResult)
	replayFrom     storeLike
	samples        int
	seed           int64

	pool         *sched.Pool
	engine       *predict.Engine
	engineParams *lineage.EngineParams

	mu              sync.Mutex
	res             *Result
	interactionSecs []float64
}

// storeLike is the slice of commons.Store the runner uses; an interface so
// a nil *commons.Store stays nil-checkable in one place.
type storeLike interface {
	GetRecord(id string) (*lineage.Record, error)
	PutRecord(r *lineage.Record) error
	PutSnapshot(id string, epoch int, state []byte) error
}

// newRunner validates the shared knobs and assembles the runner.
func newRunner(engineCfg *predict.Config, maxEpochs, devices int, throughput float64,
	beam string, store, replay storeLike, snapshots bool,
	onModel func(*ModelResult), samples int, seed int64) (*runner, error) {
	if maxEpochs < 1 {
		return nil, fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", maxEpochs)
	}
	if devices < 1 {
		return nil, fmt.Errorf("core: Devices must be ≥ 1, got %d", devices)
	}
	pool, err := sched.NewPool(devices, throughput)
	if err != nil {
		return nil, err
	}
	r := &runner{
		maxEpochs:      maxEpochs,
		beam:           beam,
		store:          store,
		snapshotEpochs: snapshots,
		onModel:        onModel,
		replayFrom:     replay,
		samples:        samples,
		seed:           seed,
		pool:           pool,
		res:            &Result{},
	}
	if engineCfg != nil {
		engine, err := predict.NewEngine(*engineCfg)
		if err != nil {
			return nil, err
		}
		r.engine = engine
		r.engineParams = &lineage.EngineParams{
			Family:     engineCfg.Family.Name(),
			CMin:       engineCfg.CMin,
			EPred:      engineCfg.EPred,
			N:          engineCfg.N,
			R:          engineCfg.R,
			MinFitness: engineCfg.MinFitness,
			MaxFitness: engineCfg.MaxFitness,
		}
	}
	return r, nil
}

// evaluateGeneration trains (or replays) one generation of candidates
// across the pool and returns the NSGA objective vectors.
func (r *runner) evaluateGeneration(gen int, infos []archInfo,
	newModel func(info archInfo, seed int64) (Trainable, error)) ([][]float64, error) {
	tasks := make([]sched.Task, len(infos))
	results := make([]*ModelResult, len(infos))
	for i, info := range infos {
		i, info := i, info
		tasks[i] = func(dev sched.Device) (float64, error) {
			recID := fmt.Sprintf("%s-g%02d-i%02d", info.hash, gen, i)
			if r.replayFrom != nil {
				if rec, err := r.replayFrom.GetRecord(recID); err == nil && rec.Genome == info.encoding {
					mr := r.modelResult(info, rec, rec.FinalFitness)
					r.mu.Lock()
					results[i] = mr
					r.res.TotalEpochs += rec.EpochsTrained()
					if rec.Terminated {
						r.res.TerminatedEarly++
					}
					r.res.Replayed++
					r.mu.Unlock()
					if r.onModel != nil {
						r.onModel(mr)
					}
					return rec.SimSeconds(), nil
				}
			}
			// The device participates in the seed: training the same
			// genome on a different accelerator is a different stochastic
			// realisation, which is how the paper's 1- vs 4-GPU runs come
			// to differ in epoch savings (§4.3.2).
			seed := r.seed*1_000_003 + int64(gen)*10_007 + int64(i)*101 + int64(dev.ID)
			model, err := newModel(info, seed)
			if err != nil {
				return 0, fmt.Errorf("core: build model for %s: %w", info.hash, err)
			}
			rec := &lineage.Record{
				ID:            recID,
				Genome:        info.encoding,
				NodesPerPhase: info.nodesPerPhase,
				Generation:    gen,
				Architecture:  model.Describe(),
				NumParams:     model.NumParams(),
				FLOPs:         model.FLOPs(),
				Beam:          r.beam,
				DeviceID:      dev.ID,
				Engine:        r.engineParams,
				CreatedAt:     time.Now(),
			}
			orch := &Orchestrator{Engine: r.engine, MaxEpochs: r.maxEpochs}
			if r.store != nil && r.snapshotEpochs {
				orch.Snapshots = r.store.PutSnapshot
			}
			outcome, err := orch.TrainModel(model, dev, r.samples, rec)
			if err != nil {
				return 0, err
			}
			if r.store != nil {
				if err := r.store.PutRecord(rec); err != nil {
					return 0, err
				}
			}
			mr := r.modelResult(info, rec, outcome.FinalFitness)
			r.mu.Lock()
			results[i] = mr
			r.res.TotalEpochs += outcome.EpochsTrained
			if outcome.Terminated {
				r.res.TerminatedEarly++
			}
			r.res.Overhead.TotalSeconds += outcome.EngineSeconds
			r.res.Overhead.Interactions += outcome.Interactions
			r.interactionSecs = append(r.interactionSecs, outcome.InteractionSeconds...)
			r.mu.Unlock()
			if r.onModel != nil {
				r.onModel(mr)
			}
			return outcome.SimSeconds, nil
		}
	}
	if _, err := r.pool.RunGeneration(tasks); err != nil {
		return nil, err
	}
	objs := make([][]float64, len(infos))
	r.mu.Lock()
	for i, mr := range results {
		r.res.Models = append(r.res.Models, mr)
		objs[i] = []float64{100 - mr.Fitness, mr.MFLOPs}
	}
	r.mu.Unlock()
	return objs, nil
}

// modelResult assembles a ModelResult from a record.
func (r *runner) modelResult(info archInfo, rec *lineage.Record, fitness float64) *ModelResult {
	return &ModelResult{
		Genome:  info.macro,
		Micro:   info.micro,
		Record:  rec,
		Fitness: fitness,
		MFLOPs:  float64(rec.FLOPs) / 1e6,
	}
}

// finish completes the accounting and returns the result.
func (r *runner) finish() *Result {
	// The engine's measured overhead counts toward wall time (§4.3.1).
	r.pool.AddOverhead(r.res.Overhead.TotalSeconds)
	r.res.Totals = r.pool.Totals()
	if r.res.Overhead.Interactions > 0 {
		r.res.Overhead.MeanSeconds = r.res.Overhead.TotalSeconds / float64(r.res.Overhead.Interactions)
		v := 0.0
		for _, s := range r.interactionSecs {
			d := s - r.res.Overhead.MeanSeconds
			v += d * d
		}
		r.res.Overhead.VarianceSec2 = v / float64(len(r.interactionSecs))
	}
	if math.IsNaN(r.res.Overhead.MeanSeconds) {
		r.res.Overhead.MeanSeconds = 0
	}
	return r.res
}
