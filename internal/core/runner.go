package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"a4nn/internal/chaos"
	"a4nn/internal/commons"
	"a4nn/internal/genome"
	"a4nn/internal/lineage"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// archInfo carries the search-space-agnostic identity of one candidate
// architecture through evaluation.
type archInfo struct {
	hash, encoding string
	nodesPerPhase  int                 // macro only; 0 for micro
	macro          *genome.Genome      // nil for micro candidates
	micro          *genome.MicroGenome // nil for macro candidates
}

// runner holds the state shared by every generation of a search: the
// device pool, the prediction engine, accounting, and the common
// train-or-replay task logic. Both Run (macro) and RunMicro (micro) are
// thin wrappers around it.
type runner struct {
	maxEpochs      int
	beam           string
	store          storeLike
	snapshotEpochs bool
	checkpoints    bool
	resume         bool
	onModel        func(*ModelResult)
	replayFrom     storeLike
	samples        int
	seed           int64
	gate           GenerationGate

	pool         *sched.Pool
	engine       *predict.Engine
	engineParams *lineage.EngineParams
	instruments  *Instruments
	journal      *obs.Journal

	mu              sync.Mutex
	res             *Result
	interactionSecs []float64
}

// storeLike is the slice of commons.Store the runner uses; an interface so
// a nil *commons.Store stays nil-checkable in one place.
type storeLike interface {
	GetRecord(id string) (*lineage.Record, error)
	PutRecord(r *lineage.Record) error
	PutSnapshot(id string, epoch int, state []byte) error
	GetCheckpoint(id string) (*commons.Checkpoint, error)
	PutCheckpoint(cp *commons.Checkpoint) error
	DeleteCheckpoint(id string) error
	QuarantineRecord(id, reason string) (string, error)
	QuarantineCheckpoint(id, reason string) (string, error)
}

// runnerParams bundles the knobs shared by the macro and micro search
// entry points.
type runnerParams struct {
	engineCfg   *predict.Config
	maxEpochs   int
	devices     int
	throughput  float64
	beam        string
	store       storeLike
	replay      storeLike
	snapshots   bool
	checkpoints bool
	resume      bool
	onModel     func(*ModelResult)
	samples     int
	seed        int64

	faults      *sched.FaultPlan
	retry       sched.RetryPolicy
	taskTimeout float64 // per-attempt simulated deadline (0 = none)

	observer *obs.Observer  // nil disables metrics and span tracing
	gate     GenerationGate // nil dispatches generations unconditionally
}

// newRunner validates the shared knobs and assembles the runner.
func newRunner(p runnerParams) (*runner, error) {
	if p.maxEpochs < 1 {
		return nil, fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", p.maxEpochs)
	}
	if p.devices < 1 {
		return nil, fmt.Errorf("core: Devices must be ≥ 1, got %d", p.devices)
	}
	pool, err := sched.NewPool(p.devices, p.throughput)
	if err != nil {
		return nil, err
	}
	if err := pool.SetFaultPlan(p.faults); err != nil {
		return nil, err
	}
	if err := pool.SetRetryPolicy(p.retry); err != nil {
		return nil, err
	}
	if err := pool.SetTaskDeadline(p.taskTimeout); err != nil {
		return nil, err
	}
	pool.SetObserver(p.observer)
	r := &runner{
		maxEpochs:      p.maxEpochs,
		beam:           p.beam,
		store:          p.store,
		snapshotEpochs: p.snapshots,
		checkpoints:    p.checkpoints,
		resume:         p.resume,
		onModel:        p.onModel,
		replayFrom:     p.replay,
		samples:        p.samples,
		seed:           p.seed,
		gate:           p.gate,
		pool:           pool,
		res:            &Result{},
		instruments:    NewInstruments(p.observer),
		journal:        p.observer.Journal(),
	}
	if p.engineCfg != nil {
		engine, err := predict.NewEngine(*p.engineCfg)
		if err != nil {
			return nil, err
		}
		if reg := p.observer.Registry(); reg != nil {
			engine.SetMetrics(predict.Metrics{
				Predictions:  reg.Counter("a4nn_predict_predictions_total"),
				FitFailures:  reg.Counter("a4nn_predict_fit_failures_total"),
				Convergences: reg.Counter("a4nn_predict_convergences_total"),
				Events:       p.observer.Journal(),
			})
		}
		r.engine = engine
		r.engineParams = &lineage.EngineParams{
			Family:     p.engineCfg.Family.Name(),
			CMin:       p.engineCfg.CMin,
			EPred:      p.engineCfg.EPred,
			N:          p.engineCfg.N,
			R:          p.engineCfg.R,
			MinFitness: p.engineCfg.MinFitness,
			MaxFitness: p.engineCfg.MaxFitness,
		}
	}
	return r, nil
}

// classifyTaskError decides whether a failed attempt is worth retrying on
// another device. Failures inside a training step are transient (the
// paper-scale analogue of a diverged batch or a device OOM); everything
// else — bad genomes, broken stores, cancellation — is fatal.
func classifyTaskError(err error) error {
	if sched.IsTransient(err) {
		return err // deadline aborts arrive pre-wrapped
	}
	var step *TrainStepError
	if errors.As(err, &step) {
		return sched.Transient("train step", err)
	}
	return err
}

// evaluateGeneration trains (or replays) one generation of candidates
// across the pool and returns the NSGA objective vectors.
func (r *runner) evaluateGeneration(ctx context.Context, gen int, infos []archInfo,
	newModel func(info archInfo, seed int64) (Trainable, error)) ([][]float64, error) {
	tasks := make([]sched.Task, len(infos))
	results := make([]*ModelResult, len(infos))
	for i, info := range infos {
		i, info := i, info
		tasks[i] = func(tc sched.TaskCtx) (float64, error) {
			dev := tc.Dev
			recID := fmt.Sprintf("%s-g%02d-i%02d", info.hash, gen, i)
			if r.replayFrom != nil {
				rec, err := r.replayFrom.GetRecord(recID)
				if err == nil && rec.Genome == info.encoding {
					mr := r.modelResult(info, rec, rec.FinalFitness)
					r.mu.Lock()
					results[i] = mr
					r.res.TotalEpochs += rec.EpochsTrained()
					if rec.Terminated {
						r.res.TerminatedEarly++
					}
					r.res.Replayed++
					r.mu.Unlock()
					if r.onModel != nil {
						r.onModel(mr)
					}
					return rec.SimSeconds(), nil
				}
				if err != nil && errors.Is(err, commons.ErrCorrupt) && r.resume {
					// A torn record can't be replayed; move it aside so the
					// retrained model's record can commit in its place.
					r.quarantine(r.replayFrom.QuarantineRecord, recID, "record", err)
				}
			}
			// The device participates in the seed: training the same
			// genome on a different accelerator is a different stochastic
			// realisation, which is how the paper's 1- vs 4-GPU runs come
			// to differ in epoch savings (§4.3.2).
			seed := r.seed*1_000_003 + int64(gen)*10_007 + int64(i)*101 + int64(dev.ID)
			// A mid-training checkpoint, when valid, supplies the model's
			// original seed and completed epochs: training continues from
			// the crash instead of restarting, reproducing the fault-free
			// trajectory exactly.
			var resumeCp *commons.Checkpoint
			if r.resume && r.checkpoints && r.store != nil {
				cp, err := r.store.GetCheckpoint(recID)
				switch {
				case err == nil && cp.Genome == info.encoding && cp.Epoch <= r.maxEpochs:
					resumeCp = cp
					seed = cp.Seed
				case errors.Is(err, commons.ErrCorrupt):
					r.quarantine(r.store.QuarantineCheckpoint, recID, "checkpoint", err)
				}
			}
			model, err := newModel(info, seed)
			if err != nil {
				return 0, fmt.Errorf("core: build model for %s: %w", info.hash, err)
			}
			if resumeCp != nil {
				if err := ResumeModel(model, resumeCp); err != nil {
					// The checkpointed state can't be trusted (a digest
					// mismatch or restore failure): quarantine it and train
					// fresh with this attempt's own seed.
					r.quarantine(r.store.QuarantineCheckpoint, recID, "checkpoint", err)
					resumeCp = nil
					seed = r.seed*1_000_003 + int64(gen)*10_007 + int64(i)*101 + int64(dev.ID)
					if model, err = newModel(info, seed); err != nil {
						return 0, fmt.Errorf("core: rebuild model for %s: %w", info.hash, err)
					}
				}
			}
			rec := &lineage.Record{
				ID:            recID,
				Genome:        info.encoding,
				NodesPerPhase: info.nodesPerPhase,
				Generation:    gen,
				Architecture:  model.Describe(),
				NumParams:     model.NumParams(),
				FLOPs:         model.FLOPs(),
				Beam:          r.beam,
				DeviceID:      dev.ID,
				Attempt:       tc.Attempt,
				Engine:        r.engineParams,
				CreatedAt:     time.Now(),
			}
			if tc.SlowFactor > 1 {
				rec.SlowFactor = tc.SlowFactor
			}
			orch := &Orchestrator{
				Engine:          r.engine,
				MaxEpochs:       r.maxEpochs,
				SlowFactor:      tc.SlowFactor,
				DeadlineSeconds: tc.DeadlineSeconds,
				Obs:             r.instruments,
				Seed:            seed,
				ResumeFrom:      resumeCp,
			}
			if r.store != nil && r.snapshotEpochs {
				orch.Snapshots = r.store.PutSnapshot
			}
			if r.store != nil && r.checkpoints {
				orch.Checkpoint = r.store.PutCheckpoint
			}
			outcome, err := orch.TrainModel(tc.Ctx, model, dev, r.samples, rec)
			if err != nil {
				// Nothing has been committed for this attempt; report the
				// partial simulated cost so the scheduler can account for
				// the lost time, and classify for retry.
				cost := 0.0
				if outcome != nil {
					cost = outcome.SimSeconds
				}
				return cost, classifyTaskError(err)
			}
			if r.store != nil {
				if err := r.store.PutRecord(rec); err != nil {
					return outcome.SimSeconds, err
				}
				if err := chaos.Point(chaos.PointModelPostRecord); err != nil {
					// The record is committed; a relaunch replays it, so the
					// stale checkpoint below is cleaned up by recovery.
					return outcome.SimSeconds, err
				}
				if r.checkpoints {
					// Best effort: a leftover checkpoint for a committed
					// record is detected as stale and removed by recovery.
					r.store.DeleteCheckpoint(recID)
				}
			}
			mr := r.modelResult(info, rec, outcome.FinalFitness)
			r.mu.Lock()
			results[i] = mr
			r.res.TotalEpochs += outcome.EpochsTrained
			if outcome.Terminated {
				r.res.TerminatedEarly++
			}
			if resumeCp != nil {
				r.res.Resumed++
			}
			r.res.Overhead.TotalSeconds += outcome.EngineSeconds
			r.res.Overhead.Interactions += outcome.Interactions
			r.interactionSecs = append(r.interactionSecs, outcome.InteractionSeconds...)
			r.mu.Unlock()
			if r.onModel != nil {
				r.onModel(mr)
			}
			return outcome.SimSeconds, nil
		}
	}
	r.mu.Lock()
	replayedBefore := r.res.Replayed
	r.mu.Unlock()
	// Under a shared fleet, the gate blocks here until this search wins
	// its fair-share slots; the release at the generation barrier is the
	// only preemption point, so the pool's deterministic schedule (and
	// the search's results) are exactly the ungated ones.
	if r.gate != nil {
		release, err := r.gate(ctx, gen, len(infos))
		if err != nil {
			return nil, err
		}
		defer release()
	}
	if _, err := r.pool.RunGeneration(ctx, tasks); err != nil {
		return nil, err
	}
	// Every record of the generation is durable; a crash at this point —
	// after the training barrier, before the NAS advances — is the
	// cheapest to recover (pure replay), and the soak harness exercises
	// it explicitly.
	if err := chaos.Point(chaos.PointGenerationCommit); err != nil {
		return nil, err
	}
	objs := make([][]float64, len(infos))
	r.mu.Lock()
	if r.res.Replayed-replayedBefore == len(infos) {
		r.res.GenerationsReplayed++
	}
	for i, mr := range results {
		r.res.Models = append(r.res.Models, mr)
		objs[i] = []float64{100 - mr.Fitness, mr.MFLOPs}
	}
	var front []obs.ParetoPoint
	if r.journal != nil {
		front = r.paretoFrontLocked()
	}
	r.mu.Unlock()
	if front != nil {
		r.instruments.observePareto(front)
		r.journal.Emit(obs.Event{Type: obs.EventParetoUpdate, Gen: gen, Front: front})
	}
	return objs, nil
}

// paretoFrontLocked computes the non-dominated set (maximise accuracy,
// minimise MFLOPs) over every model evaluated so far, for the
// pareto_update event. The analyzer package has the full-featured
// frontier, but it sits above core in the import graph; this local scan
// keeps the dependency arrow pointing the right way. Caller holds r.mu.
func (r *runner) paretoFrontLocked() []obs.ParetoPoint {
	models := r.res.Models
	front := make([]obs.ParetoPoint, 0, 8)
	for i, m := range models {
		dominated := false
		for j, o := range models {
			if i == j {
				continue
			}
			if o.Fitness >= m.Fitness && o.MFLOPs <= m.MFLOPs &&
				(o.Fitness > m.Fitness || o.MFLOPs < m.MFLOPs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, obs.ParetoPoint{ID: m.Record.ID, Accuracy: m.Fitness, MFLOPs: m.MFLOPs})
		}
	}
	return front
}

// quarantine moves a corrupt file aside via the store's quarantine
// method, counting it and surfacing the action as a recovery journal
// event (which the health engine turns into an alert).
func (r *runner) quarantine(move func(id, reason string) (string, error), id, kind string, cause error) {
	reason := commons.CorruptionReason(cause)
	dest, err := move(id, reason)
	if err != nil {
		return // already moved (another attempt won the race) or unreadable
	}
	r.mu.Lock()
	r.res.Quarantined++
	r.mu.Unlock()
	r.journal.Emit(obs.Event{
		Type:   obs.EventRecovery,
		Model:  id,
		Reason: reason,
		Path:   dest,
		Msg:    fmt.Sprintf("quarantined corrupt %s %s (%s)", kind, id, reason),
	})
}

// attachRecovery folds a resume preflight's report into the result.
func (r *runner) attachRecovery(rep *RecoveryReport) {
	if rep == nil {
		return
	}
	r.mu.Lock()
	r.res.Recovery = rep
	r.res.Quarantined += len(rep.Quarantined)
	r.mu.Unlock()
}

// modelResult assembles a ModelResult from a record.
func (r *runner) modelResult(info archInfo, rec *lineage.Record, fitness float64) *ModelResult {
	return &ModelResult{
		Genome:  info.macro,
		Micro:   info.micro,
		Record:  rec,
		Fitness: fitness,
		MFLOPs:  float64(rec.FLOPs) / 1e6,
	}
}

// finish completes the accounting and returns the result.
func (r *runner) finish() *Result {
	// The engine's measured overhead counts toward wall time (§4.3.1).
	r.pool.AddOverhead(r.res.Overhead.TotalSeconds)
	r.res.Totals = r.pool.Totals()
	if r.res.Overhead.Interactions > 0 {
		r.res.Overhead.MeanSeconds = r.res.Overhead.TotalSeconds / float64(r.res.Overhead.Interactions)
		v := 0.0
		for _, s := range r.interactionSecs {
			d := s - r.res.Overhead.MeanSeconds
			v += d * d
		}
		r.res.Overhead.VarianceSec2 = v / float64(len(r.interactionSecs))
	}
	if math.IsNaN(r.res.Overhead.MeanSeconds) {
		r.res.Overhead.MeanSeconds = 0
	}
	return r.res
}
