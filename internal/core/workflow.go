package core

import (
	"context"
	"fmt"

	"a4nn/internal/commons"
	"a4nn/internal/genome"
	"a4nn/internal/lineage"
	"a4nn/internal/nsga"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
)

// Config assembles a full A4NN (or standalone-NAS) run.
type Config struct {
	// NAS is the NSGA-II configuration (Table 2).
	NAS nsga.Config
	// Engine configures the prediction engine (Table 1); nil runs the
	// standalone NAS baseline with fixed-budget training.
	Engine *predict.Config
	// MaxEpochs is the full per-network training budget (Table 2: 25).
	MaxEpochs int
	// Phases and NodesPerPhase shape the search space (Table 2: 4 nodes;
	// NSGA-Net's macro space uses 3 phases).
	Phases, NodesPerPhase int
	// MutationRate is the per-bit flip probability; 0 selects
	// 1/(bits per genome), one expected flip per child.
	MutationRate float64
	// Devices is the accelerator count (the paper evaluates 1 and 4).
	Devices int
	// Throughput is the per-device FLOPs/s; 0 selects sched.DefaultThroughput.
	Throughput float64
	// Trainer builds models from genomes.
	Trainer Trainer
	// Beam labels the dataset variant in lineage records.
	Beam string
	// Store, when non-nil, receives every record trail; SnapshotEpochs
	// additionally stores per-epoch model states.
	Store          *commons.Store
	SnapshotEpochs bool
	// Checkpoints persists each model's mid-training progress into Store
	// after every epoch, so a killed run rerun with Resume continues
	// *inside* the interrupted generation — finished models replay from
	// their records, half-trained ones from their checkpoints. Requires
	// Store.
	Checkpoints bool
	// OnModel, when non-nil, is invoked once per evaluated network as it
	// finishes training — for progress reporting. With multiple devices
	// it is called from multiple goroutines; implementations must be
	// safe for concurrent use.
	OnModel func(*ModelResult)
	// ReplayFrom, when non-nil, replays record trails from a previous
	// run's data commons instead of retraining: when a record with the
	// same identity (genome hash, generation, slot) and an identical
	// genome exists, its fitness, epochs, and simulated time are reused.
	// With the same seed and NAS configuration this reproduces a search
	// exactly from its record trails — the reproducibility §2.3 is after
	// — and lets an interrupted run resume, retraining only the models
	// whose records are missing.
	ReplayFrom *commons.Store
	// Resume replays completed work from Store itself before training
	// anything new: a killed search rerun with the same configuration
	// and Resume set continues from its last finished generation.
	// Requires Store; mutually exclusive with ReplayFrom.
	Resume bool
	// Faults, when non-nil, deterministically injects device crashes,
	// transient task failures, and stragglers into the device pool.
	Faults *sched.FaultPlan
	// Retry tunes transient-failure retry (zero value: defaults).
	Retry sched.RetryPolicy
	// TaskTimeoutSeconds is the per-attempt simulated deadline; an
	// attempt exceeding it is re-dispatched to another device (0 = off).
	TaskTimeoutSeconds float64
	// Obs, when non-nil, enables observability: the run registers its
	// metrics (epoch counters, task-latency histograms, predictor
	// savings) with the observer's registry and records generation /
	// task / epoch spans into its tracer. nil disables both with ~one
	// branch of overhead per event — the training hot path stays
	// allocation-free.
	Obs *obs.Observer
	// Gate, when non-nil, admits each generation before it is dispatched
	// to the device pool — the hook a multi-job scheduler (sched.Fleet)
	// uses to arbitrate one shared fleet across concurrent searches. The
	// returned release runs at the generation barrier, so preemption is
	// only ever between generations and the search's own pool (and hence
	// its task→device assignment and results) stays untouched.
	Gate GenerationGate
}

// GenerationGate admits one generation of tasks and returns the release
// to call when the generation's barrier is reached. Returning an error
// aborts the search (a canceled or evicted job).
type GenerationGate func(ctx context.Context, gen, tasks int) (release func(), err error)

// DefaultConfig returns the paper's evaluation setup (Tables 1 and 2) for
// the given trainer: population 10, offspring 10, 10 generations, 25
// epochs, prediction engine on, one device.
func DefaultConfig(trainer Trainer) Config {
	engineCfg := predict.DefaultConfig()
	return Config{
		NAS:           nsga.DefaultConfig(),
		Engine:        &engineCfg,
		MaxEpochs:     25,
		Phases:        3,
		NodesPerPhase: 4,
		Devices:       1,
		Trainer:       trainer,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if err := c.NAS.Validate(); err != nil {
		return err
	}
	if c.Engine != nil {
		if err := c.Engine.Validate(); err != nil {
			return err
		}
	}
	if c.MaxEpochs < 1 {
		return fmt.Errorf("core: MaxEpochs must be ≥ 1, got %d", c.MaxEpochs)
	}
	if c.Phases < 1 || c.NodesPerPhase < 1 {
		return fmt.Errorf("core: need ≥ 1 phases and nodes, got %d, %d", c.Phases, c.NodesPerPhase)
	}
	if c.Devices < 1 {
		return fmt.Errorf("core: Devices must be ≥ 1, got %d", c.Devices)
	}
	if c.Trainer == nil {
		return fmt.Errorf("core: Trainer must be set")
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("core: MutationRate %v outside [0,1]", c.MutationRate)
	}
	return validateFaultKnobs(c.Resume, c.Checkpoints, c.Store != nil, c.ReplayFrom != nil,
		c.Faults, c.Retry, c.TaskTimeoutSeconds)
}

// validateFaultKnobs checks the fault-tolerance configuration shared by
// the macro and micro workflows.
func validateFaultKnobs(resume, checkpoints, hasStore, hasReplay bool,
	faults *sched.FaultPlan, retry sched.RetryPolicy, timeout float64) error {
	if resume && !hasStore {
		return fmt.Errorf("core: Resume requires Store")
	}
	if checkpoints && !hasStore {
		return fmt.Errorf("core: Checkpoints requires Store")
	}
	if resume && hasReplay {
		return fmt.Errorf("core: Resume and ReplayFrom are mutually exclusive (Resume replays from Store)")
	}
	if faults != nil {
		if err := faults.Validate(); err != nil {
			return err
		}
	}
	if err := retry.Validate(); err != nil {
		return err
	}
	if timeout < 0 {
		return fmt.Errorf("core: negative TaskTimeoutSeconds %v", timeout)
	}
	return nil
}

// ModelResult pairs an evaluated genome with its record trail and
// objectives.
type ModelResult struct {
	// Genome is set for macro-space searches; Micro for micro-space ones.
	Genome  *genome.Genome
	Micro   *genome.MicroGenome
	Record  *lineage.Record
	Fitness float64 // validation accuracy (percent) reported to the NAS
	MFLOPs  float64 // FLOPs / 1e6, the second NAS objective
}

// OverheadStats aggregates the measured prediction-engine overhead
// (paper §4.3.1: ~52 s per 100-model test, ~28 ms per interaction).
type OverheadStats struct {
	TotalSeconds float64
	Interactions int
	MeanSeconds  float64
	VarianceSec2 float64
}

// Result is the outcome of one workflow run.
type Result struct {
	// NAS holds the NSGA-II populations and the full evaluation log
	// (macro searches); MicroNAS is its micro-space counterpart.
	NAS      *nsga.Result[*genome.Genome]
	MicroNAS *nsga.Result[*genome.MicroGenome]
	// Models holds one entry per evaluated network, in evaluation order.
	Models []*ModelResult
	// Totals is the resource manager's simulated accounting.
	Totals sched.Totals
	// TotalEpochs counts training epochs across all networks; the
	// standalone baseline always spends MaxEpochs × len(Models).
	TotalEpochs int
	// TerminatedEarly counts networks stopped by the prediction engine.
	TerminatedEarly int
	// Replayed counts networks whose results were reused from
	// Config.ReplayFrom (or, with Resume, from Store) instead of
	// retrained.
	Replayed int
	// GenerationsReplayed counts generations whose every model was
	// replayed — the generations a resumed search skipped.
	GenerationsReplayed int
	// Resumed counts networks that continued from a mid-training
	// checkpoint instead of retraining from epoch 1.
	Resumed int
	// Quarantined counts corrupt files moved aside during this run
	// (recovery preflight plus any found mid-replay).
	Quarantined int
	// Recovery, when the Resume preflight ran, details what it found and
	// repaired.
	Recovery *RecoveryReport
	// Overhead aggregates the engine's measured cost.
	Overhead OverheadStats
}

// ParetoObjectives returns the objective vectors (100−accuracy, MFLOPs)
// of all evaluated models, for frontier analysis.
func (r *Result) ParetoObjectives() [][]float64 {
	objs := make([][]float64, len(r.Models))
	for i, m := range r.Models {
		objs[i] = []float64{100 - m.Fitness, m.MFLOPs}
	}
	return objs
}

// TerminationEpochs returns e_t for every early-terminated model
// (Figure 8's distribution).
func (r *Result) TerminationEpochs() []int {
	var out []int
	for _, m := range r.Models {
		if m.Record.Terminated {
			out = append(out, m.Record.TerminationEpoch)
		}
	}
	return out
}

// Run executes the workflow: NSGA-II proposes generations of genomes; the
// evaluator trains each generation across the device pool under
// Algorithm 1 and returns (100−fitness, MFLOPs) to the NAS; lineage
// records flow to the data commons.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cancellation: when ctx is canceled, in-flight
// training stops between epochs and the run returns the context error.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MutationRate == 0 {
		cfg.MutationRate = 1 / float64(cfg.Phases*genome.BitsPerPhase(cfg.NodesPerPhase))
	}
	replay := nilableStore(cfg.ReplayFrom)
	if cfg.Resume {
		replay = nilableStore(cfg.Store)
	}
	var recovery *RecoveryReport
	if cfg.Resume {
		rep, err := RecoverStore(cfg.Store, cfg.Obs.Journal())
		if err != nil {
			return nil, err
		}
		recovery = rep
	}
	ctx = obs.WithTracer(ctx, cfg.Obs.Tracer())
	r, err := newRunner(runnerParams{
		engineCfg:   cfg.Engine,
		maxEpochs:   cfg.MaxEpochs,
		devices:     cfg.Devices,
		throughput:  cfg.Throughput,
		beam:        cfg.Beam,
		store:       nilableStore(cfg.Store),
		replay:      replay,
		snapshots:   cfg.SnapshotEpochs,
		checkpoints: cfg.Checkpoints,
		resume:      cfg.Resume,
		onModel:     cfg.OnModel,
		samples:     cfg.Trainer.TrainSamples(),
		seed:        cfg.NAS.Seed,
		faults:      cfg.Faults,
		retry:       cfg.Retry,
		taskTimeout: cfg.TaskTimeoutSeconds,
		observer:    cfg.Obs,
		gate:        cfg.Gate,
	})
	if err != nil {
		return nil, err
	}
	r.attachRecovery(recovery)
	r.journal.Emit(obs.Event{Type: obs.EventRunStart, Devices: cfg.Devices, Epochs: cfg.MaxEpochs})

	evaluator := nsga.EvaluatorFunc[*genome.Genome](func(gen int, cands []*genome.Genome) ([][]float64, error) {
		infos := make([]archInfo, len(cands))
		for i, g := range cands {
			infos[i] = archInfo{hash: g.Hash(), encoding: g.String(), nodesPerPhase: g.NodesPerPhase, macro: g}
		}
		return r.evaluateGeneration(ctx, gen, infos, func(info archInfo, seed int64) (Trainable, error) {
			return cfg.Trainer.NewModel(info.macro, seed)
		})
	})

	ops := genomeOps{phases: cfg.Phases, nodes: cfg.NodesPerPhase, mutationRate: cfg.MutationRate}
	nasRes, err := nsga.Run[*genome.Genome](cfg.NAS, ops, evaluator)
	if err != nil {
		r.journal.Emit(obs.Event{Type: obs.EventRunEnd, Err: err.Error()})
		return nil, err
	}
	res := r.finish()
	res.NAS = nasRes
	r.emitRunEnd(res, cfg.MaxEpochs)
	return res, nil
}

// emitRunEnd publishes the run's closing event with the headline
// accounting the dashboard's savings ticker sums up.
func (r *runner) emitRunEnd(res *Result, maxEpochs int) {
	r.journal.Emit(obs.Event{
		Type:        obs.EventRunEnd,
		Tasks:       len(res.Models),
		Epochs:      res.TotalEpochs,
		SavedEpochs: len(res.Models)*maxEpochs - res.TotalEpochs,
		WallSeconds: res.Totals.WallSeconds,
		IdleSeconds: res.Totals.IdleSeconds,
		LostSeconds: res.Totals.LostSeconds,
		Retries:     res.Totals.Retries,
		Faults:      res.Totals.Faults,
	})
}

// nilableStore converts a possibly-nil *commons.Store into a
// possibly-nil storeLike (a typed-nil interface would defeat nil checks).
func nilableStore(s *commons.Store) storeLike {
	if s == nil {
		return nil
	}
	return s
}
