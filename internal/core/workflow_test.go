package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"a4nn/internal/commons"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/nsga"
	"a4nn/internal/predict"
	"a4nn/internal/xfel"
)

// curveTrainer is a tiny deterministic trainer for workflow tests: every
// model follows a clean concave curve whose asymptote depends on the
// genome hash, so the engine terminates most models early.
type curveTrainer struct{ samples int }

func (t curveTrainer) TrainSamples() int { return t.samples }
func (t curveTrainer) NewModel(g *genome.Genome, seed int64) (Trainable, error) {
	rng := rand.New(rand.NewSource(seed))
	a := 85 + 14*rng.Float64()
	return &scriptedModel{curve: expCurve(a, 0.4, 1, 100), flops: 1e9 + int64(g.ActiveNodes(0))*1e8}, nil
}

func testConfig() Config {
	cfg := DefaultConfig(curveTrainer{samples: 100})
	cfg.NAS = nsga.Config{PopulationSize: 4, Offspring: 4, Generations: 3, Seed: 7}
	cfg.MaxEpochs = 25
	cfg.Beam = "medium"
	return cfg
}

func TestWorkflowRunA4NN(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantModels := 4 + 4*2
	if len(res.Models) != wantModels {
		t.Fatalf("evaluated %d models, want %d", len(res.Models), wantModels)
	}
	if res.TotalEpochs >= wantModels*25 {
		t.Fatalf("A4NN must save epochs: %d of %d", res.TotalEpochs, wantModels*25)
	}
	if res.TerminatedEarly == 0 {
		t.Fatal("no model terminated early on clean curves")
	}
	if res.Overhead.Interactions == 0 || res.Overhead.TotalSeconds <= 0 {
		t.Fatalf("missing overhead accounting: %+v", res.Overhead)
	}
	if res.Overhead.MeanSeconds <= 0 {
		t.Fatal("mean interaction time missing")
	}
	if res.Totals.WallSeconds <= 0 || res.Totals.Tasks != wantModels {
		t.Fatalf("pool totals %+v", res.Totals)
	}
	// Every record validates and carries engine parameters.
	for _, m := range res.Models {
		if err := m.Record.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.Record.Engine == nil || m.Record.Engine.EPred != 25 {
			t.Fatalf("record engine params %+v", m.Record.Engine)
		}
		if m.Record.Beam != "medium" {
			t.Fatalf("record beam %q", m.Record.Beam)
		}
	}
}

func TestWorkflowStandaloneBaseline(t *testing.T) {
	cfg := testConfig()
	cfg.Engine = nil
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantModels := 12
	if res.TotalEpochs != wantModels*25 {
		t.Fatalf("standalone must train the full budget: %d", res.TotalEpochs)
	}
	if res.TerminatedEarly != 0 {
		t.Fatal("standalone must not terminate early")
	}
	if res.Overhead.Interactions != 0 {
		t.Fatal("standalone must not invoke the engine")
	}
	for _, m := range res.Models {
		if m.Record.Engine != nil {
			t.Fatal("standalone records must not carry engine params")
		}
	}
}

func TestWorkflowA4NNSavesWallTimeVsStandalone(t *testing.T) {
	a4nn := testConfig()
	resA, err := Run(a4nn)
	if err != nil {
		t.Fatal(err)
	}
	standalone := testConfig()
	standalone.Engine = nil
	resS, err := Run(standalone)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Totals.WallSeconds >= resS.Totals.WallSeconds {
		t.Fatalf("A4NN wall %v must beat standalone %v",
			resA.Totals.WallSeconds, resS.Totals.WallSeconds)
	}
}

func TestWorkflowFourDevicesSpeedup(t *testing.T) {
	one := testConfig()
	one.NAS.PopulationSize, one.NAS.Offspring = 8, 8
	resOne, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	four := one
	four.Devices = 4
	resFour, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	speedup := resOne.Totals.WallSeconds / resFour.Totals.WallSeconds
	if speedup < 2.5 {
		t.Fatalf("4-device speedup %v too small", speedup)
	}
	if resFour.Totals.IdleSeconds <= 0 {
		t.Fatal("generation barrier must leave idle time on 4 devices")
	}
}

func TestWorkflowWritesCommons(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.NAS = nsga.Config{PopulationSize: 3, Offspring: 3, Generations: 2, Seed: 1}
	cfg.Store = store
	cfg.SnapshotEpochs = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(res.Models) {
		t.Fatalf("store has %d records for %d models", len(ids), len(res.Models))
	}
	// Per-epoch snapshots exist for the first model.
	snaps, err := store.Snapshots(res.Models[0].Record.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != res.Models[0].Record.EpochsTrained() {
		t.Fatalf("%d snapshots for %d epochs", len(snaps), res.Models[0].Record.EpochsTrained())
	}
}

func TestWorkflowDeterministicForSeed(t *testing.T) {
	r1, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalEpochs != r2.TotalEpochs || len(r1.Models) != len(r2.Models) {
		t.Fatal("same-seed runs diverged")
	}
	for i := range r1.Models {
		if r1.Models[i].Fitness != r2.Models[i].Fitness {
			t.Fatalf("model %d fitness diverged", i)
		}
	}
}

func TestWorkflowValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Trainer = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil trainer must fail")
	}
	cfg = testConfig()
	cfg.Devices = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("0 devices must fail")
	}
	cfg = testConfig()
	cfg.MaxEpochs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("0 epochs must fail")
	}
	cfg = testConfig()
	cfg.MutationRate = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("mutation rate > 1 must fail")
	}
	cfg = testConfig()
	bad := predict.Config{}
	cfg.Engine = &bad
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid engine config must fail")
	}
	cfg = testConfig()
	cfg.Phases = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("0 phases must fail")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	objs := res.ParetoObjectives()
	if len(objs) != len(res.Models) || len(objs[0]) != 2 {
		t.Fatalf("objectives shape %d×%d", len(objs), len(objs[0]))
	}
	ets := res.TerminationEpochs()
	if len(ets) != res.TerminatedEarly {
		t.Fatalf("%d termination epochs for %d terminated", len(ets), res.TerminatedEarly)
	}
	for _, e := range ets {
		if e < 1 || e > 25 {
			t.Fatalf("e_t %d out of range", e)
		}
	}
}

// TestRealTrainerEndToEnd drives the genuine pipeline: XFEL data → decoded
// genome → gradient descent → workflow, at tiny scale.
func TestRealTrainerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	simParams := xfel.DefaultSimulatorParams()
	simParams.Size = 16
	sim, err := xfel.NewSimulator(3, simParams)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := sim.GenerateBatch(1, 120, xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewRealTrainer(train, val, RealTrainerConfig{
		Decode: genome.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(trainer)
	cfg.NAS = nsga.Config{PopulationSize: 3, Offspring: 3, Generations: 2, Seed: 5}
	cfg.MaxEpochs = 6
	engineCfg := predict.DefaultConfig()
	engineCfg.EPred = 6
	cfg.Engine = &engineCfg
	cfg.Beam = "high"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 6 {
		t.Fatalf("evaluated %d models", len(res.Models))
	}
	best := 0.0
	for _, m := range res.Models {
		if m.Fitness > best {
			best = m.Fitness
		}
	}
	if best < 60 {
		t.Fatalf("best real-trained fitness %v; expected learning on high beam", best)
	}
}

func TestRealTrainerValidation(t *testing.T) {
	if _, err := NewRealTrainer(nil, nil, RealTrainerConfig{}); err == nil {
		t.Fatal("nil datasets must fail")
	}
	sim, err := xfel.NewSimulator(3, xfel.DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	pats, err := sim.GenerateBatch(1, 10, xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		t.Fatal(err)
	}
	// Decode shape mismatch (dataset is 32×32).
	if _, err := NewRealTrainer(ds, ds, RealTrainerConfig{
		Decode: genome.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
	}); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestWorkflowOnModelCallback(t *testing.T) {
	cfg := testConfig()
	var mu sync.Mutex
	var seen []string
	cfg.OnModel = func(m *ModelResult) {
		mu.Lock()
		seen = append(seen, m.Record.ID)
		mu.Unlock()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Models) {
		t.Fatalf("callback fired %d times for %d models", len(seen), len(res.Models))
	}
}

// panicTrainer fails loudly if the workflow ever asks it to build a
// model; replay runs must never train.
type panicTrainer struct{}

func (panicTrainer) TrainSamples() int { return 100 }
func (panicTrainer) NewModel(g *genome.Genome, seed int64) (Trainable, error) {
	return nil, fmt.Errorf("replay run attempted to train %s", g.Hash())
}

func TestWorkflowReplayFromCommons(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = store
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replay: same NAS seed, trainer that refuses to train.
	replay := testConfig()
	replay.Trainer = panicTrainer{}
	replay.ReplayFrom = store
	got, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != len(orig.Models) {
		t.Fatalf("replayed %d of %d models", got.Replayed, len(orig.Models))
	}
	if got.TotalEpochs != orig.TotalEpochs || got.TerminatedEarly != orig.TerminatedEarly {
		t.Fatalf("replay accounting diverged: %d/%d vs %d/%d",
			got.TotalEpochs, got.TerminatedEarly, orig.TotalEpochs, orig.TerminatedEarly)
	}
	for i := range orig.Models {
		if got.Models[i].Fitness != orig.Models[i].Fitness {
			t.Fatalf("model %d fitness diverged on replay", i)
		}
	}
	// Simulated wall time replays too (modulo the engine overhead, which
	// is measured, not replayed).
	if got.Totals.BusySeconds != orig.Totals.BusySeconds {
		t.Fatalf("replayed busy time %v vs original %v",
			got.Totals.BusySeconds, orig.Totals.BusySeconds)
	}
}

func TestWorkflowReplayPartialMiss(t *testing.T) {
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = store
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one record: that model must retrain, the rest replay.
	victim := orig.Models[3].Record.ID
	if err := os.Remove(filepath.Join(store.Root(), "records", victim+".json")); err != nil {
		t.Fatal(err)
	}
	replay := testConfig()
	replay.ReplayFrom = store
	got, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != len(orig.Models)-1 {
		t.Fatalf("replayed %d, want %d", got.Replayed, len(orig.Models)-1)
	}
}
