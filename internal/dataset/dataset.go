// Package dataset adapts generated XFEL diffraction patterns (or any
// labelled images) into the tensors and mini-batches consumed by the NN
// training engine: stratified train/test splitting, shuffled batching,
// and the 80/20 protocol used by the paper (§3.2).
package dataset

import (
	"fmt"
	"math/rand"

	"a4nn/internal/nn"
	"a4nn/internal/tensor"
	"a4nn/internal/xfel"
)

// Dataset is an in-memory labelled image collection stored as one NCHW
// tensor plus integer labels.
type Dataset struct {
	X          *tensor.Tensor // (N, C, H, W)
	Labels     []int
	NumClasses int
}

// FromPatterns packs diffraction patterns into a dataset with one channel.
// All patterns must share a detector size.
func FromPatterns(ps []*xfel.Pattern) (*Dataset, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("dataset: no patterns")
	}
	size := ps[0].Size
	x := tensor.New(len(ps), 1, size, size)
	labels := make([]int, len(ps))
	classes := 0
	for i, p := range ps {
		if p.Size != size {
			return nil, fmt.Errorf("dataset: pattern %d has size %d, want %d", i, p.Size, size)
		}
		if len(p.Pixels) != size*size {
			return nil, fmt.Errorf("dataset: pattern %d has %d pixels for size %d", i, len(p.Pixels), size)
		}
		copy(x.Data()[i*size*size:(i+1)*size*size], p.Pixels)
		labels[i] = int(p.Label)
		if labels[i] < 0 {
			return nil, fmt.Errorf("dataset: pattern %d has negative label %d", i, labels[i])
		}
		if labels[i]+1 > classes {
			classes = labels[i] + 1
		}
	}
	return &Dataset{X: x, Labels: labels, NumClasses: classes}, nil
}

// New wraps a pre-built tensor and labels after validation.
func New(x *tensor.Tensor, labels []int, numClasses int) (*Dataset, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("dataset: X must have rank ≥ 2, got %v", x.Shape())
	}
	if x.Dim(0) != len(labels) {
		return nil, fmt.Errorf("dataset: %d samples but %d labels", x.Dim(0), len(labels))
	}
	for i, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("dataset: label %d at index %d out of range [0,%d)", l, i, numClasses)
		}
	}
	return &Dataset{X: x, Labels: labels, NumClasses: numClasses}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// SampleShape returns the per-sample shape (excluding the batch
// dimension).
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// Subset returns a new dataset holding copies of the samples at idx.
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	sampleLen := d.X.Len() / d.X.Dim(0)
	shape := append([]int{len(idx)}, d.SampleShape()...)
	x := tensor.New(shape...)
	labels := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", j, d.Len())
		}
		copy(x.Data()[i*sampleLen:(i+1)*sampleLen], d.X.Data()[j*sampleLen:(j+1)*sampleLen])
		labels[i] = d.Labels[j]
	}
	return &Dataset{X: x, Labels: labels, NumClasses: d.NumClasses}, nil
}

// Split performs a stratified train/test split: each class contributes
// trainFrac of its samples (rounded down, at least one sample per side
// when the class has ≥ 2). The shuffle within each class is drawn from
// rng. The paper uses trainFrac = 0.8.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac must be in (0,1), got %v", trainFrac)
	}
	byClass := make(map[int][]int)
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	var trainIdx, testIdx []int
	for c := 0; c < d.NumClasses; c++ {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx)) * trainFrac)
		if len(idx) >= 2 {
			if cut == 0 {
				cut = 1
			}
			if cut == len(idx) {
				cut = len(idx) - 1
			}
		}
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	if len(trainIdx) == 0 || len(testIdx) == 0 {
		return nil, nil, fmt.Errorf("dataset: split produced an empty side (n=%d, frac=%v)", d.Len(), trainFrac)
	}
	train, err = d.Subset(trainIdx)
	if err != nil {
		return nil, nil, err
	}
	test, err = d.Subset(testIdx)
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// Batches cuts the dataset into mini-batches of at most batchSize
// samples. When rng is non-nil the sample order is shuffled first.
func (d *Dataset) Batches(batchSize int, rng *rand.Rand) ([]nn.Batch, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("dataset: batch size must be positive, got %d", batchSize)
	}
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	sampleLen := d.X.Len() / n
	sampleShape := d.SampleShape()
	var batches []nn.Batch
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, sampleShape...)
		x := tensor.New(shape...)
		labels := make([]int, hi-lo)
		for i := lo; i < hi; i++ {
			j := order[i]
			copy(x.Data()[(i-lo)*sampleLen:(i-lo+1)*sampleLen], d.X.Data()[j*sampleLen:(j+1)*sampleLen])
			labels[i-lo] = d.Labels[j]
		}
		batches = append(batches, nn.Batch{X: x, Labels: labels})
	}
	return batches, nil
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}
