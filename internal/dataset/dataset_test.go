package dataset

import (
	"math/rand"
	"testing"

	"a4nn/internal/tensor"
	"a4nn/internal/xfel"
)

func genPatterns(t *testing.T, n int) []*xfel.Pattern {
	t.Helper()
	sim, err := xfel.NewSimulator(7, xfel.DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sim.GenerateBatch(1, n, xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestFromPatterns(t *testing.T) {
	ps := genPatterns(t, 10)
	d, err := FromPatterns(ps)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 || d.NumClasses != 2 {
		t.Fatalf("len=%d classes=%d", d.Len(), d.NumClasses)
	}
	s := d.SampleShape()
	if len(s) != 3 || s[0] != 1 || s[1] != 32 || s[2] != 32 {
		t.Fatalf("sample shape %v", s)
	}
	// Pixel data must land in the right sample slot.
	if d.X.At(3, 0, 0, 0) != ps[3].Pixels[0] {
		t.Fatal("pixel layout wrong")
	}
	if _, err := FromPatterns(nil); err == nil {
		t.Fatal("empty patterns must error")
	}
}

func TestFromPatternsMixedSizes(t *testing.T) {
	ps := genPatterns(t, 4)
	ps[2] = &xfel.Pattern{Pixels: make([]float64, 16), Size: 4, Label: xfel.ConfA}
	if _, err := FromPatterns(ps); err == nil {
		t.Fatal("mixed sizes must error")
	}
}

func TestNewValidation(t *testing.T) {
	x := tensor.New(4, 2)
	if _, err := New(x, []int{0, 1, 0}, 2); err == nil {
		t.Fatal("label count mismatch must error")
	}
	if _, err := New(x, []int{0, 1, 0, 5}, 2); err == nil {
		t.Fatal("label out of range must error")
	}
	if _, err := New(tensor.New(4), []int{0, 0, 0, 0}, 1); err == nil {
		t.Fatal("rank-1 X must error")
	}
	if _, err := New(x, []int{0, 1, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStratified(t *testing.T) {
	ps := genPatterns(t, 40)
	d, err := FromPatterns(ps)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Split(0.8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != 40 {
		t.Fatalf("split sizes %d + %d != 40", train.Len(), test.Len())
	}
	if train.Len() != 32 || test.Len() != 8 {
		t.Fatalf("80/20 split gave %d/%d", train.Len(), test.Len())
	}
	tc := train.ClassCounts()
	if tc[0] != 16 || tc[1] != 16 {
		t.Fatalf("train not stratified: %v", tc)
	}
	if _, _, err := d.Split(0, nil); err == nil {
		t.Fatal("frac=0 must error")
	}
	if _, _, err := d.Split(1, nil); err == nil {
		t.Fatal("frac=1 must error")
	}
}

func TestSplitTinyClassesKeepBothSides(t *testing.T) {
	x := tensor.New(4, 1, 2, 2)
	d, err := New(x, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Split(0.9, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 2 || test.Len() != 2 {
		t.Fatalf("tiny split %d/%d, want 2/2", train.Len(), test.Len())
	}
}

func TestSubsetErrors(t *testing.T) {
	ps := genPatterns(t, 4)
	d, _ := FromPatterns(ps)
	if _, err := d.Subset([]int{0, 9}); err == nil {
		t.Fatal("out-of-range subset must error")
	}
	sub, err := d.Subset([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Labels[0] != d.Labels[3] || sub.Labels[1] != d.Labels[1] {
		t.Fatal("subset label order wrong")
	}
}

func TestBatches(t *testing.T) {
	ps := genPatterns(t, 10)
	d, _ := FromPatterns(ps)
	batches, err := d.Batches(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if batches[0].X.Dim(0) != 4 || batches[2].X.Dim(0) != 2 {
		t.Fatalf("batch sizes %d, %d", batches[0].X.Dim(0), batches[2].X.Dim(0))
	}
	total := 0
	for _, b := range batches {
		total += len(b.Labels)
	}
	if total != 10 {
		t.Fatalf("batches cover %d samples", total)
	}
	// Unshuffled batches preserve order.
	if batches[0].Labels[0] != d.Labels[0] {
		t.Fatal("unshuffled batch must preserve order")
	}
	// Shuffled batches cover the same multiset of labels.
	sb, err := d.Batches(4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, b := range sb {
		for _, l := range b.Labels {
			count[l]++
		}
	}
	if count[0] != 5 || count[1] != 5 {
		t.Fatalf("shuffled label multiset wrong: %v", count)
	}
	if _, err := d.Batches(0, nil); err == nil {
		t.Fatal("batchSize=0 must error")
	}
}

func TestClassCounts(t *testing.T) {
	ps := genPatterns(t, 12)
	d, _ := FromPatterns(ps)
	c := d.ClassCounts()
	if c[0] != 6 || c[1] != 6 {
		t.Fatalf("counts %v", c)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ps := genPatterns(t, 8)
	d, err := FromPatterns(ps)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.gob"
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.NumClasses != d.NumClasses {
		t.Fatalf("round trip lost metadata: %d/%d", back.Len(), back.NumClasses)
	}
	if !back.X.Equal(d.X, 0) {
		t.Fatal("round trip changed pixel data")
	}
	for i := range d.Labels {
		if back.Labels[i] != d.Labels[i] {
			t.Fatal("round trip changed labels")
		}
	}
	if _, err := Load(t.TempDir() + "/missing.gob"); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := d.Save("/nonexistent-dir/x.gob"); err == nil {
		t.Fatal("unwritable path must fail")
	}
}
