package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"a4nn/internal/tensor"
)

// fileFormat is the gob wire form of a dataset.
type fileFormat struct {
	Shape      []int
	Data       []float64
	Labels     []int
	NumClasses int
}

// Save writes the dataset to path in the package's gob format.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	ff := fileFormat{
		Shape:      d.X.Shape(),
		Data:       d.X.Data(),
		Labels:     d.Labels,
		NumClasses: d.NumClasses,
	}
	if err := gob.NewEncoder(w).Encode(ff); err != nil {
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset previously written with Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var ff fileFormat
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	x, err := tensor.FromSlice(ff.Data, ff.Shape...)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return New(x, ff.Labels, ff.NumClasses)
}
