// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the prediction-engine and NAS configurations (Tables 1
// and 2), the prediction-convergence example (Figure 2), the Pareto
// frontiers (Figure 6), epoch savings (Figure 7), termination-epoch
// distributions (Figure 8), wall times and scalability (Figure 9), the
// engine-overhead measurements (§4.3.1), and the XPSI comparison
// (Table 3). The cmd/experiments binary and the repository-root
// benchmarks are thin wrappers over this package.
//
// The searches use the calibrated surrogate trainer so the full grid
// (3 beams × {standalone, A4NN×1 device, A4NN×4 devices} × 100 networks ×
// 25 epochs) completes in seconds while exercising the real NAS, engine,
// orchestrator, scheduler, and lineage code paths; Table 3's XPSI column
// and the protein_classification example run genuine training.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"a4nn/internal/analyzer"
	"a4nn/internal/core"
	"a4nn/internal/dataset"
	"a4nn/internal/nsga"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
	"a4nn/internal/simtrain"
	"a4nn/internal/xfel"
	"a4nn/internal/xpsi"
)

// Mode identifies a search configuration in the evaluation grid.
type Mode string

// The three modes of the paper's evaluation.
const (
	Standalone Mode = "standalone" // NSGA-Net alone, 1 device
	A4NN1      Mode = "a4nn-1gpu"  // A4NN, 1 device
	A4NN4      Mode = "a4nn-4gpu"  // A4NN, 4 devices
)

// Key addresses one cell of the evaluation grid.
type Key struct {
	Beam xfel.BeamIntensity
	Mode Mode
}

// Suite holds the results of the full evaluation grid.
type Suite struct {
	Seed    int64
	Results map[Key]*core.Result
}

// searchConfig builds the Table 1 + Table 2 configuration for one cell.
func searchConfig(beam xfel.BeamIntensity, mode Mode, seed int64) (core.Config, error) {
	trainer, err := simtrain.ForBeam(beam)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(trainer)
	cfg.NAS.Seed = seed
	cfg.Beam = beam.String()
	switch mode {
	case Standalone:
		cfg.Engine = nil
	case A4NN1:
		cfg.Devices = 1
	case A4NN4:
		cfg.Devices = 4
	default:
		return core.Config{}, fmt.Errorf("experiments: unknown mode %q", mode)
	}
	return cfg, nil
}

// RunSearch executes one cell of the grid.
func RunSearch(beam xfel.BeamIntensity, mode Mode, seed int64) (*core.Result, error) {
	cfg, err := searchConfig(beam, mode, seed)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

// RunSuite executes the full grid: 3 beams × 3 modes.
func RunSuite(seed int64) (*Suite, error) {
	s := &Suite{Seed: seed, Results: make(map[Key]*core.Result)}
	for _, beam := range xfel.AllBeams {
		for _, mode := range []Mode{Standalone, A4NN1, A4NN4} {
			res, err := RunSearch(beam, mode, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", beam, mode, err)
			}
			s.Results[Key{beam, mode}] = res
		}
	}
	return s, nil
}

// get panics with a clear message when a cell is missing; Suite cells are
// always populated by RunSuite, so this indicates harness misuse.
func (s *Suite) get(beam xfel.BeamIntensity, mode Mode) *core.Result {
	r, ok := s.Results[Key{beam, mode}]
	if !ok {
		panic(fmt.Sprintf("experiments: missing suite cell %s/%s", beam, mode))
	}
	return r
}

// Table1 renders the prediction-engine configuration (paper Table 1).
func Table1() string {
	cfg := predict.DefaultConfig()
	rows := [][]string{
		{"F", cfg.Family.Name(), "parametric function for fitness modeling"},
		{"C_min", fmt.Sprint(cfg.CMin), "minimum number of epochs before making a prediction"},
		{"e_pred", fmt.Sprint(cfg.EPred), "epoch for which to predict final fitness"},
		{"N", fmt.Sprint(cfg.N), "number of predictions to consider when converging"},
		{"r", fmt.Sprint(cfg.R), "variance of prediction to tolerate in convergence"},
	}
	return analyzer.FormatTable([]string{"Variable", "Setting", "Description"}, rows)
}

// Table2 renders the NSGA-Net configuration (paper Table 2).
func Table2() string {
	cfg := nsga.DefaultConfig()
	rows := [][]string{
		{"size of starting population", fmt.Sprint(cfg.PopulationSize)},
		{"number of nodes per phase", "4"},
		{"number of offspring per generation", fmt.Sprint(cfg.Offspring)},
		{"number of generations", fmt.Sprint(cfg.Generations)},
		{"number of epochs to train", "25"},
	}
	return analyzer.FormatTable([]string{"Setting", "Value"}, rows)
}

// Fig2Result is the prediction-convergence trace of one network
// (paper Figure 2).
type Fig2Result struct {
	// Fitness[i] is the validation accuracy after epoch i+1.
	Fitness []float64
	// PredEpochs[i] and Predictions[i] are the engine's extrapolations of
	// the fitness at EPred.
	PredEpochs  []int
	Predictions []float64
	// ConvergedAt is the epoch where the analyzer declared convergence
	// (0 when it never did).
	ConvergedAt int
	// FinalPrediction is the fitness reported to the NAS.
	FinalPrediction float64
	EPred           int
}

// Fig2 traces the engine on one well-behaved medium-beam learning curve.
func Fig2(seed int64) (*Fig2Result, error) {
	engine, err := predict.NewEngine(predict.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// A concave curve with mild noise, rising from ~58% toward ~93.5% as
	// in the paper's example, whose prediction converges around epoch 12.
	a, beta := 93.5, 0.35
	c := math.Log(a-58)/beta + 1
	tracker := predict.NewTracker(engine)
	res := &Fig2Result{EPred: engine.Config().EPred}
	for e := 1; e <= 25; e++ {
		v := a - math.Exp(beta*(c-float64(e))) + rng.NormFloat64()*0.25
		if v > 100 {
			v = 100
		}
		res.Fitness = append(res.Fitness, v)
		converged := tracker.Observe(v)
		if n := len(tracker.P); n > len(res.Predictions) {
			res.Predictions = append(res.Predictions, tracker.P[n-1])
			res.PredEpochs = append(res.PredEpochs, e)
		}
		if converged {
			res.ConvergedAt = e
			break
		}
	}
	if f, ok := tracker.FinalFitness(); ok {
		res.FinalPrediction = f
	}
	return res, nil
}

// Fig6Series is one Pareto frontier of Figure 6.
type Fig6Series struct {
	Beam   xfel.BeamIntensity
	Mode   Mode
	Points []analyzer.Point
}

// Fig6 extracts the Pareto frontiers (accuracy vs MFLOPs) of the A4NN and
// standalone runs for each beam.
func (s *Suite) Fig6() []Fig6Series {
	var out []Fig6Series
	for _, mode := range []Mode{A4NN1, Standalone} {
		for _, beam := range xfel.AllBeams {
			res := s.get(beam, mode)
			out = append(out, Fig6Series{Beam: beam, Mode: mode, Points: analyzer.ParetoFrontier(res.Models)})
		}
	}
	return out
}

// Fig6Quality scores one beam's frontiers with the hypervolume indicator
// (objectives: 100−accuracy and MFLOPs, reference point (100, 1000)), the
// scalar version of Figure 6's "A4NN's frontier is at least as good".
type Fig6Quality struct {
	Beam         xfel.BeamIntensity
	A4NNHV       float64
	StandaloneHV float64
}

// Fig6Hypervolume computes the hypervolume of the A4NN (1 device) and
// standalone runs for each beam.
func (s *Suite) Fig6Hypervolume() ([]Fig6Quality, error) {
	ref := [2]float64{100, 1000}
	var out []Fig6Quality
	for _, beam := range xfel.AllBeams {
		a, err := nsga.Hypervolume2D(s.get(beam, A4NN1).ParetoObjectives(), ref)
		if err != nil {
			return nil, err
		}
		st, err := nsga.Hypervolume2D(s.get(beam, Standalone).ParetoObjectives(), ref)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Quality{Beam: beam, A4NNHV: a, StandaloneHV: st})
	}
	return out, nil
}

// Fig7Row is one beam's epoch accounting (paper Figure 7).
type Fig7Row struct {
	Beam             xfel.BeamIntensity
	StandaloneEpochs int
	A4NN1Epochs      int
	A4NN4Epochs      int
	Saved1Pct        float64 // % epochs saved by A4NN on 1 device
	Saved4Pct        float64
}

// Fig7 computes epoch totals and savings per beam.
func (s *Suite) Fig7() []Fig7Row {
	var rows []Fig7Row
	for _, beam := range xfel.AllBeams {
		std := s.get(beam, Standalone).TotalEpochs
		a1 := s.get(beam, A4NN1).TotalEpochs
		a4 := s.get(beam, A4NN4).TotalEpochs
		rows = append(rows, Fig7Row{
			Beam:             beam,
			StandaloneEpochs: std,
			A4NN1Epochs:      a1,
			A4NN4Epochs:      a4,
			Saved1Pct:        100 * (1 - float64(a1)/float64(std)),
			Saved4Pct:        100 * (1 - float64(a4)/float64(std)),
		})
	}
	return rows
}

// Fig8Row is one beam's termination distribution (paper Figure 8).
type Fig8Row struct {
	Beam          xfel.BeamIntensity
	Mode          Mode
	Bins          []analyzer.Bin
	TerminatedPct float64
	MeanEt        float64
}

// Fig8 computes e_t histograms and termination fractions for the A4NN
// runs (standalone models always train all 25 epochs, as in the paper).
func (s *Suite) Fig8() []Fig8Row {
	var rows []Fig8Row
	for _, mode := range []Mode{A4NN1, A4NN4} {
		for _, beam := range xfel.AllBeams {
			res := s.get(beam, mode)
			ets := res.TerminationEpochs()
			bins, err := analyzer.HistogramInts(ets, 5, 25, 3)
			if err != nil {
				panic(err) // static range, cannot fail
			}
			rows = append(rows, Fig8Row{
				Beam:          beam,
				Mode:          mode,
				Bins:          bins,
				TerminatedPct: 100 * float64(len(ets)) / float64(len(res.Models)),
				MeanEt:        analyzer.MeanInt(ets),
			})
		}
	}
	return rows
}

// Fig9Row is one beam's wall-time accounting (paper Figure 9).
type Fig9Row struct {
	Beam            xfel.BeamIntensity
	StandaloneHours float64
	A4NN1Hours      float64
	A4NN4Hours      float64
	SavedHours      float64 // standalone − A4NN(1 device)
	Speedup4        float64 // A4NN 1-device wall / 4-device wall
}

// Fig9 computes simulated wall times and the 4-device speed-ups.
func (s *Suite) Fig9() []Fig9Row {
	var rows []Fig9Row
	for _, beam := range xfel.AllBeams {
		std := s.get(beam, Standalone).Totals.WallSeconds / 3600
		a1 := s.get(beam, A4NN1).Totals.WallSeconds / 3600
		a4 := s.get(beam, A4NN4).Totals.WallSeconds / 3600
		rows = append(rows, Fig9Row{
			Beam:            beam,
			StandaloneHours: std,
			A4NN1Hours:      a1,
			A4NN4Hours:      a4,
			SavedHours:      std - a1,
			Speedup4:        a1 / a4,
		})
	}
	return rows
}

// OverheadRow summarises the measured prediction-engine overhead
// (paper §4.3.1) of one A4NN run.
type OverheadRow struct {
	Beam         xfel.BeamIntensity
	TotalSeconds float64
	MeanMillis   float64
	VarianceMs2  float64
	Interactions int
}

// Overhead reports the engine overhead of the 1-device A4NN runs.
func (s *Suite) Overhead() []OverheadRow {
	var rows []OverheadRow
	for _, beam := range xfel.AllBeams {
		o := s.get(beam, A4NN1).Overhead
		rows = append(rows, OverheadRow{
			Beam:         beam,
			TotalSeconds: o.TotalSeconds,
			MeanMillis:   o.MeanSeconds * 1e3,
			VarianceMs2:  o.VarianceSec2 * 1e6,
			Interactions: o.Interactions,
		})
	}
	return rows
}

// Table3Row compares A4NN against XPSI for one beam (paper Table 3).
type Table3Row struct {
	Beam xfel.BeamIntensity
	// XPSIHours is the baseline's simulated training time at the paper's
	// dataset scale; XPSIAccuracy is measured by real training on the
	// laptop-scale dataset.
	XPSIHours    float64
	XPSIAccuracy float64
	// A4NN numbers come from the surrogate searches (wall) and the best
	// model of the 1-device run (accuracy).
	A4NN1Hours   float64
	A4NN4Hours   float64
	A4NNAccuracy float64
}

// Table3Options sizes the real XPSI training.
type Table3Options struct {
	// Samples is the laptop-scale dataset size (default 400).
	Samples int
	// DetectorSize is the image edge (default 16).
	DetectorSize int
	// OrientationSpread for the generated dataset (default 0.35, hard
	// enough that noise separates the beams).
	OrientationSpread float64
	// Seed drives generation, splitting, and training.
	Seed int64
}

func (o *Table3Options) withDefaults() Table3Options {
	r := Table3Options{Samples: 400, DetectorSize: 16, OrientationSpread: 0.35, Seed: 11}
	if o == nil {
		return r
	}
	if o.Samples > 0 {
		r.Samples = o.Samples
	}
	if o.DetectorSize > 0 {
		r.DetectorSize = o.DetectorSize
	}
	if o.OrientationSpread > 0 {
		r.OrientationSpread = o.OrientationSpread
	}
	if o.Seed != 0 {
		r.Seed = o.Seed
	}
	return r
}

// Table3 trains the real XPSI baseline per beam and pairs it with the
// suite's A4NN results.
func (s *Suite) Table3(opts *Table3Options) ([]Table3Row, error) {
	o := opts.withDefaults()
	var rows []Table3Row
	for _, beam := range xfel.AllBeams {
		params := xfel.DefaultSimulatorParams()
		params.Size = o.DetectorSize
		params.OrientationSpread = o.OrientationSpread
		sim, err := xfel.NewSimulator(o.Seed, params)
		if err != nil {
			return nil, err
		}
		pats, err := sim.GenerateBatch(o.Seed+1, o.Samples, beam)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.FromPatterns(pats)
		if err != nil {
			return nil, err
		}
		train, test, err := ds.Split(0.8, rand.New(rand.NewSource(o.Seed+2)))
		if err != nil {
			return nil, err
		}
		pipe, err := xpsi.Train(train, xpsi.DefaultConfig(), o.Seed+3)
		if err != nil {
			return nil, err
		}
		acc, err := pipe.Evaluate(test)
		if err != nil {
			return nil, err
		}
		// Scale the measured training work to the paper's dataset size so
		// the wall time is comparable with the A4NN columns.
		dev := sched.Device{Throughput: sched.DefaultThroughput}
		scale := float64(simtrain.PaperTrainSamples) / float64(train.Len())
		// The paper's XPSI also processes 8× larger detectors (128² vs
		// our default 16²); FLOPs of the dense autoencoder scale with
		// pixel count.
		pixelScale := float64(128*128) / float64(o.DetectorSize*o.DetectorSize)
		xpsiHours := pipe.SimSeconds(dev) * scale * pixelScale / 3600

		a1 := s.get(beam, A4NN1)
		a4 := s.get(beam, A4NN4)
		rows = append(rows, Table3Row{
			Beam:         beam,
			XPSIHours:    xpsiHours,
			XPSIAccuracy: acc,
			A4NN1Hours:   a1.Totals.WallSeconds / 3600,
			A4NN4Hours:   a4.Totals.WallSeconds / 3600,
			A4NNAccuracy: analyzer.BestAccuracy(a1.Models),
		})
	}
	return rows, nil
}
