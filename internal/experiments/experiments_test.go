package experiments

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"a4nn/internal/xfel"
)

// suiteOnce shares one full grid across the tests in this package (the
// grid is ~30 s of work; every test below reads it without mutation).
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	suiteOnce.Do(func() { suite, suiteErr = RunSuite(1) })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"a-b^(c-x)", "e_pred", "25", "0.5"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"population", "10", "epochs"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestFig2ConvergesEarly(t *testing.T) {
	r, err := Fig2(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConvergedAt == 0 || r.ConvergedAt >= 25 {
		t.Fatalf("Fig2 converged at %d; the example must terminate early", r.ConvergedAt)
	}
	if r.FinalPrediction < 90 || r.FinalPrediction > 100 {
		t.Fatalf("final prediction %v implausible", r.FinalPrediction)
	}
	if len(r.Predictions) == 0 || len(r.PredEpochs) != len(r.Predictions) {
		t.Fatal("prediction trace missing")
	}
	out := FormatFig2(r)
	if !strings.Contains(out, "converged at epoch") {
		t.Fatalf("Fig2 format:\n%s", out)
	}
}

func TestSuiteGridComplete(t *testing.T) {
	s := sharedSuite(t)
	if len(s.Results) != 9 {
		t.Fatalf("grid has %d cells, want 9", len(s.Results))
	}
	for k, r := range s.Results {
		if len(r.Models) != 100 {
			t.Fatalf("%v evaluated %d networks, want 100 (Table 2)", k, len(r.Models))
		}
	}
}

func TestFig6ShapesHold(t *testing.T) {
	s := sharedSuite(t)
	series := s.Fig6()
	if len(series) != 6 {
		t.Fatalf("Fig6 has %d series", len(series))
	}
	for _, sr := range series {
		if len(sr.Points) == 0 {
			t.Fatalf("%s/%s has an empty frontier", sr.Mode, sr.Beam)
		}
		// Frontier is sorted by MFLOPs and accuracy-monotone (a true
		// 2-objective Pareto front rises with cost).
		for i := 1; i < len(sr.Points); i++ {
			if sr.Points[i].MFLOPs < sr.Points[i-1].MFLOPs {
				t.Fatalf("%s/%s frontier not sorted", sr.Mode, sr.Beam)
			}
			if sr.Points[i].Accuracy < sr.Points[i-1].Accuracy {
				t.Fatalf("%s/%s frontier not monotone", sr.Mode, sr.Beam)
			}
		}
	}
	out := FormatFig6(series)
	if !strings.Contains(out, "Pareto") {
		t.Fatal("Fig6 format empty")
	}
}

func TestFig7ShapesHold(t *testing.T) {
	s := sharedSuite(t)
	rows := s.Fig7()
	if len(rows) != 3 {
		t.Fatalf("Fig7 rows %d", len(rows))
	}
	byBeam := map[xfel.BeamIntensity]Fig7Row{}
	for _, r := range rows {
		byBeam[r.Beam] = r
		if r.StandaloneEpochs != 2500 {
			t.Fatalf("standalone %s epochs %d, want 2500", r.Beam, r.StandaloneEpochs)
		}
		if r.Saved1Pct <= 5 || r.Saved1Pct >= 60 {
			t.Fatalf("%s saved %.1f%% outside plausible band", r.Beam, r.Saved1Pct)
		}
	}
	// Paper shape: medium saves most, low least.
	if !(byBeam[xfel.MediumBeam].Saved1Pct > byBeam[xfel.HighBeam].Saved1Pct &&
		byBeam[xfel.HighBeam].Saved1Pct > byBeam[xfel.LowBeam].Saved1Pct) {
		t.Fatalf("savings ordering violated: %+v", rows)
	}
	if !strings.Contains(FormatFig7(rows), "saved") {
		t.Fatal("Fig7 format empty")
	}
}

func TestFig8ShapesHold(t *testing.T) {
	s := sharedSuite(t)
	rows := s.Fig8()
	if len(rows) != 6 {
		t.Fatalf("Fig8 rows %d", len(rows))
	}
	et := map[xfel.BeamIntensity]float64{}
	for _, r := range rows {
		if r.Mode == A4NN1 {
			et[r.Beam] = r.MeanEt
		}
		if r.TerminatedPct < 30 || r.TerminatedPct > 95 {
			t.Fatalf("%s/%s terminated %.0f%% implausible", r.Mode, r.Beam, r.TerminatedPct)
		}
	}
	// Paper shape: low converges latest.
	if !(et[xfel.LowBeam] > et[xfel.MediumBeam] && et[xfel.LowBeam] > et[xfel.HighBeam]) {
		t.Fatalf("e_t ordering violated: %+v", et)
	}
	if !strings.Contains(FormatFig8(rows), "terminated early") {
		t.Fatal("Fig8 format empty")
	}
}

func TestFig9ShapesHold(t *testing.T) {
	s := sharedSuite(t)
	rows := s.Fig9()
	for _, r := range rows {
		if r.A4NN1Hours >= r.StandaloneHours {
			t.Fatalf("%s: A4NN %.1fh must beat standalone %.1fh", r.Beam, r.A4NN1Hours, r.StandaloneHours)
		}
		if r.Speedup4 < 2.2 || r.Speedup4 > 4.2 {
			t.Fatalf("%s: 4-device speedup %.2f outside near-linear band", r.Beam, r.Speedup4)
		}
		// Paper scale: tens of hours on one device, ~single-digit to low
		// tens on four.
		if r.StandaloneHours < 10 || r.StandaloneHours > 100 {
			t.Fatalf("%s: standalone %.1fh not paper-scale", r.Beam, r.StandaloneHours)
		}
	}
	if !strings.Contains(FormatFig9(rows), "speedup") {
		t.Fatal("Fig9 format empty")
	}
}

func TestOverheadMeasured(t *testing.T) {
	s := sharedSuite(t)
	rows := s.Overhead()
	for _, r := range rows {
		if r.Interactions == 0 || r.TotalSeconds <= 0 || r.MeanMillis <= 0 {
			t.Fatalf("overhead row %+v not measured", r)
		}
	}
	if !strings.Contains(FormatOverhead(rows), "interaction") {
		t.Fatal("overhead format empty")
	}
}

func TestTable3ShapesHold(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Table3(&Table3Options{Samples: 240, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table3 rows %d", len(rows))
	}
	byBeam := map[xfel.BeamIntensity]Table3Row{}
	for _, r := range rows {
		byBeam[r.Beam] = r
		// XPSI trains one model: far cheaper than a 1-device search.
		if r.XPSIHours >= r.A4NN1Hours {
			t.Fatalf("%s: XPSI %.2fh should beat the 1-device search %.2fh", r.Beam, r.XPSIHours, r.A4NN1Hours)
		}
		// A4NN's best model matches or beats XPSI.
		if r.A4NNAccuracy < r.XPSIAccuracy-2 {
			t.Fatalf("%s: A4NN %.1f%% must be ≥ XPSI %.1f%%", r.Beam, r.A4NNAccuracy, r.XPSIAccuracy)
		}
	}
	// XPSI degrades most on the noisy low beam (paper: 92 vs 99/100).
	if byBeam[xfel.LowBeam].XPSIAccuracy >= byBeam[xfel.HighBeam].XPSIAccuracy {
		t.Fatalf("XPSI low %.1f%% should trail high %.1f%%",
			byBeam[xfel.LowBeam].XPSIAccuracy, byBeam[xfel.HighBeam].XPSIAccuracy)
	}
	if !strings.Contains(FormatTable3(rows), "XPSI") {
		t.Fatal("Table3 format empty")
	}
}

func TestRunSearchUnknownMode(t *testing.T) {
	if _, err := RunSearch(xfel.LowBeam, Mode("bogus"), 1); err == nil {
		t.Fatal("unknown mode must fail")
	}
}

func TestFig6Hypervolume(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig6Hypervolume()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.A4NNHV <= 0 || r.StandaloneHV <= 0 {
			t.Fatalf("%s: degenerate hypervolumes %+v", r.Beam, r)
		}
		// A4NN's frontier must stay in the same quality band as
		// standalone's (the paper's claim is "as good or better"; the
		// scalar ratio is dominated by whichever run stumbled on the
		// single cheapest high-accuracy model, so allow seed noise).
		if r.A4NNHV < 0.7*r.StandaloneHV {
			t.Fatalf("%s: A4NN HV %.0f below 70%% of standalone %.0f", r.Beam, r.A4NNHV, r.StandaloneHV)
		}
	}
	if !strings.Contains(FormatFig6Quality(rows), "hypervolume") {
		t.Fatal("format empty")
	}
}

func TestMultiSeedFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed in -short mode")
	}
	rows, err := MultiSeedFig7(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Seeds != 3 {
			t.Fatalf("seeds %d", r.Seeds)
		}
		if r.MeanSavedPct <= 5 || r.MeanSavedPct >= 60 {
			t.Fatalf("%s mean savings %.1f implausible", r.Beam, r.MeanSavedPct)
		}
		if r.StdSavedPct < 0 || r.StdSavedPct > 15 {
			t.Fatalf("%s std %.1f implausible", r.Beam, r.StdSavedPct)
		}
	}
	if !strings.Contains(FormatMultiSeed(rows), "±") {
		t.Fatal("format missing std")
	}
	if _, err := MultiSeedFig7(1, 0); err == nil {
		t.Fatal("0 seeds must fail")
	}
}

func TestExportJSON(t *testing.T) {
	s := sharedSuite(t)
	exp, err := s.Export(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := exp.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fig6_pareto", "fig6_hypervolume", "fig7_epochs", "fig8_termination", "fig9_walltime", "engine_overhead"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("export missing %q", key)
		}
	}
	if _, ok := back["table3_xpsi"]; ok {
		t.Fatal("nil table3 must be omitted")
	}
}
