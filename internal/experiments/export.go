package experiments

import (
	"encoding/json"
	"fmt"
)

// Export is the machine-readable form of the full evaluation, for
// downstream plotting or regression tracking (cmd/experiments -json).
type Export struct {
	Seed     int64         `json:"seed"`
	Fig6     []Fig6Series  `json:"fig6_pareto"`
	Fig6HV   []Fig6Quality `json:"fig6_hypervolume"`
	Fig7     []Fig7Row     `json:"fig7_epochs"`
	Fig8     []Fig8Row     `json:"fig8_termination"`
	Fig9     []Fig9Row     `json:"fig9_walltime"`
	Overhead []OverheadRow `json:"engine_overhead"`
	Table3   []Table3Row   `json:"table3_xpsi,omitempty"`
}

// Export gathers every derived figure of the suite; table3 may be nil
// when the real XPSI baseline was not run.
func (s *Suite) Export(table3 []Table3Row) (*Export, error) {
	hv, err := s.Fig6Hypervolume()
	if err != nil {
		return nil, err
	}
	return &Export{
		Seed:     s.Seed,
		Fig6:     s.Fig6(),
		Fig6HV:   hv,
		Fig7:     s.Fig7(),
		Fig8:     s.Fig8(),
		Fig9:     s.Fig9(),
		Overhead: s.Overhead(),
		Table3:   table3,
	}, nil
}

// MarshalJSON renders the export with stable indentation.
func (e *Export) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: encode export: %w", err)
	}
	return data, nil
}
