package experiments

import (
	"fmt"
	"strings"

	"a4nn/internal/analyzer"
)

// FormatFig2 renders the prediction-convergence trace.
func FormatFig2(r *Fig2Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: fitness prediction with F(x)=a-b^(c-x), e_pred=%d\n", r.EPred)
	fmt.Fprintf(&sb, "fitness curve: %s\n", analyzer.Sparkline(r.Fitness))
	var rows [][]string
	pi := 0
	for e := 1; e <= len(r.Fitness); e++ {
		pred := ""
		if pi < len(r.PredEpochs) && r.PredEpochs[pi] == e {
			pred = fmt.Sprintf("%.2f", r.Predictions[pi])
			pi++
		}
		rows = append(rows, []string{fmt.Sprint(e), fmt.Sprintf("%.2f", r.Fitness[e-1]), pred})
	}
	sb.WriteString(analyzer.FormatTable([]string{"epoch", "fitness", fmt.Sprintf("pred@%d", r.EPred)}, rows))
	if r.ConvergedAt > 0 {
		fmt.Fprintf(&sb, "prediction converged at epoch %d; final prediction %.2f (training terminated)\n",
			r.ConvergedAt, r.FinalPrediction)
	} else {
		sb.WriteString("predictions did not converge; network trained the full budget\n")
	}
	return sb.String()
}

// FormatFig6 renders the Pareto frontiers.
func FormatFig6(series []Fig6Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Pareto-optimal models (validation accuracy vs MFLOPs)\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "\n[%s, %s beam] %d Pareto-optimal models\n", s.Mode, s.Beam, len(s.Points))
		var rows [][]string
		for _, p := range s.Points {
			rows = append(rows, []string{p.ID, fmt.Sprintf("%.2f", p.Accuracy), fmt.Sprintf("%.1f", p.MFLOPs)})
		}
		sb.WriteString(analyzer.FormatTable([]string{"model", "accuracy %", "MFLOPs"}, rows))
	}
	return sb.String()
}

// FormatFig6Quality renders the hypervolume comparison.
func FormatFig6Quality(rows []Fig6Quality) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 (quality): hypervolume of the frontiers, ref (100, 1000 MFLOPs)\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprintf("%.0f", r.A4NNHV),
			fmt.Sprintf("%.0f", r.StandaloneHV),
			fmt.Sprintf("%.3f", r.A4NNHV/r.StandaloneHV),
		})
	}
	sb.WriteString(analyzer.FormatTable([]string{"beam", "A4NN HV", "standalone HV", "ratio"}, t))
	return sb.String()
}

// FormatFig7 renders the epoch-savings bars.
func FormatFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: training epochs for 100 architectures and % saved vs standalone\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprint(r.StandaloneEpochs),
			fmt.Sprintf("%d (%.1f%% saved)", r.A4NN1Epochs, r.Saved1Pct),
			fmt.Sprintf("%d (%.1f%% saved)", r.A4NN4Epochs, r.Saved4Pct),
		})
	}
	sb.WriteString(analyzer.FormatTable([]string{"beam", "standalone", "A4NN 1 GPU", "A4NN 4 GPU"}, t))
	return sb.String()
}

// FormatFig8 renders the termination-epoch distributions.
func FormatFig8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: distribution of termination epoch e_t\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "\n[%s, %s] %.0f%% of models terminated early, mean e_t = %.1f\n",
			r.Mode, r.Beam, r.TerminatedPct, r.MeanEt)
		sb.WriteString(analyzer.RenderHistogram(r.Bins))
	}
	return sb.String()
}

// FormatFig9 renders the wall-time comparison.
func FormatFig9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: simulated wall times (hours)\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprintf("%.2f", r.StandaloneHours),
			fmt.Sprintf("%.2f", r.A4NN1Hours),
			fmt.Sprintf("%.2f", r.A4NN4Hours),
			fmt.Sprintf("%.2f", r.SavedHours),
			fmt.Sprintf("%.2fx", r.Speedup4),
		})
	}
	sb.WriteString(analyzer.FormatTable(
		[]string{"beam", "standalone", "A4NN 1 GPU", "A4NN 4 GPU", "saved (1 GPU)", "4-GPU speedup"}, t))
	return sb.String()
}

// FormatOverhead renders the §4.3.1 engine-overhead measurements.
func FormatOverhead(rows []OverheadRow) string {
	var sb strings.Builder
	sb.WriteString("Prediction-engine overhead (measured, §4.3.1)\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprintf("%.3f", r.TotalSeconds),
			fmt.Sprintf("%.3f", r.MeanMillis),
			fmt.Sprintf("%.4f", r.VarianceMs2),
			fmt.Sprint(r.Interactions),
		})
	}
	sb.WriteString(analyzer.FormatTable(
		[]string{"beam", "total s / test", "mean ms / interaction", "variance ms²", "interactions"}, t))
	return sb.String()
}

// FormatTable3 renders the XPSI comparison.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: wall time and accuracy of A4NN versus XPSI\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprintf("%.4f h / %.1f%%", r.XPSIHours, r.XPSIAccuracy),
			fmt.Sprintf("%.2f h / %.1f%%", r.A4NN1Hours, r.A4NNAccuracy),
			fmt.Sprintf("%.2f h", r.A4NN4Hours),
		})
	}
	sb.WriteString(analyzer.FormatTable(
		[]string{"beam", "XPSI (wall/acc)", "A4NN 1 GPU (wall/acc)", "A4NN 4 GPU (wall)"}, t))
	return sb.String()
}
