package experiments

import (
	"fmt"
	"math"
	"strings"

	"a4nn/internal/analyzer"
	"a4nn/internal/xfel"
)

// MultiSeedRow reports the mean ± standard deviation of a beam's epoch
// savings across independent seeds — the statistical robustness check the
// paper's single-run bars lack.
type MultiSeedRow struct {
	Beam              xfel.BeamIntensity
	Seeds             int
	MeanSavedPct      float64
	StdSavedPct       float64
	MeanTerminatedPct float64
}

// MultiSeedFig7 repeats the A4NN-vs-standalone epoch comparison over n
// seeds (1-device runs) and aggregates the savings.
func MultiSeedFig7(baseSeed int64, n int) ([]MultiSeedRow, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: need ≥ 1 seed, got %d", n)
	}
	var rows []MultiSeedRow
	for _, beam := range xfel.AllBeams {
		var saved, term []float64
		for s := 0; s < n; s++ {
			seed := baseSeed + int64(s)*977
			a4, err := RunSearch(beam, A4NN1, seed)
			if err != nil {
				return nil, err
			}
			full := len(a4.Models) * 25
			saved = append(saved, 100*(1-float64(a4.TotalEpochs)/float64(full)))
			term = append(term, 100*float64(a4.TerminatedEarly)/float64(len(a4.Models)))
		}
		mean, std := meanStd(saved)
		tMean, _ := meanStd(term)
		rows = append(rows, MultiSeedRow{
			Beam: beam, Seeds: n,
			MeanSavedPct: mean, StdSavedPct: std,
			MeanTerminatedPct: tMean,
		})
	}
	return rows, nil
}

// meanStd returns the sample mean and (population) standard deviation.
func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(v)))
}

// FormatMultiSeed renders the aggregate savings table.
func FormatMultiSeed(rows []MultiSeedRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Figure 7 across %d seeds: epoch savings (mean ± std)\n", rows[0].Seeds)
	}
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Beam.String(),
			fmt.Sprintf("%.1f%% ± %.1f", r.MeanSavedPct, r.StdSavedPct),
			fmt.Sprintf("%.0f%%", r.MeanTerminatedPct),
		})
	}
	sb.WriteString(analyzer.FormatTable([]string{"beam", "epochs saved", "terminated"}, t))
	return sb.String()
}
