package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearBadInput(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("expected error for empty system")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected ragged row error")
	}
}

// Property: solving A·x = b then multiplying back recovers b.
func TestSolveLinearRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance keeps it well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x fits exactly.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-10 || math.Abs(beta[1]-3) > 1e-10 {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line: recovered slope/intercept should be near truth.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i) / 10
		x = append(x, []float64{1, xi})
		y = append(y, 1.5+0.7*xi+rng.NormFloat64()*0.01)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-1.5) > 0.05 || math.Abs(beta[1]-0.7) > 0.01 {
		t.Fatalf("beta = %v, want ≈[1.5 0.7]", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("expected error for no observations")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected row/target mismatch error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected underdetermined error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected ragged matrix error")
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 2*x + 0.5*x*x
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
	// PolyEval agrees with the construction.
	for _, x := range xs {
		if math.Abs(PolyEval(c, x)-(1-2*x+0.5*x*x)) > 1e-9 {
			t.Fatal("PolyEval disagrees")
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("expected degree error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := RSquared(y, y); r != 1 {
		t.Fatalf("perfect fit R² = %v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(y, mean); math.Abs(r) > 1e-12 {
		t.Fatalf("mean-prediction R² = %v, want 0", r)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Fatal("empty input should give NaN")
	}
	if r := RSquared([]float64{3, 3}, []float64{3, 3}); r != 1 {
		t.Fatalf("constant exact fit R² = %v, want 1", r)
	}
	if r := RSquared([]float64{3, 3}, []float64{2, 4}); r != 0 {
		t.Fatalf("constant inexact fit R² = %v, want 0", r)
	}
}

// paperCurve is the paper's learning-curve family F(x) = a − b^(c−x),
// parameterised as (a, logb, c) so b = e^logb stays positive.
func paperCurve(p []float64, x float64) float64 {
	return p[0] - math.Exp(p[1]*(p[2]-x))
}

func TestCurveFitRecoversPaperFamily(t *testing.T) {
	// Ground truth: a=95, b=e^0.35, c=4  (accuracy saturating at 95%).
	truth := []float64{95, 0.35, 4}
	var xs, ys []float64
	for e := 1; e <= 20; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, paperCurve(truth, float64(e)))
	}
	// Initial guess as the prediction engine computes it: a₀ slightly above
	// the best observed fitness, (β, c) from linearising log(a₀−y).
	// From a poor/global start this family has a degenerate constant-fit
	// basin, which is why the engine seeds LM this way (see internal/predict).
	bounds := &LMOptions{Lower: []float64{0, 1e-4, -50}, Upper: []float64{150, 5, 50}}
	res, err := CurveFit(paperCurve, xs, ys, []float64{96, 0.3, 3}, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fit did not converge: %+v", res)
	}
	if math.Abs(res.Params[0]-95) > 0.1 {
		t.Fatalf("a = %v, want ≈95", res.Params[0])
	}
	// Extrapolation at epoch 25 should match the truth closely.
	pred := paperCurve(res.Params, 25)
	want := paperCurve(truth, 25)
	if math.Abs(pred-want) > 0.2 {
		t.Fatalf("extrapolation %v, want %v", pred, want)
	}
}

func TestCurveFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := []float64{90, 0.5, 2}
	var xs, ys []float64
	for e := 1; e <= 15; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, paperCurve(truth, float64(e))+rng.NormFloat64()*0.3)
	}
	res, err := CurveFit(paperCurve, xs, ys, []float64{91, 0.4, 1.5},
		&LMOptions{Lower: []float64{0, 1e-4, -50}, Upper: []float64{150, 5, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-90) > 2 {
		t.Fatalf("a = %v, want ≈90", res.Params[0])
	}
}

func TestCurveFitLinearModel(t *testing.T) {
	lin := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	res, err := CurveFit(lin, xs, ys, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1) > 1e-6 || math.Abs(res.Params[1]-2) > 1e-6 {
		t.Fatalf("params = %v, want [1 2]", res.Params)
	}
	if res.Residual > 1e-10 {
		t.Fatalf("residual = %v", res.Residual)
	}
}

func TestCurveFitErrors(t *testing.T) {
	lin := func(p []float64, x float64) float64 { return p[0] }
	if _, err := CurveFit(lin, []float64{1}, []float64{1, 2}, []float64{0}, nil); err == nil {
		t.Fatal("expected xs/ys mismatch error")
	}
	if _, err := CurveFit(lin, []float64{1}, []float64{1}, nil, nil); err == nil {
		t.Fatal("expected empty-params error")
	}
	if _, err := CurveFit(lin, []float64{1}, []float64{1}, []float64{0, 0}, nil); err == nil {
		t.Fatal("expected too-few-observations error")
	}
	nan := func(p []float64, x float64) float64 { return math.NaN() }
	if _, err := CurveFit(nan, []float64{1}, []float64{1}, []float64{0}, nil); err == nil {
		t.Fatal("expected non-finite model error")
	}
	if _, err := CurveFit(lin, []float64{1}, []float64{1}, []float64{0},
		&LMOptions{Lower: []float64{0, 0}}); err == nil {
		t.Fatal("expected bounds-length error")
	}
}

func TestCurveFitRespectsBounds(t *testing.T) {
	lin := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	// Unconstrained optimum is intercept 1, slope 2; force slope ≤ 1.
	res, err := CurveFit(lin, []float64{0, 1, 2, 3}, []float64{1, 3, 5, 7}, []float64{0, 0},
		&LMOptions{Lower: []float64{-10, -1}, Upper: []float64{10, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params[1] > 1+1e-12 {
		t.Fatalf("slope %v exceeds upper bound 1", res.Params[1])
	}
}

func TestCurveFitDoesNotMutateP0(t *testing.T) {
	lin := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	p0 := []float64{0, 0}
	if _, err := CurveFit(lin, []float64{0, 1, 2}, []float64{1, 3, 5}, p0, nil); err != nil {
		t.Fatal(err)
	}
	if p0[0] != 0 || p0[1] != 0 {
		t.Fatalf("p0 mutated: %v", p0)
	}
}

func TestLMOptionsDefaults(t *testing.T) {
	o := (&LMOptions{MaxIterations: 5}).withDefaults()
	if o.MaxIterations != 5 || o.Tolerance != 1e-10 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	d := (*LMOptions)(nil).withDefaults()
	if d.MaxIterations != 200 {
		t.Fatalf("nil defaults not applied: %+v", d)
	}
}

func BenchmarkCurveFitPaperFamily(b *testing.B) {
	truth := []float64{95, 0.35, 4}
	var xs, ys []float64
	for e := 1; e <= 12; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, paperCurve(truth, float64(e)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CurveFit(paperCurve, xs, ys, []float64{80, 0.2, 1}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCurveFitWeighted(t *testing.T) {
	lin := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	// Two regimes: x<3 on one line, x≥3 on another. Heavy weights on the
	// second regime must recover its slope.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := []float64{10, 10, 10, 3, 4, 5, 6} // late regime: y = x
	w := []float64{0.001, 0.001, 0.001, 1, 1, 1, 1}
	res, err := CurveFit(lin, xs, ys, []float64{0, 0}, &LMOptions{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]) > 0.2 || math.Abs(res.Params[1]-1) > 0.1 {
		t.Fatalf("weighted fit %v, want ≈[0 1]", res.Params)
	}
	// Wrong weight count must fail.
	if _, err := CurveFit(lin, xs, ys, []float64{0, 0}, &LMOptions{Weights: []float64{1}}); err == nil {
		t.Fatal("weight length mismatch must fail")
	}
}
