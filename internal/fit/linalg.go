// Package fit provides the regression machinery used by the A4NN
// parametric prediction engine: dense linear least squares (via normal
// equations with Gaussian elimination) and nonlinear least squares (via
// Levenberg–Marquardt with a numeric Jacobian).
//
// The prediction engine in internal/predict fits the paper's learning-curve
// family F(x) = a − b^(c−x) to partial validation-accuracy histories; this
// package knows nothing about that family and works for any residual
// function.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution
// (the matrix is singular or numerically rank-deficient).
var ErrSingular = errors.New("fit: singular matrix")

// SolveLinear solves the n×n system A·x = b using Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("fit: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("fit: matrix is %d×%d but rhs has length %d", n, len(a[0]), len(b))
	}
	// Work on copies: augmented matrix m = [A | b].
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("fit: row %d has length %d, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |entry| in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// LeastSquares solves the over-determined system X·β ≈ y in the
// least-squares sense via the normal equations XᵀX·β = Xᵀy. X is m×n with
// m ≥ n. Returns the coefficient vector β of length n.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 {
		return nil, errors.New("fit: no observations")
	}
	n := len(x[0])
	if len(y) != m {
		return nil, fmt.Errorf("fit: %d rows but %d targets", m, len(y))
	}
	if m < n {
		return nil, fmt.Errorf("fit: underdetermined system (%d rows, %d unknowns)", m, n)
	}
	xtx := make([][]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	xty := make([]float64, n)
	for r := 0; r < m; r++ {
		row := x[r]
		if len(row) != n {
			return nil, fmt.Errorf("fit: ragged design matrix at row %d", r)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by least
// squares and returns coefficients c[0..degree], lowest order first.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("fit: negative degree %d", degree)
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("fit: %d xs but %d ys", len(xs), len(ys))
	}
	design := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		p := 1.0
		for d := 0; d <= degree; d++ {
			row[d] = p
			p *= x
		}
		design[i] = row
	}
	return LeastSquares(design, ys)
}

// PolyEval evaluates a polynomial with coefficients c (lowest order first)
// at x using Horner's rule.
func PolyEval(c []float64, x float64) float64 {
	s := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}

// RSquared returns the coefficient of determination for predictions pred
// of the observations y: 1 − SS_res/SS_tot. A constant y vector yields 1
// when predictions are exact and 0 otherwise.
func RSquared(y, pred []float64) float64 {
	if len(y) == 0 || len(y) != len(pred) {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	ssRes, ssTot := 0.0, 0.0
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		m := y[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
