package fit

import (
	"errors"
	"fmt"
	"math"
)

// Func is a parametric model y = f(params, x) fitted by Levenberg–Marquardt.
type Func func(params []float64, x float64) float64

// LMOptions configures Levenberg–Marquardt.
type LMOptions struct {
	// MaxIterations bounds the number of LM steps (default 200).
	MaxIterations int
	// Tolerance is the relative reduction in the sum of squared residuals
	// below which the fit is declared converged (default 1e-10).
	Tolerance float64
	// InitialLambda is the starting damping factor (default 1e-3).
	InitialLambda float64
	// Epsilon is the step used for the central-difference Jacobian
	// (default 1e-6, scaled by max(1,|param|)).
	Epsilon float64
	// Weights, when non-nil, must have one entry per observation; the
	// fit minimises Σ wᵢ·rᵢ². The prediction engine uses recency weights
	// so late epochs dominate the extrapolation.
	Weights []float64
	// Lower and Upper, when non-nil, impose box constraints: every trial
	// parameter vector is projected into [Lower[i], Upper[i]]. They must
	// have the same length as the parameter vector. Box constraints keep
	// exponential-family models out of degenerate flat regions where the
	// numeric Jacobian vanishes.
	Lower, Upper []float64
}

func (o *LMOptions) withDefaults() LMOptions {
	r := LMOptions{MaxIterations: 200, Tolerance: 1e-10, InitialLambda: 1e-3, Epsilon: 1e-6}
	if o == nil {
		return r
	}
	if o.MaxIterations > 0 {
		r.MaxIterations = o.MaxIterations
	}
	if o.Tolerance > 0 {
		r.Tolerance = o.Tolerance
	}
	if o.InitialLambda > 0 {
		r.InitialLambda = o.InitialLambda
	}
	if o.Epsilon > 0 {
		r.Epsilon = o.Epsilon
	}
	r.Lower, r.Upper, r.Weights = o.Lower, o.Upper, o.Weights
	return r
}

// project clamps p into the box [Lower, Upper] when bounds are set.
func (o *LMOptions) project(p []float64) {
	for i := range p {
		if o.Lower != nil && p[i] < o.Lower[i] {
			p[i] = o.Lower[i]
		}
		if o.Upper != nil && p[i] > o.Upper[i] {
			p[i] = o.Upper[i]
		}
	}
}

// LMResult reports the outcome of a Levenberg–Marquardt fit.
type LMResult struct {
	// Params holds the fitted parameter vector.
	Params []float64
	// Residual is the final sum of squared residuals.
	Residual float64
	// Iterations is the number of LM steps taken.
	Iterations int
	// Converged reports whether the relative-improvement criterion was met
	// before MaxIterations.
	Converged bool
}

// CurveFit fits model to the observations (xs, ys) starting from p0 using
// Levenberg–Marquardt with a numeric central-difference Jacobian. p0 is not
// modified. The fit requires at least len(p0) observations.
func CurveFit(model Func, xs, ys []float64, p0 []float64, opts *LMOptions) (LMResult, error) {
	o := opts.withDefaults()
	if len(xs) != len(ys) {
		return LMResult{}, fmt.Errorf("fit: %d xs but %d ys", len(xs), len(ys))
	}
	np := len(p0)
	if np == 0 {
		return LMResult{}, errors.New("fit: empty parameter vector")
	}
	m := len(xs)
	if m < np {
		return LMResult{}, fmt.Errorf("fit: %d observations for %d parameters", m, np)
	}
	if (o.Lower != nil && len(o.Lower) != np) || (o.Upper != nil && len(o.Upper) != np) {
		return LMResult{}, fmt.Errorf("fit: bounds length must match %d parameters", np)
	}
	if o.Weights != nil && len(o.Weights) != m {
		return LMResult{}, fmt.Errorf("fit: %d weights for %d observations", len(o.Weights), m)
	}

	params := append([]float64(nil), p0...)
	o.project(params)
	resid := make([]float64, m)
	sse := residuals(model, params, xs, ys, o.Weights, resid)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return LMResult{}, errors.New("fit: model not finite at initial parameters")
	}

	lambda := o.InitialLambda
	jac := make([][]float64, m) // m×np Jacobian of the model wrt params
	for i := range jac {
		jac[i] = make([]float64, np)
	}
	trial := make([]float64, np)
	trialResid := make([]float64, m)

	res := LMResult{Params: params, Residual: sse}
	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		numericJacobian(model, params, xs, o.Weights, jac, o.Epsilon)

		// Normal equations with LM damping: (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for i := 0; i < np; i++ {
			jtj[i] = make([]float64, np)
		}
		for r := 0; r < m; r++ {
			row := jac[r]
			for i := 0; i < np; i++ {
				for j := i; j < np; j++ {
					jtj[i][j] += row[i] * row[j]
				}
				jtr[i] += row[i] * resid[r]
			}
		}
		for i := 0; i < np; i++ {
			for j := 0; j < i; j++ {
				jtj[i][j] = jtj[j][i]
			}
		}

		improved := false
		// Try increasingly damped steps until one improves the residual.
		for attempt := 0; attempt < 12; attempt++ {
			damped := make([][]float64, np)
			for i := 0; i < np; i++ {
				damped[i] = append([]float64(nil), jtj[i]...)
				d := jtj[i][i]
				if d == 0 {
					d = 1e-12
				}
				damped[i][i] += lambda * d
			}
			delta, err := SolveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			for i := range trial {
				trial[i] = params[i] + delta[i]
			}
			o.project(trial)
			trialSSE := residuals(model, trial, xs, ys, o.Weights, trialResid)
			if !math.IsNaN(trialSSE) && trialSSE < sse {
				rel := (sse - trialSSE) / math.Max(sse, 1e-300)
				copy(params, trial)
				copy(resid, trialResid)
				sse = trialSSE
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < o.Tolerance {
					res.Converged = true
				}
				break
			}
			lambda *= 10
		}
		res.Params = params
		res.Residual = sse
		if res.Converged || !improved {
			// No further progress possible (or converged): stop. A stall
			// with a tiny residual still counts as convergence.
			if !improved && sse <= 1e-18 {
				res.Converged = true
			}
			if !improved && !res.Converged {
				// Stalled: report the best point found; callers inspect
				// Converged to decide whether to trust the extrapolation.
				res.Converged = sse < math.Inf(1)
			}
			break
		}
	}
	return res, nil
}

// residuals fills out[i] = √wᵢ·(ys[i] − model(params, xs[i])) and returns
// the weighted sum of squares (NaN if the model produced a non-finite
// value). A nil ws means unit weights.
func residuals(model Func, params, xs, ys, ws, out []float64) float64 {
	sse := 0.0
	for i, x := range xs {
		v := model(params, x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.NaN()
		}
		r := ys[i] - v
		if ws != nil {
			r *= math.Sqrt(math.Max(ws[i], 0))
		}
		out[i] = r
		sse += r * r
	}
	return sse
}

// numericJacobian fills jac[i][j] = √wᵢ·∂model(params, xs[i])/∂params[j]
// using central differences with per-parameter scaled steps. A nil ws
// means unit weights.
func numericJacobian(model Func, params, xs, ws []float64, jac [][]float64, eps float64) {
	np := len(params)
	p := append([]float64(nil), params...)
	for j := 0; j < np; j++ {
		h := eps * math.Max(1, math.Abs(p[j]))
		orig := p[j]
		p[j] = orig + h
		for i, x := range xs {
			jac[i][j] = model(p, x)
		}
		p[j] = orig - h
		inv := 1 / (2 * h)
		for i, x := range xs {
			jac[i][j] = (jac[i][j] - model(p, x)) * inv
		}
		p[j] = orig
	}
	if ws != nil {
		for i := range jac {
			sw := math.Sqrt(math.Max(ws[i], 0))
			for j := range jac[i] {
				jac[i][j] *= sw
			}
		}
	}
}
