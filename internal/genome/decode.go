package genome

import (
	"fmt"
	"math/rand"

	"a4nn/internal/nn"
	"a4nn/internal/tensor"
)

// convUnit is the NSGA-Net node operation: 3×3 (or 1×1 for the phase
// input projection) convolution → batch norm → ReLU.
type convUnit struct {
	conv *nn.Conv2D
	bn   *nn.BatchNorm2D
	relu *nn.ReLU
}

func newConvUnit(rng *rand.Rand, inC, outC, k, pad int) (*convUnit, error) {
	conv, err := nn.NewConv2D(rng, inC, outC, k, k, 1, pad)
	if err != nil {
		return nil, err
	}
	bn, err := nn.NewBatchNorm2D(outC)
	if err != nil {
		return nil, err
	}
	return &convUnit{conv: conv, bn: bn, relu: nn.NewReLU()}, nil
}

func (u *convUnit) forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	y, err := u.conv.Forward(x, train)
	if err != nil {
		return nil, err
	}
	y, err = u.bn.Forward(y, train)
	if err != nil {
		return nil, err
	}
	return u.relu.Forward(y, train)
}

func (u *convUnit) backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	g, err := u.relu.Backward(grad)
	if err != nil {
		return nil, err
	}
	g, err = u.bn.Backward(g)
	if err != nil {
		return nil, err
	}
	return u.conv.Backward(g)
}

func (u *convUnit) params() []*nn.Param {
	ps := append([]*nn.Param(nil), u.conv.Params()...)
	return append(ps, u.bn.Params()...)
}

func (u *convUnit) flops(in []int) int64 {
	total := u.conv.FLOPs(in)
	out, err := u.conv.OutShape(in)
	if err != nil {
		return total
	}
	return total + u.bn.FLOPs(out) + u.relu.FLOPs(out)
}

// PhaseBlock is one decoded phase: an input-projection unit followed by
// the phase's active DAG of convolutional nodes. Node j's input is the
// sum of its active predecessors' outputs (or the projected phase input
// when it has none); the phase output is the sum of all sink nodes plus,
// when the genome's skip bit is set, the projected input (a residual
// connection). A phase whose DAG is empty degenerates to the projection
// unit alone, which is how all-zero genomes stay trainable while costing
// the fewest FLOPs.
type PhaseBlock struct {
	inC, width int
	topo       phaseTopology
	proj       *convUnit
	nodes      []*convUnit // indexed by node id; nil when inactive

	// forward caches
	x0      *tensor.Tensor
	nodeIn  []*tensor.Tensor
	nodeOut []*tensor.Tensor
}

// NewPhaseBlock decodes one phase of the genome into a block with the
// given input channels and phase width.
func NewPhaseBlock(rng *rand.Rand, g *Genome, phase, inC, width int) (*PhaseBlock, error) {
	if phase < 0 || phase >= len(g.Phases) {
		return nil, fmt.Errorf("genome: phase %d out of range [0,%d)", phase, len(g.Phases))
	}
	if inC <= 0 || width <= 0 {
		return nil, fmt.Errorf("genome: PhaseBlock needs positive channels, got in=%d width=%d", inC, width)
	}
	proj, err := newConvUnit(rng, inC, width, 1, 0)
	if err != nil {
		return nil, err
	}
	b := &PhaseBlock{inC: inC, width: width, topo: g.topology(phase), proj: proj,
		nodes: make([]*convUnit, g.NodesPerPhase)}
	for j, active := range b.topo.active {
		if !active {
			continue
		}
		u, err := newConvUnit(rng, width, width, 3, 1)
		if err != nil {
			return nil, err
		}
		b.nodes[j] = u
	}
	return b, nil
}

// Name implements nn.Layer.
func (b *PhaseBlock) Name() string {
	n := 0
	for _, a := range b.topo.active {
		if a {
			n++
		}
	}
	return fmt.Sprintf("phase(w=%d,nodes=%d,skip=%t)", b.width, n, b.topo.skip)
}

// Params implements nn.Layer.
func (b *PhaseBlock) Params() []*nn.Param {
	ps := b.proj.params()
	for _, u := range b.nodes {
		if u != nil {
			ps = append(ps, u.params()...)
		}
	}
	return ps
}

// StateTensors implements nn.Stateful: the batch-norm running statistics
// of the projection unit and every active node, so decoded networks
// serialize completely.
func (b *PhaseBlock) StateTensors() []*tensor.Tensor {
	out := b.proj.bn.StateTensors()
	for _, u := range b.nodes {
		if u != nil {
			out = append(out, u.bn.StateTensors()...)
		}
	}
	return out
}

// OutShape implements nn.Layer.
func (b *PhaseBlock) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.inC {
		return nil, fmt.Errorf("genome: %s expects (%d,H,W) input, got %v", b.Name(), b.inC, in)
	}
	return []int{b.width, in[1], in[2]}, nil
}

// FLOPs implements nn.Layer.
func (b *PhaseBlock) FLOPs(in []int) int64 {
	if _, err := b.OutShape(in); err != nil {
		return 0
	}
	total := b.proj.flops(in)
	nodeIn := []int{b.width, in[1], in[2]}
	spat := int64(in[1] * in[2])
	for j, u := range b.nodes {
		if u == nil {
			continue
		}
		total += u.flops(nodeIn)
		// Summing k>1 predecessor maps costs (k−1)·width·H·W adds.
		if k := len(b.topo.preds[j]); k > 1 {
			total += int64(k-1) * int64(b.width) * spat
		}
	}
	if len(b.topo.outs) > 1 {
		total += int64(len(b.topo.outs)-1) * int64(b.width) * spat
	}
	if b.topo.skip {
		total += int64(b.width) * spat
	}
	return total
}

// Forward implements nn.Layer.
func (b *PhaseBlock) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	x0, err := b.proj.forward(x, train)
	if err != nil {
		return nil, fmt.Errorf("genome: %s proj: %w", b.Name(), err)
	}
	if train {
		b.x0 = x0
		b.nodeIn = make([]*tensor.Tensor, len(b.nodes))
		b.nodeOut = make([]*tensor.Tensor, len(b.nodes))
	}
	anyActive := false
	for _, u := range b.nodes {
		if u != nil {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return x0, nil
	}

	outs := make([]*tensor.Tensor, len(b.nodes))
	for j, u := range b.nodes {
		if u == nil {
			continue
		}
		var in *tensor.Tensor
		if preds := b.topo.preds[j]; len(preds) == 0 {
			in = x0
		} else {
			in = outs[preds[0]].Clone()
			for _, i := range preds[1:] {
				in.AddScaled(outs[i], 1)
			}
		}
		out, err := u.forward(in, train)
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d: %w", b.Name(), j, err)
		}
		outs[j] = out
		if train {
			b.nodeIn[j] = in
			b.nodeOut[j] = out
		}
	}

	sum := outs[b.topo.outs[0]].Clone()
	for _, j := range b.topo.outs[1:] {
		sum.AddScaled(outs[j], 1)
	}
	if b.topo.skip {
		sum.AddScaled(x0, 1)
	}
	return sum, nil
}

// Backward implements nn.Layer.
func (b *PhaseBlock) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if b.x0 == nil {
		return nil, fmt.Errorf("genome: %s: Backward without prior training Forward", b.Name())
	}
	anyActive := false
	for _, u := range b.nodes {
		if u != nil {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return b.proj.backward(grad)
	}

	nodeGrad := make([]*tensor.Tensor, len(b.nodes))
	dx0 := tensor.New(b.x0.Shape()...)
	for _, j := range b.topo.outs {
		nodeGrad[j] = grad.Clone()
	}
	if b.topo.skip {
		dx0.AddScaled(grad, 1)
	}
	for j := len(b.nodes) - 1; j >= 0; j-- {
		u := b.nodes[j]
		if u == nil {
			continue
		}
		if nodeGrad[j] == nil {
			// Every active node feeds some sink, so this is unreachable;
			// guard anyway to fail loudly rather than nil-panic.
			return nil, fmt.Errorf("genome: %s node %d received no gradient", b.Name(), j)
		}
		din, err := u.backward(nodeGrad[j])
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d backward: %w", b.Name(), j, err)
		}
		if preds := b.topo.preds[j]; len(preds) == 0 {
			dx0.AddScaled(din, 1)
		} else {
			for _, i := range preds {
				if nodeGrad[i] == nil {
					nodeGrad[i] = din.Clone()
				} else {
					nodeGrad[i].AddScaled(din, 1)
				}
			}
		}
	}
	return b.proj.backward(dx0)
}

// DecodeConfig controls genome decoding.
type DecodeConfig struct {
	// InShape is the per-sample input shape (C, H, W).
	InShape []int
	// Widths gives the channel width of each phase; its length must match
	// the genome's phase count. Pooling halves the spatial size between
	// phases.
	Widths []int
	// NumClasses sizes the classifier head.
	NumClasses int
}

// DefaultDecodeConfig mirrors the laptop-scale evaluation setup: 32×32
// single-channel diffraction images, three phases widening 8→16→32, two
// classes. Real training uses this configuration.
func DefaultDecodeConfig() DecodeConfig {
	return DecodeConfig{InShape: []int{1, 32, 32}, Widths: []int{8, 16, 32}, NumClasses: 2}
}

// PaperDecodeConfig mirrors the paper-scale networks: 128×128 diffraction
// detectors and phase widths 16→32→64, which puts decoded models in the
// hundreds-of-MFLOPs range of the paper's accuracy-vs-FLOPS plots. The
// surrogate trainer uses it so simulated wall times land at paper scale
// (tens of hours per 100-network test on one device).
func PaperDecodeConfig() DecodeConfig {
	return DecodeConfig{InShape: []int{1, 128, 128}, Widths: []int{16, 32, 64}, NumClasses: 2}
}

// Decode builds a trainable network from the genome: one PhaseBlock per
// phase with 2×2 max pooling between phases, then global average pooling
// and a dense classifier. Weights are initialised from rng; the network
// ID is the genome hash.
func Decode(g *Genome, cfg DecodeConfig, rng *rand.Rand) (*nn.Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Widths) != len(g.Phases) {
		return nil, fmt.Errorf("genome: %d widths for %d phases", len(cfg.Widths), len(g.Phases))
	}
	if len(cfg.InShape) != 3 {
		return nil, fmt.Errorf("genome: InShape must be (C,H,W), got %v", cfg.InShape)
	}
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("genome: NumClasses must be ≥ 2, got %d", cfg.NumClasses)
	}
	var layers []nn.Layer
	inC := cfg.InShape[0]
	h, w := cfg.InShape[1], cfg.InShape[2]
	for p, width := range cfg.Widths {
		block, err := NewPhaseBlock(rng, g, p, inC, width)
		if err != nil {
			return nil, err
		}
		layers = append(layers, block)
		inC = width
		if p < len(cfg.Widths)-1 {
			if h < 2 || w < 2 {
				return nil, fmt.Errorf("genome: input %v too small for %d pooled phases", cfg.InShape, len(cfg.Widths))
			}
			pool, err := nn.NewMaxPool2D(2, 2)
			if err != nil {
				return nil, err
			}
			layers = append(layers, pool)
			h, w = h/2, w/2
		}
	}
	layers = append(layers, nn.NewGlobalAvgPool2D())
	dense, err := nn.NewDense(rng, inC, cfg.NumClasses)
	if err != nil {
		return nil, err
	}
	layers = append(layers, dense)
	return nn.NewNetwork(g.Hash(), cfg.InShape, layers...)
}
