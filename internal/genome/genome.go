// Package genome implements the NSGA-Net macro search space (Lu et al.,
// used unchanged by the paper, §3.2): a network is a sequence of phases,
// each phase a small DAG of convolutional nodes whose connectivity is a
// bit string. For n nodes per phase the string holds n(n−1)/2 inter-node
// connection bits plus one residual skip bit. Genomes support the two
// NSGA-Net variation operators (uniform crossover and per-bit mutation),
// hash-based identity for the data commons, and decoding into a trainable
// nn.Network.
package genome

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
)

// Genome encodes one architecture: one bit string per phase.
type Genome struct {
	// NodesPerPhase is the DAG size n of every phase (paper Table 2: 4).
	NodesPerPhase int
	// Phases holds one bit string per phase, each of length
	// n(n−1)/2 + 1; bits are stored as 0/1 bytes. The final bit of each
	// phase is the residual skip-connection bit.
	Phases [][]byte
}

// BitsPerPhase returns the encoding length for n nodes per phase.
func BitsPerPhase(n int) int { return n*(n-1)/2 + 1 }

// NewRandom draws a genome uniformly at random.
func NewRandom(rng *rand.Rand, phases, nodesPerPhase int) (*Genome, error) {
	if phases < 1 || nodesPerPhase < 1 {
		return nil, fmt.Errorf("genome: need ≥1 phases and nodes, got %d, %d", phases, nodesPerPhase)
	}
	g := &Genome{NodesPerPhase: nodesPerPhase, Phases: make([][]byte, phases)}
	bits := BitsPerPhase(nodesPerPhase)
	for p := range g.Phases {
		g.Phases[p] = make([]byte, bits)
		for i := range g.Phases[p] {
			if rng.Intn(2) == 1 {
				g.Phases[p][i] = 1
			}
		}
	}
	return g, nil
}

// Validate reports the first structural problem, or nil.
func (g *Genome) Validate() error {
	if g.NodesPerPhase < 1 {
		return fmt.Errorf("genome: NodesPerPhase = %d", g.NodesPerPhase)
	}
	if len(g.Phases) == 0 {
		return fmt.Errorf("genome: no phases")
	}
	want := BitsPerPhase(g.NodesPerPhase)
	for p, bits := range g.Phases {
		if len(bits) != want {
			return fmt.Errorf("genome: phase %d has %d bits, want %d", p, len(bits), want)
		}
		for i, b := range bits {
			if b != 0 && b != 1 {
				return fmt.Errorf("genome: phase %d bit %d is %d, want 0 or 1", p, i, b)
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (g *Genome) Clone() *Genome {
	c := &Genome{NodesPerPhase: g.NodesPerPhase, Phases: make([][]byte, len(g.Phases))}
	for p := range g.Phases {
		c.Phases[p] = append([]byte(nil), g.Phases[p]...)
	}
	return c
}

// Equal reports whether two genomes encode the same architecture.
func (g *Genome) Equal(o *Genome) bool {
	if o == nil || g.NodesPerPhase != o.NodesPerPhase || len(g.Phases) != len(o.Phases) {
		return false
	}
	for p := range g.Phases {
		if len(g.Phases[p]) != len(o.Phases[p]) {
			return false
		}
		for i := range g.Phases[p] {
			if g.Phases[p][i] != o.Phases[p][i] {
				return false
			}
		}
	}
	return true
}

// String renders the genome as phase bit strings joined by '|', e.g.
// "1010110|0001101|1110000".
func (g *Genome) String() string {
	var parts []string
	for _, bits := range g.Phases {
		var b strings.Builder
		for _, bit := range bits {
			b.WriteByte('0' + bit)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, "|")
}

// Parse reconstructs a genome from the String representation given the
// node count.
func Parse(s string, nodesPerPhase int) (*Genome, error) {
	parts := strings.Split(s, "|")
	g := &Genome{NodesPerPhase: nodesPerPhase, Phases: make([][]byte, len(parts))}
	for p, part := range parts {
		g.Phases[p] = make([]byte, len(part))
		for i := 0; i < len(part); i++ {
			switch part[i] {
			case '0':
				g.Phases[p][i] = 0
			case '1':
				g.Phases[p][i] = 1
			default:
				return nil, fmt.Errorf("genome: invalid character %q in %q", part[i], s)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Hash returns a short hex digest identifying the architecture; the data
// commons uses it as the model ID.
func (g *Genome) Hash() string {
	h := sha256.Sum256([]byte(g.String()))
	return hex.EncodeToString(h[:8])
}

// connBit returns the connection bit "node j receives from node i" for
// i < j, using the conventional triangular layout: bits for j=1 (from 0),
// then j=2 (from 0, 1), etc.
func connBit(bits []byte, i, j int) byte {
	// Offset of node j's group: 0+1+...+(j-1) = j(j-1)/2.
	return bits[j*(j-1)/2+i]
}

// SkipBit reports whether the phase's residual skip connection is on.
func (g *Genome) SkipBit(phase int) bool {
	bits := g.Phases[phase]
	return bits[len(bits)-1] == 1
}

// Mutate flips each bit independently with the given probability,
// returning a new genome (the receiver is unchanged). NSGA-Net's default
// is roughly one expected flip per genome.
func (g *Genome) Mutate(rng *rand.Rand, perBit float64) *Genome {
	c := g.Clone()
	for p := range c.Phases {
		for i := range c.Phases[p] {
			if rng.Float64() < perBit {
				c.Phases[p][i] ^= 1
			}
		}
	}
	return c
}

// Crossover performs uniform crossover: each bit of the child comes from
// either parent with equal probability. Both parents must share a shape.
func Crossover(rng *rand.Rand, a, b *Genome) (*Genome, error) {
	if a.NodesPerPhase != b.NodesPerPhase || len(a.Phases) != len(b.Phases) {
		return nil, fmt.Errorf("genome: crossover of incompatible genomes (%d/%d phases, %d/%d nodes)",
			len(a.Phases), len(b.Phases), a.NodesPerPhase, b.NodesPerPhase)
	}
	c := a.Clone()
	for p := range c.Phases {
		if len(b.Phases[p]) != len(c.Phases[p]) {
			return nil, fmt.Errorf("genome: crossover phase %d length mismatch", p)
		}
		for i := range c.Phases[p] {
			if rng.Intn(2) == 1 {
				c.Phases[p][i] = b.Phases[p][i]
			}
		}
	}
	return c, nil
}

// phaseTopology derives the active DAG of one phase from its bits:
// which nodes are active (connected), each active node's active
// predecessors, and which active nodes are outputs (no active
// successors). Isolated nodes are dropped, mirroring NSGA-Net's decoding,
// which is what lets the search trade FLOPs against accuracy.
type phaseTopology struct {
	n      int
	active []bool
	preds  [][]int
	outs   []int
	skip   bool
}

// topology computes the phase's active structure.
func (g *Genome) topology(phase int) phaseTopology {
	n := g.NodesPerPhase
	bits := g.Phases[phase]
	t := phaseTopology{n: n, active: make([]bool, n), preds: make([][]int, n), skip: bits[len(bits)-1] == 1}
	hasSucc := make([]bool, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if connBit(bits, i, j) == 1 {
				t.active[i], t.active[j] = true, true
				t.preds[j] = append(t.preds[j], i)
				hasSucc[i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if t.active[i] && !hasSucc[i] {
			t.outs = append(t.outs, i)
		}
	}
	return t
}

// ActiveNodes returns how many nodes of the phase participate in the
// decoded network (0 means the phase decodes to its single fallback node).
func (g *Genome) ActiveNodes(phase int) int {
	t := g.topology(phase)
	c := 0
	for _, a := range t.active {
		if a {
			c++
		}
	}
	return c
}
