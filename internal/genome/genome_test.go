package genome

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"a4nn/internal/nn"
	"a4nn/internal/tensor"
)

func TestBitsPerPhase(t *testing.T) {
	if BitsPerPhase(4) != 7 {
		t.Fatalf("BitsPerPhase(4) = %d, want 7 (6 connections + skip)", BitsPerPhase(4))
	}
	if BitsPerPhase(1) != 1 {
		t.Fatalf("BitsPerPhase(1) = %d", BitsPerPhase(1))
	}
}

func TestNewRandomValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := NewRandom(rng, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Phases) != 3 || len(g.Phases[0]) != 7 {
		t.Fatalf("shape %d phases × %d bits", len(g.Phases), len(g.Phases[0]))
	}
	if _, err := NewRandom(rng, 0, 4); err == nil {
		t.Fatal("expected error for zero phases")
	}
}

func TestValidateRejectsBadGenomes(t *testing.T) {
	g := &Genome{NodesPerPhase: 4, Phases: [][]byte{{1, 0, 1}}}
	if err := g.Validate(); err == nil {
		t.Fatal("wrong bit count must fail")
	}
	g = &Genome{NodesPerPhase: 4, Phases: [][]byte{{1, 0, 1, 0, 1, 0, 2}}}
	if err := g.Validate(); err == nil {
		t.Fatal("non-binary bit must fail")
	}
	g = &Genome{NodesPerPhase: 0, Phases: nil}
	if err := g.Validate(); err == nil {
		t.Fatal("empty genome must fail")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		g, err := NewRandom(rng, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(g.String(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(back) {
			t.Fatalf("round trip failed for %s", g)
		}
	}
	if _, err := Parse("10x1011", 4); err == nil {
		t.Fatal("invalid character must fail")
	}
	if _, err := Parse("101", 4); err == nil {
		t.Fatal("wrong length must fail")
	}
}

func TestHashDistinguishesGenomes(t *testing.T) {
	a, _ := Parse("0000000|0000000|0000000", 4)
	b, _ := Parse("0000001|0000000|0000000", 4)
	if a.Hash() == b.Hash() {
		t.Fatal("different genomes must hash differently")
	}
	if a.Hash() != a.Clone().Hash() {
		t.Fatal("clone must hash identically")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _ := Parse("1010101|0101010|1111111", 4)
	c := g.Clone()
	c.Phases[0][0] = 0
	if g.Phases[0][0] != 1 {
		t.Fatal("Clone must copy bits")
	}
}

func TestMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := Parse("0000000|0000000|0000000", 4)
	m := g.Mutate(rng, 1.0) // flip everything
	for p := range m.Phases {
		for i := range m.Phases[p] {
			if m.Phases[p][i] != 1 {
				t.Fatal("perBit=1 must flip every bit")
			}
		}
	}
	if g.Phases[0][0] != 0 {
		t.Fatal("Mutate must not modify the receiver")
	}
	same := g.Mutate(rng, 0)
	if !same.Equal(g) {
		t.Fatal("perBit=0 must be identity")
	}
}

func TestCrossoverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := NewRandom(r, 3, 4)
		b, _ := NewRandom(r, 3, 4)
		c, err := Crossover(rng, a, b)
		if err != nil {
			return false
		}
		// Every child bit comes from one of the parents.
		for p := range c.Phases {
			for i := range c.Phases[p] {
				bit := c.Phases[p][i]
				if bit != a.Phases[p][i] && bit != b.Phases[p][i] {
					return false
				}
			}
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	a, _ := NewRandom(rng, 3, 4)
	b, _ := NewRandom(rng, 2, 4)
	if _, err := Crossover(rng, a, b); err == nil {
		t.Fatal("incompatible crossover must fail")
	}
}

func TestTopology(t *testing.T) {
	// 4 nodes, bits: [b01, b02, b12, b03, b13, b23, skip]
	// Connections: 0→1, 1→2. Node 3 isolated. Skip on.
	g, err := Parse("1010001", 4)
	if err != nil {
		t.Fatal(err)
	}
	topo := g.topology(0)
	if !topo.active[0] || !topo.active[1] || !topo.active[2] || topo.active[3] {
		t.Fatalf("active = %v", topo.active)
	}
	if len(topo.preds[1]) != 1 || topo.preds[1][0] != 0 {
		t.Fatalf("preds[1] = %v", topo.preds[1])
	}
	if len(topo.preds[2]) != 1 || topo.preds[2][0] != 1 {
		t.Fatalf("preds[2] = %v", topo.preds[2])
	}
	if len(topo.outs) != 1 || topo.outs[0] != 2 {
		t.Fatalf("outs = %v", topo.outs)
	}
	if !topo.skip {
		t.Fatal("skip bit not read")
	}
	if g.ActiveNodes(0) != 3 {
		t.Fatalf("ActiveNodes = %d", g.ActiveNodes(0))
	}
	if !g.SkipBit(0) {
		t.Fatal("SkipBit wrong")
	}
}

func TestDecodeEmptyPhaseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := Parse("0000000|0000000|0000000", 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Decode(g, DefaultDecodeConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("out shape %v", out)
	}
	x := tensor.Randn(rng, 0, 1, 2, 1, 32, 32)
	y, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 2 {
		t.Fatalf("forward shape %v", y.Shape())
	}
}

func TestDecodeDenseGenome(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := Parse("1111111|1111111|1111111", 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Decode(g, DefaultDecodeConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 1, 32, 32)
	if _, err := net.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	// Denser genomes must cost more FLOPs than the empty genome.
	empty, _ := Parse("0000000|0000000|0000000", 4)
	netEmpty, err := Decode(empty, DefaultDecodeConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	fDense, _ := net.FLOPs()
	fEmpty, _ := netEmpty.FLOPs()
	if fDense <= fEmpty {
		t.Fatalf("dense FLOPs %d must exceed empty %d", fDense, fEmpty)
	}
}

func TestDecodeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := Parse("1010001|0000000|0000000", 4)
	cfg := DefaultDecodeConfig()
	cfg.Widths = []int{8}
	if _, err := Decode(g, cfg, rng); err == nil {
		t.Fatal("width/phase mismatch must fail")
	}
	cfg = DefaultDecodeConfig()
	cfg.InShape = []int{1, 32}
	if _, err := Decode(g, cfg, rng); err == nil {
		t.Fatal("bad InShape must fail")
	}
	cfg = DefaultDecodeConfig()
	cfg.NumClasses = 1
	if _, err := Decode(g, cfg, rng); err == nil {
		t.Fatal("single class must fail")
	}
	cfg = DefaultDecodeConfig()
	cfg.InShape = []int{1, 2, 2}
	if _, err := Decode(g, cfg, rng); err == nil {
		t.Fatal("too-small input must fail")
	}
}

// TestPhaseBlockGradient numerically checks the DAG backward pass.
func TestPhaseBlockGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Diamond topology with skip: 0→1, 0→2, 1→3, 2→3.
	// bits [b01, b02, b12, b03, b13, b23, skip] = 1 1 0 0 1 1 1
	g, err := Parse("1100111", 4)
	if err != nil {
		t.Fatal(err)
	}
	block, err := NewPhaseBlock(rng, g, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)

	w := make([]float64, 11)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func(y *tensor.Tensor) float64 {
		s := 0.0
		for i, v := range y.Data() {
			s += v * w[i%len(w)]
		}
		return s
	}
	y, err := block.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	gradOut := tensor.New(y.Shape()...)
	for i := range gradOut.Data() {
		gradOut.Data()[i] = w[i%len(w)]
	}
	dx, err := block.Backward(gradOut)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	xd := x.Data()
	for _, i := range []int{0, 17, 49, 73, 99} {
		orig := xd[i]
		xd[i] = orig + h
		yp, err := block.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lp := loss(yp)
		xd[i] = orig - h
		ym, err := block.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lm := loss(ym)
		xd[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-dx.Data()[i]) > 1e-3*math.Max(1, math.Abs(want)) {
			t.Fatalf("phase grad [%d]: analytic %v vs numeric %v", i, dx.Data()[i], want)
		}
	}
}

// TestDecodedNetworkTrains: a decoded genome must learn the toy task the
// same way a hand-built CNN does (exercises the full DAG training path).
func TestDecodedNetworkTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := Parse("1010001|1000000|0000000", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DecodeConfig{InShape: []int{1, 8, 8}, Widths: []int{4, 8, 8}, NumClasses: 2}
	net, err := Decode(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := nn.NewSGD(0.05, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	makeBatch := func(n int) nn.Batch {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := rng.NormFloat64() * 0.1
					if (cls == 0 && y < 4) || (cls == 1 && y >= 4) {
						v += 1
					}
					x.Set(v, i, 0, y, xx)
				}
			}
		}
		return nn.Batch{X: x, Labels: labels}
	}
	var train []nn.Batch
	for b := 0; b < 6; b++ {
		train = append(train, makeBatch(16))
	}
	test := []nn.Batch{makeBatch(64)}
	for epoch := 0; epoch < 12; epoch++ {
		if _, err := nn.TrainEpoch(net, opt, train); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := nn.EvaluateClassifier(net, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 90 {
		t.Fatalf("decoded network accuracy %v, want ≥90", acc)
	}
}

// TestDecodeDeterministic: same genome + same seed → identical weights.
func TestDecodeDeterministic(t *testing.T) {
	g, _ := Parse("1100111|0010010|1000001", 4)
	n1, err := Decode(g, DefaultDecodeConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Decode(g, DefaultDecodeConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := n1.Params(), n2.Params()
	if len(p1) != len(p2) {
		t.Fatal("param counts differ")
	}
	for i := range p1 {
		if !p1[i].Value.Equal(p2[i].Value, 0) {
			t.Fatalf("param %d differs", i)
		}
	}
	if n1.ID != g.Hash() {
		t.Fatal("network ID must be the genome hash")
	}
}

func TestPhaseBlockErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, _ := Parse("1100111", 4)
	if _, err := NewPhaseBlock(rng, g, 5, 1, 4); err == nil {
		t.Fatal("phase out of range must fail")
	}
	if _, err := NewPhaseBlock(rng, g, 0, 0, 4); err == nil {
		t.Fatal("zero channels must fail")
	}
	b, err := NewPhaseBlock(rng, g, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OutShape([]int{3, 8, 8}); err == nil {
		t.Fatal("wrong channel OutShape must fail")
	}
	if _, err := b.Backward(tensor.Ones(1, 4, 8, 8)); err == nil {
		t.Fatal("Backward before Forward must fail")
	}
}

// TestDecodedStateRoundTrip: a trained decoded network's SaveState must
// capture the batch-norm statistics nested inside PhaseBlocks, so a fresh
// decode + LoadState reproduces evaluation outputs exactly.
func TestDecodedStateRoundTrip(t *testing.T) {
	g, err := Parse("1100111|1010001|1000001", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DecodeConfig{InShape: []int{1, 8, 8}, Widths: []int{4, 8, 8}, NumClasses: 2}
	rng := rand.New(rand.NewSource(21))
	net, err := Decode(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// One training step so running stats are non-trivial.
	opt, err := nn.NewSGD(0.01, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	if _, err := nn.TrainEpoch(net, opt, []nn.Batch{{X: x, Labels: []int{0, 1, 0, 1}}}); err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	state, err := net.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Decode(g, cfg, rand.New(rand.NewSource(777)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(state); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("decoded-network state round trip changed eval outputs")
	}
}
