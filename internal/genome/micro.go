package genome

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// This file implements NSGA-Net's *micro* (cell-based) search space as an
// extension beyond the paper's evaluation (which uses the macro space):
// instead of evolving phase connectivity, the search evolves one cell —
// a small DAG whose nodes each combine two earlier values through chosen
// operations — and the network stacks that cell with pooling between
// stages, NASNet-style. See examples/micro_search for a full search over
// this space driven by the same NSGA-II engine and prediction-engine
// orchestrator.

// Op identifies one candidate operation of the micro space.
type Op byte

// The micro operation set.
const (
	OpIdentity Op = iota
	OpConv3x3
	OpConv5x5
	OpMaxPool3x3
	OpAvgPool3x3
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpIdentity:
		return "id"
	case OpConv3x3:
		return "conv3"
	case OpConv5x5:
		return "conv5"
	case OpMaxPool3x3:
		return "max3"
	case OpAvgPool3x3:
		return "avg3"
	default:
		return fmt.Sprintf("op%d", byte(o))
	}
}

// parseOp inverts String.
func parseOp(s string) (Op, error) {
	for o := Op(0); o < numOps; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("genome: unknown micro op %q", s)
}

// MicroNode is one cell node: it applies Op1 to input In1 and Op2 to
// input In2 and adds the results. Input 0 is the cell input; input i+1 is
// node i's output, so node j may reference inputs 0..j.
type MicroNode struct {
	In1, In2 int
	Op1, Op2 Op
}

// MicroGenome encodes one cell; the decoded network repeats the cell
// across stages.
type MicroGenome struct {
	Nodes []MicroNode
}

// NewRandomMicro draws a cell with the given node count uniformly.
func NewRandomMicro(rng *rand.Rand, nodes int) (*MicroGenome, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("genome: micro cell needs ≥ 1 node, got %d", nodes)
	}
	g := &MicroGenome{Nodes: make([]MicroNode, nodes)}
	for j := range g.Nodes {
		g.Nodes[j] = MicroNode{
			In1: rng.Intn(j + 1),
			In2: rng.Intn(j + 1),
			Op1: Op(rng.Intn(int(numOps))),
			Op2: Op(rng.Intn(int(numOps))),
		}
	}
	return g, nil
}

// Validate reports the first structural problem, or nil.
func (g *MicroGenome) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("genome: empty micro cell")
	}
	for j, n := range g.Nodes {
		if n.In1 < 0 || n.In1 > j || n.In2 < 0 || n.In2 > j {
			return fmt.Errorf("genome: micro node %d inputs (%d,%d) outside [0,%d]", j, n.In1, n.In2, j)
		}
		if n.Op1 >= numOps || n.Op2 >= numOps {
			return fmt.Errorf("genome: micro node %d has unknown op", j)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (g *MicroGenome) Clone() *MicroGenome {
	return &MicroGenome{Nodes: append([]MicroNode(nil), g.Nodes...)}
}

// String renders the cell as "in1.op1+in2.op2;..." — e.g.
// "0.conv3+0.id;1.max3+0.conv5".
func (g *MicroGenome) String() string {
	parts := make([]string, len(g.Nodes))
	for j, n := range g.Nodes {
		parts[j] = fmt.Sprintf("%d.%s+%d.%s", n.In1, n.Op1, n.In2, n.Op2)
	}
	return strings.Join(parts, ";")
}

// ParseMicro inverts String.
func ParseMicro(s string) (*MicroGenome, error) {
	if s == "" {
		return nil, fmt.Errorf("genome: empty micro genome string")
	}
	parts := strings.Split(s, ";")
	g := &MicroGenome{Nodes: make([]MicroNode, len(parts))}
	for j, part := range parts {
		halves := strings.Split(part, "+")
		if len(halves) != 2 {
			return nil, fmt.Errorf("genome: micro node %q needs two inputs", part)
		}
		for h, half := range halves {
			fields := strings.SplitN(half, ".", 2)
			if len(fields) != 2 {
				return nil, fmt.Errorf("genome: micro input %q needs index.op", half)
			}
			idx, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("genome: micro input index %q: %w", fields[0], err)
			}
			op, err := parseOp(fields[1])
			if err != nil {
				return nil, err
			}
			if h == 0 {
				g.Nodes[j].In1, g.Nodes[j].Op1 = idx, op
			} else {
				g.Nodes[j].In2, g.Nodes[j].Op2 = idx, op
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Hash returns a short hex digest identifying the cell.
func (g *MicroGenome) Hash() string {
	h := sha256.Sum256([]byte("micro|" + g.String()))
	return hex.EncodeToString(h[:8])
}

// Mutate re-draws each node field independently with probability perField
// and returns a new genome.
func (g *MicroGenome) Mutate(rng *rand.Rand, perField float64) *MicroGenome {
	c := g.Clone()
	for j := range c.Nodes {
		if rng.Float64() < perField {
			c.Nodes[j].In1 = rng.Intn(j + 1)
		}
		if rng.Float64() < perField {
			c.Nodes[j].In2 = rng.Intn(j + 1)
		}
		if rng.Float64() < perField {
			c.Nodes[j].Op1 = Op(rng.Intn(int(numOps)))
		}
		if rng.Float64() < perField {
			c.Nodes[j].Op2 = Op(rng.Intn(int(numOps)))
		}
	}
	return c
}

// CrossoverMicro performs uniform crossover at node granularity.
func CrossoverMicro(rng *rand.Rand, a, b *MicroGenome) (*MicroGenome, error) {
	if len(a.Nodes) != len(b.Nodes) {
		return nil, fmt.Errorf("genome: micro crossover of %d-node and %d-node cells", len(a.Nodes), len(b.Nodes))
	}
	c := a.Clone()
	for j := range c.Nodes {
		if rng.Intn(2) == 1 {
			c.Nodes[j] = b.Nodes[j]
		}
	}
	return c, nil
}

// usedInputs reports, for each value index 0..len(nodes), whether some
// node consumes it; unused node outputs form the cell output.
func (g *MicroGenome) usedInputs() []bool {
	used := make([]bool, len(g.Nodes)+1)
	for _, n := range g.Nodes {
		used[n.In1] = true
		used[n.In2] = true
	}
	return used
}

// OutputNodes returns the (0-based) indices of nodes whose outputs are
// unused and therefore concatenated into the cell output. An empty result
// is impossible: the last node is never an input of any node.
func (g *MicroGenome) OutputNodes() []int {
	used := g.usedInputs()
	var out []int
	for j := range g.Nodes {
		if !used[j+1] {
			out = append(out, j)
		}
	}
	return out
}
