package genome

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"a4nn/internal/nn"
	"a4nn/internal/tensor"
)

func TestMicroRandomValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g, err := NewRandomMicro(rng, 1+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("random micro genome invalid: %v (%s)", err, g)
		}
	}
	if _, err := NewRandomMicro(rng, 0); err == nil {
		t.Fatal("0 nodes must fail")
	}
}

func TestMicroValidateRejectsBad(t *testing.T) {
	bad := &MicroGenome{Nodes: []MicroNode{{In1: 1, In2: 0}}} // node 0 may only use input 0
	if err := bad.Validate(); err == nil {
		t.Fatal("forward reference must fail")
	}
	bad = &MicroGenome{Nodes: []MicroNode{{Op1: numOps}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown op must fail")
	}
	if err := (&MicroGenome{}).Validate(); err == nil {
		t.Fatal("empty cell must fail")
	}
}

func TestMicroStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		g, err := NewRandomMicro(rng, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseMicro(g.String())
		if err != nil {
			t.Fatalf("parse %q: %v", g.String(), err)
		}
		if back.String() != g.String() {
			t.Fatalf("round trip %q -> %q", g.String(), back.String())
		}
	}
	for _, bad := range []string{"", "0.id", "0.id+1.zap", "x.id+0.id", "1.id+0.id"} {
		if _, err := ParseMicro(bad); err == nil {
			t.Fatalf("ParseMicro(%q) must fail", bad)
		}
	}
}

func TestMicroHashAndClone(t *testing.T) {
	a, err := ParseMicro("0.conv3+0.id;1.max3+0.conv5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseMicro("0.conv3+0.id;1.max3+0.avg3")
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Fatal("different cells must hash differently")
	}
	c := a.Clone()
	c.Nodes[0].Op1 = OpIdentity
	if a.Nodes[0].Op1 != OpConv3x3 {
		t.Fatal("Clone must copy nodes")
	}
}

func TestMicroMutateCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := NewRandomMicro(rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutate(rng, 1.0)
	if err := m.Validate(); err != nil {
		t.Fatalf("full mutation produced invalid genome: %v", err)
	}
	same := g.Mutate(rng, 0)
	if same.String() != g.String() {
		t.Fatal("zero-rate mutation must be identity")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := NewRandomMicro(r, 3)
		b, _ := NewRandomMicro(r, 3)
		c, err := CrossoverMicro(r, a, b)
		if err != nil || c.Validate() != nil {
			return false
		}
		for j := range c.Nodes {
			if c.Nodes[j] != a.Nodes[j] && c.Nodes[j] != b.Nodes[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	short, _ := NewRandomMicro(rng, 2)
	if _, err := CrossoverMicro(rng, g, short); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestMicroOutputNodes(t *testing.T) {
	// Chain: 0→n0→n1; both consumed except n1.
	g, err := ParseMicro("0.conv3+0.id;1.max3+1.id")
	if err != nil {
		t.Fatal(err)
	}
	outs := g.OutputNodes()
	if len(outs) != 1 || outs[0] != 1 {
		t.Fatalf("outs = %v", outs)
	}
	// Two parallel nodes off the input: both are outputs.
	g, err = ParseMicro("0.conv3+0.id;0.max3+0.avg3")
	if err != nil {
		t.Fatal(err)
	}
	outs = g.OutputNodes()
	if len(outs) != 2 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestConcatSplitChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.Randn(rng, 0, 1, 2, 3, 4, 4)
	b := tensor.Randn(rng, 0, 1, 2, 3, 4, 4)
	cat, err := concatChannels([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Dim(1) != 6 {
		t.Fatalf("concat channels %d", cat.Dim(1))
	}
	// Sample 1, channel 4 of concat == sample 1, channel 1 of b.
	if cat.At(1, 4, 2, 2) != b.At(1, 1, 2, 2) {
		t.Fatal("concat layout wrong")
	}
	parts, err := splitChannels(cat, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !parts[0].Equal(a, 0) || !parts[1].Equal(b, 0) {
		t.Fatal("split does not invert concat")
	}
	if _, err := splitChannels(cat, 4, 2); err == nil {
		t.Fatal("bad split must fail")
	}
	if _, err := concatChannels(nil); err == nil {
		t.Fatal("empty concat must fail")
	}
	if _, err := concatChannels([]*tensor.Tensor{a, tensor.New(2, 3, 5, 5)}); err == nil {
		t.Fatal("mismatched spatial dims must fail")
	}
}

// TestMicroCellGradient numerically verifies the cell's backward pass on
// a genome exercising every op kind, shared inputs, and multi-output
// concatenation.
func TestMicroCellGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := ParseMicro("0.conv3+0.max3;1.avg3+0.id;1.conv5+2.id")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := NewMicroCell(rng, g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)
	w := make([]float64, 13)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func(y *tensor.Tensor) float64 {
		s := 0.0
		for i, v := range y.Data() {
			s += v * w[i%len(w)]
		}
		return s
	}
	y, err := cell.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	gradOut := tensor.New(y.Shape()...)
	for i := range gradOut.Data() {
		gradOut.Data()[i] = w[i%len(w)]
	}
	dx, err := cell.Backward(gradOut)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	xd := x.Data()
	for _, i := range []int{0, 13, 37, 66, 99} {
		orig := xd[i]
		xd[i] = orig + h
		yp, err := cell.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lp := loss(yp)
		xd[i] = orig - h
		ym, err := cell.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lm := loss(ym)
		xd[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-dx.Data()[i]) > 2e-3*math.Max(1, math.Abs(want)) {
			t.Fatalf("cell grad [%d]: analytic %v vs numeric %v", i, dx.Data()[i], want)
		}
	}
}

func TestDecodeMicroTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := ParseMicro("0.conv3+0.id;1.max3+0.conv3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DecodeConfig{InShape: []int{1, 8, 8}, Widths: []int{4, 8}, NumClasses: 2}
	net, err := DecodeMicro(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.ID != g.Hash() {
		t.Fatal("network ID must be the cell hash")
	}
	flops, err := net.FLOPs()
	if err != nil || flops <= 0 {
		t.Fatalf("FLOPs %d, %v", flops, err)
	}
	opt, err := nn.NewSGD(0.05, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	makeBatch := func(n int) nn.Batch {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := rng.NormFloat64() * 0.1
					if (cls == 0 && y < 4) || (cls == 1 && y >= 4) {
						v += 1
					}
					x.Set(v, i, 0, y, xx)
				}
			}
		}
		return nn.Batch{X: x, Labels: labels}
	}
	var train []nn.Batch
	for b := 0; b < 6; b++ {
		train = append(train, makeBatch(16))
	}
	for epoch := 0; epoch < 10; epoch++ {
		if _, err := nn.TrainEpoch(net, opt, train); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := nn.EvaluateClassifier(net, []nn.Batch{makeBatch(64)})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 90 {
		t.Fatalf("micro network accuracy %v, want ≥90", acc)
	}
}

func TestDecodeMicroStateRoundTrip(t *testing.T) {
	g, err := ParseMicro("0.conv3+0.avg3;0.max3+1.conv5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DecodeConfig{InShape: []int{1, 8, 8}, Widths: []int{4, 4}, NumClasses: 2}
	rng := rand.New(rand.NewSource(7))
	net, err := DecodeMicro(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := nn.NewSGD(0.01, 0, 0)
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	if _, err := nn.TrainEpoch(net, opt, []nn.Batch{{X: x, Labels: []int{0, 1, 0, 1}}}); err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	state, err := net.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := DecodeMicro(g, cfg, rand.New(rand.NewSource(888)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(state); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("micro state round trip changed outputs")
	}
}

func TestDecodeMicroValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, _ := ParseMicro("0.conv3+0.id")
	cfg := DecodeConfig{InShape: []int{1, 8}, Widths: []int{4}, NumClasses: 2}
	if _, err := DecodeMicro(g, cfg, rng); err == nil {
		t.Fatal("bad InShape must fail")
	}
	cfg = DecodeConfig{InShape: []int{1, 8, 8}, Widths: nil, NumClasses: 2}
	if _, err := DecodeMicro(g, cfg, rng); err == nil {
		t.Fatal("no widths must fail")
	}
	cfg = DecodeConfig{InShape: []int{1, 8, 8}, Widths: []int{4}, NumClasses: 1}
	if _, err := DecodeMicro(g, cfg, rng); err == nil {
		t.Fatal("1 class must fail")
	}
	if _, err := NewMicroCell(rng, g, 0, 4); err == nil {
		t.Fatal("0 channels must fail")
	}
	cell, err := NewMicroCell(rng, g, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Backward(tensor.Ones(1, 4, 8, 8)); err == nil {
		t.Fatal("Backward before Forward must fail")
	}
	if _, err := cell.OutShape([]int{3, 8, 8}); err == nil {
		t.Fatal("channel mismatch must fail")
	}
}

// TestMicroOpCosts: conv ops must dominate identity/pooling FLOPs so the
// NAS has a real trade-off.
func TestMicroOpCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cheap, _ := ParseMicro("0.id+0.max3")
	costly, _ := ParseMicro("0.conv5+0.conv3")
	cfg := DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{8}, NumClasses: 2}
	nc, err := DecodeMicro(cheap, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	nx, err := DecodeMicro(costly, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := nc.FLOPs()
	fx, _ := nx.FLOPs()
	if fx <= fc {
		t.Fatalf("conv cell FLOPs %d must exceed pooling cell %d", fx, fc)
	}
}
