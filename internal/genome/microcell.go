package genome

import (
	"fmt"
	"math/rand"

	"a4nn/internal/nn"
	"a4nn/internal/tensor"
)

// microOp is one instantiated operation inside a cell. Conv ops carry
// weights; identity and pooling are stateless.
type microOp struct {
	op   Op
	conv *convUnit     // conv ops
	mp   *nn.MaxPool2D // max pool
	ap   *nn.AvgPool2D // avg pool
}

func newMicroOp(rng *rand.Rand, op Op, width int) (*microOp, error) {
	m := &microOp{op: op}
	var err error
	switch op {
	case OpIdentity:
	case OpConv3x3:
		m.conv, err = newConvUnit(rng, width, width, 3, 1)
	case OpConv5x5:
		m.conv, err = newConvUnit(rng, width, width, 5, 2)
	case OpMaxPool3x3:
		m.mp, err = nn.NewMaxPool2DPadded(3, 1, 1)
	case OpAvgPool3x3:
		m.ap, err = nn.NewAvgPool2DPadded(3, 1, 1)
	default:
		err = fmt.Errorf("genome: unknown micro op %d", op)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (m *microOp) forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	switch m.op {
	case OpIdentity:
		return x, nil
	case OpConv3x3, OpConv5x5:
		return m.conv.forward(x, train)
	case OpMaxPool3x3:
		return m.mp.Forward(x, train)
	default:
		return m.ap.Forward(x, train)
	}
}

func (m *microOp) backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	switch m.op {
	case OpIdentity:
		return grad, nil
	case OpConv3x3, OpConv5x5:
		return m.conv.backward(grad)
	case OpMaxPool3x3:
		return m.mp.Backward(grad)
	default:
		return m.ap.Backward(grad)
	}
}

func (m *microOp) params() []*nn.Param {
	if m.conv != nil {
		return m.conv.params()
	}
	return nil
}

func (m *microOp) stateTensors() []*tensor.Tensor {
	if m.conv != nil {
		return m.conv.bn.StateTensors()
	}
	return nil
}

func (m *microOp) flops(in []int) int64 {
	switch m.op {
	case OpIdentity:
		return 0
	case OpConv3x3, OpConv5x5:
		return m.conv.flops(in)
	case OpMaxPool3x3:
		return m.mp.FLOPs(in)
	default:
		return m.ap.FLOPs(in)
	}
}

// MicroCell is one decoded cell: an input projection to the cell width,
// the node DAG (each node adds the results of its two operations), and a
// 1×1 combiner over the concatenation of unused node outputs.
type MicroCell struct {
	inC, width int
	genome     *MicroGenome
	proj       *convUnit
	ops        [][2]*microOp // per node: the two operation instances
	outNodes   []int
	combine    *convUnit // 1×1 over len(outNodes)·width channels

	// forward caches
	values []*tensor.Tensor // values[0] = projected input, values[j+1] = node j
}

// NewMicroCell decodes the genome into a cell with the given input
// channels and width.
func NewMicroCell(rng *rand.Rand, g *MicroGenome, inC, width int) (*MicroCell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if inC <= 0 || width <= 0 {
		return nil, fmt.Errorf("genome: MicroCell needs positive channels, got in=%d width=%d", inC, width)
	}
	proj, err := newConvUnit(rng, inC, width, 1, 0)
	if err != nil {
		return nil, err
	}
	c := &MicroCell{inC: inC, width: width, genome: g.Clone(), proj: proj, outNodes: g.OutputNodes()}
	for _, n := range g.Nodes {
		op1, err := newMicroOp(rng, n.Op1, width)
		if err != nil {
			return nil, err
		}
		op2, err := newMicroOp(rng, n.Op2, width)
		if err != nil {
			return nil, err
		}
		c.ops = append(c.ops, [2]*microOp{op1, op2})
	}
	combine, err := newConvUnit(rng, len(c.outNodes)*width, width, 1, 0)
	if err != nil {
		return nil, err
	}
	c.combine = combine
	return c, nil
}

// Name implements nn.Layer.
func (c *MicroCell) Name() string {
	return fmt.Sprintf("cell(w=%d,nodes=%d,outs=%d)", c.width, len(c.genome.Nodes), len(c.outNodes))
}

// Params implements nn.Layer.
func (c *MicroCell) Params() []*nn.Param {
	ps := c.proj.params()
	for _, pair := range c.ops {
		ps = append(ps, pair[0].params()...)
		ps = append(ps, pair[1].params()...)
	}
	return append(ps, c.combine.params()...)
}

// StateTensors implements nn.Stateful.
func (c *MicroCell) StateTensors() []*tensor.Tensor {
	out := c.proj.bn.StateTensors()
	for _, pair := range c.ops {
		out = append(out, pair[0].stateTensors()...)
		out = append(out, pair[1].stateTensors()...)
	}
	return append(out, c.combine.bn.StateTensors()...)
}

// OutShape implements nn.Layer.
func (c *MicroCell) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.inC {
		return nil, fmt.Errorf("genome: %s expects (%d,H,W) input, got %v", c.Name(), c.inC, in)
	}
	return []int{c.width, in[1], in[2]}, nil
}

// FLOPs implements nn.Layer.
func (c *MicroCell) FLOPs(in []int) int64 {
	if _, err := c.OutShape(in); err != nil {
		return 0
	}
	total := c.proj.flops(in)
	nodeIn := []int{c.width, in[1], in[2]}
	spat := int64(in[1] * in[2])
	for _, pair := range c.ops {
		total += pair[0].flops(nodeIn) + pair[1].flops(nodeIn)
		total += int64(c.width) * spat // the add combining the two halves
	}
	concatIn := []int{len(c.outNodes) * c.width, in[1], in[2]}
	return total + c.combine.flops(concatIn)
}

// Forward implements nn.Layer.
func (c *MicroCell) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	x0, err := c.proj.forward(x, train)
	if err != nil {
		return nil, fmt.Errorf("genome: %s proj: %w", c.Name(), err)
	}
	values := make([]*tensor.Tensor, len(c.genome.Nodes)+1)
	values[0] = x0
	for j, n := range c.genome.Nodes {
		a, err := c.ops[j][0].forward(values[n.In1], train)
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d op1: %w", c.Name(), j, err)
		}
		b, err := c.ops[j][1].forward(values[n.In2], train)
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d op2: %w", c.Name(), j, err)
		}
		values[j+1] = a.Add(b)
	}
	if train {
		c.values = values
	}
	concat, err := concatChannels(collect(values, c.outNodes))
	if err != nil {
		return nil, fmt.Errorf("genome: %s concat: %w", c.Name(), err)
	}
	return c.combine.forward(concat, train)
}

// collect gathers values[j+1] for the output nodes.
func collect(values []*tensor.Tensor, outNodes []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(outNodes))
	for i, j := range outNodes {
		out[i] = values[j+1]
	}
	return out
}

// Backward implements nn.Layer.
func (c *MicroCell) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.values == nil {
		return nil, fmt.Errorf("genome: %s: Backward without prior training Forward", c.Name())
	}
	dConcat, err := c.combine.backward(grad)
	if err != nil {
		return nil, fmt.Errorf("genome: %s combine backward: %w", c.Name(), err)
	}
	parts, err := splitChannels(dConcat, len(c.outNodes), c.width)
	if err != nil {
		return nil, err
	}
	// Per-value gradient accumulators (index 0 = projected input).
	dvals := make([]*tensor.Tensor, len(c.values))
	for i, j := range c.outNodes {
		dvals[j+1] = parts[i]
	}
	for j := len(c.genome.Nodes) - 1; j >= 0; j-- {
		if dvals[j+1] == nil {
			// The node's output is unused and not a cell output — it is an
			// ancestor of nothing. It cannot happen: unused ⇒ cell output.
			return nil, fmt.Errorf("genome: %s node %d received no gradient", c.Name(), j)
		}
		n := c.genome.Nodes[j]
		da, err := c.ops[j][0].backward(dvals[j+1])
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d op1 backward: %w", c.Name(), j, err)
		}
		db, err := c.ops[j][1].backward(dvals[j+1])
		if err != nil {
			return nil, fmt.Errorf("genome: %s node %d op2 backward: %w", c.Name(), j, err)
		}
		accumulate(dvals, n.In1, da)
		accumulate(dvals, n.In2, db)
	}
	if dvals[0] == nil {
		// No node consumed the projected input (all nodes chain off node
		// outputs only — possible only when node 0 self-references input
		// 0... which it must, so this is unreachable); guard anyway.
		dvals[0] = tensor.New(c.values[0].Shape()...)
	}
	return c.proj.backward(dvals[0])
}

// accumulate adds g into dvals[i], cloning on first write so op-shared
// tensors (identity backward returns its input) are never mutated.
func accumulate(dvals []*tensor.Tensor, i int, g *tensor.Tensor) {
	if dvals[i] == nil {
		dvals[i] = g.Clone()
		return
	}
	dvals[i].AddScaled(g, 1)
}

// concatChannels concatenates NCHW tensors along the channel axis.
func concatChannels(ts []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("genome: concat of nothing")
	}
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	totalC := 0
	for i, t := range ts {
		if t.Rank() != 4 || t.Dim(0) != n || t.Dim(2) != h || t.Dim(3) != w {
			return nil, fmt.Errorf("genome: concat operand %d has shape %v", i, t.Shape())
		}
		totalC += t.Dim(1)
	}
	out := tensor.New(n, totalC, h, w)
	spat := h * w
	od := out.Data()
	for s := 0; s < n; s++ {
		off := s * totalC * spat
		for _, t := range ts {
			c := t.Dim(1)
			td := t.Data()
			copy(od[off:off+c*spat], td[s*c*spat:(s+1)*c*spat])
			off += c * spat
		}
	}
	return out, nil
}

// splitChannels splits an NCHW tensor into k equal channel groups, the
// adjoint of concatChannels for equal widths.
func splitChannels(t *tensor.Tensor, k, width int) ([]*tensor.Tensor, error) {
	if t.Rank() != 4 || t.Dim(1) != k*width {
		return nil, fmt.Errorf("genome: cannot split %v into %d×%d channels", t.Shape(), k, width)
	}
	n, h, w := t.Dim(0), t.Dim(2), t.Dim(3)
	spat := h * w
	td := t.Data()
	out := make([]*tensor.Tensor, k)
	for i := 0; i < k; i++ {
		part := tensor.New(n, width, h, w)
		pd := part.Data()
		for s := 0; s < n; s++ {
			src := (s*k*width + i*width) * spat
			copy(pd[s*width*spat:(s+1)*width*spat], td[src:src+width*spat])
		}
		out[i] = part
	}
	return out, nil
}

// DecodeMicro builds a trainable network from a micro genome: one
// MicroCell per stage (channel widths from cfg.Widths) with 2×2 max
// pooling between stages, then global average pooling and a dense
// classifier.
func DecodeMicro(g *MicroGenome, cfg DecodeConfig, rng *rand.Rand) (*nn.Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.InShape) != 3 {
		return nil, fmt.Errorf("genome: InShape must be (C,H,W), got %v", cfg.InShape)
	}
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("genome: NumClasses must be ≥ 2, got %d", cfg.NumClasses)
	}
	if len(cfg.Widths) == 0 {
		return nil, fmt.Errorf("genome: no stage widths")
	}
	var layers []nn.Layer
	inC := cfg.InShape[0]
	h, w := cfg.InShape[1], cfg.InShape[2]
	for s, width := range cfg.Widths {
		cell, err := NewMicroCell(rng, g, inC, width)
		if err != nil {
			return nil, err
		}
		layers = append(layers, cell)
		inC = width
		if s < len(cfg.Widths)-1 {
			if h < 2 || w < 2 {
				return nil, fmt.Errorf("genome: input %v too small for %d pooled stages", cfg.InShape, len(cfg.Widths))
			}
			pool, err := nn.NewMaxPool2D(2, 2)
			if err != nil {
				return nil, err
			}
			layers = append(layers, pool)
			h, w = h/2, w/2
		}
	}
	layers = append(layers, nn.NewGlobalAvgPool2D())
	dense, err := nn.NewDense(rng, inC, cfg.NumClasses)
	if err != nil {
		return nil, err
	}
	layers = append(layers, dense)
	return nn.NewNetwork(g.Hash(), cfg.InShape, layers...)
}
