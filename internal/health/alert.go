package health

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"a4nn/internal/chaos"
	"a4nn/internal/obs"
)

// AlertsFile holds the run's alert history as JSON Lines, appended
// next to the lineage records and the event journal in the commons
// directory. Each state transition (fire, escalate, resolve, final
// snapshot at close) appends one line; readers fold by alert ID with
// last-line-wins, so a crash tears at most the final line.
const AlertsFile = "alerts.jsonl"

// Severity ranks an alert. Info alerts are advisory and do not degrade
// the aggregate status; warnings degrade it; any active critical alert
// makes the run unhealthy (/healthz returns 503).
type Severity string

// The three severities, ascending.
const (
	SevInfo     Severity = "info"
	SevWarning  Severity = "warning"
	SevCritical Severity = "critical"
)

// rank orders severities for escalation comparisons.
func (s Severity) rank() int {
	switch s {
	case SevCritical:
		return 2
	case SevWarning:
		return 1
	default:
		return 0
	}
}

// finding is one monitor's current complaint. Findings with the same
// monitor+key across consecutive checks deduplicate into a single
// alert whose Count tracks the repeats.
type finding struct {
	Monitor   string
	Key       string // instance within the monitor ("" for singletons)
	Severity  Severity
	Message   string
	Value     float64
	Threshold float64
}

func (f finding) id() string {
	if f.Key == "" {
		return f.Monitor
	}
	return f.Monitor + "/" + f.Key
}

// Alert is one tracked anomaly over its lifecycle: fired when a
// monitor first reports it, updated (Count, Value, severity
// escalation) while the monitor keeps reporting it, and resolved after
// the monitor has stayed quiet for the flap-suppression window.
type Alert struct {
	// ID is monitor or monitor/key, the deduplication identity.
	ID       string   `json:"id"`
	Monitor  string   `json:"monitor"`
	Key      string   `json:"key,omitempty"`
	Severity Severity `json:"severity"`
	Message  string   `json:"msg"`
	// Value and Threshold record the measurement that fired the alert
	// (latest values while active).
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Count is how many checks reported the finding while active.
	Count int `json:"count"`
	// FiredAt/UpdatedAt/ResolvedAt are unix nanoseconds.
	FiredAt    int64 `json:"fired_at"`
	UpdatedAt  int64 `json:"updated_at"`
	Resolved   bool  `json:"resolved,omitempty"`
	ResolvedAt int64 `json:"resolved_at,omitempty"`
}

// maxResolvedHistory bounds the in-memory resolved-alert list; the
// full history lives in alerts.jsonl.
const maxResolvedHistory = 256

// manager is the alert lifecycle state machine. All methods are called
// under the engine's mutex.
type manager struct {
	resolveAfter int
	journal      *obs.Journal
	file         *os.File
	now          func() time.Time
	// notify, when set, receives every alert transition (the exec
	// sink's hook). Called under the engine mutex; must not block.
	notify func(a Alert, transition string)

	active   map[string]*Alert
	healthy  map[string]int // consecutive clean checks per active alert
	resolved []Alert

	firedInfo     *obs.Counter
	firedWarning  *obs.Counter
	firedCritical *obs.Counter
	resolvedTotal *obs.Counter
	activeGauge   *obs.Gauge
	fileErrs      *obs.Counter
}

func newManager(resolveAfter int, o *obs.Observer) *manager {
	reg := o.Registry()
	return &manager{
		resolveAfter:  resolveAfter,
		journal:       o.Journal(),
		now:           time.Now,
		active:        make(map[string]*Alert),
		healthy:       make(map[string]int),
		firedInfo:     reg.Counter(`a4nn_health_alerts_fired_total{severity="info"}`),
		firedWarning:  reg.Counter(`a4nn_health_alerts_fired_total{severity="warning"}`),
		firedCritical: reg.Counter(`a4nn_health_alerts_fired_total{severity="critical"}`),
		resolvedTotal: reg.Counter("a4nn_health_alerts_resolved_total"),
		activeGauge:   reg.Gauge("a4nn_health_alerts_active"),
		fileErrs:      reg.Counter("a4nn_health_alerts_file_errors_total"),
	}
}

// openFile attaches the append-only alerts sink.
func (m *manager) openFile(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("health: open alerts file: %w", err)
	}
	if m.file != nil {
		m.file.Close()
	}
	m.file = f
	return nil
}

// persist appends one alert state line (crash-safe: append-only, one
// line per transition; a torn final line is skipped by readers). The
// chaos point sits before the write, so an injected crash tears the
// file exactly where a real one would.
func (m *manager) persist(a *Alert) {
	if m.file == nil {
		return
	}
	line, err := json.Marshal(a)
	if err == nil {
		err = chaos.Point(chaos.PointAlertsAppend)
	}
	if err == nil {
		_, err = m.file.Write(append(line, '\n'))
	}
	if err != nil {
		m.fileErrs.Inc()
	}
}

func (m *manager) firedCounter(s Severity) *obs.Counter {
	switch s {
	case SevCritical:
		return m.firedCritical
	case SevWarning:
		return m.firedWarning
	default:
		return m.firedInfo
	}
}

// apply folds one check cycle's findings into the alert set: new
// findings fire alerts, repeated ones bump Count (escalating severity
// re-persists and re-emits), and active alerts whose monitor stayed
// quiet for resolveAfter consecutive checks resolve. Fire and resolve
// transitions append to alerts.jsonl and re-emit as journal events, so
// the SSE stream and follow mode carry them.
func (m *manager) apply(findings []finding) {
	if len(findings) == 0 && len(m.active) == 0 {
		return // healthy steady state: no transitions, no timestamping
	}
	now := m.now().UnixNano()
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		id := f.id()
		seen[id] = true
		m.healthy[id] = 0
		if a, ok := m.active[id]; ok {
			a.Count++
			a.Message = f.Message
			a.Value = f.Value
			a.Threshold = f.Threshold
			a.UpdatedAt = now
			if f.Severity.rank() > a.Severity.rank() {
				a.Severity = f.Severity
				m.firedCounter(f.Severity).Inc()
				m.persist(a)
				m.emit(obs.EventAlert, a)
				if m.notify != nil {
					m.notify(*a, "escalated")
				}
			}
			continue
		}
		a := &Alert{
			ID:        id,
			Monitor:   f.Monitor,
			Key:       f.Key,
			Severity:  f.Severity,
			Message:   f.Message,
			Value:     f.Value,
			Threshold: f.Threshold,
			Count:     1,
			FiredAt:   now,
			UpdatedAt: now,
		}
		m.active[id] = a
		m.firedCounter(f.Severity).Inc()
		m.activeGauge.Set(float64(len(m.active)))
		m.persist(a)
		m.emit(obs.EventAlert, a)
		if m.notify != nil {
			m.notify(*a, "fired")
		}
	}
	for id, a := range m.active {
		if seen[id] {
			continue
		}
		m.healthy[id]++
		if m.healthy[id] < m.resolveAfter {
			continue
		}
		a.Resolved = true
		a.ResolvedAt = now
		a.UpdatedAt = now
		delete(m.active, id)
		delete(m.healthy, id)
		m.resolved = append(m.resolved, *a)
		if len(m.resolved) > maxResolvedHistory {
			m.resolved = m.resolved[len(m.resolved)-maxResolvedHistory:]
		}
		m.resolvedTotal.Inc()
		m.activeGauge.Set(float64(len(m.active)))
		m.persist(a)
		m.emit(obs.EventAlertResolved, a)
		if m.notify != nil {
			m.notify(*a, "resolved")
		}
	}
}

// emit republishes an alert transition as a typed journal event.
func (m *manager) emit(typ string, a *Alert) {
	m.journal.Emit(obs.Event{
		Type:     typ,
		AlertID:  a.ID,
		Monitor:  a.Monitor,
		Severity: string(a.Severity),
		Msg:      a.Message,
		Count:    a.Count,
	})
}

// status aggregates the active set: critical beats degraded beats ok;
// info-only alerts leave the run ok (they are advisory).
func (m *manager) status() Status {
	st := StatusOK
	for _, a := range m.active {
		switch a.Severity {
		case SevCritical:
			return StatusCritical
		case SevWarning:
			st = StatusDegraded
		}
	}
	return st
}

// close snapshots the final Count/severity of every still-active alert
// into the file (their fire lines carry Count 1), syncs, and releases
// the sink.
func (m *manager) close() error {
	if m.file == nil {
		return nil
	}
	for _, id := range sortedAlertIDs(m.active) {
		m.persist(m.active[id])
	}
	err := m.file.Sync()
	if cerr := m.file.Close(); err == nil {
		err = cerr
	}
	m.file = nil
	return err
}

func sortedAlertIDs(m map[string]*Alert) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ReadAlerts loads an alerts.jsonl file, folding the per-transition
// lines into the latest state of each alert (last line wins per ID,
// so a re-fired alert reads as its most recent lifecycle). Blank and
// torn lines are skipped. Alerts return ordered by FiredAt, then ID.
func ReadAlerts(path string) ([]Alert, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	latest := make(map[string]Alert)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var a Alert
		if err := json.Unmarshal(line, &a); err != nil || a.ID == "" {
			continue // torn or foreign line
		}
		latest[a.ID] = a
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("health: read alerts: %w", err)
	}
	out := make([]Alert, 0, len(latest))
	for _, a := range latest {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FiredAt != out[j].FiredAt {
			return out[i].FiredAt < out[j].FiredAt
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
