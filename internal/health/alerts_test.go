package health

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"a4nn/internal/obs"
)

// testManager builds a manager with a deterministic clock.
func testManager(t *testing.T, resolveAfter int) (*manager, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	m := newManager(resolveAfter, o)
	tick := int64(0)
	m.now = func() time.Time { tick++; return time.Unix(0, tick) }
	return m, o
}

func TestManagerFireDedupResolve(t *testing.T) {
	m, _ := testManager(t, 2)
	f := finding{Monitor: "divergence", Key: "m1", Severity: SevCritical, Message: "diverging", Value: 3, Threshold: 3}

	m.apply([]finding{f})
	a, ok := m.active["divergence/m1"]
	if !ok {
		t.Fatal("alert not fired")
	}
	if a.Count != 1 || a.Severity != SevCritical {
		t.Fatalf("fired alert = %+v", a)
	}
	if got := m.firedCritical.Value(); got != 1 {
		t.Fatalf("fired counter = %d, want 1", got)
	}

	// Repeats deduplicate into the same alert, bumping Count.
	m.apply([]finding{f})
	m.apply([]finding{f})
	if a.Count != 3 {
		t.Fatalf("Count = %d, want 3", a.Count)
	}
	if len(m.active) != 1 {
		t.Fatalf("active = %d, want 1", len(m.active))
	}
	if got := m.firedCritical.Value(); got != 1 {
		t.Fatalf("repeat re-counted as fired: %d", got)
	}

	// Flap suppression: one clean check does not resolve...
	m.apply(nil)
	if _, ok := m.active["divergence/m1"]; !ok {
		t.Fatal("alert resolved after a single clean check (resolveAfter=2)")
	}
	// ...and a re-report resets the clean streak.
	m.apply([]finding{f})
	m.apply(nil)
	if _, ok := m.active["divergence/m1"]; !ok {
		t.Fatal("clean streak survived a re-report")
	}
	// Two consecutive clean checks resolve.
	m.apply(nil)
	if _, ok := m.active["divergence/m1"]; ok {
		t.Fatal("alert still active after resolveAfter clean checks")
	}
	if len(m.resolved) != 1 || !m.resolved[0].Resolved || m.resolved[0].ResolvedAt == 0 {
		t.Fatalf("resolved history = %+v", m.resolved)
	}
	if got := m.resolvedTotal.Value(); got != 1 {
		t.Fatalf("resolved counter = %d, want 1", got)
	}
	if got := m.activeGauge.Value(); got != 0 {
		t.Fatalf("active gauge = %v, want 0", got)
	}
}

func TestManagerSeverityEscalation(t *testing.T) {
	m, o := testManager(t, 3)
	sub := o.Journal().Subscribe(16)
	defer sub.Close()

	m.apply([]finding{{Monitor: "devices", Key: "capacity", Severity: SevWarning, Message: "degraded"}})
	if m.status() != StatusDegraded {
		t.Fatalf("status = %v, want degraded", m.status())
	}
	m.apply([]finding{{Monitor: "devices", Key: "capacity", Severity: SevCritical, Message: "below floor"}})
	a := m.active["devices/capacity"]
	if a.Severity != SevCritical {
		t.Fatalf("severity = %s, want critical", a.Severity)
	}
	if m.status() != StatusCritical {
		t.Fatalf("status = %v, want critical", m.status())
	}
	// Escalation must not fire lower again: warning=1, critical=1.
	if w, c := m.firedWarning.Value(), m.firedCritical.Value(); w != 1 || c != 1 {
		t.Fatalf("fired warning=%d critical=%d, want 1 and 1", w, c)
	}
	// Both the fire and the escalation re-emitted as journal events.
	var emits []obs.Event
	for len(sub.C()) > 0 {
		emits = append(emits, <-sub.C())
	}
	if len(emits) != 2 || emits[0].Type != obs.EventAlert || emits[1].Severity != "critical" {
		t.Fatalf("journal emissions = %+v", emits)
	}
}

func TestManagerInfoDoesNotDegrade(t *testing.T) {
	m, _ := testManager(t, 3)
	m.apply([]finding{{Monitor: "plateau", Key: "m7", Severity: SevInfo, Message: "flat"}})
	if m.status() != StatusOK {
		t.Fatalf("status = %v, want ok for info-only alerts", m.status())
	}
}

func TestAlertsFilePersistAndRead(t *testing.T) {
	m, _ := testManager(t, 1)
	path := filepath.Join(t.TempDir(), AlertsFile)
	if err := m.openFile(path); err != nil {
		t.Fatal(err)
	}
	div := finding{Monitor: "divergence", Key: "m1", Severity: SevCritical, Message: "diverging"}
	cap := finding{Monitor: "devices", Key: "capacity", Severity: SevWarning, Message: "degraded"}
	m.apply([]finding{div, cap})
	m.apply([]finding{div, cap})
	m.apply([]finding{cap}) // divergence resolves (resolveAfter=1)
	if err := m.close(); err != nil {
		t.Fatal(err)
	}

	// Append a torn line; readers must skip it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"torn`)
	f.Close()

	alerts, err := ReadAlerts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 2 {
		t.Fatalf("ReadAlerts folded to %d alerts, want 2: %+v", len(alerts), alerts)
	}
	byID := map[string]Alert{}
	for _, a := range alerts {
		byID[a.ID] = a
	}
	if a := byID["divergence/m1"]; !a.Resolved || a.Count != 2 {
		t.Fatalf("divergence alert = %+v, want resolved with Count 2", a)
	}
	// The close snapshot carries the still-active alert's final Count.
	if a := byID["devices/capacity"]; a.Resolved || a.Count != 3 {
		t.Fatalf("capacity alert = %+v, want active with Count 3", a)
	}
}

func TestReadAlertsMissingFile(t *testing.T) {
	if _, err := ReadAlerts(filepath.Join(t.TempDir(), "nope.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}
