package health

import (
	"testing"
	"time"

	"a4nn/internal/obs"
)

// BenchmarkDisabledHealth proves the disabled monitor costs one nil
// check and zero allocations on the event path — the contract that
// lets Observe sit on hot emitters unconditionally. Gated at 0
// allocs/op by make bench-gate.
func BenchmarkDisabledHealth(b *testing.B) {
	var e *Engine
	ev := obs.Event{Type: obs.EventEpoch, Model: "m", Epoch: 3, ValAcc: 71.2, Loss: 0.41}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(ev)
	}
}

// BenchmarkHealthObserve measures the enabled per-event cost: every
// monitor's observe plus a full check cycle against the alert manager.
func BenchmarkHealthObserve(b *testing.B) {
	cfg := DefaultConfig()
	cfg.SampleInterval = time.Hour // keep runtime/metrics reads out of the loop
	e, err := New(cfg, obs.NewObserver())
	if err != nil {
		b.Fatal(err)
	}
	ev := obs.Event{Type: obs.EventEpoch, Model: "m", Epoch: 3, ValAcc: 71.2, Loss: 0.41}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Epoch = i
		ev.ValAcc = 60 + float64(i%20)
		e.Observe(ev)
	}
}
