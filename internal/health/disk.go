package health

import (
	"fmt"
	"time"

	"a4nn/internal/obs"
)

// diskUsage is one filesystem reading.
type diskUsage struct {
	totalBytes uint64
	availBytes uint64
}

// diskMon watches free space on the filesystem holding DiskPath —
// normally the commons directory, because every durability guarantee in
// the crash-consistency model (atomic record writes, checkpoints, the
// append-only journal) dies quietly on a full disk. Free-space
// fractions below the warning / critical watermarks fire accordingly;
// an unreadable filesystem fires its own warning rather than silently
// skipping the check.
type diskMon struct {
	path               string
	warnFrac, critFrac float64
	interval           time.Duration
	// statfs is injectable for tests; the default is the platform
	// syscall (a stub returning an error where unsupported).
	statfs func(path string) (diskUsage, error)
	now    func() time.Time

	last    time.Time
	sampled bool
	free    float64 // available fraction of the filesystem
	statErr error

	gFree *obs.Gauge
}

func newDiskMon(cfg Config, reg *obs.Registry) *diskMon {
	return &diskMon{
		path:     cfg.DiskPath,
		warnFrac: cfg.DiskWarnFrac,
		critFrac: cfg.DiskCritFrac,
		interval: cfg.SampleInterval,
		statfs:   statfsImpl,
		now:      time.Now,
		gFree:    reg.Gauge("a4nn_health_disk_free_fraction"),
	}
}

func (d *diskMon) name() string { return "disk" }

func (d *diskMon) observe(obs.Event) {}

func (d *diskMon) sample() {
	now := d.now()
	if d.sampled && now.Sub(d.last) < d.interval {
		return
	}
	d.last = now
	d.sampled = true
	u, err := d.statfs(d.path)
	d.statErr = err
	if err != nil || u.totalBytes == 0 {
		return
	}
	d.free = float64(u.availBytes) / float64(u.totalBytes)
	d.gFree.Set(d.free)
}

func (d *diskMon) check(out []finding) []finding {
	d.sample()
	if d.statErr != nil {
		return append(out, finding{
			Monitor: d.name(), Key: "stat", Severity: SevWarning,
			Message: fmt.Sprintf("cannot stat %s: %v — free-space watermarks are not being enforced",
				d.path, d.statErr),
		})
	}
	switch {
	case d.free < d.critFrac:
		out = append(out, finding{
			Monitor: d.name(), Key: "space", Severity: SevCritical,
			Message: fmt.Sprintf("%.1f%% free on the commons filesystem (%s), below the %.0f%% critical watermark — records and checkpoints are about to fail",
				100*d.free, d.path, 100*d.critFrac),
			Value: d.free, Threshold: d.critFrac,
		})
	case d.free < d.warnFrac:
		out = append(out, finding{
			Monitor: d.name(), Key: "space", Severity: SevWarning,
			Message: fmt.Sprintf("%.1f%% free on the commons filesystem (%s), below the %.0f%% warning watermark",
				100*d.free, d.path, 100*d.warnFrac),
			Value: d.free, Threshold: d.warnFrac,
		})
	}
	return out
}

func (d *diskMon) detail() string {
	if !d.sampled {
		return "not sampled yet"
	}
	if d.statErr != nil {
		return fmt.Sprintf("stat %s failed: %v", d.path, d.statErr)
	}
	return fmt.Sprintf("%.1f%% free at %s (warn <%.0f%%, critical <%.0f%%)",
		100*d.free, d.path, 100*d.warnFrac, 100*d.critFrac)
}
