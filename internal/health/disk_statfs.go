//go:build linux || darwin

package health

import "syscall"

// statfsImpl reads filesystem capacity via Statfs. Bavail (blocks
// available to unprivileged users) is the honest "can I still write"
// number; Bfree would overcount the root reserve.
func statfsImpl(path string) (diskUsage, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return diskUsage{}, err
	}
	bsize := uint64(st.Bsize)
	return diskUsage{
		totalBytes: st.Blocks * bsize,
		availBytes: st.Bavail * bsize,
	}, nil
}
