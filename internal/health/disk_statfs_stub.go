//go:build !linux && !darwin

package health

import "fmt"

// statfsImpl on platforms without Statfs reports its absence; the disk
// monitor surfaces that as a warning instead of pretending to watch.
func statfsImpl(path string) (diskUsage, error) {
	return diskUsage{}, fmt.Errorf("disk watermark monitoring unsupported on this platform")
}
