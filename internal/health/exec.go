package health

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"a4nn/internal/obs"
)

// execSink runs the -alert-cmd command on alert transitions: the
// operator's bridge from in-situ monitoring to the outside world (a
// pager webhook, a Slack script, `wall`). Each transition enqueues to a
// bounded buffer consumed by one worker goroutine, so a slow or hung
// command never blocks a check cycle — when the buffer is full or the
// per-alert rate limit is hot, the transition is counted as dropped
// instead. Exit codes are logged as alert_cmd journal events.
type execSink struct {
	cmd      string
	interval time.Duration
	// run executes the command and returns its exit code; injectable
	// for tests. The default runs `sh -c cmd` with the alert JSON on
	// stdin and A4NN_ALERT_* variables in the environment.
	run     func(cmd string, env []string, stdin []byte) (int, error)
	journal *obs.Journal
	now     func() time.Time

	queue chan execJob
	done  chan struct{}

	mu     sync.Mutex
	closed bool
	last   map[string]time.Time // last run per alert ID (rate limit)

	runs    *obs.Counter
	errs    *obs.Counter
	dropped *obs.Counter
}

// execJob is one queued transition.
type execJob struct {
	Alert      Alert  `json:"alert"`
	Transition string `json:"transition"` // fired | escalated | resolved
}

func newExecSink(cmd string, interval time.Duration, o *obs.Observer) *execSink {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	reg := o.Registry()
	s := &execSink{
		cmd:      cmd,
		interval: interval,
		run:      runShell,
		journal:  o.Journal(),
		now:      time.Now,
		queue:    make(chan execJob, 64),
		done:     make(chan struct{}),
		last:     make(map[string]time.Time),
		runs:     reg.Counter("a4nn_health_alert_cmd_runs_total"),
		errs:     reg.Counter("a4nn_health_alert_cmd_errors_total"),
		dropped:  reg.Counter("a4nn_health_alert_cmd_dropped_total"),
	}
	go s.worker()
	return s
}

// runShell is the production runner.
func runShell(cmd string, env []string, stdin []byte) (int, error) {
	c := exec.Command("sh", "-c", cmd)
	c.Env = append(os.Environ(), env...)
	c.Stdin = bytes.NewReader(stdin)
	err := c.Run()
	if err == nil {
		return 0, nil
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), nil
	}
	return -1, err
}

// notify enqueues one transition; called under the engine mutex, so it
// must never block. Nil-safe.
func (s *execSink) notify(a Alert, transition string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.now()
	if last, ok := s.last[a.ID]; ok && now.Sub(last) < s.interval {
		s.mu.Unlock()
		s.dropped.Inc()
		return
	}
	s.last[a.ID] = now
	s.mu.Unlock()
	select {
	case s.queue <- execJob{Alert: a, Transition: transition}:
	default:
		s.dropped.Inc()
	}
}

// worker drains the queue until close.
func (s *execSink) worker() {
	defer close(s.done)
	for job := range s.queue {
		s.exec(job)
	}
}

// exec runs the command for one transition and logs the exit code.
func (s *execSink) exec(job execJob) {
	payload, err := json.Marshal(job)
	if err != nil {
		s.errs.Inc()
		return
	}
	env := []string{
		"A4NN_ALERT_ID=" + job.Alert.ID,
		"A4NN_ALERT_MONITOR=" + job.Alert.Monitor,
		"A4NN_ALERT_SEVERITY=" + string(job.Alert.Severity),
		"A4NN_ALERT_TRANSITION=" + job.Transition,
		"A4NN_ALERT_MSG=" + job.Alert.Message,
	}
	code, err := s.run(s.cmd, env, payload)
	s.runs.Inc()
	msg := fmt.Sprintf("alert-cmd %s %s: exit %d", job.Transition, job.Alert.ID, code)
	if err != nil {
		s.errs.Inc()
		msg = fmt.Sprintf("alert-cmd %s %s: %v", job.Transition, job.Alert.ID, err)
	} else if code != 0 {
		s.errs.Inc()
	}
	s.journal.Emit(obs.Event{
		Type:     obs.EventAlertCmd,
		AlertID:  job.Alert.ID,
		Severity: string(job.Alert.Severity),
		Msg:      msg,
	})
}

// close stops accepting transitions, waits for queued commands to
// finish, and releases the worker. Nil-safe and idempotent.
func (s *execSink) close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	<-s.done
}
