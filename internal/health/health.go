// Package health is the workflow's in-situ health monitor: a streaming
// engine that consumes the run's own analytics — the event journal's
// broker, the metrics registry, and the Go runtime — and turns them
// into actionable alerts while the search is still running. It is the
// "act on it" counterpart of the observability stack's "record it":
// the paper's whole premise is intervening on partial signals
// mid-search, and the health engine applies the same idea to the
// search process itself.
//
// Monitors: training divergence (NaN/Inf, rising loss, accuracy
// collapse), learning-curve plateau, prediction-engine miscalibration
// (rolling |predicted−actual| from termination events), device-pool
// degradation (dead devices, straggler rate, capacity floor), queue
// saturation (mean wait vs a warmup baseline), journal/broker
// backpressure (drop and file-error counters), and a runtime/metrics
// sampler (goroutines, heap growth, GC pause p99).
//
// Findings feed an alert manager with severities, deduplication
// (repeats bump a Count), flap suppression (an alert resolves only
// after ResolveAfter consecutive clean checks), and resolve tracking.
// Alerts append crash-safely to alerts.jsonl, re-emit as typed journal
// events (so the SSE stream and follow mode carry them for free), and
// surface via the /healthz and /api/alerts handlers.
//
// Like the rest of the observability stack, disabled health is free: a
// nil *Engine's Observe is one nil check and zero allocations
// (BenchmarkDisabledHealth, gated by make bench-gate).
package health

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"a4nn/internal/obs"
)

// Config tunes the monitors and the alert lifecycle. The zero value of
// any field selects its default; DefaultConfig returns them all.
type Config struct {
	// DivergenceWindow is how many consecutive epochs of rising loss
	// fire the divergence alert (default 3).
	DivergenceWindow int
	// DivergenceDrop is the accuracy collapse threshold: points below
	// the model's best validation accuracy (default 20).
	DivergenceDrop float64
	// PlateauWindow and PlateauEpsilon define a flat learning curve:
	// accuracy moving ≤ Epsilon points across Window epochs (defaults
	// 8 and 0.05).
	PlateauWindow  int
	PlateauEpsilon float64
	// CalibrationWindow and CalibrationTolerance bound the prediction
	// engine's rolling mean |predicted − actual| at termination
	// (defaults 8 terminations and 5 accuracy points).
	CalibrationWindow    int
	CalibrationTolerance float64
	// MinCapacity is the alive/total device fraction below which pool
	// degradation escalates from warning to critical (default 0.5).
	MinCapacity float64
	// StragglerRate is the warning threshold on straggler events per
	// device-generation (default 0.3).
	StragglerRate float64
	// QueueFactor and QueueMinWait gate queue-saturation alerts: a
	// generation's mean queue wait must exceed Factor × the warmup
	// baseline and the MinWait absolute floor in simulated seconds
	// (defaults 3 and 1).
	QueueFactor  float64
	QueueMinWait float64
	// SampleInterval throttles the runtime/metrics sampler and paces
	// the engine's periodic check when no events flow (default 5s).
	SampleInterval time.Duration
	// MaxGoroutines, HeapGrowthFactor, and GCPauseP99 are the runtime
	// sampler's warning thresholds (defaults 2000, ×4, 50ms). Zero
	// keeps the default; a negative MaxGoroutines disables that check.
	MaxGoroutines    int
	HeapGrowthFactor float64
	GCPauseP99       time.Duration
	// RSSWarnMB/RSSCritMB bound the process resident set size in MiB
	// (defaults 4096 and 8192) and FDWarn/FDCrit the open file
	// descriptor count (defaults 512 and 960) — OS-level leaks the Go
	// heap metrics can't see (mmap growth, cgo, leaked sockets or
	// journal handles). Zero keeps the default; a negative warn value
	// disables that pair; both checks stay silent on platforms without
	// a readable /proc/self.
	RSSWarnMB int
	RSSCritMB int
	FDWarn    int
	FDCrit    int
	// ResolveAfter is the flap-suppression window: an active alert
	// resolves only after this many consecutive checks in which its
	// monitor stayed quiet (default 3).
	ResolveAfter int
	// SubscriberBuffer sizes the engine's broker subscription; the
	// default (4096) comfortably holds a generation's burst.
	SubscriberBuffer int
	// AlertCommand, when non-empty, is a shell command executed (via
	// `sh -c`) on every alert transition: the alert JSON arrives on
	// stdin and A4NN_ALERT_* environment variables carry the headline
	// fields. Execution is asynchronous and never blocks a check cycle.
	AlertCommand string
	// AlertCommandInterval rate-limits AlertCommand per alert ID
	// (default 10s); transitions inside the window are counted as
	// dropped, not queued.
	AlertCommandInterval time.Duration
	// EmitRuntimeSamples publishes each runtime sample as a
	// runtime_sample journal event, so a cross-process follower
	// (a4nn-serve -follow -health) monitors the producer's runtime
	// rather than its own.
	EmitRuntimeSamples bool
	// DiskPath, when non-empty, enables the disk watermark monitor on
	// the filesystem holding that path (normally the commons dir — the
	// store's durability is worthless on a full disk).
	DiskPath string
	// DiskWarnFrac and DiskCritFrac are the free-space fractions below
	// which the disk monitor warns / goes critical (defaults 0.10 and
	// 0.03).
	DiskWarnFrac float64
	DiskCritFrac float64
	// SLO, when non-nil, enables the service-level-objective monitor
	// family (error budgets and burn-rate alerts; see SLO and ParseSLO).
	SLO *SLO
	// Regression, when non-nil (with a Query), enables the cross-run
	// regression monitor: live series means from the run's history
	// store compared against a committed or prior-run Baseline.
	Regression *RegressionConfig
}

// DefaultConfig returns the default thresholds described on Config.
func DefaultConfig() Config {
	return Config{
		DivergenceWindow:     3,
		DivergenceDrop:       20,
		PlateauWindow:        8,
		PlateauEpsilon:       0.05,
		CalibrationWindow:    8,
		CalibrationTolerance: 5,
		MinCapacity:          0.5,
		StragglerRate:        0.3,
		QueueFactor:          3,
		QueueMinWait:         1,
		SampleInterval:       5 * time.Second,
		MaxGoroutines:        2000,
		HeapGrowthFactor:     4,
		GCPauseP99:           50 * time.Millisecond,
		RSSWarnMB:            4096,
		RSSCritMB:            8192,
		FDWarn:               512,
		FDCrit:               960,
		ResolveAfter:         3,
		SubscriberBuffer:     4096,
		AlertCommandInterval: 10 * time.Second,
		DiskWarnFrac:         0.10,
		DiskCritFrac:         0.03,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DivergenceWindow <= 0 {
		c.DivergenceWindow = d.DivergenceWindow
	}
	if c.DivergenceDrop <= 0 {
		c.DivergenceDrop = d.DivergenceDrop
	}
	if c.PlateauWindow <= 0 {
		c.PlateauWindow = d.PlateauWindow
	}
	if c.PlateauEpsilon <= 0 {
		c.PlateauEpsilon = d.PlateauEpsilon
	}
	if c.CalibrationWindow <= 0 {
		c.CalibrationWindow = d.CalibrationWindow
	}
	if c.CalibrationTolerance <= 0 {
		c.CalibrationTolerance = d.CalibrationTolerance
	}
	if c.MinCapacity <= 0 {
		c.MinCapacity = d.MinCapacity
	}
	if c.StragglerRate <= 0 {
		c.StragglerRate = d.StragglerRate
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = d.QueueFactor
	}
	if c.QueueMinWait <= 0 {
		c.QueueMinWait = d.QueueMinWait
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = d.SampleInterval
	}
	if c.MaxGoroutines == 0 {
		c.MaxGoroutines = d.MaxGoroutines
	}
	if c.HeapGrowthFactor <= 0 {
		c.HeapGrowthFactor = d.HeapGrowthFactor
	}
	if c.GCPauseP99 <= 0 {
		c.GCPauseP99 = d.GCPauseP99
	}
	if c.RSSWarnMB == 0 {
		c.RSSWarnMB = d.RSSWarnMB
	}
	if c.RSSCritMB == 0 {
		c.RSSCritMB = d.RSSCritMB
	}
	if c.FDWarn == 0 {
		c.FDWarn = d.FDWarn
	}
	if c.FDCrit == 0 {
		c.FDCrit = d.FDCrit
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = d.ResolveAfter
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = d.SubscriberBuffer
	}
	if c.AlertCommandInterval <= 0 {
		c.AlertCommandInterval = d.AlertCommandInterval
	}
	if c.DiskWarnFrac <= 0 {
		c.DiskWarnFrac = d.DiskWarnFrac
	}
	if c.DiskCritFrac <= 0 {
		c.DiskCritFrac = d.DiskCritFrac
	}
	return c
}

// ParseConfig parses the compact CLI specification accepted by
// -health-config, mirroring the fault-plan syntax: key=value pairs
// separated by ';' or ','. Keys:
//
//	divergence-window=3   divergence-drop=20
//	plateau-window=8      plateau-eps=0.05
//	calibration-window=8  calibration-tol=5
//	min-capacity=0.5      straggler-rate=0.3
//	queue-factor=3        queue-min-wait=1
//	sample-ms=5000        max-goroutines=2000
//	heap-growth=4         gc-pause-ms=50
//	rss-warn-mb=4096      rss-crit-mb=8192
//	fd-warn=512           fd-crit=960
//	resolve-after=3       alert-cmd-ms=10000
//	disk-warn=0.10        disk-crit=0.03
//
// Unset keys keep their defaults. An empty spec returns DefaultConfig.
func ParseConfig(spec string) (Config, error) {
	cfg := DefaultConfig()
	for _, kv := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("health: bad config entry %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		intVal := func(dst *int) error {
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("health: %s wants a positive integer, got %q", key, val)
			}
			*dst = n
			return nil
		}
		floatVal := func(dst *float64) error {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("health: %s wants a positive number, got %q", key, val)
			}
			*dst = f
			return nil
		}
		msVal := func(dst *time.Duration) error {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("health: %s wants positive milliseconds, got %q", key, val)
			}
			*dst = time.Duration(f * float64(time.Millisecond))
			return nil
		}
		var err error
		switch key {
		case "divergence-window":
			err = intVal(&cfg.DivergenceWindow)
		case "divergence-drop":
			err = floatVal(&cfg.DivergenceDrop)
		case "plateau-window":
			err = intVal(&cfg.PlateauWindow)
		case "plateau-eps":
			err = floatVal(&cfg.PlateauEpsilon)
		case "calibration-window":
			err = intVal(&cfg.CalibrationWindow)
		case "calibration-tol":
			err = floatVal(&cfg.CalibrationTolerance)
		case "min-capacity":
			err = floatVal(&cfg.MinCapacity)
		case "straggler-rate":
			err = floatVal(&cfg.StragglerRate)
		case "queue-factor":
			err = floatVal(&cfg.QueueFactor)
		case "queue-min-wait":
			err = floatVal(&cfg.QueueMinWait)
		case "sample-ms":
			err = msVal(&cfg.SampleInterval)
		case "max-goroutines":
			err = intVal(&cfg.MaxGoroutines)
		case "heap-growth":
			err = floatVal(&cfg.HeapGrowthFactor)
		case "gc-pause-ms":
			err = msVal(&cfg.GCPauseP99)
		case "rss-warn-mb":
			err = intVal(&cfg.RSSWarnMB)
		case "rss-crit-mb":
			err = intVal(&cfg.RSSCritMB)
		case "fd-warn":
			err = intVal(&cfg.FDWarn)
		case "fd-crit":
			err = intVal(&cfg.FDCrit)
		case "resolve-after":
			err = intVal(&cfg.ResolveAfter)
		case "alert-cmd-ms":
			err = msVal(&cfg.AlertCommandInterval)
		case "disk-warn":
			err = floatVal(&cfg.DiskWarnFrac)
		case "disk-crit":
			err = floatVal(&cfg.DiskCritFrac)
		default:
			err = fmt.Errorf("health: unknown config key %q", key)
		}
		if err != nil {
			return cfg, err
		}
	}
	if cfg.MinCapacity > 1 {
		return cfg, fmt.Errorf("health: min-capacity is a fraction, got %v", cfg.MinCapacity)
	}
	if cfg.DiskWarnFrac >= 1 || cfg.DiskCritFrac >= 1 {
		return cfg, fmt.Errorf("health: disk watermarks are fractions, got warn=%v crit=%v",
			cfg.DiskWarnFrac, cfg.DiskCritFrac)
	}
	if cfg.DiskCritFrac >= cfg.DiskWarnFrac {
		return cfg, fmt.Errorf("health: disk-crit (%v) must be below disk-warn (%v)",
			cfg.DiskCritFrac, cfg.DiskWarnFrac)
	}
	if cfg.RSSCritMB <= cfg.RSSWarnMB {
		return cfg, fmt.Errorf("health: rss-crit-mb (%d) must exceed rss-warn-mb (%d)",
			cfg.RSSCritMB, cfg.RSSWarnMB)
	}
	if cfg.FDCrit <= cfg.FDWarn {
		return cfg, fmt.Errorf("health: fd-crit (%d) must exceed fd-warn (%d)",
			cfg.FDCrit, cfg.FDWarn)
	}
	return cfg, nil
}

// Status is the aggregate health of a run.
type Status int

// Aggregate statuses, worsening.
const (
	StatusOK       Status = iota // no active warning or critical alerts
	StatusDegraded               // active warnings (info alerts never degrade)
	StatusCritical               // at least one active critical alert
)

// String returns "ok", "degraded", or "critical".
func (s Status) String() string {
	switch s {
	case StatusCritical:
		return "critical"
	case StatusDegraded:
		return "degraded"
	default:
		return "ok"
	}
}

// MonitorStatus is one monitor's row in a Report.
type MonitorStatus struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Active int    `json:"active"`
	Detail string `json:"detail,omitempty"`
}

// Report is the /healthz payload: the aggregate status plus
// per-monitor detail and the active alert list.
type Report struct {
	Status   string          `json:"status"`
	Checks   uint64          `json:"checks"`
	Active   int             `json:"active_alerts"`
	Critical int             `json:"critical_alerts"`
	Monitors []MonitorStatus `json:"monitors"`
	Alerts   []Alert         `json:"alerts,omitempty"`
}

// Engine evaluates the monitors over a run's event stream and
// registry. Feed it events synchronously with Observe, or let Start
// subscribe it to the observer's broker and consume in the background;
// either way all evaluation happens on one goroutine at a time under
// the engine's mutex, so monitors are simple single-threaded state
// machines.
//
// A nil *Engine is the disabled monitor: Observe costs one nil check
// and zero allocations, Status reports ok, and lifecycle methods are
// no-ops.
type Engine struct {
	cfg Config
	obs *obs.Observer

	mu       sync.Mutex
	monitors []monitor
	mgr      *manager
	sink     *execSink
	scratch  []finding // reused across checks
	sub      *obs.Subscriber
	done     chan struct{}

	checks *obs.Counter
}

// New builds an engine over the observer's journal and registry. The
// observer must be non-nil — health consumes the event stream, so a
// run without observability has nothing to monitor.
func New(cfg Config, o *obs.Observer) (*Engine, error) {
	if o == nil {
		return nil, fmt.Errorf("health: nil observer (health monitoring needs the event journal; enable observability first)")
	}
	cfg = cfg.withDefaults()
	reg := o.Registry()
	e := &Engine{
		cfg: cfg,
		obs: o,
		monitors: []monitor{
			newDivergence(cfg),
			newPlateau(cfg),
			newCalibration(cfg),
			newDevicepool(cfg),
			newQueuewait(cfg, reg),
			newBackpressure(reg),
			newRuntimeMon(cfg, reg, o.Journal()),
			newRecoveryMon(),
		},
		mgr:    newManager(cfg.ResolveAfter, o),
		checks: reg.Counter("a4nn_health_checks_total"),
	}
	if cfg.DiskPath != "" {
		e.monitors = append(e.monitors, newDiskMon(cfg, reg))
	}
	if cfg.SLO != nil {
		e.monitors = append(e.monitors, newSLOMon(*cfg.SLO, reg, nil))
	}
	if cfg.Regression != nil && cfg.Regression.Query != nil {
		e.monitors = append(e.monitors, newRegression(*cfg.Regression))
	}
	if cfg.AlertCommand != "" {
		e.sink = newExecSink(cfg.AlertCommand, cfg.AlertCommandInterval, o)
		e.mgr.notify = e.sink.notify
	}
	return e, nil
}

// OpenAlertsFile attaches the crash-safe alerts.jsonl sink at path.
// Call before Start; alerts fired earlier live only in memory.
func (e *Engine) OpenAlertsFile(path string) error {
	if e == nil {
		return fmt.Errorf("health: OpenAlertsFile on nil engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mgr.openFile(path)
}

// Observe feeds one event through every monitor and runs a check
// cycle. It is the synchronous entry point (Start pumps the broker
// into it); alert events — including the engine's own re-emissions —
// are skipped, so the engine never feeds back into itself. Nil-safe
// and allocation-free when disabled.
func (e *Engine) Observe(ev obs.Event) {
	if e == nil {
		return
	}
	if ev.Type == obs.EventAlert || ev.Type == obs.EventAlertResolved {
		return
	}
	e.mu.Lock()
	for _, m := range e.monitors {
		m.observe(ev)
	}
	e.checkLocked()
	e.mu.Unlock()
}

// Check runs one evaluation cycle without an event — the periodic
// path that keeps the runtime sampler and resolve tracking moving when
// the search is quiet. Nil-safe.
func (e *Engine) Check() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.checkLocked()
	e.mu.Unlock()
}

// checkLocked gathers every monitor's findings and applies them to the
// alert manager. Caller holds e.mu.
func (e *Engine) checkLocked() {
	e.scratch = e.scratch[:0]
	for _, m := range e.monitors {
		e.scratch = m.check(e.scratch)
	}
	e.mgr.apply(e.scratch)
	e.checks.Inc()
}

// Start subscribes the engine to the observer's broker and consumes
// events on a background goroutine, with a periodic tick at
// SampleInterval for the runtime sampler. Call Close to drain and
// stop. Calling Start twice, or on a nil engine, is a no-op.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.sub != nil {
		e.mu.Unlock()
		return
	}
	sub := e.obs.Journal().Subscribe(e.cfg.SubscriberBuffer)
	done := make(chan struct{})
	e.sub, e.done = sub, done
	interval := e.cfg.SampleInterval
	e.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case ev, ok := <-sub.C():
				if !ok {
					return // Close drained us, or the broker evicted us
				}
				e.Observe(ev)
			case <-tick.C:
				e.Check()
			}
		}
	}()
}

// Close drains the subscription (events already queued are still
// evaluated), runs a final check, snapshots active alerts into
// alerts.jsonl, and syncs and releases the file. Safe to call without
// Start, more than once, and on a nil engine.
func (e *Engine) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	sub, done := e.sub, e.done
	e.sub, e.done = nil, nil
	e.mu.Unlock()
	if sub != nil {
		// Closing the subscriber closes its channel; the pump goroutine
		// still receives everything buffered before seeing !ok.
		sub.Close()
		<-done
	}
	e.mu.Lock()
	e.checkLocked()
	err := e.mgr.close()
	sink := e.sink
	e.sink = nil
	e.mgr.notify = nil
	e.mu.Unlock()
	// The sink drains outside the engine mutex: a slow alert command
	// must not stall Observe on another goroutine.
	sink.close()
	return err
}

// Status returns the aggregate status (StatusOK on a nil engine).
func (e *Engine) Status() Status {
	if e == nil {
		return StatusOK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mgr.status()
}

// ActiveAlerts returns a copy of the active alerts, ordered by
// FiredAt then ID. Nil-safe.
func (e *Engine) ActiveAlerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.mgr.active))
	for _, id := range sortedAlertIDs(e.mgr.active) {
		out = append(out, *e.mgr.active[id])
	}
	sortAlerts(out)
	return out
}

// ResolvedAlerts returns the bounded in-memory resolved history,
// oldest first. Nil-safe.
func (e *Engine) ResolvedAlerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.mgr.resolved...)
}

// CriticalActive counts active critical alerts (the -health-strict
// exit condition). Nil-safe.
func (e *Engine) CriticalActive() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, a := range e.mgr.active {
		if a.Severity == SevCritical {
			n++
		}
	}
	return n
}

// Report builds the /healthz payload. Nil-safe: a nil engine reports
// status ok with no monitors.
func (e *Engine) Report() Report {
	if e == nil {
		return Report{Status: StatusOK.String()}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := Report{
		Status: e.mgr.status().String(),
		Checks: e.checks.Value(),
		Active: len(e.mgr.active),
	}
	perMon := make(map[string][2]int) // active, worst severity rank
	for _, a := range e.mgr.active {
		v := perMon[a.Monitor]
		v[0]++
		if r := a.Severity.rank(); r > v[1] {
			v[1] = r
		}
		perMon[a.Monitor] = v
		if a.Severity == SevCritical {
			rep.Critical++
		}
	}
	for _, m := range e.monitors {
		v := perMon[m.name()]
		st := StatusOK
		switch v[1] {
		case SevCritical.rank():
			st = StatusCritical
		case SevWarning.rank():
			if v[0] > 0 {
				st = StatusDegraded
			}
		}
		rep.Monitors = append(rep.Monitors, MonitorStatus{
			Name:   m.name(),
			Status: st.String(),
			Active: v[0],
			Detail: m.detail(),
		})
	}
	for _, id := range sortedAlertIDs(e.mgr.active) {
		rep.Alerts = append(rep.Alerts, *e.mgr.active[id])
	}
	sortAlerts(rep.Alerts)
	return rep
}

// sortAlerts orders by FiredAt then ID.
func sortAlerts(alerts []Alert) {
	for i := 1; i < len(alerts); i++ {
		for j := i; j > 0; j-- {
			a, b := &alerts[j-1], &alerts[j]
			if a.FiredAt < b.FiredAt || (a.FiredAt == b.FiredAt && a.ID <= b.ID) {
				break
			}
			alerts[j-1], alerts[j] = *b, *a
		}
	}
}
