package health

import (
	"math"
	"strings"
	"testing"
	"time"

	"a4nn/internal/obs"
)

// testConfig keeps windows small and the sampler quiet so unit tests
// drive every transition with a handful of events.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DivergenceWindow = 2
	cfg.PlateauWindow = 3
	cfg.CalibrationWindow = 2
	cfg.ResolveAfter = 2
	cfg.SampleInterval = time.Hour // periodic sampler stays out of the way
	return cfg
}

func testEngine(t *testing.T, cfg Config) (*Engine, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	e, err := New(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// activeIDs snapshots the engine's active alert IDs.
func activeIDs(e *Engine) map[string]Alert {
	out := map[string]Alert{}
	for _, a := range e.ActiveAlerts() {
		out[a.ID] = a
	}
	return out
}

func TestDivergenceFireAndRecoverResolves(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	epoch := func(loss, acc float64) obs.Event {
		return obs.Event{Type: obs.EventEpoch, Model: "m1", Loss: loss, ValAcc: acc}
	}
	// Rising loss for DivergenceWindow consecutive epochs fires. The
	// accuracies keep moving so the plateau monitor stays quiet.
	e.Observe(epoch(1.0, 50))
	e.Observe(epoch(1.2, 51))
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("fired after a 1-epoch rise: %+v", e.ActiveAlerts())
	}
	e.Observe(epoch(1.4, 52))
	a, ok := activeIDs(e)["divergence/m1"]
	if !ok {
		t.Fatalf("divergence did not fire; active = %+v", e.ActiveAlerts())
	}
	if a.Severity != SevCritical {
		t.Fatalf("severity = %s, want critical", a.Severity)
	}
	if e.Status() != StatusCritical {
		t.Fatalf("status = %v, want critical", e.Status())
	}
	// Dedup: another diverging epoch bumps Count, not a second alert.
	e.Observe(epoch(1.6, 53))
	if a := activeIDs(e)["divergence/m1"]; a.Count != 2 {
		t.Fatalf("Count = %d, want 2", a.Count)
	}
	// Recovery: falling loss resets the streak; after ResolveAfter
	// consecutive clean checks the alert resolves.
	e.Observe(epoch(1.1, 52))
	e.Observe(epoch(0.9, 51))
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("alert survived recovery: %+v", e.ActiveAlerts())
	}
	if e.Status() != StatusOK {
		t.Fatalf("status = %v, want ok", e.Status())
	}
	res := e.ResolvedAlerts()
	if len(res) != 1 || res[0].ID != "divergence/m1" || !res[0].Resolved {
		t.Fatalf("resolved = %+v", res)
	}
}

func TestDivergenceNaN(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	e.Observe(obs.Event{Type: obs.EventEpoch, Model: "m2", Loss: math.NaN(), ValAcc: 10})
	a, ok := activeIDs(e)["divergence/m2"]
	if !ok || a.Severity != SevCritical || !strings.Contains(a.Message, "NaN") {
		t.Fatalf("NaN alert = %+v (ok=%v)", a, ok)
	}
}

func TestDivergenceAccuracyCollapse(t *testing.T) {
	cfg := testConfig()
	cfg.DivergenceDrop = 15
	e, _ := testEngine(t, cfg)
	// Surrogate-style epochs: no loss signal, accuracy only.
	e.Observe(obs.Event{Type: obs.EventEpoch, Model: "m3", ValAcc: 80})
	e.Observe(obs.Event{Type: obs.EventEpoch, Model: "m3", ValAcc: 60})
	if _, ok := activeIDs(e)["divergence/m3"]; !ok {
		t.Fatalf("accuracy collapse not detected; active = %+v", e.ActiveAlerts())
	}
}

func TestPlateauIsInfoOnly(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	for i := 0; i < 3; i++ {
		e.Observe(obs.Event{Type: obs.EventEpoch, Model: "m4", ValAcc: 70.01})
	}
	a, ok := activeIDs(e)["plateau/m4"]
	if !ok || a.Severity != SevInfo {
		t.Fatalf("plateau alert = %+v (ok=%v)", a, ok)
	}
	if e.Status() != StatusOK {
		t.Fatalf("status = %v; info alerts must not degrade", e.Status())
	}
	// model_done clears the curve and the alert resolves.
	e.Observe(obs.Event{Type: obs.EventModelDone, Model: "m4"})
	e.Check()
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("plateau alert survived model_done: %+v", e.ActiveAlerts())
	}
}

func TestCalibrationWarning(t *testing.T) {
	e, _ := testEngine(t, testConfig()) // window 2, tolerance 5
	e.Observe(obs.Event{Type: obs.EventPredictTerminate, Model: "a", Predicted: 90, Actual: 80})
	if len(e.ActiveAlerts()) != 0 {
		t.Fatal("fired before the window filled")
	}
	e.Observe(obs.Event{Type: obs.EventPredictTerminate, Model: "b", Predicted: 70, Actual: 78})
	a, ok := activeIDs(e)["calibration"]
	if !ok || a.Severity != SevWarning {
		t.Fatalf("calibration alert = %+v (ok=%v)", a, ok)
	}
	if a.Value != 9 { // mean(10, 8)
		t.Fatalf("rolling mean = %v, want 9", a.Value)
	}
}

func TestDevicePoolCapacityAndStragglers(t *testing.T) {
	cfg := testConfig()
	cfg.StragglerRate = 0.4
	e, _ := testEngine(t, cfg)
	e.Observe(obs.Event{Type: obs.EventRunStart, Devices: 4})
	if len(e.ActiveAlerts()) != 0 {
		t.Fatal("healthy pool raised alerts")
	}
	// One device lost: 3/4 alive is a warning.
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 1, Devices: 3})
	a := activeIDs(e)["devices/capacity"]
	if a.Severity != SevWarning {
		t.Fatalf("capacity 0.75 severity = %s, want warning", a.Severity)
	}
	// Below MinCapacity (0.5): critical.
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 2, Devices: 1})
	a = activeIDs(e)["devices/capacity"]
	if a.Severity != SevCritical {
		t.Fatalf("capacity 0.25 severity = %s, want critical", a.Severity)
	}
	if e.Status() != StatusCritical {
		t.Fatalf("status = %v, want critical", e.Status())
	}
	// Stragglers: 2 events over 4 device-generations = 0.5 > 0.4.
	e.Observe(obs.Event{Type: obs.EventStraggler, Device: 0})
	e.Observe(obs.Event{Type: obs.EventStraggler, Device: 1})
	if a, ok := activeIDs(e)["devices/stragglers"]; !ok || a.Severity != SevWarning {
		t.Fatalf("straggler alert = %+v (ok=%v)", a, ok)
	}
}

func TestQueueSaturation(t *testing.T) {
	e, o := testEngine(t, testConfig()) // factor 3, min wait 1s
	hist := o.Registry().Histogram("a4nn_sched_queue_wait_sim_seconds", obs.SecondsBuckets)
	// Warmup generation: mean wait 1s becomes the baseline.
	hist.Observe(1)
	hist.Observe(1)
	e.Observe(obs.Event{Type: obs.EventGenerationEnd, Gen: 1})
	if len(e.ActiveAlerts()) != 0 {
		t.Fatal("warmup generation raised alerts")
	}
	// Healthy generation: 2s mean is under 3× baseline.
	hist.Observe(2)
	hist.Observe(2)
	e.Observe(obs.Event{Type: obs.EventGenerationEnd, Gen: 2})
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("2s mean vs 1s baseline alerted: %+v", e.ActiveAlerts())
	}
	// Saturated generation: 10s mean breaches 3× the baseline.
	hist.Observe(10)
	hist.Observe(10)
	e.Observe(obs.Event{Type: obs.EventGenerationEnd, Gen: 3})
	a, ok := activeIDs(e)["queue"]
	if !ok || a.Severity != SevWarning {
		t.Fatalf("queue alert = %+v (ok=%v)", a, ok)
	}
}

func TestBackpressureCounters(t *testing.T) {
	e, o := testEngine(t, testConfig())
	o.Registry().Counter("a4nn_events_dropped_total").Inc()
	e.Check()
	if a, ok := activeIDs(e)["backpressure/drops"]; !ok || a.Severity != SevWarning {
		t.Fatalf("drop alert = %+v (ok=%v)", a, ok)
	}
	o.Registry().Counter("a4nn_events_file_errors_total").Inc()
	e.Check()
	if a, ok := activeIDs(e)["backpressure/file"]; !ok || a.Severity != SevCritical {
		t.Fatalf("file-error alert = %+v (ok=%v)", a, ok)
	}
	// Counters going quiet resolves both after ResolveAfter checks.
	e.Check()
	e.Check()
	e.Check()
	if ids := activeIDs(e); len(ids) != 0 {
		t.Fatalf("backpressure alerts survived quiet counters: %+v", ids)
	}
}

func TestEngineStartConsumesBroker(t *testing.T) {
	e, o := testEngine(t, testConfig())
	e.Start()
	o.Journal().Emit(obs.Event{Type: obs.EventEpoch, Model: "mX", Loss: math.Inf(1), ValAcc: 5})
	deadline := time.Now().Add(5 * time.Second)
	for e.Status() != StatusCritical {
		if time.Now().After(deadline) {
			t.Fatal("broker-fed engine never saw the Inf epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The alert re-emitted through the same journal without feeding back.
	checksBefore := e.Report().Checks
	time.Sleep(20 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Close runs exactly one final check; a feedback loop would have
	// kept the check counter climbing from the alert's own emission.
	if got := e.Report().Checks; got > checksBefore+2 {
		t.Fatalf("checks climbed from %d to %d after quiescence — alert feedback loop", checksBefore, got)
	}
}

func TestEngineNilSafety(t *testing.T) {
	var e *Engine
	e.Observe(obs.Event{Type: obs.EventEpoch})
	e.Check()
	e.Start()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Status() != StatusOK {
		t.Fatal("nil engine not ok")
	}
	if rep := e.Report(); rep.Status != "ok" || len(rep.Monitors) != 0 {
		t.Fatalf("nil report = %+v", rep)
	}
	if e.ActiveAlerts() != nil || e.ResolvedAlerts() != nil || e.CriticalActive() != 0 {
		t.Fatal("nil engine leaked alerts")
	}
}

func TestNewRequiresObserver(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("New accepted a nil observer")
	}
}

func TestReportMonitors(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	e.Observe(obs.Event{Type: obs.EventRunStart, Devices: 4})
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 1, Devices: 3})
	rep := e.Report()
	if rep.Status != "degraded" || rep.Active != 1 || rep.Critical != 0 {
		t.Fatalf("report = %+v", rep)
	}
	byName := map[string]MonitorStatus{}
	for _, m := range rep.Monitors {
		byName[m.Name] = m
	}
	if len(byName) != 8 {
		t.Fatalf("monitors = %d, want 8 (%+v)", len(byName), rep.Monitors)
	}
	if m := byName["devices"]; m.Status != "degraded" || m.Active != 1 || m.Detail == "" {
		t.Fatalf("devices row = %+v", m)
	}
	if m := byName["divergence"]; m.Status != "ok" || m.Active != 0 {
		t.Fatalf("divergence row = %+v", m)
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("divergence-window=5; min-capacity=0.6, gc-pause-ms=10;sample-ms=250")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DivergenceWindow != 5 || cfg.MinCapacity != 0.6 ||
		cfg.GCPauseP99 != 10*time.Millisecond || cfg.SampleInterval != 250*time.Millisecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Unset keys keep defaults.
	if cfg.ResolveAfter != DefaultConfig().ResolveAfter {
		t.Fatalf("ResolveAfter = %d, want default", cfg.ResolveAfter)
	}
	for _, bad := range []string{"divergence-window", "divergence-window=0", "nope=1", "min-capacity=2", "plateau-eps=x"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
	if _, err := ParseConfig(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
