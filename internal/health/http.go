package health

import (
	"encoding/json"
	"net/http"
)

// HealthzHandler serves GET /healthz: the engine's Report as JSON with
// status 200 while the run is ok or degraded and 503 once any critical
// alert is active — load balancers and `curl -f` treat the run as down
// exactly when the monitor does. A nil engine reports ok (monitoring
// disabled is not an outage).
func HealthzHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := e.Report()
		w.Header().Set("Content-Type", "application/json")
		if rep.Status == StatusCritical.String() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}

// AlertsHandler serves GET /api/alerts: the active alerts plus the
// bounded in-memory resolved history.
func AlertsHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Status   string  `json:"status"`
			Active   []Alert `json:"active"`
			Resolved []Alert `json:"resolved"`
		}{
			Status:   e.Status().String(),
			Active:   orEmpty(e.ActiveAlerts()),
			Resolved: orEmpty(e.ResolvedAlerts()),
		})
	})
}

// orEmpty keeps the JSON arrays as [] rather than null.
func orEmpty(a []Alert) []Alert {
	if a == nil {
		return []Alert{}
	}
	return a
}
