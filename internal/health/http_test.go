package health

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"a4nn/internal/obs"
)

func TestHealthzStatusCodes(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	h := HealthzHandler(e)

	get := func() (*httptest.ResponseRecorder, Report) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var rep Report
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return rec, rep
	}

	if rec, rep := get(); rec.Code != 200 || rep.Status != "ok" {
		t.Fatalf("fresh engine: code %d status %q", rec.Code, rep.Status)
	}

	// A warning degrades but stays 200.
	e.Observe(obs.Event{Type: obs.EventRunStart, Devices: 4})
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 1, Devices: 3})
	if rec, rep := get(); rec.Code != 200 || rep.Status != "degraded" {
		t.Fatalf("degraded engine: code %d status %q", rec.Code, rep.Status)
	}

	// A critical alert flips /healthz to 503.
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 2, Devices: 1})
	rec, rep := get()
	if rec.Code != 503 || rep.Status != "critical" {
		t.Fatalf("critical engine: code %d status %q", rec.Code, rep.Status)
	}
	if rep.Critical != 1 || len(rep.Alerts) == 0 {
		t.Fatalf("critical report = %+v", rep)
	}
}

func TestHealthzNilEngine(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil engine healthz = %d, want 200", rec.Code)
	}
}

func TestAlertsHandler(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	e.Observe(obs.Event{Type: obs.EventRunStart, Devices: 4})
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 1, Devices: 3})
	// Recover and resolve (ResolveAfter=2).
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 2, Devices: 4})
	e.Check()
	// Degrade again so both lists are populated.
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 3, Devices: 3})

	rec := httptest.NewRecorder()
	AlertsHandler(e).ServeHTTP(rec, httptest.NewRequest("GET", "/api/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("alerts code = %d", rec.Code)
	}
	var body struct {
		Status   string  `json:"status"`
		Active   []Alert `json:"active"`
		Resolved []Alert `json:"resolved"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" {
		t.Fatalf("status = %q", body.Status)
	}
	if len(body.Active) != 1 || body.Active[0].ID != "devices/capacity" {
		t.Fatalf("active = %+v", body.Active)
	}
	if len(body.Resolved) != 1 || !body.Resolved[0].Resolved {
		t.Fatalf("resolved = %+v", body.Resolved)
	}
}
