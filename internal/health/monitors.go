package health

import (
	"fmt"
	"math"

	"a4nn/internal/obs"
)

// monitor is one in-situ anomaly detector. observe feeds it a journal
// event; check appends its current findings. Both run under the
// engine's mutex, single-threaded, so monitors keep plain state.
type monitor interface {
	name() string
	observe(e obs.Event)
	check(out []finding) []finding
	detail() string
}

// --- training divergence -------------------------------------------------

// divState tracks one in-flight model's training signal.
type divState struct {
	lastLoss float64
	hasLoss  bool
	streak   int // consecutive epochs with rising loss
	bestAcc  float64
	lastAcc  float64
	nan      bool
}

// divergence fires critical when a model's training signal turns
// NaN/Inf, its loss rises for Window consecutive epochs, or its
// validation accuracy collapses Drop points below the model's best.
// Completed models are forgotten (their alerts resolve through flap
// suppression), so a recovery mid-training resolves the alert — the
// in-situ analogue of "the curve came back".
type divergence struct {
	window int
	drop   float64
	models map[string]*divState
}

func newDivergence(cfg Config) *divergence {
	return &divergence{window: cfg.DivergenceWindow, drop: cfg.DivergenceDrop, models: make(map[string]*divState)}
}

func (d *divergence) name() string { return "divergence" }

func (d *divergence) observe(e obs.Event) {
	switch e.Type {
	case obs.EventEpoch:
		if e.Model == "" {
			return
		}
		st := d.models[e.Model]
		if st == nil {
			st = &divState{}
			d.models[e.Model] = st
		}
		bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
		if bad(e.ValAcc) || bad(e.Loss) {
			st.nan = true
			return
		}
		// Loss 0 means the trainer reports no loss (the surrogate);
		// divergence then rests on the accuracy signal alone.
		if e.Loss > 0 {
			if st.hasLoss && e.Loss > st.lastLoss {
				st.streak++
			} else {
				st.streak = 0
			}
			st.lastLoss = e.Loss
			st.hasLoss = true
		}
		st.lastAcc = e.ValAcc
		if e.ValAcc > st.bestAcc {
			st.bestAcc = e.ValAcc
		}
	case obs.EventModelDone:
		delete(d.models, e.Model)
	case obs.EventRunEnd:
		d.models = make(map[string]*divState)
	}
}

func (d *divergence) check(out []finding) []finding {
	for id, st := range d.models {
		switch {
		case st.nan:
			out = append(out, finding{
				Monitor: d.name(), Key: id, Severity: SevCritical,
				Message: fmt.Sprintf("model %s: NaN/Inf in training signal", id),
			})
		case st.streak >= d.window:
			out = append(out, finding{
				Monitor: d.name(), Key: id, Severity: SevCritical,
				Message: fmt.Sprintf("model %s diverging: loss rising for %d consecutive epochs (%.4g)",
					id, st.streak, st.lastLoss),
				Value: float64(st.streak), Threshold: float64(d.window),
			})
		case st.bestAcc > 0 && st.bestAcc-st.lastAcc > d.drop:
			out = append(out, finding{
				Monitor: d.name(), Key: id, Severity: SevCritical,
				Message: fmt.Sprintf("model %s diverging: val accuracy %.2f%% is %.2f points below its best %.2f%%",
					id, st.lastAcc, st.bestAcc-st.lastAcc, st.bestAcc),
				Value: st.bestAcc - st.lastAcc, Threshold: d.drop,
			})
		}
	}
	return out
}

func (d *divergence) detail() string {
	return fmt.Sprintf("%d models in flight; loss-rise window %d, accuracy-drop threshold %.1f points",
		len(d.models), d.window, d.drop)
}

// --- learning-curve plateau ----------------------------------------------

// plateau reports (info) models whose validation accuracy has moved
// less than Epsilon points across the last Window epochs — curves the
// prediction engine should be terminating.
type plateau struct {
	window int
	eps    float64
	models map[string][]float64 // rolling acc window per in-flight model
}

func newPlateau(cfg Config) *plateau {
	return &plateau{window: cfg.PlateauWindow, eps: cfg.PlateauEpsilon, models: make(map[string][]float64)}
}

func (p *plateau) name() string { return "plateau" }

func (p *plateau) observe(e obs.Event) {
	switch e.Type {
	case obs.EventEpoch:
		if e.Model == "" || math.IsNaN(e.ValAcc) || math.IsInf(e.ValAcc, 0) {
			return
		}
		w := append(p.models[e.Model], e.ValAcc)
		if len(w) > p.window {
			w = w[len(w)-p.window:]
		}
		p.models[e.Model] = w
	case obs.EventModelDone:
		delete(p.models, e.Model)
	case obs.EventRunEnd:
		p.models = make(map[string][]float64)
	}
}

func (p *plateau) check(out []finding) []finding {
	for id, w := range p.models {
		if len(w) < p.window {
			continue
		}
		lo, hi := w[0], w[0]
		for _, v := range w[1:] {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if hi-lo <= p.eps {
			out = append(out, finding{
				Monitor: p.name(), Key: id, Severity: SevInfo,
				Message: fmt.Sprintf("model %s plateaued: accuracy moved %.3f points over %d epochs",
					id, hi-lo, p.window),
				Value: hi - lo, Threshold: p.eps,
			})
		}
	}
	return out
}

func (p *plateau) detail() string {
	return fmt.Sprintf("%d models in flight; flat means < %.2f points over %d epochs",
		len(p.models), p.eps, p.window)
}

// --- prediction-engine calibration ---------------------------------------

// calibration watches predict_terminate events: the engine's converged
// prediction next to the accuracy actually observed at termination. A
// rolling mean |predicted − actual| above Tolerance means the engine
// is terminating models on bad extrapolations.
type calibration struct {
	window int
	tol    float64
	errs   []float64 // rolling ring
	next   int
	filled bool
	total  int
}

func newCalibration(cfg Config) *calibration {
	return &calibration{window: cfg.CalibrationWindow, tol: cfg.CalibrationTolerance,
		errs: make([]float64, 0, cfg.CalibrationWindow)}
}

func (c *calibration) name() string { return "calibration" }

func (c *calibration) observe(e obs.Event) {
	if e.Type != obs.EventPredictTerminate {
		return
	}
	err := math.Abs(e.Predicted - e.Actual)
	if math.IsNaN(err) || math.IsInf(err, 0) {
		return
	}
	c.total++
	if len(c.errs) < c.window {
		c.errs = append(c.errs, err)
		c.filled = len(c.errs) == c.window
		return
	}
	c.errs[c.next] = err
	c.next = (c.next + 1) % c.window
}

func (c *calibration) mean() float64 {
	if len(c.errs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.errs {
		sum += v
	}
	return sum / float64(len(c.errs))
}

func (c *calibration) check(out []finding) []finding {
	if !c.filled {
		return out
	}
	if mean := c.mean(); mean > c.tol {
		out = append(out, finding{
			Monitor: c.name(), Severity: SevWarning,
			Message: fmt.Sprintf("prediction engine miscalibrated: mean |predicted−actual| %.2f points over last %d terminations (tolerance %.2f)",
				mean, c.window, c.tol),
			Value: mean, Threshold: c.tol,
		})
	}
	return out
}

func (c *calibration) detail() string {
	return fmt.Sprintf("%d terminations observed; rolling mean error %.2f points over window %d (tolerance %.2f)",
		c.total, c.mean(), c.window, c.tol)
}

// --- device-pool degradation ---------------------------------------------

// devicepool tracks the alive-device count carried by generation
// events and the straggler rate. Lost devices degrade the run
// (warning); capacity below MinCapacity is critical — the search is
// limping on too few accelerators to trust its schedule.
type devicepool struct {
	minCapacity   float64
	stragglerRate float64

	total      int // devices at run start
	alive      int
	stragglers int
	devGens    int // alive devices summed over generation starts
}

func newDevicepool(cfg Config) *devicepool {
	return &devicepool{minCapacity: cfg.MinCapacity, stragglerRate: cfg.StragglerRate}
}

func (dp *devicepool) name() string { return "devices" }

func (dp *devicepool) observe(e obs.Event) {
	switch e.Type {
	case obs.EventRunStart:
		dp.total = e.Devices
		dp.alive = e.Devices
	case obs.EventGenerationStart:
		if e.Devices > 0 {
			dp.alive = e.Devices
			dp.devGens += e.Devices
		}
	case obs.EventGenerationEnd:
		if e.Devices > 0 {
			dp.alive = e.Devices
		}
	case obs.EventStraggler:
		dp.stragglers++
	}
}

func (dp *devicepool) check(out []finding) []finding {
	if dp.total > 0 && dp.alive < dp.total {
		capacity := float64(dp.alive) / float64(dp.total)
		sev := SevWarning
		if capacity < dp.minCapacity {
			sev = SevCritical
		}
		out = append(out, finding{
			Monitor: dp.name(), Key: "capacity", Severity: sev,
			Message: fmt.Sprintf("device pool degraded: %d/%d devices alive (capacity %.0f%%, critical below %.0f%%)",
				dp.alive, dp.total, 100*capacity, 100*dp.minCapacity),
			Value: capacity, Threshold: dp.minCapacity,
		})
	}
	if dp.devGens > 0 {
		rate := float64(dp.stragglers) / float64(dp.devGens)
		if rate > dp.stragglerRate {
			out = append(out, finding{
				Monitor: dp.name(), Key: "stragglers", Severity: SevWarning,
				Message: fmt.Sprintf("straggler rate %.0f%% of device-generations (threshold %.0f%%)",
					100*rate, 100*dp.stragglerRate),
				Value: rate, Threshold: dp.stragglerRate,
			})
		}
	}
	return out
}

func (dp *devicepool) detail() string {
	return fmt.Sprintf("%d/%d devices alive; %d straggler events over %d device-generations",
		dp.alive, dp.total, dp.stragglers, dp.devGens)
}

// --- queue saturation -----------------------------------------------------

// queuewait samples the scheduler's queue-wait histogram from the
// registry. The first generation establishes the warmup baseline; a
// later generation whose mean wait exceeds Factor × baseline (and the
// MinWait absolute floor) means tasks are piling up faster than the
// pool drains them.
type queuewait struct {
	factor  float64
	minWait float64
	hist    *obs.Histogram

	baseMean  float64
	baseSet   bool
	lastCount uint64
	lastSum   float64
	genMean   float64 // mean wait across the most recent generation
	genSet    bool
}

func newQueuewait(cfg Config, reg *obs.Registry) *queuewait {
	return &queuewait{
		factor:  cfg.QueueFactor,
		minWait: cfg.QueueMinWait,
		hist:    reg.Histogram("a4nn_sched_queue_wait_sim_seconds", obs.SecondsBuckets),
	}
}

func (q *queuewait) name() string { return "queue" }

func (q *queuewait) observe(e obs.Event) {
	if e.Type != obs.EventGenerationEnd {
		return
	}
	count, sum := q.hist.Count(), q.hist.Sum()
	dc := count - q.lastCount
	if dc == 0 {
		return
	}
	mean := (sum - q.lastSum) / float64(dc)
	q.lastCount, q.lastSum = count, sum
	if !q.baseSet {
		q.baseMean = mean
		q.baseSet = true
		return
	}
	q.genMean = mean
	q.genSet = true
}

func (q *queuewait) check(out []finding) []finding {
	if !q.baseSet || !q.genSet {
		return out
	}
	if q.genMean > q.minWait && q.genMean > q.factor*q.baseMean {
		out = append(out, finding{
			Monitor: q.name(), Severity: SevWarning,
			Message: fmt.Sprintf("queue saturated: mean wait %.1fs this generation vs %.1fs warmup baseline (threshold ×%.1f)",
				q.genMean, q.baseMean, q.factor),
			Value: q.genMean, Threshold: q.factor * q.baseMean,
		})
	}
	return out
}

func (q *queuewait) detail() string {
	if !q.baseSet {
		return "no warmup baseline yet"
	}
	return fmt.Sprintf("warmup baseline %.1fs; last generation mean %.1fs", q.baseMean, q.genMean)
}

// --- journal/broker backpressure -----------------------------------------

// backpressure watches the journal's own accounting counters: dropped
// events mean slow subscribers are losing data (warning); file errors
// mean the events.jsonl sink itself is failing (critical — the run's
// record of record is incomplete).
type backpressure struct {
	dropped  *obs.Counter
	fileErrs *obs.Counter

	lastDropped  uint64
	lastFileErrs uint64
	dropFresh    bool
	fileFresh    bool
}

func newBackpressure(reg *obs.Registry) *backpressure {
	return &backpressure{
		dropped:  reg.Counter("a4nn_events_dropped_total"),
		fileErrs: reg.Counter("a4nn_events_file_errors_total"),
	}
}

func (b *backpressure) name() string { return "backpressure" }

func (b *backpressure) observe(obs.Event) {}

func (b *backpressure) check(out []finding) []finding {
	if d := b.dropped.Value(); d > b.lastDropped {
		b.lastDropped = d
		b.dropFresh = true
	} else {
		b.dropFresh = false
	}
	if b.dropFresh {
		out = append(out, finding{
			Monitor: b.name(), Key: "drops", Severity: SevWarning,
			Message: fmt.Sprintf("event broker dropping to slow subscribers (%d dropped total)", b.lastDropped),
			Value:   float64(b.lastDropped),
		})
	}
	if fe := b.fileErrs.Value(); fe > b.lastFileErrs {
		b.lastFileErrs = fe
		b.fileFresh = true
	} else {
		b.fileFresh = false
	}
	if b.fileFresh {
		out = append(out, finding{
			Monitor: b.name(), Key: "file", Severity: SevCritical,
			Message: fmt.Sprintf("event journal file writes failing (%d errors total)", b.lastFileErrs),
			Value:   float64(b.lastFileErrs),
		})
	}
	return out
}

func (b *backpressure) detail() string {
	return fmt.Sprintf("%d events dropped, %d journal file errors", b.dropped.Value(), b.fileErrs.Value())
}
