//go:build linux

package health

import (
	"os"
	"strconv"
	"strings"
)

// procSelfSample reads OS-level process signals from /proc/self: the
// resident set size (statm field 2, in pages) and the number of open
// file descriptors (entries in /proc/self/fd). ok is false when procfs
// is unreadable — containers occasionally mount it restricted — in
// which case the RSS/fd checks stay silent rather than alerting on
// zeros.
func procSelfSample() (rssBytes uint64, fds int, ok bool) {
	statm, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, 0, false
	}
	fields := strings.Fields(string(statm))
	if len(fields) < 2 {
		return 0, 0, false
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, 0, false
	}
	// The ReadDir handle itself is open while counting; don't count it.
	fds = len(ents) - 1
	if fds < 0 {
		fds = 0
	}
	return pages * uint64(os.Getpagesize()), fds, true
}
