//go:build !linux

package health

// procSelfSample without procfs reports no reading; the RSS/fd checks
// stay silent instead of alerting on zeros.
func procSelfSample() (rssBytes uint64, fds int, ok bool) {
	return 0, 0, false
}
