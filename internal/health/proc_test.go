package health

import (
	"testing"
	"time"

	"a4nn/internal/obs"
)

// grabRuntimeMon digs the runtime monitor out of an engine.
func grabRuntimeMon(t *testing.T, e *Engine) *runtimeMon {
	t.Helper()
	for _, m := range e.monitors {
		if r, ok := m.(*runtimeMon); ok {
			return r
		}
	}
	t.Fatal("engine has no runtime monitor")
	return nil
}

func TestProcSelfSample(t *testing.T) {
	rss, fds, ok := procSelfSample()
	if !ok {
		t.Skip("no readable /proc/self on this platform")
	}
	if rss == 0 {
		t.Fatal("procSelfSample reported zero RSS for a live process")
	}
	// The test binary holds at least stdin/stdout/stderr.
	if fds < 3 {
		t.Fatalf("procSelfSample counted %d fds, want >= 3", fds)
	}
}

func TestRSSAndFDThresholds(t *testing.T) {
	cfg := testConfig()
	cfg.SampleInterval = time.Nanosecond
	cfg.RSSWarnMB = 10
	cfg.RSSCritMB = 20
	cfg.FDWarn = 100
	cfg.FDCrit = 200
	e, _ := testEngine(t, cfg)
	mon := grabRuntimeMon(t, e)

	// Warn-level readings.
	mon.procRead = func() (uint64, int, bool) { return 15 << 20, 150, true }
	e.Check()
	ids := activeIDs(e)
	if a, ok := ids["runtime/rss"]; !ok || a.Severity != SevWarning {
		t.Fatalf("RSS warn did not fire: %+v", e.ActiveAlerts())
	}
	if a, ok := ids["runtime/fds"]; !ok || a.Severity != SevWarning {
		t.Fatalf("fd warn did not fire: %+v", e.ActiveAlerts())
	}

	// Crossing the critical thresholds escalates.
	mon.procRead = func() (uint64, int, bool) { return 25 << 20, 250, true }
	mon.last = time.Time{} // force a fresh sample
	e.Check()
	ids = activeIDs(e)
	if a := ids["runtime/rss"]; a.Severity != SevCritical {
		t.Fatalf("RSS critical did not escalate: %+v", a)
	}
	if a := ids["runtime/fds"]; a.Severity != SevCritical {
		t.Fatalf("fd critical did not escalate: %+v", a)
	}

	// The gauges carry the readings.
	if got := mon.gRSS.Value(); got != float64(25<<20) {
		t.Fatalf("a4nn_health_rss_bytes = %v", got)
	}
	if got := mon.gFDs.Value(); got != 250 {
		t.Fatalf("a4nn_health_fds = %v", got)
	}
}

func TestRSSFDSilentWithoutProcfs(t *testing.T) {
	cfg := testConfig()
	cfg.SampleInterval = time.Nanosecond
	cfg.RSSWarnMB = 1
	cfg.RSSCritMB = 2
	cfg.FDWarn = 1
	cfg.FDCrit = 2
	e, _ := testEngine(t, cfg)
	mon := grabRuntimeMon(t, e)
	mon.procRead = func() (uint64, int, bool) { return 0, 0, false }
	e.Check()
	ids := activeIDs(e)
	if _, ok := ids["runtime/rss"]; ok {
		t.Fatal("RSS check fired without a procfs reading")
	}
	if _, ok := ids["runtime/fds"]; ok {
		t.Fatal("fd check fired without a procfs reading")
	}
}

func TestRuntimeSampleCarriesRSSAndFDs(t *testing.T) {
	cfg := testConfig()
	cfg.SampleInterval = time.Nanosecond
	cfg.EmitRuntimeSamples = true
	e, o := testEngine(t, cfg)
	mon := grabRuntimeMon(t, e)
	mon.procRead = func() (uint64, int, bool) { return 33 << 20, 44, true }
	sub := o.Journal().Subscribe(16)
	defer sub.Close()
	e.Check()
	var sample obs.Event
	select {
	case sample = <-sub.C():
	default:
		t.Fatal("no runtime_sample emitted")
	}
	if sample.RSSBytes != 33<<20 || sample.FDs != 44 {
		t.Fatalf("sample rss=%d fds=%d, want %d/%d", sample.RSSBytes, sample.FDs, 33<<20, 44)
	}

	// A follower adopts the OS-level readings along with the Go ones.
	fcfg := testConfig()
	fcfg.RSSWarnMB = 16
	fcfg.RSSCritMB = 64
	fcfg.FDWarn = 10
	fcfg.FDCrit = 100
	follower, _ := testEngine(t, fcfg)
	fmon := grabRuntimeMon(t, follower)
	follower.Observe(obs.Event{Type: obs.EventRuntimeSample,
		Goroutines: 10, HeapBytes: 1 << 20, RSSBytes: 33 << 20, FDs: 44})
	if !fmon.procOK || fmon.rssBytes != 33<<20 || fmon.fds != 44 {
		t.Fatalf("follower did not adopt OS readings: %+v", fmon)
	}
	ids := activeIDs(follower)
	if a, ok := ids["runtime/rss"]; !ok || a.Severity != SevWarning {
		t.Fatalf("adopted RSS did not drive thresholds: %+v", follower.ActiveAlerts())
	}
	if a, ok := ids["runtime/fds"]; !ok || a.Severity != SevWarning {
		t.Fatalf("adopted fd count did not drive thresholds: %+v", follower.ActiveAlerts())
	}
}

func TestParseConfigRSSFDKeys(t *testing.T) {
	cfg, err := ParseConfig("rss-warn-mb=100;rss-crit-mb=200,fd-warn=10;fd-crit=20")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RSSWarnMB != 100 || cfg.RSSCritMB != 200 || cfg.FDWarn != 10 || cfg.FDCrit != 20 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := ParseConfig("rss-warn-mb=300;rss-crit-mb=200"); err == nil {
		t.Fatal("rss-crit-mb below rss-warn-mb accepted")
	}
	if _, err := ParseConfig("fd-warn=20;fd-crit=20"); err == nil {
		t.Fatal("fd-crit equal to fd-warn accepted")
	}
}
