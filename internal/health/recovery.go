package health

import (
	"fmt"

	"a4nn/internal/obs"
)

// recoveryMon surfaces crash-recovery activity as alerts: quarantined
// corrupt files and lost records warn (the store took damage — worth a
// human look even though the run repaired itself), while checkpoint
// resumes and stale-checkpoint cleanup are normal recovery mechanics
// and only show in the monitor detail. Findings fire on the check
// following the event and then go quiet, so the alert resolves through
// flap suppression once recovery stops finding damage.
type recoveryMon struct {
	quarantined int
	lost        int
	stale       int
	resumes     int

	pendingDamage int // quarantine/lost events since the last check
}

func newRecoveryMon() *recoveryMon {
	return &recoveryMon{}
}

func (r *recoveryMon) name() string { return "recovery" }

func (r *recoveryMon) observe(e obs.Event) {
	switch e.Type {
	case obs.EventRecovery:
		switch e.Reason {
		case "stale":
			r.stale++
		case "lost":
			r.lost++
			r.pendingDamage++
		default:
			r.quarantined++
			r.pendingDamage++
		}
	case obs.EventModelResume:
		r.resumes++
	}
}

func (r *recoveryMon) check(out []finding) []finding {
	if r.pendingDamage > 0 {
		out = append(out, finding{
			Monitor: r.name(), Key: "damage", Severity: SevWarning,
			Message: fmt.Sprintf("crash recovery quarantined %d corrupt file(s) and found %d lost record(s) — the search repaired itself, but the store took damage",
				r.quarantined, r.lost),
			Value: float64(r.quarantined + r.lost),
		})
		r.pendingDamage = 0
	}
	return out
}

func (r *recoveryMon) detail() string {
	if r.quarantined == 0 && r.lost == 0 && r.stale == 0 && r.resumes == 0 {
		return "no recovery activity"
	}
	return fmt.Sprintf("%d quarantined, %d lost records, %d stale checkpoints cleaned, %d checkpoint resumes",
		r.quarantined, r.lost, r.stale, r.resumes)
}
