package health

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"a4nn/internal/obs"
)

// --- cross-run regression ------------------------------------------------

// QueryFunc answers "what was this series' mean over [fromMS, toMS]
// (unix milliseconds) and from how many samples". The time-series
// store's (*tsdb.DB).Mean satisfies it; taking a function keeps the
// import arrow pointing tsdb → (nothing) rather than health → tsdb.
type QueryFunc func(series string, fromMS, toMS int64) (mean float64, samples int)

// BaselineSeries is one series' committed reference level.
type BaselineSeries struct {
	Mean float64 `json:"mean"`
	// Direction is "higher-worse" (latencies, queue waits — the
	// default) or "lower-worse" (throughput, accuracy, savings).
	Direction string `json:"direction,omitempty"`
	// Tolerance overrides the monitor-wide relative tolerance for this
	// series (0 inherits).
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Baseline is a committed (or prior-run) set of reference levels,
// exported by `a4nn-analyze -baseline-out` and fed back to a later run
// via `a4nn -regress-baseline`.
type Baseline struct {
	CreatedMS int64                     `json:"created_ms,omitempty"`
	Series    map[string]BaselineSeries `json:"series"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("health: baseline %s: %w", path, err)
	}
	if len(b.Series) == 0 {
		return b, fmt.Errorf("health: baseline %s has no series", path)
	}
	return b, nil
}

// Save writes the baseline as indented JSON.
func (b Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DirectionFor guesses a series' regression direction from its name:
// throughput-, accuracy- and savings-like series are lower-worse,
// everything else (latencies, waits, counts of bad things) is
// higher-worse.
func DirectionFor(name string) string {
	lower := strings.ToLower(name)
	for _, frag := range []string{"gflop", "accuracy", "saved", "throughput", "fitness"} {
		if strings.Contains(lower, frag) {
			return "lower-worse"
		}
	}
	return "higher-worse"
}

// BaselineFrom captures a baseline from recorded history: each series'
// mean over [fromMS, toMS] via q, with DirectionFor directions. Series
// with no samples in the window are skipped.
func BaselineFrom(q QueryFunc, series []string, fromMS, toMS int64) Baseline {
	b := Baseline{Series: make(map[string]BaselineSeries)}
	for _, name := range series {
		mean, n := q(name, fromMS, toMS)
		if n == 0 {
			continue
		}
		b.Series[name] = BaselineSeries{Mean: mean, Direction: DirectionFor(name)}
	}
	return b
}

// RegressionConfig wires the cross-run regression monitor.
type RegressionConfig struct {
	Baseline Baseline
	// Query reads the live run's history (typically tsdb.DB.Mean).
	Query QueryFunc
	// Window is the trailing live window compared against the baseline
	// (default 60s).
	Window time.Duration
	// Tolerance is the relative deviation that counts as a regression
	// (default 0.25 = 25% worse than baseline).
	Tolerance float64
	// Sustain is how many consecutive evaluations a series must exceed
	// tolerance before a finding fires (default 3) — one slow window
	// is noise, three in a row is a regression.
	Sustain int
	// MinSamples is the fewest live samples a window needs before it
	// is judged at all (default 5).
	MinSamples int
	// EvalInterval throttles evaluation: check() runs on every journal
	// event, but windows only move at the sampling cadence (default
	// 5s; tests use 0 to evaluate every check).
	EvalInterval time.Duration
	// now overrides the wall clock in tests.
	now func() time.Time
}

// regression compares the live run's recent series means against a
// committed baseline and fires a warning after Sustain consecutive
// windows beyond tolerance. Sustained-streak semantics mirror the
// divergence monitor; the finding routes through the same alert
// manager (and -alert-cmd sink) as every other monitor.
type regression struct {
	cfg      RegressionConfig
	names    []string // sorted baseline keys, for deterministic output
	lastEval time.Time
	streak   map[string]int
	cached   []finding
	evals    int
}

func newRegression(cfg RegressionConfig) *regression {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.25
	}
	if cfg.Sustain <= 0 {
		cfg.Sustain = 3
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 5
	}
	if cfg.EvalInterval < 0 {
		cfg.EvalInterval = 0
	} else if cfg.EvalInterval == 0 {
		cfg.EvalInterval = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	names := make([]string, 0, len(cfg.Baseline.Series))
	for name := range cfg.Baseline.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	return &regression{cfg: cfg, names: names, streak: make(map[string]int)}
}

func (r *regression) name() string      { return "regression" }
func (r *regression) observe(obs.Event) {}

func (r *regression) check(out []finding) []finding {
	now := r.cfg.now()
	if !r.lastEval.IsZero() && now.Sub(r.lastEval) < r.cfg.EvalInterval {
		return append(out, r.cached...)
	}
	r.lastEval = now
	r.evals++
	r.cached = r.cached[:0]
	to := now.UnixMilli()
	from := to - r.cfg.Window.Milliseconds()
	for _, name := range r.names {
		base := r.cfg.Baseline.Series[name]
		mean, n := r.cfg.Query(name, from, to)
		if n < r.cfg.MinSamples || base.Mean == 0 || math.IsNaN(mean) {
			r.streak[name] = 0
			continue
		}
		tol := base.Tolerance
		if tol <= 0 {
			tol = r.cfg.Tolerance
		}
		dev := (mean - base.Mean) / math.Abs(base.Mean)
		if base.Direction == "lower-worse" {
			dev = -dev
		}
		if dev <= tol {
			r.streak[name] = 0
			continue
		}
		r.streak[name]++
		if r.streak[name] < r.cfg.Sustain {
			continue
		}
		worse := "above"
		limit := base.Mean * (1 + tol)
		if base.Direction == "lower-worse" {
			worse = "below"
			limit = base.Mean * (1 - tol)
		}
		r.cached = append(r.cached, finding{
			Monitor: r.name(), Key: name, Severity: SevWarning,
			Message: fmt.Sprintf(
				"regression: %s mean %.4g over last %s is %.0f%% %s baseline %.4g (tolerance %.0f%%, %d windows sustained)",
				name, mean, r.cfg.Window, math.Abs(dev)*100, worse, base.Mean,
				tol*100, r.streak[name]),
			Value: mean, Threshold: limit,
		})
	}
	return append(out, r.cached...)
}

func (r *regression) detail() string {
	return fmt.Sprintf("%d baseline series, window %s, tolerance %.0f%%, %d evaluations",
		len(r.names), r.cfg.Window, r.cfg.Tolerance*100, r.evals)
}
