package health

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"a4nn/internal/obs"
)

// fakeHistory is an in-memory QueryFunc: series name → (mean, count).
type fakeHistory map[string]struct {
	mean float64
	n    int
}

func (f fakeHistory) query(series string, _, _ int64) (float64, int) {
	s := f[series]
	return s.mean, s.n
}

func regressionEngine(t *testing.T, cfg RegressionConfig) *Engine {
	t.Helper()
	c := DefaultConfig()
	c.Regression = &cfg
	e, err := New(c, obs.NewObserver())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func regressionAlerts(e *Engine) []Alert {
	var out []Alert
	for _, a := range e.ActiveAlerts() {
		if strings.HasPrefix(a.ID, "regression/") {
			out = append(out, a)
		}
	}
	return out
}

func TestRegressionFiresAgainstDegradedBaseline(t *testing.T) {
	hist := fakeHistory{
		"a4nn_sched_queue_wait_sim_seconds_p99": {mean: 2.0, n: 20},
	}
	e := regressionEngine(t, RegressionConfig{
		// The baseline claims queue wait used to be 1s; the live run
		// sits at 2s — a 100% higher-worse regression.
		Baseline: Baseline{Series: map[string]BaselineSeries{
			"a4nn_sched_queue_wait_sim_seconds_p99": {Mean: 1.0},
		}},
		Query:        hist.query,
		Sustain:      3,
		EvalInterval: -1, // evaluate on every check
	})
	e.Check()
	e.Check()
	if got := regressionAlerts(e); len(got) != 0 {
		t.Fatalf("fired before the sustain streak: %+v", got)
	}
	e.Check()
	got := regressionAlerts(e)
	if len(got) != 1 {
		t.Fatalf("regression alerts = %+v", got)
	}
	a := got[0]
	if a.Severity != SevWarning {
		t.Fatalf("severity = %s", a.Severity)
	}
	if !strings.Contains(a.Message, "above baseline") {
		t.Fatalf("message = %q", a.Message)
	}
}

func TestRegressionSilentAgainstOwnBaseline(t *testing.T) {
	hist := fakeHistory{
		"a4nn_train_epoch_sim_seconds_p99": {mean: 3.0, n: 50},
		"a4nn_train_last_accuracy_percent": {mean: 85, n: 50},
	}
	// Baseline captured from the same history: zero deviation.
	base := BaselineFrom(hist.query,
		[]string{"a4nn_train_epoch_sim_seconds_p99", "a4nn_train_last_accuracy_percent"},
		0, 1)
	if base.Series["a4nn_train_last_accuracy_percent"].Direction != "lower-worse" {
		t.Fatalf("accuracy direction = %q", base.Series["a4nn_train_last_accuracy_percent"].Direction)
	}
	e := regressionEngine(t, RegressionConfig{
		Baseline: base, Query: hist.query, Sustain: 1, EvalInterval: -1,
	})
	for i := 0; i < 5; i++ {
		e.Check()
	}
	if got := regressionAlerts(e); len(got) != 0 {
		t.Fatalf("fired against its own baseline: %+v", got)
	}
}

func TestRegressionLowerWorseAndMinSamples(t *testing.T) {
	hist := fakeHistory{
		"a4nn_fleet_gflops": {mean: 10, n: 20},
		"a4nn_thin":         {mean: 100, n: 2}, // too few samples to judge
	}
	e := regressionEngine(t, RegressionConfig{
		Baseline: Baseline{Series: map[string]BaselineSeries{
			"a4nn_fleet_gflops": {Mean: 40, Direction: "lower-worse"},
			"a4nn_thin":         {Mean: 1},
		}},
		Query: hist.query, Sustain: 1, MinSamples: 5, EvalInterval: -1,
	})
	e.Check()
	got := regressionAlerts(e)
	if len(got) != 1 {
		t.Fatalf("alerts = %+v", got)
	}
	if !strings.Contains(got[0].Message, "below baseline") {
		t.Fatalf("lower-worse message = %q", got[0].Message)
	}
}

func TestBaselineSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := Baseline{
		CreatedMS: 123,
		Series: map[string]BaselineSeries{
			"x_p99": {Mean: 1.5, Direction: "higher-worse", Tolerance: 0.5},
		},
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CreatedMS != 123 || got.Series["x_p99"] != b.Series["x_p99"] {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline loaded")
	}
}

func TestRegressionEvalThrottle(t *testing.T) {
	calls := 0
	q := func(string, int64, int64) (float64, int) {
		calls++
		return 1, 10
	}
	now := time.Unix(1000, 0)
	cfg := RegressionConfig{
		Baseline:     Baseline{Series: map[string]BaselineSeries{"s": {Mean: 1}}},
		Query:        q,
		EvalInterval: 10 * time.Second,
		now:          func() time.Time { return now },
	}
	r := newRegression(cfg)
	r.check(nil)
	r.check(nil)
	r.check(nil)
	if calls != 1 {
		t.Fatalf("query ran %d times inside one eval interval", calls)
	}
	now = now.Add(11 * time.Second)
	r.check(nil)
	if calls != 2 {
		t.Fatalf("query ran %d times after the interval elapsed", calls)
	}
}
