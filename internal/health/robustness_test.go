package health

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"a4nn/internal/chaos"
	"a4nn/internal/obs"
)

// fireWarning drives the devicepool monitor into a warning (one dead
// device out of four), the cheapest deterministic alert.
func fireWarning(e *Engine) {
	e.Observe(obs.Event{Type: obs.EventRunStart, Devices: 4})
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 1, Devices: 3})
}

func TestExecSinkRunsCommandOnTransitions(t *testing.T) {
	cfg := testConfig()
	cfg.AlertCommand = "true"
	cfg.AlertCommandInterval = time.Nanosecond // rate limit out of the way
	e, _ := testEngine(t, cfg)

	var mu sync.Mutex
	type call struct {
		env   []string
		stdin string
	}
	var calls []call
	e.sink.run = func(cmd string, env []string, stdin []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, call{env: env, stdin: string(stdin)})
		return 0, nil
	}

	fireWarning(e)
	if err := e.Close(); err != nil { // drains the sink queue
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("command ran %d times, want 1", len(calls))
	}
	envStr := strings.Join(calls[0].env, "\n")
	for _, want := range []string{
		"A4NN_ALERT_ID=devices",
		"A4NN_ALERT_SEVERITY=warning",
		"A4NN_ALERT_TRANSITION=fired",
	} {
		if !strings.Contains(envStr, want) {
			t.Fatalf("env missing %s:\n%s", want, envStr)
		}
	}
	if !strings.Contains(calls[0].stdin, `"transition":"fired"`) ||
		!strings.Contains(calls[0].stdin, `"id":"devices/capacity"`) {
		t.Fatalf("stdin payload = %s", calls[0].stdin)
	}
}

func TestExecSinkRateLimitsPerAlert(t *testing.T) {
	cfg := testConfig()
	cfg.AlertCommand = "true"
	cfg.AlertCommandInterval = time.Hour
	e, _ := testEngine(t, cfg)
	ran := 0
	var mu sync.Mutex
	e.sink.run = func(string, []string, []byte) (int, error) {
		mu.Lock()
		ran++
		mu.Unlock()
		return 0, nil
	}
	// Fire, resolve, and re-fire the same alert inside the window: only
	// the first transition executes.
	fireWarning(e)
	e.Observe(obs.Event{Type: obs.EventGenerationStart, Gen: 2, Devices: 4})
	e.Check()
	fireWarning(e)
	dropped := e.sink.dropped.Value()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 1 {
		t.Fatalf("command ran %d times inside the rate window, want 1", ran)
	}
	if dropped == 0 {
		t.Fatal("rate-limited transitions not counted as dropped")
	}
}

func TestExecSinkLogsExitCode(t *testing.T) {
	cfg := testConfig()
	cfg.AlertCommand = "exit 3"
	cfg.AlertCommandInterval = time.Nanosecond
	e, o := testEngine(t, cfg)
	dir := t.TempDir()
	if err := o.Journal().OpenFile(filepath.Join(dir, obs.EventsFile)); err != nil {
		t.Fatal(err)
	}
	sink := e.sink
	fireWarning(e) // default runShell executes the real `sh -c "exit 3"`
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.errs.Value(); got == 0 {
		t.Fatal("nonzero exit not counted as an error")
	}
	if err := o.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(filepath.Join(dir, obs.EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Type == obs.EventAlertCmd && strings.Contains(ev.Msg, "exit 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no alert_cmd event logging the exit code; events = %+v", events)
	}
}

func TestDiskMonitorWatermarks(t *testing.T) {
	cfg := testConfig()
	cfg.DiskPath = t.TempDir()
	e, _ := testEngine(t, cfg)
	var mon *diskMon
	for _, m := range e.monitors {
		if d, ok := m.(*diskMon); ok {
			mon = d
		}
	}
	if mon == nil {
		t.Fatal("DiskPath set but no disk monitor registered")
	}
	free := uint64(50)
	mon.statfs = func(string) (diskUsage, error) {
		return diskUsage{totalBytes: 100, availBytes: free}, nil
	}
	now := time.Now()
	mon.now = func() time.Time { now = now.Add(cfg.SampleInterval + time.Second); return now }

	e.Check()
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("alert at 50%% free: %+v", e.ActiveAlerts())
	}
	free = 8 // below 10% warning watermark
	e.Check()
	a, ok := activeIDs(e)["disk/space"]
	if !ok || a.Severity != SevWarning {
		t.Fatalf("want disk/space warning, active = %+v", e.ActiveAlerts())
	}
	free = 2 // below 3% critical watermark
	e.Check()
	if a := activeIDs(e)["disk/space"]; a.Severity != SevCritical {
		t.Fatalf("want escalation to critical, got %+v", a)
	}
	if e.Status() != StatusCritical {
		t.Fatalf("status = %v, want critical", e.Status())
	}
	// Space freed: the alert resolves through flap suppression.
	free = 60
	for i := 0; i < cfg.ResolveAfter; i++ {
		e.Check()
	}
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("disk alert survived cleanup: %+v", e.ActiveAlerts())
	}
	if !strings.Contains(mon.detail(), "60.0% free") {
		t.Fatalf("detail = %q", mon.detail())
	}
}

func TestDiskMonitorStatFailure(t *testing.T) {
	cfg := testConfig()
	cfg.DiskPath = "/nonexistent"
	e, _ := testEngine(t, cfg)
	for _, m := range e.monitors {
		if d, ok := m.(*diskMon); ok {
			d.statfs = func(string) (diskUsage, error) {
				return diskUsage{}, fmt.Errorf("no such filesystem")
			}
		}
	}
	e.Check()
	if _, ok := activeIDs(e)["disk/stat"]; !ok {
		t.Fatalf("stat failure did not warn; active = %+v", e.ActiveAlerts())
	}
}

func TestRecoveryMonitorAlertsOnDamage(t *testing.T) {
	e, _ := testEngine(t, testConfig())
	// Normal recovery mechanics (resume, stale cleanup) stay quiet.
	e.Observe(obs.Event{Type: obs.EventModelResume, Model: "m1", Epoch: 5})
	e.Observe(obs.Event{Type: obs.EventRecovery, Model: "m2", Reason: "stale"})
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("benign recovery fired an alert: %+v", e.ActiveAlerts())
	}
	// Damage warns.
	e.Observe(obs.Event{Type: obs.EventRecovery, Model: "m3", Reason: "checksum",
		Msg: "quarantined corrupt checkpoint m3 (checksum)"})
	a, ok := activeIDs(e)["recovery/damage"]
	if !ok || a.Severity != SevWarning {
		t.Fatalf("want recovery/damage warning, active = %+v", e.ActiveAlerts())
	}
	e.Observe(obs.Event{Type: obs.EventRecovery, Model: "m4", Reason: "lost"})
	var mon *recoveryMon
	for _, m := range e.monitors {
		if r, ok := m.(*recoveryMon); ok {
			mon = r
		}
	}
	d := mon.detail()
	for _, want := range []string{"1 quarantined", "1 lost", "1 stale", "1 checkpoint resumes"} {
		if !strings.Contains(d, want) {
			t.Fatalf("detail %q missing %q", d, want)
		}
	}
	// Quiet checks resolve the damage alert.
	for i := 0; i < testConfig().ResolveAfter+1; i++ {
		e.Check()
	}
	if len(e.ActiveAlerts()) != 0 {
		t.Fatalf("damage alert never resolved: %+v", e.ActiveAlerts())
	}
}

func TestRuntimeSampleEmitAndAdopt(t *testing.T) {
	// Producer: EmitRuntimeSamples publishes runtime_sample events.
	cfg := testConfig()
	cfg.SampleInterval = time.Nanosecond
	cfg.EmitRuntimeSamples = true
	e, o := testEngine(t, cfg)
	sub := o.Journal().Subscribe(16)
	defer sub.Close()
	e.Check()
	var sample obs.Event
	select {
	case sample = <-sub.C():
	default:
		t.Fatal("no runtime_sample emitted")
	}
	if sample.Type != obs.EventRuntimeSample || sample.Goroutines == 0 || sample.HeapBytes == 0 {
		t.Fatalf("sample = %+v", sample)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Consumer: a follower engine adopts the producer's readings and
	// stops sampling its own runtime.
	follower, _ := testEngine(t, testConfig())
	var mon *runtimeMon
	for _, m := range follower.monitors {
		if r, ok := m.(*runtimeMon); ok {
			mon = r
		}
	}
	external := obs.Event{Type: obs.EventRuntimeSample,
		Goroutines: 4242, HeapBytes: 1 << 30, GCPauseSec: 0.001}
	follower.Observe(external)
	if !mon.adopted || mon.goroutines != 4242 || mon.heapBytes != 1<<30 {
		t.Fatalf("follower did not adopt the external sample: %+v", mon)
	}
	follower.Check() // must not overwrite with a local sample
	if mon.goroutines != 4242 {
		t.Fatalf("local sampling overwrote adopted readings: %d", mon.goroutines)
	}
	// The adopted goroutine count breaches MaxGoroutines=2000 → alert
	// about the *producer's* runtime.
	if _, ok := activeIDs(follower)["runtime/goroutines"]; !ok {
		t.Fatalf("adopted sample did not drive thresholds; active = %+v", follower.ActiveAlerts())
	}

	// A producer ignores its own samples coming back from the broker.
	prod, _ := testEngine(t, cfg)
	for _, m := range prod.monitors {
		if r, ok := m.(*runtimeMon); ok {
			mon = r
		}
	}
	prod.Observe(external)
	if mon.adopted {
		t.Fatal("producer adopted an external sample")
	}
}

func TestAlertsAppendChaosPoint(t *testing.T) {
	t.Cleanup(func() { chaos.Install(nil) })
	e, _ := testEngine(t, testConfig())
	path := filepath.Join(t.TempDir(), AlertsFile)
	if err := e.OpenAlertsFile(path); err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.Parse("err=" + chaos.PointAlertsAppend + "@1")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Install(plan)
	fireWarning(e) // first persist hits the injected error
	chaos.Install(nil)
	if e.mgr.fileErrs.Value() == 0 {
		t.Fatal("injected append error not counted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The close snapshot still landed; the file reads back fine.
	alerts, err := ReadAlerts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].ID != "devices/capacity" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func FuzzReadAlerts(f *testing.F) {
	f.Add([]byte(`{"id":"a","monitor":"m","severity":"warning","msg":"x","count":1,"fired_at":1,"updated_at":1}` + "\n"))
	f.Add([]byte(`{"id":"a","count":1,"fired_at":1}` + "\n" + `{"id":"a","count":2,"fired_at":1,"resolved":true}` + "\n"))
	f.Add([]byte("{\"id\":\"torn\",\"cou")) // torn tail
	f.Add([]byte("\n\nnot json\n{}\n"))
	f.Add([]byte{0x00, 0xFF, 0x7B, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), AlertsFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		alerts, err := ReadAlerts(path)
		if err != nil {
			return // oversized line etc.; must not panic
		}
		for _, a := range alerts {
			if a.ID == "" {
				t.Fatal("ReadAlerts returned an alert with no ID")
			}
		}
	})
}
