package health

import (
	"fmt"
	"runtime/metrics"
	"time"

	"a4nn/internal/obs"
)

// The stdlib runtime/metrics series the sampler reads. Names are
// stable since Go 1.17/1.22.
const (
	goroutinesMetric = "/sched/goroutines:goroutines"
	heapMetric       = "/memory/classes/heap/objects:bytes"
	gcPauseMetric    = "/sched/pauses/total/gc:seconds"
)

// runtimeMon samples the Go runtime at most once per SampleInterval
// (checks between samples reuse the cached reading): goroutine count,
// live heap bytes, and the p99 GC pause from the runtime's cumulative
// pause histogram. The readings publish as a4nn_health_* gauges so
// they flush into metrics.json with everything else; threshold
// breaches fire warnings — a leaking search process is the kind of
// slow in-situ failure nothing else in the stack would ever report.
//
// With EmitRuntimeSamples set, each fresh sample also publishes a
// runtime_sample journal event. A monitor that instead *receives*
// runtime_sample events (a follower tailing a producer's journal in
// another process) adopts them and stops sampling its own runtime —
// the thresholds then watch the search process, not the viewer.
type runtimeMon struct {
	interval      time.Duration
	maxGoroutines int
	heapGrowth    float64
	gcPauseP99    time.Duration
	emit          bool
	journal       *obs.Journal

	now     func() time.Time
	samples []metrics.Sample
	last    time.Time
	sampled bool
	adopted bool // external samples drive the readings

	goroutines int
	heapBytes  uint64
	heapBase   uint64 // first observed heap size, the growth reference
	pauseP99   float64

	gGoroutines *obs.Gauge
	gHeap       *obs.Gauge
	gPause      *obs.Gauge
}

func newRuntimeMon(cfg Config, reg *obs.Registry, journal *obs.Journal) *runtimeMon {
	return &runtimeMon{
		interval:      cfg.SampleInterval,
		maxGoroutines: cfg.MaxGoroutines,
		heapGrowth:    cfg.HeapGrowthFactor,
		gcPauseP99:    cfg.GCPauseP99,
		emit:          cfg.EmitRuntimeSamples,
		journal:       journal,
		now:           time.Now,
		samples: []metrics.Sample{
			{Name: goroutinesMetric},
			{Name: heapMetric},
			{Name: gcPauseMetric},
		},
		gGoroutines: reg.Gauge("a4nn_health_goroutines"),
		gHeap:       reg.Gauge("a4nn_health_heap_bytes"),
		gPause:      reg.Gauge("a4nn_health_gc_pause_p99_seconds"),
	}
}

func (r *runtimeMon) name() string { return "runtime" }

// observe adopts cross-process runtime samples. A producer (emit set)
// ignores its own events coming back through the broker.
func (r *runtimeMon) observe(e obs.Event) {
	if e.Type != obs.EventRuntimeSample || r.emit {
		return
	}
	r.adopted = true
	r.goroutines = e.Goroutines
	r.heapBytes = e.HeapBytes
	r.pauseP99 = e.GCPauseSec
	if !r.sampled {
		r.heapBase = e.HeapBytes
	}
	r.sampled = true
	r.gGoroutines.Set(float64(r.goroutines))
	r.gHeap.Set(float64(r.heapBytes))
	r.gPause.Set(r.pauseP99)
}

// sample reads the runtime, throttled to the configured interval.
func (r *runtimeMon) sample() {
	if r.adopted {
		return // an external producer supplies the readings
	}
	now := r.now()
	if r.sampled && now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	metrics.Read(r.samples)
	for _, s := range r.samples {
		switch s.Name {
		case goroutinesMetric:
			if s.Value.Kind() == metrics.KindUint64 {
				r.goroutines = int(s.Value.Uint64())
			}
		case heapMetric:
			if s.Value.Kind() == metrics.KindUint64 {
				r.heapBytes = s.Value.Uint64()
				if !r.sampled {
					r.heapBase = r.heapBytes
				}
			}
		case gcPauseMetric:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				r.pauseP99 = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		}
	}
	r.sampled = true
	r.gGoroutines.Set(float64(r.goroutines))
	r.gHeap.Set(float64(r.heapBytes))
	r.gPause.Set(r.pauseP99)
	if r.emit {
		r.journal.Emit(obs.Event{
			Type:       obs.EventRuntimeSample,
			Goroutines: r.goroutines,
			HeapBytes:  r.heapBytes,
			GCPauseSec: r.pauseP99,
		})
	}
}

func (r *runtimeMon) check(out []finding) []finding {
	r.sample()
	if !r.sampled {
		return out
	}
	if r.maxGoroutines > 0 && r.goroutines > r.maxGoroutines {
		out = append(out, finding{
			Monitor: r.name(), Key: "goroutines", Severity: SevWarning,
			Message: fmt.Sprintf("goroutine count %d exceeds %d — a leak in the pool or a stuck subscriber",
				r.goroutines, r.maxGoroutines),
			Value: float64(r.goroutines), Threshold: float64(r.maxGoroutines),
		})
	}
	if r.heapGrowth > 0 && r.heapBase > 0 && float64(r.heapBytes) > r.heapGrowth*float64(r.heapBase) {
		out = append(out, finding{
			Monitor: r.name(), Key: "heap", Severity: SevWarning,
			Message: fmt.Sprintf("live heap grew to %.1f MiB, ×%.1f its first sample (%.1f MiB; threshold ×%.1f)",
				float64(r.heapBytes)/(1<<20), float64(r.heapBytes)/float64(r.heapBase),
				float64(r.heapBase)/(1<<20), r.heapGrowth),
			Value: float64(r.heapBytes) / float64(r.heapBase), Threshold: r.heapGrowth,
		})
	}
	if r.gcPauseP99 > 0 && r.pauseP99 > r.gcPauseP99.Seconds() {
		out = append(out, finding{
			Monitor: r.name(), Key: "gc", Severity: SevWarning,
			Message: fmt.Sprintf("GC pause p99 %.1fms exceeds %.1fms",
				1e3*r.pauseP99, 1e3*r.gcPauseP99.Seconds()),
			Value: r.pauseP99, Threshold: r.gcPauseP99.Seconds(),
		})
	}
	return out
}

func (r *runtimeMon) detail() string {
	if !r.sampled {
		return "not sampled yet"
	}
	return fmt.Sprintf("%d goroutines; heap %.1f MiB (×%.2f of first sample); GC pause p99 %.2fms",
		r.goroutines, float64(r.heapBytes)/(1<<20),
		float64(r.heapBytes)/float64(max(r.heapBase, 1)), 1e3*r.pauseP99)
}

// histQuantile returns the value at quantile q of a runtime/metrics
// cumulative-bucket histogram (the upper edge of the bucket the
// quantile falls in; -Inf/+Inf edges clamp to their finite neighbour).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			edge := h.Buckets[i+1]
			if edge > 1e308 || edge != edge { // +Inf or NaN edge
				edge = h.Buckets[i]
			}
			if edge < -1e308 {
				edge = 0
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
