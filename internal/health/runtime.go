package health

import (
	"fmt"
	"runtime/metrics"
	"time"

	"a4nn/internal/obs"
)

// The stdlib runtime/metrics series the sampler reads. Names are
// stable since Go 1.17/1.22.
const (
	goroutinesMetric = "/sched/goroutines:goroutines"
	heapMetric       = "/memory/classes/heap/objects:bytes"
	gcPauseMetric    = "/sched/pauses/total/gc:seconds"
)

// runtimeMon samples the Go runtime at most once per SampleInterval
// (checks between samples reuse the cached reading): goroutine count,
// live heap bytes, the p99 GC pause from the runtime's cumulative
// pause histogram, and — where /proc/self is readable — the OS-level
// resident set size and open-fd count, which catch the leaks the Go
// heap gauges can't see. The readings publish as a4nn_health_* gauges so
// they flush into metrics.json with everything else; threshold
// breaches fire warnings — a leaking search process is the kind of
// slow in-situ failure nothing else in the stack would ever report.
//
// With EmitRuntimeSamples set, each fresh sample also publishes a
// runtime_sample journal event. A monitor that instead *receives*
// runtime_sample events (a follower tailing a producer's journal in
// another process) adopts them and stops sampling its own runtime —
// the thresholds then watch the search process, not the viewer.
type runtimeMon struct {
	interval      time.Duration
	maxGoroutines int
	heapGrowth    float64
	gcPauseP99    time.Duration
	rssWarn       uint64 // bytes; 0 disables
	rssCrit       uint64
	fdWarn        int // 0 disables
	fdCrit        int
	emit          bool
	journal       *obs.Journal

	now      func() time.Time
	procRead func() (rssBytes uint64, fds int, ok bool)
	samples  []metrics.Sample
	last     time.Time
	sampled  bool
	adopted  bool // external samples drive the readings

	goroutines int
	heapBytes  uint64
	heapBase   uint64 // first observed heap size, the growth reference
	pauseP99   float64
	rssBytes   uint64
	fds        int
	procOK     bool // the OS-level readings are real, not platform zeros

	gGoroutines *obs.Gauge
	gHeap       *obs.Gauge
	gPause      *obs.Gauge
	gRSS        *obs.Gauge
	gFDs        *obs.Gauge
}

func newRuntimeMon(cfg Config, reg *obs.Registry, journal *obs.Journal) *runtimeMon {
	r := &runtimeMon{
		interval:      cfg.SampleInterval,
		maxGoroutines: cfg.MaxGoroutines,
		heapGrowth:    cfg.HeapGrowthFactor,
		gcPauseP99:    cfg.GCPauseP99,
		emit:          cfg.EmitRuntimeSamples,
		journal:       journal,
		now:           time.Now,
		procRead:      procSelfSample,
		samples: []metrics.Sample{
			{Name: goroutinesMetric},
			{Name: heapMetric},
			{Name: gcPauseMetric},
		},
		gGoroutines: reg.Gauge("a4nn_health_goroutines"),
		gHeap:       reg.Gauge("a4nn_health_heap_bytes"),
		gPause:      reg.Gauge("a4nn_health_gc_pause_p99_seconds"),
		gRSS:        reg.Gauge("a4nn_health_rss_bytes"),
		gFDs:        reg.Gauge("a4nn_health_fds"),
	}
	// A negative warn threshold disables the pair, matching the
	// MaxGoroutines convention.
	if cfg.RSSWarnMB > 0 {
		r.rssWarn = uint64(cfg.RSSWarnMB) << 20
	}
	if cfg.RSSCritMB > 0 && cfg.RSSWarnMB > 0 {
		r.rssCrit = uint64(cfg.RSSCritMB) << 20
	}
	if cfg.FDWarn > 0 {
		r.fdWarn = cfg.FDWarn
		r.fdCrit = cfg.FDCrit
	}
	return r
}

func (r *runtimeMon) name() string { return "runtime" }

// observe adopts cross-process runtime samples. A producer (emit set)
// ignores its own events coming back through the broker.
func (r *runtimeMon) observe(e obs.Event) {
	if e.Type != obs.EventRuntimeSample || r.emit {
		return
	}
	r.adopted = true
	r.goroutines = e.Goroutines
	r.heapBytes = e.HeapBytes
	r.pauseP99 = e.GCPauseSec
	r.rssBytes = e.RSSBytes
	r.fds = e.FDs
	r.procOK = e.RSSBytes > 0 || e.FDs > 0
	if !r.sampled {
		r.heapBase = e.HeapBytes
	}
	r.sampled = true
	r.setGauges()
}

func (r *runtimeMon) setGauges() {
	r.gGoroutines.Set(float64(r.goroutines))
	r.gHeap.Set(float64(r.heapBytes))
	r.gPause.Set(r.pauseP99)
	if r.procOK {
		r.gRSS.Set(float64(r.rssBytes))
		r.gFDs.Set(float64(r.fds))
	}
}

// sample reads the runtime, throttled to the configured interval.
func (r *runtimeMon) sample() {
	if r.adopted {
		return // an external producer supplies the readings
	}
	now := r.now()
	if r.sampled && now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	metrics.Read(r.samples)
	for _, s := range r.samples {
		switch s.Name {
		case goroutinesMetric:
			if s.Value.Kind() == metrics.KindUint64 {
				r.goroutines = int(s.Value.Uint64())
			}
		case heapMetric:
			if s.Value.Kind() == metrics.KindUint64 {
				r.heapBytes = s.Value.Uint64()
				if !r.sampled {
					r.heapBase = r.heapBytes
				}
			}
		case gcPauseMetric:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				r.pauseP99 = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		}
	}
	r.rssBytes, r.fds, r.procOK = r.procRead()
	r.sampled = true
	r.setGauges()
	if r.emit {
		r.journal.Emit(obs.Event{
			Type:       obs.EventRuntimeSample,
			Goroutines: r.goroutines,
			HeapBytes:  r.heapBytes,
			GCPauseSec: r.pauseP99,
			RSSBytes:   r.rssBytes,
			FDs:        r.fds,
		})
	}
}

func (r *runtimeMon) check(out []finding) []finding {
	r.sample()
	if !r.sampled {
		return out
	}
	if r.maxGoroutines > 0 && r.goroutines > r.maxGoroutines {
		out = append(out, finding{
			Monitor: r.name(), Key: "goroutines", Severity: SevWarning,
			Message: fmt.Sprintf("goroutine count %d exceeds %d — a leak in the pool or a stuck subscriber",
				r.goroutines, r.maxGoroutines),
			Value: float64(r.goroutines), Threshold: float64(r.maxGoroutines),
		})
	}
	if r.heapGrowth > 0 && r.heapBase > 0 && float64(r.heapBytes) > r.heapGrowth*float64(r.heapBase) {
		out = append(out, finding{
			Monitor: r.name(), Key: "heap", Severity: SevWarning,
			Message: fmt.Sprintf("live heap grew to %.1f MiB, ×%.1f its first sample (%.1f MiB; threshold ×%.1f)",
				float64(r.heapBytes)/(1<<20), float64(r.heapBytes)/float64(r.heapBase),
				float64(r.heapBase)/(1<<20), r.heapGrowth),
			Value: float64(r.heapBytes) / float64(r.heapBase), Threshold: r.heapGrowth,
		})
	}
	if r.gcPauseP99 > 0 && r.pauseP99 > r.gcPauseP99.Seconds() {
		out = append(out, finding{
			Monitor: r.name(), Key: "gc", Severity: SevWarning,
			Message: fmt.Sprintf("GC pause p99 %.1fms exceeds %.1fms",
				1e3*r.pauseP99, 1e3*r.gcPauseP99.Seconds()),
			Value: r.pauseP99, Threshold: r.gcPauseP99.Seconds(),
		})
	}
	if r.procOK {
		if r.rssCrit > 0 && r.rssBytes > r.rssCrit {
			out = append(out, finding{
				Monitor: r.name(), Key: "rss", Severity: SevCritical,
				Message: fmt.Sprintf("resident set %.0f MiB exceeds critical %.0f MiB — the OS may OOM-kill the search",
					float64(r.rssBytes)/(1<<20), float64(r.rssCrit)/(1<<20)),
				Value: float64(r.rssBytes), Threshold: float64(r.rssCrit),
			})
		} else if r.rssWarn > 0 && r.rssBytes > r.rssWarn {
			out = append(out, finding{
				Monitor: r.name(), Key: "rss", Severity: SevWarning,
				Message: fmt.Sprintf("resident set %.0f MiB exceeds %.0f MiB — growth the Go heap gauges can't see points at mmap/cgo or kernel-side leaks",
					float64(r.rssBytes)/(1<<20), float64(r.rssWarn)/(1<<20)),
				Value: float64(r.rssBytes), Threshold: float64(r.rssWarn),
			})
		}
		if r.fdCrit > 0 && r.fds > r.fdCrit {
			out = append(out, finding{
				Monitor: r.name(), Key: "fds", Severity: SevCritical,
				Message: fmt.Sprintf("%d open file descriptors exceed critical %d — near the ulimit the journal and alert sinks start failing",
					r.fds, r.fdCrit),
				Value: float64(r.fds), Threshold: float64(r.fdCrit),
			})
		} else if r.fdWarn > 0 && r.fds > r.fdWarn {
			out = append(out, finding{
				Monitor: r.name(), Key: "fds", Severity: SevWarning,
				Message: fmt.Sprintf("%d open file descriptors exceed %d — a descriptor leak (unclosed journals, sockets, alert commands)",
					r.fds, r.fdWarn),
				Value: float64(r.fds), Threshold: float64(r.fdWarn),
			})
		}
	}
	return out
}

func (r *runtimeMon) detail() string {
	if !r.sampled {
		return "not sampled yet"
	}
	s := fmt.Sprintf("%d goroutines; heap %.1f MiB (×%.2f of first sample); GC pause p99 %.2fms",
		r.goroutines, float64(r.heapBytes)/(1<<20),
		float64(r.heapBytes)/float64(max(r.heapBase, 1)), 1e3*r.pauseP99)
	if r.procOK {
		s += fmt.Sprintf("; RSS %.1f MiB; %d fds", float64(r.rssBytes)/(1<<20), r.fds)
	}
	return s
}

// histQuantile returns the value at quantile q of a runtime/metrics
// cumulative-bucket histogram (the upper edge of the bucket the
// quantile falls in; -Inf/+Inf edges clamp to their finite neighbour).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			edge := h.Buckets[i+1]
			if edge > 1e308 || edge != edge { // +Inf or NaN edge
				edge = h.Buckets[i]
			}
			if edge < -1e308 {
				edge = 0
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
