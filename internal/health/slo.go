package health

// The SLO monitor family turns the health engine from anomaly
// detection ("something looks broken") into objective tracking ("we
// are spending the error budget faster than we can afford"). Each job
// declares service-level objectives fault-plan-style (-slo
// "queue_wait_p99=2s,job_turnaround=10m,event_drop_rate=0.01"); the
// monitor measures compliance from the signals the observability stack
// already collects — the scheduler's queue-wait histogram, the
// journal's emit/drop counters, the run's own lifecycle events — and
// alerts on *burn rate*, the multiplier at which the budget is being
// consumed, over a fast and a slow window (the SRE multiwindow
// pattern): a fast-window burn above FastBurn means the budget is
// vanishing in minutes and pages critical; a slow-window burn above
// SlowBurn is sustained slow bleeding and warns. Findings flow through
// the ordinary alert manager, so dedup, flap suppression, escalation,
// alerts.jsonl, and /healthz all apply unchanged. Because every job in
// the multi-tenant service owns a health engine, error budgets are
// per-job by construction.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"a4nn/internal/obs"
)

// SLO declares a job's service-level objectives. Zero-valued
// objectives are disabled; at least one must be set (ParseSLO
// enforces this).
type SLO struct {
	// QueueWaitP99 is the target bound, in simulated seconds, that the
	// Objective fraction of generation queue waits must stay under.
	// Bucket-granular: the target rounds up to the enclosing histogram
	// bucket bound.
	QueueWaitP99 float64
	// JobTurnaround is the wall-clock deadline for the whole search.
	JobTurnaround time.Duration
	// EventDropRate is the tolerated fraction of journal events dropped
	// by the broker fanout; the rate itself is the error budget.
	EventDropRate float64
	// Objective is the compliance goal for QueueWaitP99 (default 0.99;
	// the error budget is 1 − Objective).
	Objective float64
	// FastWindow and SlowWindow bound the burn-rate measurements
	// (defaults 1m and 10m).
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the burn-rate multipliers above which
	// the fast window pages critical and the slow window warns
	// (defaults 14 and 6, the SRE-book pairing).
	FastBurn float64
	SlowBurn float64
}

// withDefaults fills zero tuning fields (objectives stay as declared).
func (s SLO) withDefaults() SLO {
	if s.Objective <= 0 {
		s.Objective = 0.99
	}
	if s.FastWindow <= 0 {
		s.FastWindow = time.Minute
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = 10 * time.Minute
	}
	if s.FastBurn <= 0 {
		s.FastBurn = 14
	}
	if s.SlowBurn <= 0 {
		s.SlowBurn = 6
	}
	return s
}

// ParseSLO parses the compact -slo specification: key=value pairs
// separated by ';' or ','. Keys:
//
//	queue_wait_p99=2s     queue-wait bound (duration, simulated seconds)
//	job_turnaround=10m    whole-search wall-clock deadline (duration)
//	event_drop_rate=0.01  tolerated journal-drop fraction
//	objective=0.99        queue-wait compliance goal
//	fast_window=1m        fast burn window       fast_burn=14
//	slow_window=10m       slow burn window       slow_burn=6
//
// At least one of the three objectives must be set.
func ParseSLO(spec string) (*SLO, error) {
	s := SLO{}
	for _, kv := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("health: bad slo entry %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		durVal := func(dst *time.Duration) error {
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return fmt.Errorf("health: slo %s wants a positive duration, got %q", key, val)
			}
			*dst = d
			return nil
		}
		fracVal := func(dst *float64) error {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f >= 1 {
				return fmt.Errorf("health: slo %s wants a fraction in (0,1), got %q", key, val)
			}
			*dst = f
			return nil
		}
		floatVal := func(dst *float64) error {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("health: slo %s wants a positive number, got %q", key, val)
			}
			*dst = f
			return nil
		}
		var err error
		switch key {
		case "queue_wait_p99":
			var d time.Duration
			if err = durVal(&d); err == nil {
				s.QueueWaitP99 = d.Seconds()
			}
		case "job_turnaround":
			err = durVal(&s.JobTurnaround)
		case "event_drop_rate":
			err = fracVal(&s.EventDropRate)
		case "objective":
			err = fracVal(&s.Objective)
		case "fast_window":
			err = durVal(&s.FastWindow)
		case "slow_window":
			err = durVal(&s.SlowWindow)
		case "fast_burn":
			err = floatVal(&s.FastBurn)
		case "slow_burn":
			err = floatVal(&s.SlowBurn)
		default:
			err = fmt.Errorf("health: unknown slo key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	if s.QueueWaitP99 <= 0 && s.JobTurnaround <= 0 && s.EventDropRate <= 0 {
		return nil, fmt.Errorf("health: slo spec %q declares no objective (set queue_wait_p99, job_turnaround, or event_drop_rate)", spec)
	}
	s = s.withDefaults()
	if s.SlowWindow <= s.FastWindow {
		return nil, fmt.Errorf("health: slo slow_window (%v) must exceed fast_window (%v)", s.SlowWindow, s.FastWindow)
	}
	if s.SlowBurn >= s.FastBurn {
		return nil, fmt.Errorf("health: slo slow_burn (%v) must be below fast_burn (%v)", s.SlowBurn, s.FastBurn)
	}
	return &s, nil
}

// sloSample is one timestamped reading of the cumulative good/total
// counters every ratio objective burns against.
type sloSample struct {
	t       time.Time
	queueOK uint64 // queue waits at or under the target bound
	queueN  uint64 // queue waits total
	dropped uint64 // journal events dropped
	emitted uint64 // journal events emitted
}

// sloMon tracks the declared objectives. Like every monitor it runs
// single-threaded under the engine mutex; unlike the anomaly monitors
// it keeps a time-indexed ring of counter samples so burn rates are
// measured over wall-clock windows, not check counts. Nil-safe: a nil
// *sloMon observes and checks for free (BenchmarkDisabledSLO).
type sloMon struct {
	slo  SLO
	hist *obs.Histogram
	drop *obs.Counter
	emit *obs.Counter
	now  func() time.Time

	samples  []sloSample // ring, oldest at shead
	shead    int
	sn       int
	lastPush time.Time

	started  time.Time // wall-clock run start (first event observed)
	finished bool      // run_end seen

	fastQueueBurn, slowQueueBurn float64 // last measured, for detail()
	fastDropBurn, slowDropBurn   float64
}

// newSLOMon builds the monitor over the registry's scheduler and
// journal instruments. The ring is sized so the slow window is covered
// at the push granularity.
func newSLOMon(s SLO, reg *obs.Registry, now func() time.Time) *sloMon {
	s = s.withDefaults()
	if now == nil {
		now = time.Now
	}
	n := int(s.SlowWindow/granule(s)) + 2
	return &sloMon{
		slo:     s,
		hist:    reg.Histogram("a4nn_sched_queue_wait_sim_seconds", obs.SecondsBuckets),
		drop:    reg.Counter("a4nn_events_dropped_total"),
		emit:    reg.Counter("a4nn_events_emitted_total"),
		now:     now,
		samples: make([]sloSample, n),
	}
}

// granule is the sampling period of the window ring: fine enough that
// the fast window holds several samples, bounded below so a tiny
// window cannot make the ring huge.
func granule(s SLO) time.Duration {
	g := s.FastWindow / 6
	if g < 10*time.Millisecond {
		g = 10 * time.Millisecond
	}
	return g
}

func (m *sloMon) name() string { return "slo" }

func (m *sloMon) observe(e obs.Event) {
	if m == nil {
		return
	}
	if m.started.IsZero() {
		m.started = m.now()
	}
	if e.Type == obs.EventRunEnd {
		m.finished = true
	}
}

func (m *sloMon) check(out []finding) []finding {
	if m == nil {
		return out
	}
	now := m.now()
	m.push(now)
	if m.slo.QueueWaitP99 > 0 {
		out = m.checkRatio(out, now, "queue_wait",
			func(s sloSample) (uint64, uint64) { return s.queueN - s.queueOK, s.queueN },
			1-m.slo.Objective,
			fmt.Sprintf("p99 queue wait over %.3gs (objective %.4g)", m.slo.QueueWaitP99, m.slo.Objective),
			&m.fastQueueBurn, &m.slowQueueBurn)
	}
	if m.slo.EventDropRate > 0 {
		out = m.checkRatio(out, now, "event_drop_rate",
			func(s sloSample) (uint64, uint64) { return s.dropped, s.emitted + s.dropped },
			m.slo.EventDropRate,
			fmt.Sprintf("event drop rate over %.4g", m.slo.EventDropRate),
			&m.fastDropBurn, &m.slowDropBurn)
	}
	if m.slo.JobTurnaround > 0 && !m.started.IsZero() && !m.finished {
		elapsed := now.Sub(m.started)
		used := elapsed.Seconds() / m.slo.JobTurnaround.Seconds()
		switch {
		case used >= 1:
			out = append(out, finding{
				Monitor: m.name(), Key: "job_turnaround", Severity: SevCritical,
				Message: fmt.Sprintf("turnaround objective missed: running %v against a %v deadline",
					elapsed.Round(time.Second), m.slo.JobTurnaround),
				Value: used, Threshold: 1,
			})
		case used >= 0.8:
			out = append(out, finding{
				Monitor: m.name(), Key: "job_turnaround", Severity: SevWarning,
				Message: fmt.Sprintf("turnaround budget %d%% spent: %v of %v",
					int(used*100), elapsed.Round(time.Second), m.slo.JobTurnaround),
				Value: used, Threshold: 0.8,
			})
		}
	}
	return out
}

// checkRatio measures one ratio objective's burn over both windows and
// appends at most one finding: critical on the fast window, warning on
// the slow one. bad/total extract the objective's cumulative counters
// from a sample delta; budget is the tolerated bad fraction.
func (m *sloMon) checkRatio(out []finding, now time.Time, key string,
	counters func(sloSample) (bad, total uint64), budget float64, what string,
	fastOut, slowOut *float64) []finding {

	cur := m.read(now)
	fast := m.burn(cur, m.at(now.Add(-m.slo.FastWindow)), counters, budget)
	slow := m.burn(cur, m.at(now.Add(-m.slo.SlowWindow)), counters, budget)
	*fastOut, *slowOut = fast, slow
	switch {
	case fast >= m.slo.FastBurn:
		out = append(out, finding{
			Monitor: m.name(), Key: key, Severity: SevCritical,
			Message: fmt.Sprintf("error budget burning ×%.1f over the last %v: %s",
				fast, m.slo.FastWindow, what),
			Value: fast, Threshold: m.slo.FastBurn,
		})
	case slow >= m.slo.SlowBurn:
		out = append(out, finding{
			Monitor: m.name(), Key: key, Severity: SevWarning,
			Message: fmt.Sprintf("error budget burning ×%.1f over the last %v: %s",
				slow, m.slo.SlowWindow, what),
			Value: slow, Threshold: m.slo.SlowBurn,
		})
	}
	return out
}

// burn computes the budget-burn multiplier between two samples: the
// bad fraction of the delta divided by the budget. No traffic in the
// window burns nothing.
func (m *sloMon) burn(cur, base sloSample, counters func(sloSample) (bad, total uint64), budget float64) float64 {
	curBad, curTotal := counters(cur)
	baseBad, baseTotal := counters(base)
	dTotal := curTotal - baseTotal
	if dTotal == 0 || budget <= 0 {
		return 0
	}
	return (float64(curBad-baseBad) / float64(dTotal)) / budget
}

// read takes a fresh counter reading.
func (m *sloMon) read(now time.Time) sloSample {
	return sloSample{
		t:       now,
		queueOK: m.hist.BelowCount(m.slo.QueueWaitP99),
		queueN:  m.hist.Count(),
		dropped: m.drop.Value(),
		emitted: m.emit.Value(),
	}
}

// push appends a reading to the window ring at the sampling granule,
// evicting nothing — the ring is sized to cover the slow window.
func (m *sloMon) push(now time.Time) {
	if !m.lastPush.IsZero() && now.Sub(m.lastPush) < granule(m.slo) {
		return
	}
	m.lastPush = now
	s := m.read(now)
	if m.sn < len(m.samples) {
		m.samples[(m.shead+m.sn)%len(m.samples)] = s
		m.sn++
		return
	}
	m.samples[m.shead] = s
	m.shead = (m.shead + 1) % len(m.samples)
}

// at returns the newest sample taken at or before t, falling back to
// the oldest available — a run younger than the window burns against
// its own start, which is the only honest baseline it has.
func (m *sloMon) at(t time.Time) sloSample {
	var best sloSample
	found := false
	for i := 0; i < m.sn; i++ {
		s := m.samples[(m.shead+i)%len(m.samples)]
		if !s.t.After(t) {
			best, found = s, true
			continue
		}
		break // ring is time-ordered; later samples are newer still
	}
	if found {
		return best
	}
	if m.sn > 0 {
		return m.samples[m.shead]
	}
	return sloSample{}
}

func (m *sloMon) detail() string {
	if m == nil {
		return ""
	}
	parts := make([]string, 0, 3)
	if m.slo.QueueWaitP99 > 0 {
		parts = append(parts, fmt.Sprintf("queue burn ×%.1f/×%.1f", m.fastQueueBurn, m.slowQueueBurn))
	}
	if m.slo.EventDropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop burn ×%.1f/×%.1f", m.fastDropBurn, m.slowDropBurn))
	}
	if m.slo.JobTurnaround > 0 {
		switch {
		case m.finished:
			parts = append(parts, "turnaround met")
		case m.started.IsZero():
			parts = append(parts, "turnaround pending")
		default:
			parts = append(parts, fmt.Sprintf("turnaround %v/%v",
				m.now().Sub(m.started).Round(time.Second), m.slo.JobTurnaround))
		}
	}
	return strings.Join(parts, "; ") + " (fast/slow windows)"
}
