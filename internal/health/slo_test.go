package health

import (
	"strings"
	"testing"
	"time"

	"a4nn/internal/obs"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("queue_wait_p99=2s,job_turnaround=10m,event_drop_rate=0.01")
	if err != nil {
		t.Fatalf("ParseSLO: %v", err)
	}
	if s.QueueWaitP99 != 2 {
		t.Errorf("QueueWaitP99 = %v, want 2", s.QueueWaitP99)
	}
	if s.JobTurnaround != 10*time.Minute {
		t.Errorf("JobTurnaround = %v, want 10m", s.JobTurnaround)
	}
	if s.EventDropRate != 0.01 {
		t.Errorf("EventDropRate = %v, want 0.01", s.EventDropRate)
	}
	// Defaults fill in.
	if s.Objective != 0.99 || s.FastWindow != time.Minute || s.SlowWindow != 10*time.Minute ||
		s.FastBurn != 14 || s.SlowBurn != 6 {
		t.Errorf("defaults not applied: %+v", s)
	}

	// Tuning keys override.
	s, err = ParseSLO("queue_wait_p99=500ms;objective=0.95;fast_window=30s;slow_window=5m;fast_burn=10;slow_burn=3")
	if err != nil {
		t.Fatalf("ParseSLO tuned: %v", err)
	}
	if s.QueueWaitP99 != 0.5 || s.Objective != 0.95 || s.FastWindow != 30*time.Second ||
		s.SlowWindow != 5*time.Minute || s.FastBurn != 10 || s.SlowBurn != 3 {
		t.Errorf("tuned spec mis-parsed: %+v", s)
	}

	for _, bad := range []string{
		"",                    // no objective
		"objective=0.99",      // tuning only, still no objective
		"queue_wait_p99=junk", // bad duration
		"queue_wait_p99=-2s",  // non-positive duration
		"event_drop_rate=1.5", // not a fraction
		"bogus_key=1",         // unknown key
		"queue_wait_p99",      // not key=value
		"queue_wait_p99=2s,fast_window=10m,slow_window=1m", // windows inverted
		"queue_wait_p99=2s,fast_burn=3,slow_burn=10",       // burns inverted
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q): want error, got nil", bad)
		}
	}
}

// sloClock is an adjustable fake clock for the monitor's now func.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLOMon(t *testing.T, s SLO) (*sloMon, *obs.Registry, *sloClock) {
	t.Helper()
	reg := obs.NewRegistry()
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	return newSLOMon(s, reg, clk.now), reg, clk
}

func TestSLOQueueWaitBurnCritical(t *testing.T) {
	m, reg, clk := newTestSLOMon(t, SLO{QueueWaitP99: 2})
	hist := reg.Histogram("a4nn_sched_queue_wait_sim_seconds", obs.SecondsBuckets)

	// Baseline sample with no traffic.
	if f := m.check(nil); len(f) != 0 {
		t.Fatalf("idle check produced findings: %+v", f)
	}
	// Every wait blows through the 2s bound: the whole fast window is
	// bad, burn = 1/0.01 = 100× ≫ the 14× page threshold.
	clk.advance(30 * time.Second)
	for i := 0; i < 20; i++ {
		hist.Observe(50)
	}
	out := m.check(nil)
	if len(out) != 1 {
		t.Fatalf("findings = %+v, want one queue_wait finding", out)
	}
	f := out[0]
	if f.Monitor != "slo" || f.Key != "queue_wait" || f.Severity != SevCritical {
		t.Errorf("finding = %+v, want critical slo/queue_wait", f)
	}
	if f.Value < 14 {
		t.Errorf("burn = %v, want ≥ fast threshold 14", f.Value)
	}
	if !strings.Contains(m.detail(), "queue burn") {
		t.Errorf("detail = %q, want queue burn", m.detail())
	}

	// Compliant traffic dilutes the window back under the thresholds.
	clk.advance(15 * time.Second)
	for i := 0; i < 5000; i++ {
		hist.Observe(0.05)
	}
	if out := m.check(nil); len(out) != 0 {
		t.Errorf("compliant traffic still alerting: %+v", out)
	}
}

func TestSLODropRateBurnWarning(t *testing.T) {
	m, reg, clk := newTestSLOMon(t, SLO{EventDropRate: 0.01})
	drop := reg.Counter("a4nn_events_dropped_total")
	emit := reg.Counter("a4nn_events_emitted_total")

	m.check(nil) // baseline
	clk.advance(30 * time.Second)
	// 10% dropped against a 1% budget: burn 10× — above the 6× slow
	// threshold, below the 14× fast one → warning, not critical.
	emit.Add(90)
	drop.Add(10)
	out := m.check(nil)
	if len(out) != 1 {
		t.Fatalf("findings = %+v, want one event_drop_rate finding", out)
	}
	if f := out[0]; f.Key != "event_drop_rate" || f.Severity != SevWarning {
		t.Errorf("finding = %+v, want warning slo/event_drop_rate", f)
	}

	// 100% dropped pages critical on the fast window.
	clk.advance(15 * time.Second)
	drop.Add(500)
	out = m.check(nil)
	if len(out) != 1 || out[0].Severity != SevCritical {
		t.Fatalf("findings = %+v, want one critical", out)
	}
}

func TestSLOTurnaround(t *testing.T) {
	m, _, clk := newTestSLOMon(t, SLO{JobTurnaround: 10 * time.Minute})

	// No run start yet: nothing to measure.
	if out := m.check(nil); len(out) != 0 {
		t.Fatalf("pre-start findings: %+v", out)
	}
	m.observe(obs.Event{Type: obs.EventRunStart})
	clk.advance(5 * time.Minute)
	if out := m.check(nil); len(out) != 0 {
		t.Fatalf("halfway findings: %+v", out)
	}
	clk.advance(4 * time.Minute) // 9m of 10m: 90% of budget spent
	out := m.check(nil)
	if len(out) != 1 || out[0].Key != "job_turnaround" || out[0].Severity != SevWarning {
		t.Fatalf("findings = %+v, want turnaround warning", out)
	}
	clk.advance(2 * time.Minute) // 11m: deadline missed
	out = m.check(nil)
	if len(out) != 1 || out[0].Severity != SevCritical {
		t.Fatalf("findings = %+v, want turnaround critical", out)
	}
	// The run finishing clears the objective (the miss already alerted;
	// a finished job must not page forever).
	m.observe(obs.Event{Type: obs.EventRunEnd})
	if out := m.check(nil); len(out) != 0 {
		t.Fatalf("post-finish findings: %+v", out)
	}
	if !strings.Contains(m.detail(), "turnaround met") {
		t.Errorf("detail = %q, want turnaround met", m.detail())
	}
}

// TestSLOEngineIntegration runs the monitor inside a real engine: the
// burn-rate finding must surface as an ordinary managed alert.
func TestSLOEngineIntegration(t *testing.T) {
	o := obs.NewObserver()
	cfg := DefaultConfig()
	cfg.SLO = &SLO{EventDropRate: 0.01}
	eng, err := New(cfg, o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	found := false
	for _, ms := range eng.Report().Monitors {
		if ms.Name == "slo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("slo monitor missing from report: %+v", eng.Report().Monitors)
	}

	reg := o.Registry()
	reg.Counter("a4nn_events_emitted_total").Add(1)
	eng.Check() // baseline sample
	// Locate the monitor to steer its clock past the push granule.
	var mon *sloMon
	for _, m := range eng.monitors {
		if sm, ok := m.(*sloMon); ok {
			mon = sm
		}
	}
	if mon == nil {
		t.Fatal("no *sloMon in engine monitors")
	}
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	mon.now = clk.now
	mon.lastPush = time.Time{}
	mon.sn, mon.shead = 0, 0
	eng.Check()
	clk.advance(time.Minute)
	reg.Counter("a4nn_events_dropped_total").Add(100)
	eng.Check()
	alerts := eng.ActiveAlerts()
	if len(alerts) == 0 {
		t.Fatal("burned budget raised no alert")
	}
	ok := false
	for _, a := range alerts {
		if a.Monitor == "slo" && a.Severity == SevCritical {
			ok = true
		}
	}
	if !ok {
		t.Errorf("alerts = %+v, want critical slo alert", alerts)
	}
}

// BenchmarkDisabledSLO proves the disabled SLO path allocates nothing:
// a run without -slo pays one nil check per observe and per check
// cycle. Gated at 0 allocs/op by scripts/benchgate.sh.
func BenchmarkDisabledSLO(b *testing.B) {
	var m *sloMon
	ev := obs.Event{Type: obs.EventEpoch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.observe(ev)
		if out := m.check(nil); out != nil {
			b.Fatal("nil monitor produced findings")
		}
	}
}
