// Package jobs promotes a4nn-serve from a results viewer into a
// long-running search service: a job manager that accepts search
// submissions, queues and runs many concurrent searches over one shared
// device fleet (sched.Fleet, the paper's Ray-style FIFO pool
// generalised to weighted fair-share scheduling with per-job priorities
// and preemption at generation boundaries), and gives every job an
// isolated commons directory — its own record trails, event journal,
// alerts log, and checkpoints — so crash-resume, corruption recovery,
// and the in-situ health engine all operate per job.
//
// A job's search runs through exactly the same core workflow as a
// single `a4nn` invocation with the same seed and shape; the fleet gate
// only decides *when* each generation runs, never *how*, so a job's
// Pareto front is byte-identical to the same-seed single-job run.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"a4nn/internal/commons"
	"a4nn/internal/core"
	"a4nn/internal/health"
	"a4nn/internal/obs"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
	"a4nn/internal/simtrain"
	"a4nn/internal/tsdb"
	"a4nn/internal/xfel"
)

// State is one job's position in its lifecycle:
//
//	queued → running ⇄ paused → completed | failed | canceled
//
// A killed service leaves non-terminal states behind in job.json;
// Recover resubmits those with crash-resume, so queued/running/paused
// also mean "interrupted, will continue on restart".
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// Config is the JSON body of POST /api/jobs: one search submission.
// Zero fields take the defaults in parentheses.
type Config struct {
	// ID names the job and its commons directory; generated when empty.
	ID string `json:"id,omitempty"`
	// Beam is the XFEL beam intensity: low, medium, or high (medium).
	Beam string `json:"beam,omitempty"`
	// Devices is how many device slots each generation needs (1). The
	// job's results are those of a -devices N single run.
	Devices int `json:"devices,omitempty"`
	// Population / Offspring / Generations / Epochs shape the search
	// (10 / 10 / 10 / 25, the paper's Table 2).
	Population  int `json:"population,omitempty"`
	Offspring   int `json:"offspring,omitempty"`
	Generations int `json:"generations,omitempty"`
	Epochs      int `json:"epochs,omitempty"`
	// Seed is the search seed (1).
	Seed int64 `json:"seed,omitempty"`
	// Standalone disables the prediction engine (the NSGA-Net baseline).
	Standalone bool `json:"standalone,omitempty"`
	// Priority is the fair-share weight, 1 (lowest) to 99 (10). A job
	// with twice the priority wins generation slots twice as often under
	// contention; preemption is at generation boundaries.
	Priority int `json:"priority,omitempty"`
}

var jobIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.Beam == "" {
		c.Beam = "medium"
	}
	if c.Devices == 0 {
		c.Devices = 1
	}
	if c.Population == 0 {
		c.Population = 10
	}
	if c.Offspring == 0 {
		c.Offspring = 10
	}
	if c.Generations == 0 {
		c.Generations = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Priority == 0 {
		c.Priority = 10
	}
}

// Validate reports the first problem with a normalized config, or nil.
func (c Config) Validate() error {
	if c.ID != "" && !jobIDPattern.MatchString(c.ID) {
		return fmt.Errorf("jobs: id %q must match %s", c.ID, jobIDPattern)
	}
	if _, err := xfel.ParseBeam(c.Beam); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if c.Priority < 1 || c.Priority > 99 {
		return fmt.Errorf("jobs: priority %d outside [1,99]", c.Priority)
	}
	if c.Devices < 1 {
		return fmt.Errorf("jobs: devices %d < 1", c.Devices)
	}
	return nil
}

// BuildSearchConfig assembles the core workflow configuration a job
// runs — exactly the one `cmd/a4nn` builds for the same flags, which is
// what makes job results comparable (byte-identical, single device) to
// single-job CLI runs. Store, Obs, Gate, Resume, and Checkpoints are
// the manager's to set.
func BuildSearchConfig(jc Config) (core.Config, error) {
	beam, err := xfel.ParseBeam(jc.Beam)
	if err != nil {
		return core.Config{}, err
	}
	trainer, err := simtrain.ForBeam(beam)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(trainer)
	cfg.NAS.PopulationSize = jc.Population
	cfg.NAS.Offspring = jc.Offspring
	cfg.NAS.Generations = jc.Generations
	cfg.NAS.Seed = jc.Seed
	cfg.MaxEpochs = jc.Epochs
	cfg.Devices = jc.Devices
	cfg.Beam = beam.String()
	if jc.Standalone {
		cfg.Engine = nil
	} else if jc.Epochs != 25 {
		engineCfg := predict.DefaultConfig()
		engineCfg.EPred = jc.Epochs
		cfg.Engine = &engineCfg
	}
	return cfg, nil
}

// Progress is a job's live counters, updated as models finish.
type Progress struct {
	// GenerationsDone counts generation barriers reached;
	// GenerationsTotal is the configured generation count.
	GenerationsDone  int `json:"generations_done"`
	GenerationsTotal int `json:"generations_total"`
	// ModelsDone / ModelsTotal count evaluated networks.
	ModelsDone  int `json:"models_done"`
	ModelsTotal int `json:"models_total"`
	// EpochsTrained sums training epochs across finished models.
	EpochsTrained int `json:"epochs_trained"`
	// BestFitness is the best validation accuracy seen so far.
	BestFitness float64 `json:"best_fitness"`
}

// Status is one job's externally visible state (GET /api/jobs/{id}).
type Status struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Config   Config    `json:"config"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Progress Progress  `json:"progress"`
	Resumes  int       `json:"resumes,omitempty"` // times crash-recovered
}

// Job is one managed search.
type Job struct {
	mu       sync.Mutex
	id       string
	cfg      Config
	state    State
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	progress Progress
	resumes  int

	dir      string
	cancel   context.CancelFunc
	observer *obs.Observer
	health   *health.Engine
	scope    *obs.Registry // per-job metrics scope; survives Retire
	recorder *obs.Recorder
	history  *tsdb.DB // per-job series store; nil while not running
	done     chan struct{}
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:       j.id,
		State:    j.state,
		Error:    j.errMsg,
		Config:   j.cfg,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Progress: j.progress,
		Resumes:  j.resumes,
	}
}

// Options configures a Manager.
type Options struct {
	// Root is the directory that holds one commons subdirectory per job.
	Root string
	// FleetSlots is the shared device fleet's capacity (default 4).
	FleetSlots int
	// Throughput is the per-device FLOPs/s (0: sched default).
	Throughput float64
	// HealthConfig tunes each job's in-situ health engine; the zero
	// value uses the defaults.
	HealthConfig health.Config
	// SLO, when non-nil, gives every job's health engine the
	// service-level objectives (per-job error budgets and burn-rate
	// alerts).
	SLO *health.SLO
	// Obs is the service-level observer. When set, every job's metrics
	// registry becomes a child scope of its registry, so per-job series
	// roll up into the service /metrics labelled `job="id"`. When nil
	// the manager keeps a private parent registry, and the roll-up is
	// reachable through Manager.Registry.
	Obs *obs.Observer
	// History, when positive, samples every job's metrics scope into a
	// series store (tsdb.SeriesFile) in the job's own directory at this
	// interval, feeding /api/jobs/{id}/query and the job dashboard's
	// chart backfill. The store flushes and closes on terminal states.
	History time.Duration
}

// Manager owns the job table, the shared fleet, and one goroutine per
// running search.
type Manager struct {
	root       string
	fleet      *sched.Fleet
	throughput float64
	healthCfg  health.Config
	slo        *health.SLO
	history    time.Duration
	reg        *obs.Registry // parent of every job's metrics scope

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	draining bool
	wg       sync.WaitGroup
}

// NewManager creates the job service rooted at opts.Root (created if
// missing).
func NewManager(opts Options) (*Manager, error) {
	if opts.Root == "" {
		return nil, fmt.Errorf("jobs: Options.Root is required")
	}
	if opts.FleetSlots == 0 {
		opts.FleetSlots = 4
	}
	fleet, err := sched.NewFleet(opts.FleetSlots)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Root, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	reg := opts.Obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Manager{
		root:       opts.Root,
		fleet:      fleet,
		throughput: opts.Throughput,
		healthCfg:  opts.HealthConfig,
		slo:        opts.SLO,
		history:    opts.History,
		reg:        reg,
		jobs:       make(map[string]*Job),
	}, nil
}

// Registry returns the parent registry job scopes roll up into.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Fleet exposes the shared device arbiter (for /api/fleet).
func (m *Manager) Fleet() *sched.Fleet { return m.fleet }

// Root returns the jobs root directory.
func (m *Manager) Root() string { return m.root }

// ErrDraining is returned by Submit once the manager is shutting down.
var ErrDraining = fmt.Errorf("jobs: manager is draining, not accepting submissions")

// ErrDuplicateID is returned by Submit when the id is already taken.
var ErrDuplicateID = fmt.Errorf("jobs: job id already exists")

// ErrUnknownJob is returned for operations on ids the manager never saw.
var ErrUnknownJob = fmt.Errorf("jobs: unknown job")

// Submit validates, persists, and starts one job. The search runs in
// its own goroutine, gated on the shared fleet; Submit returns as soon
// as the job is queued.
func (m *Manager) Submit(jc Config) (Status, error) {
	return m.submit(jc, false)
}

func (m *Manager) submit(jc Config, resume bool) (Status, error) {
	jc.Normalize()
	if err := jc.Validate(); err != nil {
		return Status{}, err
	}
	if jc.Devices > m.fleet.Capacity() {
		return Status{}, fmt.Errorf("jobs: job needs %d devices, fleet has %d", jc.Devices, m.fleet.Capacity())
	}
	if jc.ID == "" {
		jc.ID = newJobID()
	}

	job := &Job{
		id:      jc.ID,
		cfg:     jc,
		state:   StateQueued,
		created: time.Now().UTC(),
		dir:     filepath.Join(m.root, jc.ID),
		done:    make(chan struct{}),
	}
	job.progress.GenerationsTotal = jc.Generations
	job.progress.ModelsTotal = jc.Population + jc.Offspring*(jc.Generations-1)

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	if _, ok := m.jobs[jc.ID]; ok {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrDuplicateID, jc.ID)
	}
	m.jobs[jc.ID] = job
	m.order = append(m.order, jc.ID)
	m.wg.Add(1)
	m.mu.Unlock()

	if err := m.fleet.Register(jc.ID, float64(jc.Priority)); err != nil {
		m.forget(jc.ID)
		return Status{}, err
	}
	if err := os.MkdirAll(job.dir, 0o755); err != nil {
		m.fleet.Unregister(jc.ID)
		m.forget(jc.ID)
		return Status{}, fmt.Errorf("jobs: %w", err)
	}
	if err := writeManifest(job.dir, manifestOf(job.Status())); err != nil {
		m.fleet.Unregister(jc.ID)
		m.forget(jc.ID)
		return Status{}, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	job.cancel = cancel
	go m.run(ctx, job, resume)
	return job.Status(), nil
}

// forget removes a job that failed to launch. m.wg was Added for it.
func (m *Manager) forget(id string) {
	m.mu.Lock()
	delete(m.jobs, id)
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	m.wg.Done()
}

// Recover scans the root for job directories whose manifest is not
// terminal — searches a killed service left behind — and resubmits
// them with crash-resume, so restarting `a4nn-serve -jobs -resume`
// continues every interrupted search from its last durable state.
// Returns the recovered job IDs.
func (m *Manager) Recover() ([]string, error) {
	manifests, err := ReadManifests(m.root)
	if err != nil {
		return nil, err
	}
	var recovered []string
	for _, man := range manifests {
		if man.State.Terminal() {
			continue
		}
		st, err := m.submit(man.Config, true)
		if err != nil {
			return recovered, fmt.Errorf("jobs: recover %s: %w", man.Config.ID, err)
		}
		m.mu.Lock()
		if j := m.jobs[st.ID]; j != nil {
			j.mu.Lock()
			j.resumes = man.Resumes + 1
			j.mu.Unlock()
		}
		m.mu.Unlock()
		if man.State == StatePaused {
			m.Pause(st.ID) // a paused job stays paused across restarts
		}
		recovered = append(recovered, st.ID)
	}
	return recovered, nil
}

// run executes one job's search to a terminal state.
func (m *Manager) run(ctx context.Context, job *Job, resume bool) {
	defer m.wg.Done()
	defer close(job.done)
	defer m.fleet.Unregister(job.id)

	err := m.runSearch(ctx, job, resume)

	job.mu.Lock()
	job.finished = time.Now().UTC()
	switch {
	case err == nil:
		job.state = StateCompleted
		job.errMsg = ""
	case ctx.Err() != nil && m.isDraining():
		// Service shutdown, not a user action: leave the persisted state
		// non-terminal so Recover resumes the search on restart.
		job.mu.Unlock()
		return
	case ctx.Err() != nil:
		job.state = StateCanceled
		job.errMsg = context.Cause(ctx).Error()
	default:
		job.state = StateFailed
		job.errMsg = err.Error()
	}
	job.mu.Unlock()
	writeManifest(job.dir, manifestOf(job.Status()))
}

// runSearch builds the per-job isolated commons, observer, and health
// engine, then runs the gated search.
func (m *Manager) runSearch(ctx context.Context, job *Job, resume bool) error {
	cfg, err := BuildSearchConfig(job.cfg)
	if err != nil {
		return err
	}
	store, err := commons.Open(job.dir)
	if err != nil {
		return err
	}

	// Per-job observability: the journal, metrics, spans, and alerts all
	// live inside the job's own directory, so the SSE stream, dashboard,
	// and health endpoints are namespaced by construction. The metrics
	// registry is a child scope of the service registry: the job's
	// series roll up into the shared /metrics as `...{job="id"}` while
	// the job is live, and Retire below removes them when it is not, so
	// service cardinality is bounded by concurrent jobs.
	scope := m.reg.Scope("job", job.id)
	observer := obs.NewObserverWith(scope)
	if err := observer.Journal().OpenFile(filepath.Join(job.dir, obs.EventsFile)); err != nil {
		m.reg.Retire("job", job.id)
		return err
	}
	defer observer.Journal().Close()
	defer m.reg.Retire("job", job.id)
	// Evict any SSE followers still attached to the job's broker —
	// terminal jobs must not pin subscriber goroutines.
	defer observer.Journal().Broker().CloseAll()

	// The flight recorder is the job's black box: armed for the whole
	// search, it turns a chaos kill, a fatal error, or an unresolved
	// critical shutdown into a postmortem bundle under the job's own
	// directory.
	recorder := obs.NewRecorder(obs.RecorderConfig{
		Dir:          job.dir,
		Registry:     scope,
		Tracer:       observer.Tracer(),
		ManifestPath: filepath.Join(job.dir, ManifestFile),
	})
	observer.AttachRecorder(recorder)
	recorder.Arm()
	recorder.Start(0)
	defer recorder.Close()

	// Per-job run history: sample the job's metrics scope into a series
	// store inside the job directory, so /api/jobs/{id}/query can chart
	// it live and OpenRead can serve it after the job is terminal. The
	// sampler closes (taking one final sample and flushing) before the
	// store, and both before the scope retires above.
	var hdb *tsdb.DB
	if m.history > 0 {
		hdb, err = tsdb.Open(job.dir)
		if err != nil {
			return err
		}
		defer hdb.Close()
		sampler := tsdb.NewSampler(hdb, scope, m.history)
		sampler.Start()
		defer sampler.Close()
		defer func() {
			job.mu.Lock()
			job.history = nil
			job.mu.Unlock()
		}()
	}

	healthCfg := m.healthCfg
	healthCfg.DiskPath = job.dir
	if m.slo != nil && healthCfg.SLO == nil {
		healthCfg.SLO = m.slo
	}
	eng, err := health.New(healthCfg, observer)
	if err != nil {
		return err
	}
	if err := eng.OpenAlertsFile(filepath.Join(job.dir, health.AlertsFile)); err != nil {
		return err
	}
	eng.Start()
	// Drain the engine before the journal closes so final alert
	// transitions land in the job's events.jsonl and alerts.jsonl.
	defer eng.Close()

	job.mu.Lock()
	job.observer = observer
	job.health = eng
	job.scope = scope
	job.recorder = recorder
	job.history = hdb
	job.mu.Unlock()

	cfg.Store = store
	cfg.Throughput = m.throughput
	cfg.Checkpoints = true
	cfg.Resume = resume
	cfg.Obs = observer
	cfg.Gate = func(gctx context.Context, gen, tasks int) (func(), error) {
		release, err := m.fleet.Acquire(gctx, job.id, job.cfg.Devices)
		if err != nil {
			return nil, err
		}
		job.mu.Lock()
		if job.state == StateQueued {
			job.state = StateRunning
			job.started = time.Now().UTC()
		}
		job.mu.Unlock()
		return func() {
			release()
			job.mu.Lock()
			if gen+1 > job.progress.GenerationsDone {
				job.progress.GenerationsDone = gen + 1
			}
			job.mu.Unlock()
		}, nil
	}
	cfg.OnModel = func(mr *core.ModelResult) {
		job.mu.Lock()
		job.progress.ModelsDone++
		job.progress.EpochsTrained += mr.Record.EpochsTrained()
		if mr.Fitness > job.progress.BestFitness {
			job.progress.BestFitness = mr.Fitness
		}
		job.mu.Unlock()
	}

	res, err := core.RunCtx(ctx, cfg)
	if err != nil {
		// A genuine failure (not a cancel/drain) is a fatal path for this
		// job: leave a black-box bundle next to the records it died on.
		if ctx.Err() == nil {
			if _, derr := recorder.Dump(fmt.Sprintf("job %s failed: %v", job.id, err)); derr != nil {
				fmt.Fprintln(os.Stderr, "jobs: postmortem dump failed:", derr)
			}
		}
		return err
	}
	// Flush spans.jsonl and metrics.json next to the records so
	// `a4nn-analyze telemetry` works per job.
	if err := observer.FlushTo(job.dir); err != nil {
		return err
	}
	job.mu.Lock()
	job.progress.ModelsDone = len(res.Models)
	job.progress.GenerationsDone = job.cfg.Generations
	job.mu.Unlock()
	return nil
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// get looks a job up.
func (m *Manager) get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// Get returns one job's status.
func (m *Manager) Get(id string) (Status, error) {
	j, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	return j.Status(), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// ErrTerminal is returned for lifecycle operations on finished jobs.
var ErrTerminal = fmt.Errorf("jobs: job already finished")

// Cancel stops a job: its context cancels, in-flight training stops
// between epochs, and the state becomes canceled.
func (m *Manager) Cancel(id string) error {
	j, err := m.get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	cancel := j.cancel
	j.mu.Unlock()
	// A paused job blocks inside the fleet gate; resuming lets the
	// cancellation propagate immediately.
	m.fleet.Resume(id)
	cancel()
	return nil
}

// Pause stops granting the job new generations; the one in flight
// finishes first (preemption at generation boundaries).
func (m *Manager) Pause(id string) error {
	j, err := m.get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	j.state = StatePaused
	j.mu.Unlock()
	if err := m.fleet.Pause(id); err != nil {
		return err
	}
	writeManifest(j.dir, manifestOf(j.Status()))
	return nil
}

// ResumeJob re-enables a paused job.
func (m *Manager) ResumeJob(id string) error {
	j, err := m.get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	if j.state == StatePaused {
		j.state = StateRunning
		if j.started.IsZero() {
			j.state = StateQueued
		}
	}
	j.mu.Unlock()
	if err := m.fleet.Resume(id); err != nil {
		return err
	}
	writeManifest(j.dir, manifestOf(j.Status()))
	return nil
}

// SetPriority changes a job's fair-share weight at its next grant.
func (m *Manager) SetPriority(id string, priority int) error {
	if priority < 1 || priority > 99 {
		return fmt.Errorf("jobs: priority %d outside [1,99]", priority)
	}
	j, err := m.get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.cfg.Priority = priority
	j.mu.Unlock()
	return m.fleet.SetWeight(id, float64(priority))
}

// Journal returns a job's live event journal (nil until the search has
// started its observer), for the namespaced SSE endpoint.
func (m *Manager) Journal(id string) (*obs.Journal, error) {
	j, err := m.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.observer == nil {
		return nil, nil
	}
	return j.observer.Journal(), nil
}

// JobRegistry returns a job's metrics scope (nil until its search has
// started its observer), for the namespaced metrics endpoint. A
// terminal job keeps its scope even after the shared roll-up retires
// it, so its final counters stay queryable.
func (m *Manager) JobRegistry(id string) (*obs.Registry, error) {
	j, err := m.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.scope, nil
}

// JobHistory returns a job's run-history store for the namespaced
// range-query endpoints. While the job runs this is its live sampled
// store; once terminal the closed series file is reopened read-only per
// call, so final history stays queryable. Nil (without error) means no
// history exists for the job — either the manager runs with History
// disabled or nothing was sampled yet.
func (m *Manager) JobHistory(id string) (*tsdb.DB, error) {
	j, err := m.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	db := j.history
	dir := j.dir
	j.mu.Unlock()
	if db != nil {
		return db, nil
	}
	if rdb, err := tsdb.OpenRead(dir); err == nil {
		return rdb, nil
	}
	return nil, nil
}

// HealthEngine returns a job's health engine (nil until started), for
// the namespaced /healthz and alerts endpoints.
func (m *Manager) HealthEngine(id string) (*health.Engine, error) {
	j, err := m.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.health, nil
}

// Dir returns a job's commons directory.
func (m *Manager) Dir(id string) (string, error) {
	j, err := m.get(id)
	if err != nil {
		return "", err
	}
	return j.dir, nil
}

// Drain stops accepting new submissions. Running jobs continue.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Draining reports whether Drain (or Close) has been called.
func (m *Manager) Draining() bool { return m.isDraining() }

// Close drains, cancels every non-terminal job, and waits (bounded by
// ctx) for their goroutines to exit. Interrupted jobs keep their
// non-terminal manifests, so a later Recover continues them — the
// draining-restart story.
func (m *Manager) Close(ctx context.Context) error {
	m.Drain()
	m.mu.Lock()
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Terminal() && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	m.fleet.Close()
	for _, c := range cancels {
		c()
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
	}
}

// Wait blocks until the job reaches a terminal state (tests and CLIs).
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		return j.Status(), ctx.Err()
	}
}

// newJobID draws a random 8-hex-digit job name.
func newJobID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("job-%d", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}

// SortStatuses orders statuses: active first, then by creation time.
func SortStatuses(sts []Status) {
	sort.SliceStable(sts, func(a, b int) bool {
		at, bt := sts[a].State.Terminal(), sts[b].State.Terminal()
		if at != bt {
			return !at
		}
		return sts[a].Created.Before(sts[b].Created)
	})
}
