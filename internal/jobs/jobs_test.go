package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"a4nn/internal/commons"
	"a4nn/internal/core"
	"a4nn/internal/obs"
	"a4nn/internal/tsdb"
)

// smallJob is a fast search: 6+6×2 = 18 models of ≤10 epochs.
func smallJob(id string, seed int64) Config {
	return Config{
		ID:          id,
		Beam:        "medium",
		Devices:     1,
		Population:  6,
		Offspring:   6,
		Generations: 3,
		Epochs:      10,
		Seed:        seed,
	}
}

func newTestManager(t *testing.T, slots int) *Manager {
	t.Helper()
	m, err := NewManager(Options{Root: t.TempDir(), FleetSlots: slots})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s)", id, err, st.State)
	}
	return st
}

func TestManagerSubmitAndComplete(t *testing.T) {
	m := newTestManager(t, 2)
	st, err := m.Submit(smallJob("alpha", 42))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("state after submit = %s, want queued", st.State)
	}
	if st.Progress.ModelsTotal != 18 || st.Progress.GenerationsTotal != 3 {
		t.Fatalf("totals = %+v", st.Progress)
	}

	st = waitTerminal(t, m, "alpha")
	if st.State != StateCompleted {
		t.Fatalf("state = %s (%s), want completed", st.State, st.Error)
	}
	if st.Progress.ModelsDone != 18 || st.Progress.GenerationsDone != 3 {
		t.Fatalf("progress = %+v", st.Progress)
	}
	if st.Progress.BestFitness <= 0 || st.Progress.EpochsTrained <= 0 {
		t.Fatalf("counters not populated: %+v", st.Progress)
	}

	// The job directory is a full isolated commons: manifest, records,
	// journal, alerts, telemetry.
	dir, err := m.Dir("alpha")
	if err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.State != StateCompleted {
		t.Fatalf("manifest state = %s", man.State)
	}
	store, err := commons.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 18 {
		t.Fatalf("records = %d, want 18", len(ids))
	}
	events, err := obs.ReadEvents(filepath.Join(dir, obs.EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no journal events")
	}
	for _, name := range []string{"alerts.jsonl", "spans.jsonl", "metrics.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

// canonicalRecords marshals a store's records with wall-clock fields
// zeroed, for byte-level comparison across runs.
func canonicalRecords(t *testing.T, dir string) map[string]string {
	t.Helper()
	store, err := commons.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := store.All()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(recs))
	for _, r := range recs {
		r.CreatedAt = time.Time{}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.ID] = string(data)
	}
	return out
}

// TestManagerConcurrentJobsMatchSoloRuns is the service's core
// contract: two searches sharing one fleet produce records
// byte-identical (modulo timestamps) to the same-seed solo runs.
func TestManagerConcurrentJobsMatchSoloRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := newTestManager(t, 2)
	for _, jc := range []Config{smallJob("a", 42), smallJob("b", 43)} {
		if _, err := m.Submit(jc); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b"} {
		if st := waitTerminal(t, m, id); st.State != StateCompleted {
			t.Fatalf("%s: state = %s (%s)", id, st.State, st.Error)
		}
	}

	for _, tc := range []struct {
		id   string
		seed int64
	}{{"a", 42}, {"b", 43}} {
		cfg, err := BuildSearchConfig(smallJob("solo", tc.seed))
		if err != nil {
			t.Fatal(err)
		}
		soloDir := t.TempDir()
		store, err := commons.Open(soloDir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
		cfg.Obs = obs.NewObserver()
		if _, err := core.RunCtx(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}

		jobDir, err := m.Dir(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		got, want := canonicalRecords(t, jobDir), canonicalRecords(t, soloDir)
		if len(got) != len(want) {
			t.Fatalf("job %s: %d records, solo run has %d", tc.id, len(got), len(want))
		}
		for id, w := range want {
			if got[id] != w {
				t.Errorf("job %s record %s diverges from solo run:\n got %s\nwant %s", tc.id, id, got[id], w)
			}
		}
	}
}

func TestManagerCancel(t *testing.T) {
	m := newTestManager(t, 1)
	jc := smallJob("doomed", 7)
	jc.Generations = 50 // long enough to cancel mid-flight
	if _, err := m.Submit(jc); err != nil {
		t.Fatal(err)
	}
	// Let it get going, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get("doomed")
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.ModelsDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := m.Cancel("doomed"); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, "doomed")
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	dir, _ := m.Dir("doomed")
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.State != StateCanceled {
		t.Fatalf("manifest state = %s, want canceled", man.State)
	}
	if err := m.Cancel("doomed"); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
}

func TestManagerPauseResume(t *testing.T) {
	m := newTestManager(t, 1)
	// Occupy the whole fleet so the submitted job blocks at its gate.
	if err := m.Fleet().Register("holder", 1); err != nil {
		t.Fatal(err)
	}
	release, err := m.Fleet().Acquire(context.Background(), "holder", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(smallJob("pausey", 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Pause("pausey"); err != nil {
		t.Fatal(err)
	}
	release()
	m.Fleet().Unregister("holder")

	// Paused at the gate: no progress even with the fleet free.
	time.Sleep(100 * time.Millisecond)
	st, err := m.Get("pausey")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePaused || st.Progress.ModelsDone != 0 {
		t.Fatalf("paused job advanced: %s %+v", st.State, st.Progress)
	}

	if err := m.ResumeJob("pausey"); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, "pausey"); st.State != StateCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
}

func TestManagerSubmitErrors(t *testing.T) {
	m := newTestManager(t, 2)
	if _, err := m.Submit(smallJob("dup", 1)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { waitTerminal(t, m, "dup") })

	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"duplicate id", smallJob("dup", 2), "already exists"},
		{"bad beam", Config{Beam: "blinding"}, "beam"},
		{"bad id", Config{ID: "../escape"}, "must match"},
		{"bad priority", Config{Priority: 100}, "priority"},
		{"too wide", Config{Devices: 3}, "fleet has 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Submit(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}

	m.Drain()
	if _, err := m.Submit(smallJob("late", 3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	if !m.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

func TestManagerUnknownJobOps(t *testing.T) {
	m := newTestManager(t, 1)
	for name, op := range map[string]func() error{
		"cancel": func() error { return m.Cancel("ghost") },
		"pause":  func() error { return m.Pause("ghost") },
		"resume": func() error { return m.ResumeJob("ghost") },
		"get":    func() error { _, err := m.Get("ghost"); return err },
	} {
		if err := op(); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("%s ghost: %v, want ErrUnknownJob", name, err)
		}
	}
}

// TestManagerDrainAndRecover is the restart story: Close mid-search
// leaves a non-terminal manifest; a fresh manager's Recover resumes the
// job to completion with the same records a solo run produces.
func TestManagerDrainAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	root := t.TempDir()
	m, err := NewManager(Options{Root: root, FleetSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(smallJob("phoenix", 42)); err != nil {
		t.Fatal(err)
	}
	// Interrupt once some work has landed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get("phoenix")
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.ModelsDone >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}

	man, err := ReadManifest(filepath.Join(root, "phoenix"))
	if err != nil {
		t.Fatal(err)
	}
	if man.State.Terminal() {
		t.Fatalf("manifest state after drain = %s, want non-terminal", man.State)
	}

	m2, err := NewManager(Options{Root: root, FleetSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	recovered, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "phoenix" {
		t.Fatalf("recovered = %v", recovered)
	}
	st := waitTerminal(t, m2, "phoenix")
	if st.State != StateCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", st.Resumes)
	}

	// Resumed results match a clean solo run.
	cfg, err := BuildSearchConfig(smallJob("solo", 42))
	if err != nil {
		t.Fatal(err)
	}
	soloDir := t.TempDir()
	store, err := commons.Open(soloDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	cfg.Obs = obs.NewObserver()
	if _, err := core.RunCtx(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	got, want := canonicalRecords(t, filepath.Join(root, "phoenix")), canonicalRecords(t, soloDir)
	if len(got) != len(want) {
		t.Fatalf("recovered run has %d records, solo %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("record %s diverges after resume", id)
		}
	}
}

func TestManagerListAndSort(t *testing.T) {
	m := newTestManager(t, 2)
	for _, id := range []string{"one", "two"} {
		if _, err := m.Submit(smallJob(id, 11)); err != nil {
			t.Fatal(err)
		}
	}
	sts := m.List()
	if len(sts) != 2 || sts[0].ID != "one" || sts[1].ID != "two" {
		t.Fatalf("list = %+v", sts)
	}
	waitTerminal(t, m, "one")
	waitTerminal(t, m, "two")

	sts = m.List()
	SortStatuses(sts)
	if len(sts) != 2 {
		t.Fatalf("list = %d entries", len(sts))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "j1")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	in := Manifest{
		Config:  smallJob("j1", 9),
		State:   StateRunning,
		Created: time.Now().UTC().Truncate(time.Second),
		Resumes: 2,
	}
	if err := writeManifest(jobDir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadManifest(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	if out.State != in.State || out.Resumes != 2 || out.Config.ID != "j1" || !out.Created.Equal(in.Created) {
		t.Fatalf("round trip: %+v", out)
	}

	// A directory without a manifest is skipped, not an error.
	if err := os.MkdirAll(filepath.Join(dir, "partial"), 0o755); err != nil {
		t.Fatal(err)
	}
	all, err := ReadManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Config.ID != "j1" {
		t.Fatalf("manifests = %+v", all)
	}

	// A missing root reads as empty.
	none, err := ReadManifests(filepath.Join(dir, "nope"))
	if err != nil || none != nil {
		t.Fatalf("missing root: %v %v", none, err)
	}
}

func TestConfigNormalizeValidate(t *testing.T) {
	var c Config
	c.Normalize()
	if c.Beam != "medium" || c.Devices != 1 || c.Population != 10 || c.Offspring != 10 ||
		c.Generations != 10 || c.Epochs != 25 || c.Seed != 1 || c.Priority != 10 {
		t.Fatalf("defaults: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestManagerObservabilityRelease is the leak test for the per-job
// observability state: submitting and canceling a hundred jobs must
// return the shared registry (scoped series), the crash-dump set
// (recorder rings), the SSE broker (subscribers), the run-history
// store count (open series files and sampler goroutines), and the
// goroutine count to their baselines. This is the cardinality bound
// the shared /metrics endpoint documents: series scale with *live*
// jobs, not with the service's lifetime submission count.
func TestManagerObservabilityRelease(t *testing.T) {
	m, err := NewManager(Options{
		Root:       t.TempDir(),
		FleetSlots: 4,
		// Fast sampling so even canceled jobs persist history blocks.
		History: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	baselineSeries := m.Registry().NumSeries()
	baselineDBs := tsdb.OpenDBs()
	runtime.GC()
	baselineGoroutines := runtime.NumGoroutine()

	const n = 100
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		jc := smallJob(fmt.Sprintf("leak-%03d", i), int64(i+1))
		jc.Generations = 50 // long enough that cancellation wins the race
		if _, err := m.Submit(jc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jc.ID)
	}

	// Attach an SSE-style follower to one live journal so the sweep has
	// a subscriber to evict.
	var sub *obs.Subscriber
	deadline := time.Now().Add(30 * time.Second)
	for sub == nil {
		for _, id := range ids {
			if jn, err := m.Journal(id); err == nil && jn != nil {
				sub = jn.Subscribe(16)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no job journal ever appeared")
		}
		if sub == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}

	for _, id := range ids {
		if err := m.Cancel(id); err != nil && !errors.Is(err, ErrTerminal) {
			t.Fatalf("cancel %s: %v", id, err)
		}
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}

	// The follower's channel must close — terminal jobs pin no
	// subscriber goroutines.
	closeDeadline := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-sub.C():
			open = ok
		case <-closeDeadline:
			t.Fatal("subscriber channel never closed after job teardown")
		}
	}

	if got := m.Registry().Scopes(); got != 0 {
		t.Errorf("live scopes after teardown = %d, want 0", got)
	}
	if got := m.Registry().NumSeries(); got != baselineSeries {
		t.Errorf("registry series = %d, want baseline %d", got, baselineSeries)
	}
	if got := obs.ArmedRecorders(); got != 0 {
		t.Errorf("armed recorders after teardown = %d, want 0", got)
	}
	// Every per-job history store must be flushed and closed: the open-DB
	// count returns to baseline (no leaked series file handles), and the
	// flushed file stays readable with sampled data in it.
	if got := tsdb.OpenDBs(); got != baselineDBs {
		t.Errorf("open history stores after teardown = %d, want baseline %d", got, baselineDBs)
	}
	hist, err := m.JobHistory(ids[0])
	if err != nil || hist == nil {
		t.Fatalf("JobHistory(%s) = %v, %v; want read-only reopen", ids[0], hist, err)
	}
	if infos := hist.Series(); len(infos) == 0 {
		t.Errorf("terminal job %s has an empty history store", ids[0])
	}
	// Goroutines wind down asynchronously; give them a bounded settle.
	settle := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baselineGoroutines+3 {
			break
		} else if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines = %d, baseline %d; stacks:\n%s",
				g, baselineGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Per-job metrics stay queryable after the roll-up retired them.
	reg, err := m.JobRegistry(ids[0])
	if err != nil || reg == nil {
		t.Fatalf("JobRegistry(%s) = %v, %v; want live scope", ids[0], reg, err)
	}
}
