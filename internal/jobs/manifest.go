package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ManifestFile is the per-job state record inside the job's directory.
// It is written atomically (temp + rename) at every lifecycle
// transition, so a killed service always leaves either the previous or
// the next state on disk — never a torn one. A non-terminal manifest
// after a crash is the signal Recover uses to resubmit the job with
// crash-resume.
const ManifestFile = "job.json"

// Manifest is the durable form of a job.
type Manifest struct {
	Config   Config    `json:"config"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Resumes  int       `json:"resumes,omitempty"`
}

func manifestOf(st Status) Manifest {
	return Manifest{
		Config:   st.Config,
		State:    st.State,
		Error:    st.Error,
		Created:  st.Created,
		Started:  st.Started,
		Finished: st.Finished,
		Resumes:  st.Resumes,
	}
}

// writeManifest atomically replaces dir/job.json.
func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: marshal manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ManifestFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("jobs: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("jobs: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("jobs: close manifest: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, ManifestFile)); err != nil {
		os.Remove(name)
		return fmt.Errorf("jobs: publish manifest: %w", err)
	}
	return nil
}

// ReadManifest loads one job directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("jobs: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("jobs: parse %s: %w", filepath.Join(dir, ManifestFile), err)
	}
	if m.Config.ID == "" {
		m.Config.ID = filepath.Base(dir)
	}
	return m, nil
}

// ReadManifests scans a jobs root and returns every job manifest,
// sorted by creation time. Subdirectories without a manifest are
// skipped (partially created jobs); unreadable manifests are an error.
func ReadManifests(root string) ([]Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobs: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := ReadManifest(filepath.Join(root, e.Name()))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].Config.ID < out[b].Config.ID
	})
	return out, nil
}
