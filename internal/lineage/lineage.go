// Package lineage records the complete training lifespan of every neural
// network the workflow touches (paper §2.3): architecture and genome,
// per-epoch training/validation fitness, the prediction engine's
// prediction history, epoch times, FLOPs, engine parameters, and
// termination state. One Record is the "record trail" the paper uploads
// to its Dataverse data commons; internal/commons persists them.
package lineage

import (
	"encoding/json"
	"fmt"
	"time"
)

// EngineParams captures the prediction-engine configuration active during
// a run (Table 1), stored with every record for reproducibility.
type EngineParams struct {
	Family     string  `json:"family"`
	CMin       int     `json:"c_min"`
	EPred      int     `json:"e_pred"`
	N          int     `json:"n"`
	R          float64 `json:"r"`
	MinFitness float64 `json:"min_fitness"`
	MaxFitness float64 `json:"max_fitness"`
}

// EpochEntry is one epoch of the record trail.
type EpochEntry struct {
	// Epoch is 1-based.
	Epoch int `json:"epoch"`
	// TrainLoss is the mean training loss of the epoch.
	TrainLoss float64 `json:"train_loss"`
	// TrainAccuracy and ValAccuracy are percentages.
	TrainAccuracy float64 `json:"train_accuracy"`
	ValAccuracy   float64 `json:"val_accuracy"`
	// Prediction is the engine's fitness prediction made after this
	// epoch; NaN-free: HasPrediction marks presence.
	Prediction    float64 `json:"prediction"`
	HasPrediction bool    `json:"has_prediction"`
	// SimSeconds is the epoch's simulated duration on its device.
	SimSeconds float64 `json:"sim_seconds"`
}

// Record is the full record trail of one NN.
type Record struct {
	// ID is the genome hash; it identifies the architecture.
	ID string `json:"id"`
	// Genome is the bit-string encoding.
	Genome        string `json:"genome"`
	NodesPerPhase int    `json:"nodes_per_phase"`
	// Generation is the NAS generation that created the network.
	Generation int `json:"generation"`
	// Architecture is the decoded layer-by-layer description.
	Architecture string `json:"architecture"`
	NumParams    int    `json:"num_params"`
	FLOPs        int64  `json:"flops"`
	// Beam names the dataset variant (low/medium/high).
	Beam string `json:"beam"`
	// DeviceID is the accelerator the network trained on.
	DeviceID int `json:"device_id"`
	// Attempt is the 1-based dispatch attempt that produced this record;
	// values above 1 mean earlier attempts were lost to faults and the
	// scheduler retried the network (possibly on another device).
	Attempt int `json:"attempt,omitempty"`
	// SlowFactor, when set (> 1), marks that the device was a straggler
	// during this training and epoch costs were inflated accordingly.
	SlowFactor float64 `json:"slow_factor,omitempty"`

	Epochs []EpochEntry `json:"epochs"`

	// Terminated reports early termination by the prediction engine;
	// TerminationEpoch is the paper's e_t (= len(Epochs) when terminated).
	Terminated       bool `json:"terminated"`
	TerminationEpoch int  `json:"termination_epoch"`
	// FinalFitness is the fitness reported to the NAS: the converged
	// prediction when terminated early, else the last validation accuracy.
	FinalFitness float64 `json:"final_fitness"`

	Engine *EngineParams `json:"engine,omitempty"`
	// CreatedAt timestamps the record.
	CreatedAt time.Time `json:"created_at"`
}

// Validate reports the first structural problem with the record, or nil.
func (r *Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("lineage: record has no ID")
	}
	if r.Genome == "" {
		return fmt.Errorf("lineage: record %s has no genome", r.ID)
	}
	for i, e := range r.Epochs {
		if e.Epoch != i+1 {
			return fmt.Errorf("lineage: record %s epoch %d labelled %d", r.ID, i+1, e.Epoch)
		}
	}
	if r.Terminated && r.TerminationEpoch != len(r.Epochs) {
		return fmt.Errorf("lineage: record %s terminated at %d but has %d epochs", r.ID, r.TerminationEpoch, len(r.Epochs))
	}
	return nil
}

// FitnessHistory returns the per-epoch validation accuracies (the paper's H).
func (r *Record) FitnessHistory() []float64 {
	h := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		h[i] = e.ValAccuracy
	}
	return h
}

// PredictionHistory returns the engine's predictions in order (the paper's P).
func (r *Record) PredictionHistory() []float64 {
	var p []float64
	for _, e := range r.Epochs {
		if e.HasPrediction {
			p = append(p, e.Prediction)
		}
	}
	return p
}

// EpochsTrained returns the number of epochs actually trained.
func (r *Record) EpochsTrained() int { return len(r.Epochs) }

// SimSeconds sums the simulated duration of all epochs.
func (r *Record) SimSeconds() float64 {
	s := 0.0
	for _, e := range r.Epochs {
		s += e.SimSeconds
	}
	return s
}

// MarshalJSON ensures records serialise with a stable layout. (The
// default marshalling is already deterministic; this wrapper exists so
// the wire format is an explicit, documented contract.)
func (r *Record) MarshalBytes() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// UnmarshalBytes parses a record previously produced by MarshalBytes.
func UnmarshalBytes(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lineage: decode record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
