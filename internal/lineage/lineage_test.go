package lineage

import (
	"testing"
	"time"
)

func sampleRecord() *Record {
	return &Record{
		ID:            "abc123",
		Genome:        "1010001|0000000|1111111",
		NodesPerPhase: 4,
		Generation:    2,
		Architecture:  "phase(w=8)...",
		NumParams:     1234,
		FLOPs:         5678,
		Beam:          "medium",
		DeviceID:      1,
		Epochs: []EpochEntry{
			{Epoch: 1, TrainLoss: 0.9, TrainAccuracy: 55, ValAccuracy: 54, SimSeconds: 10},
			{Epoch: 2, TrainLoss: 0.6, TrainAccuracy: 70, ValAccuracy: 68, SimSeconds: 10},
			{Epoch: 3, TrainLoss: 0.4, TrainAccuracy: 80, ValAccuracy: 78, Prediction: 91, HasPrediction: true, SimSeconds: 10},
			{Epoch: 4, TrainLoss: 0.3, TrainAccuracy: 85, ValAccuracy: 83, Prediction: 91.2, HasPrediction: true, SimSeconds: 10},
		},
		Terminated:       true,
		TerminationEpoch: 4,
		FinalFitness:     91.2,
		Engine:           &EngineParams{Family: "a-b^(c-x)", CMin: 3, EPred: 25, N: 3, R: 0.5, MaxFitness: 100},
		CreatedAt:        time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC),
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleRecord()
	bad.ID = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("missing ID must fail")
	}
	bad = sampleRecord()
	bad.Genome = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("missing genome must fail")
	}
	bad = sampleRecord()
	bad.Epochs[1].Epoch = 7
	if err := bad.Validate(); err == nil {
		t.Fatal("mislabelled epoch must fail")
	}
	bad = sampleRecord()
	bad.TerminationEpoch = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("inconsistent termination epoch must fail")
	}
}

func TestHistoriesAndAggregates(t *testing.T) {
	r := sampleRecord()
	h := r.FitnessHistory()
	if len(h) != 4 || h[0] != 54 || h[3] != 83 {
		t.Fatalf("H = %v", h)
	}
	p := r.PredictionHistory()
	if len(p) != 2 || p[0] != 91 || p[1] != 91.2 {
		t.Fatalf("P = %v", p)
	}
	if r.EpochsTrained() != 4 {
		t.Fatalf("EpochsTrained = %d", r.EpochsTrained())
	}
	if r.SimSeconds() != 40 {
		t.Fatalf("SimSeconds = %v", r.SimSeconds())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sampleRecord()
	data, err := r.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || back.FinalFitness != r.FinalFitness || len(back.Epochs) != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Engine == nil || back.Engine.EPred != 25 {
		t.Fatalf("engine params lost: %+v", back.Engine)
	}
	if !back.Epochs[2].HasPrediction || back.Epochs[2].Prediction != 91 {
		t.Fatal("prediction flags lost")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	r := sampleRecord()
	r.ID = ""
	if _, err := r.MarshalBytes(); err == nil {
		t.Fatal("invalid record must not marshal")
	}
	if _, err := UnmarshalBytes([]byte("{not json")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := UnmarshalBytes([]byte(`{"id":""}`)); err == nil {
		t.Fatal("invalid decoded record must fail")
	}
}
