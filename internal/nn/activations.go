package nn

import (
	"fmt"
	"math/rand"

	"a4nn/internal/tensor"
)

// ReLU is the rectified linear activation applied element-wise; it works
// on tensors of any rank. Its output and gradient buffers are pooled and
// reused across steps.
type ReLU struct {
	mask []bool // forward cache: which inputs were positive
	y    *tensor.Tensor
	dx   *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// FLOPs implements Layer: one comparison per element.
func (r *ReLU) FLOPs(in []int) int64 { return int64(shapeProduct(in)) }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	r.y = ws.Obtain(r.y, x.Shape()...)
	xd, yd := x.Data(), r.y.Data()
	if train {
		if cap(r.mask) < len(xd) {
			r.mask = make([]bool, len(xd))
		}
		r.mask = r.mask[:len(xd)]
	}
	// The pooled buffer arrives with stale contents, so both branches
	// write their element.
	for i, v := range xd {
		if v > 0 {
			yd[i] = v
			if train {
				r.mask[i] = true
			}
		} else {
			yd[i] = 0
			if train {
				r.mask[i] = false
			}
		}
	}
	return r.y, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if r.mask == nil || len(r.mask) != grad.Len() {
		return nil, fmt.Errorf("nn: relu: Backward without matching training Forward")
	}
	r.dx = ws.Obtain(r.dx, grad.Shape()...)
	gd, dd := grad.Data(), r.dx.Data()
	for i, m := range r.mask {
		if m {
			dd[i] = gd[i]
		} else {
			dd[i] = 0
		}
	}
	return r.dx, nil
}

// Flatten reshapes (N, C, H, W) (or any rank ≥ 2) batches to (N, rest).
type Flatten struct {
	inShape []int // forward cache (per-sample)
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	return []int{shapeProduct(in)}, nil
}

// FLOPs implements Layer.
func (f *Flatten) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, errShape("flatten", "(N,...)", x.Shape())
	}
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.inShape == nil {
		return nil, fmt.Errorf("nn: flatten: Backward without prior training Forward")
	}
	return grad.Reshape(f.inShape...)
}

// Dropout zeroes activations with probability P during training and
// scales survivors by 1/(1−P) (inverted dropout); evaluation is identity.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
	y    *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(rng *rand.Rand, p float64) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability %v outside [0,1)", p)
	}
	return &Dropout{P: p, rng: rng}, nil
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2g)", d.P) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// FLOPs implements Layer.
func (d *Dropout) FLOPs(in []int) int64 { return int64(shapeProduct(in)) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.P == 0 {
		d.mask = nil
		return x, nil
	}
	scale := 1 / (1 - d.P)
	if cap(d.mask) < x.Len() {
		d.mask = make([]float64, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	d.y = ws.Obtain(d.y, x.Shape()...)
	xd, yd := x.Data(), d.y.Data()
	for i := range xd {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			yd[i] = 0
		} else {
			d.mask[i] = scale
			yd[i] = xd[i] * scale
		}
	}
	return d.y, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.mask == nil {
		// Forward ran in eval mode or with P=0: identity.
		return grad, nil
	}
	if len(d.mask) != grad.Len() {
		return nil, fmt.Errorf("nn: dropout: gradient length %d does not match mask %d", grad.Len(), len(d.mask))
	}
	d.dx = ws.Obtain(d.dx, grad.Shape()...)
	gd, dd := grad.Data(), d.dx.Data()
	for i, m := range d.mask {
		dd[i] = gd[i] * m
	}
	return d.dx, nil
}
