package nn

import (
	"fmt"

	"a4nn/internal/tensor"
)

// AvgPool2D is average pooling with a square window, equal stride, and
// optional symmetric padding over NCHW batches. Border windows average
// only the real (unpadded) pixels they cover.
type AvgPool2D struct {
	K, Stride, Pad int

	inShape []int
	y, dx   *tensor.Tensor // pooled output / input-gradient buffers
}

// NewAvgPool2D creates an unpadded average-pooling layer.
func NewAvgPool2D(k, stride int) (*AvgPool2D, error) {
	return NewAvgPool2DPadded(k, stride, 0)
}

// NewAvgPool2DPadded creates an average-pooling layer with symmetric
// padding.
func NewAvgPool2DPadded(k, stride, pad int) (*AvgPool2D, error) {
	if k <= 0 || stride <= 0 || pad < 0 || pad >= k {
		return nil, fmt.Errorf("nn: AvgPool2D invalid k=%d stride=%d pad=%d", k, stride, pad)
	}
	return &AvgPool2D{K: k, Stride: stride, Pad: pad}, nil
}

// Name implements Layer.
func (p *AvgPool2D) Name() string {
	return fmt.Sprintf("avgpool%dx%d/s%d,p%d", p.K, p.K, p.Stride, p.Pad)
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, errShape(p.Name(), "(C,H,W)", in)
	}
	oh, err := tensor.ConvOutSize(in[1], p.K, p.Stride, p.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", p.Name(), err)
	}
	ow, err := tensor.ConvOutSize(in[2], p.K, p.Stride, p.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", p.Name(), err)
	}
	return []int{in[0], oh, ow}, nil
}

// FLOPs implements Layer: K² adds + 1 divide per output element.
func (p *AvgPool2D) FLOPs(in []int) int64 {
	out, err := p.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(shapeProduct(out)) * int64(p.K*p.K+1)
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, errShape(p.Name(), "(N,C,H,W)", x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out, err := p.OutShape([]int{c, h, w})
	if err != nil {
		return nil, err
	}
	oh, ow := out[1], out[2]
	p.y = ws.Obtain(p.y, n, c, oh, ow)
	y := p.y
	xd, yd := x.Data(), y.Data()
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum, cnt := 0.0, 0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[base+iy*w+ix]
							cnt++
						}
					}
					if cnt == 0 {
						cnt = 1 // unreachable for pad < k; avoid 0/0
					}
					yd[oi] = sum / float64(cnt)
					oi++
				}
			}
		}
	}
	if train {
		p.inShape = append(p.inShape[:0], n, c, h, w)
	}
	return y, nil
}

// Backward implements Layer: each input in a window receives grad/|window|.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if p.inShape == nil {
		return nil, fmt.Errorf("nn: %s: Backward without prior training Forward", p.Name())
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	out, err := p.OutShape([]int{c, h, w})
	if err != nil {
		return nil, err
	}
	oh, ow := out[1], out[2]
	if grad.Rank() != 4 || grad.Dim(0) != n || grad.Dim(1) != c || grad.Dim(2) != oh || grad.Dim(3) != ow {
		return nil, errShape(p.Name()+" backward", []int{n, c, oh, ow}, grad.Shape())
	}
	// Zeroed: border windows accumulate shares into the pooled buffer.
	dx := ws.ObtainZeroed(p.dx, n, c, h, w)
	p.dx = dx
	dd, gd := dx.Data(), grad.Data()
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					// Count window size (may be clipped at borders/padding).
					cnt := 0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							cnt++
						}
					}
					if cnt == 0 {
						cnt = 1
					}
					share := gd[oi] / float64(cnt)
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							dd[base+iy*w+ix] += share
						}
					}
					oi++
				}
			}
		}
	}
	return dx, nil
}
