package nn

import (
	"math/rand"
	"testing"

	"a4nn/internal/tensor"
)

// benchConvNet builds a small conv net representative of the genome-decoded
// architectures (conv-bn-relu-pool-conv-relu-gap-dense) plus one training
// batch, for the train-step benchmark.
func benchConvNet(b *testing.B) (*Network, []Batch) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	conv1, err := NewConv2D(rng, 3, 8, 3, 3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	bn, err := NewBatchNorm2D(8)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := NewMaxPool2D(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	conv2, err := NewConv2D(rng, 8, 16, 3, 3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	dense, err := NewDense(rng, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork("bench", []int{3, 16, 16},
		conv1, bn, NewReLU(), pool, conv2, NewReLU(), NewGlobalAvgPool2D(), dense)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 16, 3, 16, 16)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	return net, []Batch{{X: x, Labels: labels}}
}

// BenchmarkConvForwardBackward measures one training forward/backward pair
// through a lone convolution, the dominant kernel of every decoded network.
func BenchmarkConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	conv, err := NewConv2D(rng, 3, 16, 3, 3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 8, 3, 32, 32)
	grad := tensor.Ones(8, 16, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := conv.Forward(x, true)
		if err != nil {
			b.Fatal(err)
		}
		_ = y
		if _, err := conv.Backward(grad); err != nil {
			b.Fatal(err)
		}
		conv.W.ZeroGrad()
		conv.B.ZeroGrad()
	}
}

// BenchmarkTrainStep measures one full optimisation step (forward, loss,
// backward, SGD update) on the representative conv net — the unit of work
// every NAS candidate evaluation repeats thousands of times.
func BenchmarkTrainStep(b *testing.B) {
	net, batches := benchConvNet(b)
	opt, err := NewSGD(0.01, 0.9, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainEpoch(net, opt, batches); err != nil {
			b.Fatal(err)
		}
	}
}
