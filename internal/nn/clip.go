package nn

import "math"

// ClipGradNorm rescales all parameter gradients in place so that their
// global Euclidean norm does not exceed maxNorm, the standard defence
// against exploding gradients in deep or randomly-wired networks (some
// NAS-decoded architectures are exactly that). It returns the norm before
// clipping. maxNorm ≤ 0 leaves gradients untouched.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
	return norm
}
