package nn

import (
	"fmt"
	"math"
	"math/rand"

	"a4nn/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, implemented as a batched
// im2col + matrix multiplication so the blocked parallel GEMM kernel does
// the heavy lifting. All intermediate matrices live in pooled buffers that
// are reused across training steps; a steady-state forward/backward pair
// allocates nothing.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	W           *Param // (OutC, InC·KH·KW)
	B           *Param // (OutC)

	// Reusable kernel workspace. cols doubles as the forward cache the
	// backward pass consumes; the rest are scratch recycled every call.
	cols  *tensor.Tensor // (InC·KH·KW, N·OH·OW) batched im2col
	prod  *tensor.Tensor // (OutC, N·OH·OW) forward GEMM output
	y     *tensor.Tensor // (N, OutC, OH, OW) layer output
	g     *tensor.Tensor // (OutC, N·OH·OW) rearranged output gradient
	dcols *tensor.Tensor // (InC·KH·KW, N·OH·OW) column gradient
	dw    *tensor.Tensor // (OutC, InC·KH·KW) weight-gradient scratch
	dx    *tensor.Tensor // (N, InC, H, W) input gradient

	inH, inW   int
	batch      int
	outH, outW int
	trained    bool // a training Forward has populated cols
}

// NewConv2D creates a convolution with He-normal initialised weights.
func NewConv2D(rng *rand.Rand, inC, outC, kh, kw, stride, pad int) (*Conv2D, error) {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 {
		return nil, fmt.Errorf("nn: Conv2D invalid geometry inC=%d outC=%d k=%dx%d", inC, outC, kh, kw)
	}
	if stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: Conv2D invalid stride=%d pad=%d", stride, pad)
	}
	fanIn := inC * kh * kw
	std := math.Sqrt(2.0 / float64(fanIn))
	w := tensor.Randn(rng, 0, std, outC, fanIn)
	b := tensor.New(outC)
	return &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W: newParam(fmt.Sprintf("conv%dx%d.W", kh, kw), w),
		B: newParam(fmt.Sprintf("conv%dx%d.B", kh, kw), b),
	}, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, errShape(c.Name(), []int{c.InC, -1, -1}, in)
	}
	oh, err := tensor.ConvOutSize(in[1], c.KH, c.Stride, c.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
	}
	ow, err := tensor.ConvOutSize(in[2], c.KW, c.Stride, c.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
	}
	return []int{c.OutC, oh, ow}, nil
}

// FLOPs implements Layer: 2·InC·KH·KW multiply-adds per output element.
func (c *Conv2D) FLOPs(in []int) int64 {
	out, err := c.OutShape(in)
	if err != nil {
		return 0
	}
	perOut := int64(2*c.InC*c.KH*c.KW + 1) // MACs + bias
	return perOut * int64(shapeProduct(out))
}

// Forward implements Layer for x of shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		return nil, errShape(c.Name(), "(N,inC,H,W)", x.Shape())
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outShape, err := c.OutShape([]int{c.InC, h, w})
	if err != nil {
		return nil, err
	}
	oh, ow := outShape[1], outShape[2]
	ckk := c.InC * c.KH * c.KW
	spat := oh * ow

	// Batched im2col straight into the strided column slots: column s of
	// sample i lands in column i·spat+s, with no per-sample intermediate.
	c.cols = ws.Obtain(c.cols, ckk, n*spat)
	if err := tensor.Im2ColBatchInto(x, c.cols, c.KH, c.KW, c.Stride, c.Pad); err != nil {
		return nil, fmt.Errorf("nn: %s forward im2col: %w", c.Name(), err)
	}

	c.prod = ws.Obtain(c.prod, c.OutC, n*spat)
	if err := tensor.MatMulInto(c.W.Value, c.cols, c.prod); err != nil {
		return nil, fmt.Errorf("nn: %s forward: %w", c.Name(), err)
	}

	// Rearrange (OutC, N·spat) → (N, OutC, OH, OW) and add bias; every
	// element of y is written.
	c.y = ws.Obtain(c.y, n, c.OutC, oh, ow)
	pd, yd, bd := c.prod.Data(), c.y.Data(), c.B.Value.Data()
	for f := 0; f < c.OutC; f++ {
		bias := bd[f]
		for i := 0; i < n; i++ {
			src := pd[f*n*spat+i*spat : f*n*spat+(i+1)*spat]
			dst := yd[i*c.OutC*spat+f*spat : i*c.OutC*spat+(f+1)*spat]
			for s, v := range src {
				dst[s] = v + bias
			}
		}
	}

	if train {
		c.batch, c.inH, c.inW, c.outH, c.outW = n, h, w, oh, ow
		c.trained = true
	}
	return c.y, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if !c.trained || c.cols == nil {
		return nil, fmt.Errorf("nn: %s: Backward without prior training Forward", c.Name())
	}
	n, oh, ow := c.batch, c.outH, c.outW
	spat := oh * ow
	if grad.Rank() != 4 || grad.Dim(0) != n || grad.Dim(1) != c.OutC || grad.Dim(2) != oh || grad.Dim(3) != ow {
		return nil, errShape(c.Name()+" backward", []int{n, c.OutC, oh, ow}, grad.Shape())
	}

	// Rearrange grad (N, OutC, spat) → G (OutC, N·spat).
	c.g = ws.Obtain(c.g, c.OutC, n*spat)
	gd, rd := c.g.Data(), grad.Data()
	for i := 0; i < n; i++ {
		for f := 0; f < c.OutC; f++ {
			src := rd[i*c.OutC*spat+f*spat : i*c.OutC*spat+(f+1)*spat]
			copy(gd[f*n*spat+i*spat:f*n*spat+(i+1)*spat], src)
		}
	}

	// dW += G · colsᵀ ; db += row sums of G.
	c.dw = ws.Obtain(c.dw, c.OutC, c.InC*c.KH*c.KW)
	if err := tensor.MatMulTransBInto(c.g, c.cols, c.dw); err != nil {
		return nil, fmt.Errorf("nn: %s backward dW: %w", c.Name(), err)
	}
	c.W.Grad.AddScaled(c.dw, 1)
	bg := c.B.Grad.Data()
	for f := 0; f < c.OutC; f++ {
		s := 0.0
		for _, v := range gd[f*n*spat : (f+1)*n*spat] {
			s += v
		}
		bg[f] += s
	}

	// dcols = Wᵀ · G, then the batched col2im scatters every sample's
	// columns straight from their strided slots into dx.
	c.dcols = ws.Obtain(c.dcols, c.InC*c.KH*c.KW, n*spat)
	if err := tensor.MatMulTransAInto(c.W.Value, c.g, c.dcols); err != nil {
		return nil, fmt.Errorf("nn: %s backward dcols: %w", c.Name(), err)
	}
	c.dx = ws.Obtain(c.dx, n, c.InC, c.inH, c.inW)
	if err := tensor.Col2ImBatchFrom(c.dcols, c.dx, c.KH, c.KW, c.Stride, c.Pad); err != nil {
		return nil, fmt.Errorf("nn: %s backward col2im: %w", c.Name(), err)
	}
	return c.dx, nil
}
