package nn

import (
	"fmt"
	"math"
	"math/rand"

	"a4nn/internal/tensor"
)

// Dense is a fully connected layer y = x·Wᵀ + b over batches of shape
// (N, In); W has shape (Out, In). Output and gradient buffers come from
// the shared workspace and are reused across steps.
type Dense struct {
	In, Out int
	W       *Param
	B       *Param

	x  *tensor.Tensor // forward cache (borrowed from upstream layer)
	y  *tensor.Tensor // (N, Out) pooled output
	dw *tensor.Tensor // (Out, In) weight-gradient scratch
	dx *tensor.Tensor // (N, In) pooled input gradient
}

// NewDense creates a dense layer with He-normal initialised weights.
func NewDense(rng *rand.Rand, in, out int) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: Dense invalid geometry in=%d out=%d", in, out)
	}
	std := math.Sqrt(2.0 / float64(in))
	return &Dense{
		In: in, Out: out,
		W: newParam("dense.W", tensor.Randn(rng, 0, std, out, in)),
		B: newParam("dense.B", tensor.New(out)),
	}, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.In {
		return nil, errShape(d.Name(), []int{d.In}, in)
	}
	return []int{d.Out}, nil
}

// FLOPs implements Layer: 2·In MACs + 1 bias add per output unit.
func (d *Dense) FLOPs(in []int) int64 {
	if _, err := d.OutShape(in); err != nil {
		return 0
	}
	return int64(d.Out) * int64(2*d.In+1)
}

// Forward implements Layer for x of shape (N, In).
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		return nil, errShape(d.Name(), "(N,in)", x.Shape())
	}
	n := x.Dim(0)
	d.y = ws.Obtain(d.y, n, d.Out)
	if err := tensor.MatMulTransBInto(x, d.W.Value, d.y); err != nil { // (N, Out)
		return nil, fmt.Errorf("nn: %s forward: %w", d.Name(), err)
	}
	yd, bd := d.y.Data(), d.B.Value.Data()
	for i := 0; i < n; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	if train {
		d.x = x
	}
	return d.y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.x == nil {
		return nil, fmt.Errorf("nn: %s: Backward without prior training Forward", d.Name())
	}
	n := d.x.Dim(0)
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != d.Out {
		return nil, errShape(d.Name()+" backward", []int{n, d.Out}, grad.Shape())
	}
	d.dw = ws.Obtain(d.dw, d.Out, d.In)
	if err := tensor.MatMulTransAInto(grad, d.x, d.dw); err != nil { // gradᵀ·x → (Out, In)
		return nil, fmt.Errorf("nn: %s backward dW: %w", d.Name(), err)
	}
	d.W.Grad.AddScaled(d.dw, 1)
	bg, gd := d.B.Grad.Data(), grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	d.dx = ws.Obtain(d.dx, n, d.In)
	if err := tensor.MatMulInto(grad, d.W.Value, d.dx); err != nil { // (N, In)
		return nil, fmt.Errorf("nn: %s backward dx: %w", d.Name(), err)
	}
	return d.dx, nil
}
