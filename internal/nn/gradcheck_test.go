package nn

import (
	"math"
	"math/rand"
	"testing"

	"a4nn/internal/tensor"
)

// scalarLoss reduces a tensor to a scalar with fixed random weights so the
// loss depends on every output element; used by the gradient checks.
func scalarLoss(y *tensor.Tensor, w []float64) float64 {
	s := 0.0
	for i, v := range y.Data() {
		s += v * w[i%len(w)]
	}
	return s
}

// lossGrad is ∂scalarLoss/∂y.
func lossGrad(y *tensor.Tensor, w []float64) *tensor.Tensor {
	g := tensor.New(y.Shape()...)
	gd := g.Data()
	for i := range gd {
		gd[i] = w[i%len(w)]
	}
	return g
}

// checkInputGradient numerically verifies ∂loss/∂x for a layer.
func checkInputGradient(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	w := make([]float64, 7)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	y, err := layer.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	dx, err := layer.Backward(lossGrad(y, w))
	if err != nil {
		t.Fatalf("backward: %v", err)
	}
	const h = 1e-5
	xd := x.Data()
	for _, i := range sampleIndices(len(xd), 25, rng) {
		orig := xd[i]
		xd[i] = orig + h
		yp, err := layer.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lp := scalarLoss(yp, w)
		xd[i] = orig - h
		ym, err := layer.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		lm := scalarLoss(ym, w)
		xd[i] = orig
		want := (lp - lm) / (2 * h)
		got := dx.Data()[i]
		if math.Abs(want-got) > tol*math.Max(1, math.Abs(want)) {
			t.Fatalf("input grad [%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}

// checkParamGradients numerically verifies ∂loss/∂θ for every parameter.
func checkParamGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	w := make([]float64, 7)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	y, err := layer.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if _, err := layer.Backward(lossGrad(y, w)); err != nil {
		t.Fatalf("backward: %v", err)
	}
	const h = 1e-5
	for pi, p := range layer.Params() {
		vd := p.Value.Data()
		for _, i := range sampleIndices(len(vd), 15, rng) {
			orig := vd[i]
			vd[i] = orig + h
			yp, err := layer.Forward(x, true)
			if err != nil {
				t.Fatal(err)
			}
			lp := scalarLoss(yp, w)
			vd[i] = orig - h
			ym, err := layer.Forward(x, true)
			if err != nil {
				t.Fatal(err)
			}
			lm := scalarLoss(ym, w)
			vd[i] = orig
			want := (lp - lm) / (2 * h)
			got := p.Grad.Data()[i]
			if math.Abs(want-got) > tol*math.Max(1, math.Abs(want)) {
				t.Fatalf("param %d (%s) grad [%d]: analytic %v vs numeric %v", pi, p.Name, i, got, want)
			}
		}
	}
}

// sampleIndices returns up to k distinct indices in [0, n).
func sampleIndices(n, k int, rng *rand.Rand) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	seen := map[int]bool{}
	var idx []int
	for len(idx) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv, err := NewConv2D(rng, 2, 3, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)
	checkInputGradient(t, conv, x, 1e-4)
	checkParamGradients(t, conv, x, 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv, err := NewConv2D(rng, 1, 2, 3, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 1, 7, 7)
	checkInputGradient(t, conv, x, 1e-4)
	checkParamGradients(t, conv, x, 1e-4)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := NewDense(rng, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 3, 6)
	checkInputGradient(t, d, x, 1e-5)
	checkParamGradients(t, d, x, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Keep inputs away from the kink at 0 for the numeric check.
	x := tensor.Randn(rng, 0, 1, 4, 9).Apply(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.2
		}
		return v
	})
	checkInputGradient(t, NewReLU(), x, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := NewMaxPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 6, 6)
	checkInputGradient(t, p, x, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 0, 1, 3, 4, 5, 5)
	checkInputGradient(t, NewGlobalAvgPool2D(), x, 1e-5)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn, err := NewBatchNorm2D(3)
	if err != nil {
		t.Fatal(err)
	}
	// Non-trivial gamma/beta so their gradients are exercised.
	bn.Gamma.Value.Data()[1] = 1.7
	bn.Beta.Value.Data()[2] = -0.4
	x := tensor.Randn(rng, 0, 2, 4, 3, 3, 3)
	checkInputGradient(t, bn, x, 1e-3)
	checkParamGradients(t, bn, x, 1e-3)
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := NewFlatten()
	x := tensor.Randn(rng, 0, 1, 2, 3, 4, 4)
	y, err := f.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	back, err := f.Backward(y)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(x) {
		t.Fatalf("flatten backward shape %v", back.Shape())
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.Randn(rng, 0, 1, 4, 3)
	labels := []int{0, 2, 1, 2}
	var ce SoftmaxCrossEntropy
	loss, grad, err := ce.Loss(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	const h = 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + h
		lp, _, _ := ce.Loss(logits, labels)
		ld[i] = orig - h
		lm, _, _ := ce.Loss(logits, labels)
		ld[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-grad.Data()[i]) > 1e-5 {
			t.Fatalf("CE grad [%d]: analytic %v vs numeric %v", i, grad.Data()[i], want)
		}
	}
}

func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pred := tensor.Randn(rng, 0, 1, 3, 4)
	target := tensor.Randn(rng, 0, 1, 3, 4)
	var mse MSE
	loss, grad, err := mse.Loss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if loss < 0 {
		t.Fatalf("loss = %v", loss)
	}
	const h = 1e-6
	pd := pred.Data()
	for i := range pd {
		orig := pd[i]
		pd[i] = orig + h
		lp, _, _ := mse.Loss(pred, target)
		pd[i] = orig - h
		lm, _, _ := mse.Loss(pred, target)
		pd[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-grad.Data()[i]) > 1e-5 {
			t.Fatalf("MSE grad [%d]: analytic %v vs numeric %v", i, grad.Data()[i], want)
		}
	}
}
