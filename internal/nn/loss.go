package nn

import (
	"fmt"
	"math"

	"a4nn/internal/tensor"
)

// SoftmaxCrossEntropy fuses the softmax activation and cross-entropy loss
// for classification, which is both faster and numerically stabler than
// composing the two. Logits have shape (N, K); labels are class indices.
type SoftmaxCrossEntropy struct{}

// Loss computes the mean cross-entropy over the batch and the gradient of
// that loss with respect to the logits: (softmax(logits) − onehot) / N.
func (s SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor, err error) {
	if logits.Rank() != 2 {
		return 0, nil, fmt.Errorf("nn: cross-entropy expects (N,K) logits, got %v", logits.Shape())
	}
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss, err = s.LossInto(logits, labels, grad)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// LossInto is Loss writing the gradient into the caller-provided grad of
// shape (N, K), so the training loop can reuse one pooled buffer across
// batches instead of allocating per step. Every element of grad is
// overwritten on success; on error its contents are unspecified.
func (SoftmaxCrossEntropy) LossInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) (loss float64, err error) {
	if logits.Rank() != 2 {
		return 0, fmt.Errorf("nn: cross-entropy expects (N,K) logits, got %v", logits.Shape())
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: %d labels for batch of %d", len(labels), n)
	}
	if !grad.SameShape(logits) {
		return 0, fmt.Errorf("nn: cross-entropy grad shape %v, want %v", grad.Shape(), logits.Shape())
	}
	ld, gd := logits.Data(), grad.Data()
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		lbl := labels[i]
		if lbl < 0 || lbl >= k {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", lbl, k)
		}
		row := ld[i*k : (i+1)*k]
		// Log-sum-exp with max shift for stability.
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - max)
		}
		logZ := max + math.Log(sum)
		loss += logZ - row[lbl]
		gRow := gd[i*k : (i+1)*k]
		for j, v := range row {
			p := math.Exp(v - logZ)
			if j == lbl {
				p -= 1
			}
			gRow[j] = p * invN
		}
	}
	return loss * invN, nil
}

// Accuracy returns the fraction of rows whose argmax matches the label,
// in percent (0–100) to match the paper's fitness units.
func Accuracy(logits *tensor.Tensor, labels []int) (float64, error) {
	if logits.Rank() != 2 {
		return 0, fmt.Errorf("nn: accuracy expects (N,K) logits, got %v", logits.Shape())
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: %d labels for batch of %d", len(labels), n)
	}
	if n == 0 {
		return 0, nil
	}
	ld := logits.Data()
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(n), nil
}

// MSE is the mean squared error loss for regression and autoencoders.
type MSE struct{}

// Loss returns mean((pred−target)²) over all elements and its gradient
// with respect to pred.
func (MSE) Loss(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor, err error) {
	if !pred.SameShape(target) {
		return 0, nil, fmt.Errorf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape())
	}
	grad = tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	n := float64(len(pd))
	if n == 0 {
		return 0, grad, nil
	}
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d / n
	}
	return loss / n, grad, nil
}
