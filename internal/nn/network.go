package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"a4nn/internal/tensor"
)

// Network is an ordered sequence of layers trained end to end.
type Network struct {
	// ID labels the network (the NAS uses the genome hash).
	ID string
	// InShape is the per-sample input shape, e.g. (C, H, W).
	InShape []int
	Layers  []Layer

	// prof caches the per-layer profiler binding (see profile.go); nil
	// until a profiler is installed and the network first runs.
	prof *profBinding
}

// NewNetwork validates that the layers compose over the given input shape
// and returns the network.
func NewNetwork(id string, inShape []int, layers ...Layer) (*Network, error) {
	n := &Network{ID: id, InShape: append([]int(nil), inShape...), Layers: layers}
	if _, err := n.OutShape(); err != nil {
		return nil, err
	}
	return n, nil
}

// OutShape returns the per-sample output shape of the whole network.
func (n *Network) OutShape() ([]int, error) {
	shape := n.InShape
	for i, l := range n.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: network %q layer %d (%s): %w", n.ID, i, l.Name(), err)
		}
		shape = out
	}
	return shape, nil
}

// Forward runs the batch through every layer. With a profiler
// installed (SetProfiler) each layer's wall time and FLOPs are
// accounted; disabled, the check is one atomic load and a branch.
func (n *Network) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if p := activeProf.Load(); p != nil {
		return n.forwardProfiled(p, x, train)
	}
	var err error
	for i, l := range n.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, wrapLayerErr(n, i, "forward", err)
		}
	}
	return x, nil
}

// Backward propagates ∂L/∂output back through every layer, accumulating
// parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) error {
	if p := activeProf.Load(); p != nil {
		return n.backwardProfiled(p, grad)
	}
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return wrapLayerErr(n, i, "backward", err)
		}
	}
	return nil
}

// wrapLayerErr annotates a layer failure with its network and position.
func wrapLayerErr(n *Network, layer int, pass string, err error) error {
	return fmt.Errorf("nn: network %q layer %d %s: %w", n.ID, layer, pass, err)
}

// Params returns every trainable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// FLOPs estimates the floating-point operations of one forward pass for a
// single sample. The experiment harness reports MFLOPs (FLOPs/1e6), which
// is the unit the paper's accuracy-vs-FLOPS Pareto plots use.
func (n *Network) FLOPs() (int64, error) {
	shape := n.InShape
	var total int64
	for i, l := range n.Layers {
		total += l.FLOPs(shape)
		out, err := l.OutShape(shape)
		if err != nil {
			return 0, fmt.Errorf("nn: network %q layer %d (%s): %w", n.ID, i, l.Name(), err)
		}
		shape = out
	}
	return total, nil
}

// Describe renders a one-line-per-layer architecture summary.
func (n *Network) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %q input %v\n", n.ID, n.InShape)
	shape := n.InShape
	for i, l := range n.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			fmt.Fprintf(&b, "  %2d %-28s <shape error: %v>\n", i, l.Name(), err)
			return b.String()
		}
		fmt.Fprintf(&b, "  %2d %-28s %v -> %v\n", i, l.Name(), shape, out)
		shape = out
	}
	fmt.Fprintf(&b, "params=%d flops=%d\n", n.NumParams(), mustFLOPs(n))
	return b.String()
}

func mustFLOPs(n *Network) int64 {
	f, err := n.FLOPs()
	if err != nil {
		return -1
	}
	return f
}

// Stateful is implemented by layers carrying non-trainable state that
// must survive serialization (batch-norm running statistics). Composite
// layers (e.g. the genome package's PhaseBlock) aggregate their children's
// state tensors. The returned tensors are live views: mutating them
// mutates the layer.
type Stateful interface {
	StateTensors() []*tensor.Tensor
}

// StateTensors implements Stateful for BatchNorm2D.
func (b *BatchNorm2D) StateTensors() []*tensor.Tensor {
	return []*tensor.Tensor{b.RunningMean, b.RunningVar}
}

// stateTensors collects every Stateful layer's tensors in layer order.
func (n *Network) stateTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.Layers {
		if s, ok := l.(Stateful); ok {
			out = append(out, s.StateTensors()...)
		}
	}
	return out
}

// netState is the gob wire form of a network's parameters and layer
// state (batch-norm running statistics).
type netState struct {
	ID     string
	Params [][]float64
	State  [][]float64
}

// SaveState serialises the network's trainable parameters and the
// non-trainable state of every Stateful layer (including those nested in
// composite layers). Together with the genome (which reconstructs the
// architecture) this is the "model state" the lineage tracker snapshots
// after every epoch (paper §2.2.2).
func (n *Network) SaveState() ([]byte, error) {
	st := netState{ID: n.ID}
	for _, p := range n.Params() {
		st.Params = append(st.Params, append([]float64(nil), p.Value.Data()...))
	}
	for _, s := range n.stateTensors() {
		st.State = append(st.State, append([]float64(nil), s.Data()...))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode state of %q: %w", n.ID, err)
	}
	return buf.Bytes(), nil
}

// LoadState restores parameters and layer state saved by SaveState into
// an architecturally identical network.
func (n *Network) LoadState(data []byte) error {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode state: %w", err)
	}
	params := n.Params()
	if len(st.Params) != len(params) {
		return fmt.Errorf("nn: state has %d parameter tensors, network %q has %d", len(st.Params), n.ID, len(params))
	}
	for i, p := range params {
		if len(st.Params[i]) != p.Value.Len() {
			return fmt.Errorf("nn: parameter %d size mismatch: state %d vs network %d", i, len(st.Params[i]), p.Value.Len())
		}
	}
	states := n.stateTensors()
	if len(st.State) != len(states) {
		return fmt.Errorf("nn: state has %d state tensors, network %q has %d", len(st.State), n.ID, len(states))
	}
	for i, s := range states {
		if len(st.State[i]) != s.Len() {
			return fmt.Errorf("nn: state tensor %d size mismatch: state %d vs network %d", i, len(st.State[i]), s.Len())
		}
	}
	// All sizes verified: apply.
	for i, p := range params {
		copy(p.Value.Data(), st.Params[i])
	}
	for i, s := range states {
		copy(s.Data(), st.State[i])
	}
	return nil
}
