package nn

import (
	"math"
	"math/rand"
	"testing"

	"a4nn/internal/tensor"
)

func TestConv2DConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewConv2D(rng, 0, 1, 3, 3, 1, 1); err == nil {
		t.Fatal("expected error for zero input channels")
	}
	if _, err := NewConv2D(rng, 1, 1, 3, 3, 0, 1); err == nil {
		t.Fatal("expected error for zero stride")
	}
	if _, err := NewConv2D(rng, 1, 1, 3, 3, 1, -1); err == nil {
		t.Fatal("expected error for negative pad")
	}
}

func TestConv2DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv, err := NewConv2D(rng, 3, 8, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := conv.OutShape([]int{3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 32 || out[2] != 32 {
		t.Fatalf("out shape %v", out)
	}
	if _, err := conv.OutShape([]int{4, 32, 32}); err == nil {
		t.Fatal("expected channel-mismatch error")
	}
	x := tensor.Randn(rng, 0, 1, 2, 3, 8, 8)
	y, err := conv.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 8 || y.Dim(2) != 8 || y.Dim(3) != 8 {
		t.Fatalf("forward shape %v", y.Shape())
	}
	if _, err := conv.Forward(tensor.Randn(rng, 0, 1, 2, 4, 8, 8), false); err == nil {
		t.Fatal("expected forward channel error")
	}
	if _, err := conv.Backward(y); err == nil {
		t.Fatal("Backward without training Forward must error")
	}
}

func TestConv2DBiasApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv, err := NewConv2D(rng, 1, 1, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	conv.W.Value.Fill(0)
	conv.B.Value.Fill(2.5)
	x := tensor.Ones(1, 1, 3, 3)
	y, err := conv.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data() {
		if v != 2.5 {
			t.Fatalf("bias not applied: %v", y.Data())
		}
	}
}

func TestDenseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewDense(rng, 0, 2); err == nil {
		t.Fatal("expected error")
	}
	d, err := NewDense(rng, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Forward(tensor.Ones(3, 5), false); err == nil {
		t.Fatal("expected width-mismatch error")
	}
	if _, err := d.OutShape([]int{5}); err == nil {
		t.Fatal("expected OutShape error")
	}
	if d.FLOPs([]int{4}) != int64(2*(2*4+1)) {
		t.Fatalf("dense FLOPs = %d", d.FLOPs([]int{4}))
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	x := tensor.MustFromSlice([]float64{-1, 0, 2, -3}, 4)
	y, err := r.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 2, 0}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("relu = %v", y.Data())
		}
	}
	if _, err := r.Backward(y); err == nil {
		t.Fatal("Backward without training Forward must error")
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewDropout(rng, 1.0); err == nil {
		t.Fatal("p=1 must be rejected")
	}
	d, err := NewDropout(rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Ones(1, 10000)
	// Eval mode: identity.
	y, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
	// Train mode: mean preserved in expectation, some elements zeroed.
	yt, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range yt.Data() {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(yt.Len())
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("dropout zeroed %v of elements, want ≈0.5", frac)
	}
	if math.Abs(yt.Mean()-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ≈1", yt.Mean())
	}
	// Backward routes through the same mask.
	g, err := d.Backward(tensor.Ones(1, 10000))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range yt.Data() {
		if (v == 0) != (g.Data()[i] == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p, err := NewMaxPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("maxpool = %v, want %v", y.Data(), want)
		}
	}
	if _, err := NewMaxPool2D(0, 2); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	bn, err := NewBatchNorm2D(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 3, 2, 8, 2, 4, 4)
	y, err := bn.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	// Per-channel output must be ≈ zero-mean unit-variance (gamma=1, beta=0).
	n, c, spat := 8, 2, 16
	for ch := 0; ch < c; ch++ {
		mean, m2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			for _, v := range y.Data()[(i*c+ch)*spat : (i*c+ch+1)*spat] {
				mean += v
			}
		}
		mean /= float64(n * spat)
		for i := 0; i < n; i++ {
			for _, v := range y.Data()[(i*c+ch)*spat : (i*c+ch+1)*spat] {
				d := v - mean
				m2 += d * d
			}
		}
		variance := m2 / float64(n*spat)
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d normalised to mean=%v var=%v", ch, mean, variance)
		}
	}
	// Running stats moved toward the batch stats.
	if bn.RunningMean.At(0) == 0 {
		t.Fatal("running mean not updated")
	}
	if _, err := bn.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchNorm2D(0); err == nil {
		t.Fatal("c=0 must be rejected")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{
		2, 1, 0,
		0, 3, 1,
		1, 0, 5,
		9, 0, 0,
	}, 4, 3)
	acc, err := Accuracy(logits, []int{0, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 75 {
		t.Fatalf("accuracy = %v, want 75", acc)
	}
	if _, err := Accuracy(logits, []int{0}); err == nil {
		t.Fatal("expected label-count error")
	}
}

func TestCrossEntropyValidation(t *testing.T) {
	var ce SoftmaxCrossEntropy
	if _, _, err := ce.Loss(tensor.Ones(4), nil); err == nil {
		t.Fatal("expected rank error")
	}
	if _, _, err := ce.Loss(tensor.Ones(2, 3), []int{0}); err == nil {
		t.Fatal("expected label-count error")
	}
	if _, _, err := ce.Loss(tensor.Ones(2, 3), []int{0, 7}); err == nil {
		t.Fatal("expected label-range error")
	}
}

func TestSGDDecreasesQuadratic(t *testing.T) {
	// Minimise f(w) = ||w||² with hand-set gradients.
	p := newParam("w", tensor.MustFromSlice([]float64{3, -4}, 2))
	opt, err := NewSGD(0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for j, v := range p.Value.Data() {
			p.Grad.Data()[j] = 2 * v
		}
		opt.Step([]*Param{p})
	}
	if p.Value.Norm2() > 1e-3 {
		t.Fatalf("SGD+momentum did not converge: %v", p.Value.Data())
	}
	if _, err := NewSGD(0, 0, 0); err == nil {
		t.Fatal("lr=0 must be rejected")
	}
	if _, err := NewSGD(0.1, 1.0, 0); err == nil {
		t.Fatal("momentum=1 must be rejected")
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	p := newParam("w", tensor.MustFromSlice([]float64{3, -4}, 2))
	opt, err := NewAdam(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		for j, v := range p.Value.Data() {
			p.Grad.Data()[j] = 2 * v
		}
		opt.Step([]*Param{p})
	}
	if p.Value.Norm2() > 1e-2 {
		t.Fatalf("Adam did not converge: %v", p.Value.Data())
	}
	if _, err := NewAdam(-1, 0); err == nil {
		t.Fatal("negative lr must be rejected")
	}
}

func TestOptimizerZeroesGrads(t *testing.T) {
	p := newParam("w", tensor.Ones(3))
	p.Grad.Fill(1)
	opt, _ := NewSGD(0.1, 0, 0.01)
	opt.Step([]*Param{p})
	for _, g := range p.Grad.Data() {
		if g != 0 {
			t.Fatal("Step must zero gradients")
		}
	}
}

// buildSmallCNN assembles a conv → bn → relu → pool → flatten → dense net.
func buildSmallCNN(t *testing.T, rng *rand.Rand) *Network {
	t.Helper()
	conv, err := NewConv2D(rng, 1, 4, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm2D(4)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDense(rng, 4*4*4, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("test-cnn", []int{1, 8, 8}, conv, bn, NewReLU(), pool, NewFlatten(), dense)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkShapeAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := buildSmallCNN(t, rng)
	out, err := net.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("out shape %v", out)
	}
	if net.NumParams() == 0 {
		t.Fatal("no parameters found")
	}
	f, err := net.FLOPs()
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 {
		t.Fatalf("FLOPs = %d", f)
	}
	if net.Describe() == "" {
		t.Fatal("Describe must render")
	}
	// Mismatched composition must be rejected at construction.
	badDense, _ := NewDense(rng, 10, 2)
	if _, err := NewNetwork("bad", []int{1, 8, 8}, badDense); err == nil {
		t.Fatal("invalid composition must error")
	}
}

// TestNetworkLearnsToy verifies the whole stack end to end: a small CNN
// must reach high accuracy on a linearly separable two-class image task.
func TestNetworkLearnsToy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := buildSmallCNN(t, rng)
	opt, err := NewSGD(0.05, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Class 0: bright top half. Class 1: bright bottom half.
	makeBatch := func(n int) Batch {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := rng.NormFloat64() * 0.1
					if (cls == 0 && y < 4) || (cls == 1 && y >= 4) {
						v += 1
					}
					x.Set(v, i, 0, y, xx)
				}
			}
		}
		return Batch{X: x, Labels: labels}
	}
	var train []Batch
	for b := 0; b < 8; b++ {
		train = append(train, makeBatch(16))
	}
	test := []Batch{makeBatch(64)}
	for epoch := 0; epoch < 15; epoch++ {
		if _, err := TrainEpoch(net, opt, train); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := EvaluateClassifier(net, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 95 {
		t.Fatalf("toy accuracy = %v, want ≥95", acc)
	}
}

func TestSaveLoadStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := buildSmallCNN(t, rng)
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	// Train one step so batch-norm running stats are non-trivial.
	opt, _ := NewSGD(0.01, 0, 0)
	if _, err := TrainEpoch(net, opt, []Batch{{X: x, Labels: []int{0, 1, 0, 1}}}); err != nil {
		t.Fatal(err)
	}
	before, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	state, err := net.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh net with different init must reproduce outputs after load.
	net2 := buildSmallCNN(t, rand.New(rand.NewSource(999)))
	if err := net2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	after, err := net2.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after, 1e-12) {
		t.Fatal("state round trip changed outputs")
	}
	// Loading into an incompatible net must fail.
	small, _ := NewDense(rand.New(rand.NewSource(1)), 3, 2)
	other, _ := NewNetwork("other", []int{3}, small)
	if err := other.LoadState(state); err == nil {
		t.Fatal("incompatible LoadState must error")
	}
}

func TestTrainEpochValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := buildSmallCNN(t, rng)
	opt, _ := NewSGD(0.1, 0, 0)
	if _, err := TrainEpoch(net, opt, nil); err == nil {
		t.Fatal("no batches must error")
	}
	if _, err := EvaluateClassifier(net, nil); err == nil {
		t.Fatal("no samples must error")
	}
}

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv, err := NewConv2D(rng, 8, 16, 3, 3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 8, 8, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochSmallCNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv, _ := NewConv2D(rng, 1, 4, 3, 3, 1, 1)
	pool, _ := NewMaxPool2D(2, 2)
	dense, _ := NewDense(rng, 4*8*8, 2)
	net, err := NewNetwork("bench", []int{1, 16, 16}, conv, NewReLU(), pool, NewFlatten(), dense)
	if err != nil {
		b.Fatal(err)
	}
	opt, _ := NewSGD(0.01, 0.9, 0)
	x := tensor.Randn(rng, 0, 1, 16, 1, 16, 16)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 2
	}
	batches := []Batch{{X: x, Labels: labels}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainEpoch(net, opt, batches); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	p, err := NewAvgPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("avgpool = %v, want %v", y.Data(), want)
		}
	}
	if _, err := NewAvgPool2D(0, 1); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if p.FLOPs([]int{1, 4, 4}) <= 0 {
		t.Fatal("avgpool FLOPs")
	}
	if _, err := p.Backward(y); err == nil {
		t.Fatal("Backward before training Forward must fail")
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p, err := NewAvgPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 6, 6)
	checkInputGradient(t, p, x, 1e-5)
}

func TestAvgPoolClippedWindowGradient(t *testing.T) {
	// 5×5 input with 2×2/s2 pooling clips the last row/column windows.
	rng := rand.New(rand.NewSource(32))
	p, err := NewAvgPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 1, 1, 5, 5)
	checkInputGradient(t, p, x, 1e-5)
}

func TestSchedulers(t *testing.T) {
	c := ConstantLR{Base: 0.1}
	if c.LR(1) != 0.1 || c.LR(100) != 0.1 || c.Name() == "" {
		t.Fatal("constant schedule wrong")
	}
	s, err := NewStepLR(0.1, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.LR(1) != 0.1 || s.LR(10) != 0.1 {
		t.Fatalf("step epochs 1-10: %v, %v", s.LR(1), s.LR(10))
	}
	if s.LR(11) != 0.05 || s.LR(21) != 0.025 {
		t.Fatalf("step decay wrong: %v, %v", s.LR(11), s.LR(21))
	}
	if s.LR(0) != 0.1 {
		t.Fatal("epoch<1 must clamp")
	}
	if _, err := NewStepLR(0, 0.5, 10); err == nil {
		t.Fatal("base=0 must fail")
	}
	if _, err := NewStepLR(0.1, 2, 10); err == nil {
		t.Fatal("gamma>1 must fail")
	}

	cos, err := NewCosineLR(0.1, 0.001, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cos.LR(1)-0.1) > 1e-12 {
		t.Fatalf("cosine start %v", cos.LR(1))
	}
	if math.Abs(cos.LR(25)-0.001) > 1e-12 {
		t.Fatalf("cosine end %v", cos.LR(25))
	}
	// Monotone non-increasing across the schedule.
	prev := cos.LR(1)
	for e := 2; e <= 25; e++ {
		cur := cos.LR(e)
		if cur > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d: %v > %v", e, cur, prev)
		}
		prev = cur
	}
	if cos.LR(30) != cos.LR(25) {
		t.Fatal("past-end epochs must clamp")
	}
	if _, err := NewCosineLR(0.1, 0.2, 25); err == nil {
		t.Fatal("min>base must fail")
	}
}

func TestOptimizersSetLR(t *testing.T) {
	sgd, _ := NewSGD(0.1, 0, 0)
	var o Optimizer = sgd
	if set, ok := o.(SetLR); !ok {
		t.Fatal("SGD must implement SetLR")
	} else {
		set.SetLR(0.05)
	}
	if sgd.LR != 0.05 {
		t.Fatal("SGD SetLR ineffective")
	}
	adam, _ := NewAdam(0.1, 0)
	var oa Optimizer = adam
	if set, ok := oa.(SetLR); !ok {
		t.Fatal("Adam must implement SetLR")
	} else {
		set.SetLR(0.02)
	}
	if adam.LR != 0.02 {
		t.Fatal("Adam SetLR ineffective")
	}
}

func TestMaxPoolPadded(t *testing.T) {
	p, err := NewMaxPool2DPadded(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3×3/s1/p1 keeps spatial size.
	out, err := p.OutShape([]int{2, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 8 || out[2] != 8 {
		t.Fatalf("padded pool out %v", out)
	}
	// Known values: negative input — padding must never win the max.
	x := tensor.Full(-2, 1, 1, 3, 3)
	x.Set(-1, 0, 0, 1, 1)
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data() {
		if v > -1 || v < -2 {
			t.Fatalf("padding leaked into max: %v", y.Data())
		}
	}
	if _, err := NewMaxPool2DPadded(3, 1, 3); err == nil {
		t.Fatal("pad >= k must be rejected")
	}
}

func TestMaxPoolPaddedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p, err := NewMaxPool2DPadded(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)
	checkInputGradient(t, p, x, 1e-5)
}

func TestAvgPoolPaddedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p, err := NewAvgPool2DPadded(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.OutShape([]int{2, 6, 6})
	if err != nil || out[1] != 6 || out[2] != 6 {
		t.Fatalf("padded avg pool out %v, %v", out, err)
	}
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)
	checkInputGradient(t, p, x, 1e-5)
	if _, err := NewAvgPool2DPadded(3, 1, 3); err == nil {
		t.Fatal("pad >= k must be rejected")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", tensor.New(2))
	p.Grad.Data()[0], p.Grad.Data()[1] = 3, 4 // norm 5
	if got := ClipGradNorm([]*Param{p}, 2.5); got != 5 {
		t.Fatalf("pre-clip norm %v", got)
	}
	if math.Abs(p.Grad.Data()[0]-1.5) > 1e-12 || math.Abs(p.Grad.Data()[1]-2) > 1e-12 {
		t.Fatalf("clipped grads %v", p.Grad.Data())
	}
	// Below the threshold: untouched.
	p.Grad.Data()[0], p.Grad.Data()[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 2.5)
	if p.Grad.Data()[0] != 0.3 {
		t.Fatal("sub-threshold grads must not change")
	}
	// maxNorm 0 disables.
	p.Grad.Data()[0] = 100
	ClipGradNorm([]*Param{p}, 0)
	if p.Grad.Data()[0] != 100 {
		t.Fatal("maxNorm=0 must disable clipping")
	}
	// Zero gradients are a no-op (no 0/0).
	z := newParam("z", tensor.New(2))
	if got := ClipGradNorm([]*Param{z}, 1); got != 0 {
		t.Fatalf("zero-grad norm %v", got)
	}
}
