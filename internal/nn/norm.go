package nn

import (
	"fmt"
	"math"

	"a4nn/internal/tensor"
)

// BatchNorm2D normalises each channel of an NCHW batch to zero mean and
// unit variance using batch statistics during training (while maintaining
// running statistics for evaluation), then applies a learned affine
// transform gamma·x̂ + beta.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate, typically 0.1

	Gamma, Beta *Param
	// RunningMean and RunningVar are the statistics used at evaluation
	// time. They warm up as a cumulative average over the first 1/Momentum
	// updates and then track as an exponential moving average — without
	// the warm-up, networks with deep batch-norm chains (e.g. stacked
	// micro cells) evaluate at chance for many epochs because the
	// compounding mismatch between batch and (still near-initial) running
	// statistics collapses eval-mode activations. They are state, not
	// trainable parameters.
	RunningMean, RunningVar *tensor.Tensor
	// updates counts training batches seen, for the warm-up schedule.
	updates int

	// forward cache
	xhat    *tensor.Tensor
	std     []float64 // per-channel sqrt(var+eps) of the batch
	inShape []int
	y, dx   *tensor.Tensor // pooled output / input-gradient buffers
}

// NewBatchNorm2D creates a batch-normalisation layer over c channels.
func NewBatchNorm2D(c int) (*BatchNorm2D, error) {
	if c <= 0 {
		return nil, fmt.Errorf("nn: BatchNorm2D invalid channels %d", c)
	}
	return &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       newParam("bn.gamma", tensor.Ones(c)),
		Beta:        newParam("bn.beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
	}, nil
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return fmt.Sprintf("bn(%d)", b.C) }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutShape implements Layer.
func (b *BatchNorm2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.C {
		return nil, errShape(b.Name(), []int{b.C, -1, -1}, in)
	}
	return append([]int(nil), in...), nil
}

// FLOPs implements Layer: normalise + affine ≈ 4 ops per element.
func (b *BatchNorm2D) FLOPs(in []int) int64 { return 4 * int64(shapeProduct(in)) }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != b.C {
		return nil, errShape(b.Name(), "(N,C,H,W)", x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	spat := h * w
	cnt := float64(n * spat)
	b.y = ws.Obtain(b.y, n, c, h, w)
	y := b.y
	xd, yd := x.Data(), y.Data()
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()

	if train {
		b.updates++
		// Cumulative average until 1/Momentum updates, then EMA.
		m := b.Momentum
		if cma := 1 / float64(b.updates); cma > m {
			m = cma
		}
		xhat := ws.Obtain(b.xhat, n, c, h, w)
		xh := xhat.Data()
		if cap(b.std) < c {
			b.std = make([]float64, c)
		}
		std := b.std[:c]
		for ch := 0; ch < c; ch++ {
			mean, m2 := 0.0, 0.0
			for i := 0; i < n; i++ {
				for _, v := range xd[(i*c+ch)*spat : (i*c+ch+1)*spat] {
					mean += v
				}
			}
			mean /= cnt
			for i := 0; i < n; i++ {
				for _, v := range xd[(i*c+ch)*spat : (i*c+ch+1)*spat] {
					d := v - mean
					m2 += d * d
				}
			}
			variance := m2 / cnt
			std[ch] = math.Sqrt(variance + b.Eps)
			inv := 1 / std[ch]
			for i := 0; i < n; i++ {
				off := (i*c + ch) * spat
				for s := 0; s < spat; s++ {
					xn := (xd[off+s] - mean) * inv
					xh[off+s] = xn
					yd[off+s] = gd[ch]*xn + bd[ch]
				}
			}
			// Update running statistics.
			rm, rv := b.RunningMean.Data(), b.RunningVar.Data()
			rm[ch] = (1-m)*rm[ch] + m*mean
			rv[ch] = (1-m)*rv[ch] + m*variance
		}
		b.xhat, b.std, b.inShape = xhat, std, append(b.inShape[:0], n, c, h, w)
		return y, nil
	}

	// Evaluation: use running statistics.
	rm, rv := b.RunningMean.Data(), b.RunningVar.Data()
	for ch := 0; ch < c; ch++ {
		inv := 1 / math.Sqrt(rv[ch]+b.Eps)
		for i := 0; i < n; i++ {
			off := (i*c + ch) * spat
			for s := 0; s < spat; s++ {
				yd[off+s] = gd[ch]*(xd[off+s]-rm[ch])*inv + bd[ch]
			}
		}
	}
	return y, nil
}

// Backward implements Layer using the standard batch-norm gradient:
//
//	dx̂ = dy·γ
//	dx = (dx̂ − mean(dx̂) − x̂·mean(dx̂·x̂)) / std
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if b.xhat == nil {
		return nil, fmt.Errorf("nn: %s: Backward without prior training Forward", b.Name())
	}
	n, c, h, w := b.inShape[0], b.inShape[1], b.inShape[2], b.inShape[3]
	if grad.Rank() != 4 || grad.Dim(0) != n || grad.Dim(1) != c || grad.Dim(2) != h || grad.Dim(3) != w {
		return nil, errShape(b.Name()+" backward", b.inShape, grad.Shape())
	}
	spat := h * w
	cnt := float64(n * spat)
	dx := ws.Obtain(b.dx, n, c, h, w)
	b.dx = dx
	gd := grad.Data()
	xh := b.xhat.Data()
	dd := dx.Data()
	gamma := b.Gamma.Value.Data()
	ggrad, bgrad := b.Gamma.Grad.Data(), b.Beta.Grad.Data()

	for ch := 0; ch < c; ch++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for i := 0; i < n; i++ {
			off := (i*c + ch) * spat
			for s := 0; s < spat; s++ {
				dy := gd[off+s]
				sumDy += dy
				sumDyXhat += dy * xh[off+s]
			}
		}
		ggrad[ch] += sumDyXhat
		bgrad[ch] += sumDy
		meanDy := sumDy / cnt
		meanDyXhat := sumDyXhat / cnt
		scale := gamma[ch] / b.std[ch]
		for i := 0; i < n; i++ {
			off := (i*c + ch) * spat
			for s := 0; s < spat; s++ {
				dd[off+s] = scale * (gd[off+s] - meanDy - xh[off+s]*meanDyXhat)
			}
		}
	}
	return dx, nil
}
