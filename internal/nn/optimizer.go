package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	// Name identifies the optimizer and its key hyperparameters.
	Name() string
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

// NewSGD creates an SGD optimizer; momentum 0 disables the velocity term.
func NewSGD(lr, momentum, weightDecay float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: SGD learning rate must be positive, got %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("nn: SGD momentum %v outside [0,1)", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param][]float64)}, nil
}

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g,m=%g)", s.LR, s.Momentum) }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := p.Value.Data()
		g := p.Grad.Data()
		if s.WeightDecay != 0 {
			for i := range g {
				g[i] += s.WeightDecay * v[i]
			}
		}
		if s.Momentum > 0 {
			vel, ok := s.velocity[p]
			if !ok {
				vel = make([]float64, len(v))
				s.velocity[p] = vel
			}
			for i := range v {
				vel[i] = s.Momentum*vel[i] + g[i]
				v[i] -= s.LR * vel[i]
			}
		} else {
			for i := range v {
				v[i] -= s.LR * g[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction and
// optional decoupled weight decay (AdamW-style).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam creates an Adam optimizer with the usual defaults for zero-value
// betas/eps (0.9, 0.999, 1e-8).
func NewAdam(lr, weightDecay float64) (*Adam, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: Adam learning rate must be positive, got %v", lr)
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64)}, nil
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", a.LR) }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		val := p.Value.Data()
		g := p.Grad.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(val))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(val))
			a.v[p] = v
		}
		for i := range val {
			gi := g[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			upd := mhat / (math.Sqrt(vhat) + a.Eps)
			if a.WeightDecay != 0 {
				upd += a.WeightDecay * val[i]
			}
			val[i] -= a.LR * upd
		}
		p.ZeroGrad()
	}
}
