// Package nn is a from-scratch neural-network training engine: layers
// (convolution, dense, pooling, batch normalisation, dropout), losses,
// optimizers, and a Network container with forward/backward passes,
// parameter/FLOPs accounting, and state serialization.
//
// It plays the role PyTorch plays in the paper: the NAS decodes genomes
// into Networks, trains them epoch by epoch, and reports per-epoch
// validation accuracy to the A4NN prediction engine. Batch tensors use
// the NCHW layout for convolutional layers and (N, features) for dense
// layers; heavy kernels inherit goroutine parallelism from
// internal/tensor.
package nn

import (
	"fmt"

	"a4nn/internal/tensor"
)

// Param is a trainable parameter: its value, the gradient accumulated by
// the latest backward pass, and a name used in state dictionaries.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter with a zeroed gradient of the same shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward caches whatever
// it needs for the subsequent Backward; a Layer therefore serves one
// forward/backward pair at a time (each network is trained by a single
// goroutine; parallelism lives inside the tensor kernels and across
// networks in the resource manager).
type Layer interface {
	// Name returns a short human-readable identifier, e.g. "conv3x3(16)".
	Name() string
	// Forward computes the layer output for a batch. train selects
	// training-time behaviour (batch statistics, dropout masks).
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward consumes ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way. It must follow a Forward call
	// with train=true.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutShape returns the per-sample output shape for a per-sample input
	// shape (excluding the batch dimension).
	OutShape(in []int) ([]int, error)
	// FLOPs estimates the floating-point operations of one forward pass
	// for a single sample with the given per-sample input shape.
	FLOPs(in []int) int64
}

// shapeProduct multiplies the dimensions of a per-sample shape.
func shapeProduct(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// errShape builds a consistent shape-mismatch error.
func errShape(layer string, want, got interface{}) error {
	return fmt.Errorf("nn: %s: expected input shape %v, got %v", layer, want, got)
}
