package nn

import (
	"fmt"

	"a4nn/internal/tensor"
)

// MaxPool2D is max pooling with a square window, equal stride, and
// optional symmetric zero-padding (padded positions never win the max)
// over NCHW batches. The common configurations are 2×2/s2 (downsampling)
// and 3×3/s1/p1 (same-size, used by the micro search space's pooling op).
type MaxPool2D struct {
	K, Stride, Pad int

	// forward cache
	argmax  []int // flat input index of each output's maximum
	inShape []int
	y, dx   *tensor.Tensor // pooled output / input-gradient buffers
}

// NewMaxPool2D creates an unpadded max-pooling layer.
func NewMaxPool2D(k, stride int) (*MaxPool2D, error) {
	return NewMaxPool2DPadded(k, stride, 0)
}

// NewMaxPool2DPadded creates a max-pooling layer with symmetric padding.
func NewMaxPool2DPadded(k, stride, pad int) (*MaxPool2D, error) {
	if k <= 0 || stride <= 0 || pad < 0 || pad >= k {
		return nil, fmt.Errorf("nn: MaxPool2D invalid k=%d stride=%d pad=%d", k, stride, pad)
	}
	return &MaxPool2D{K: k, Stride: stride, Pad: pad}, nil
}

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("maxpool%dx%d/s%d,p%d", p.K, p.K, p.Stride, p.Pad)
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, errShape(p.Name(), "(C,H,W)", in)
	}
	oh, err := tensor.ConvOutSize(in[1], p.K, p.Stride, p.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", p.Name(), err)
	}
	ow, err := tensor.ConvOutSize(in[2], p.K, p.Stride, p.Pad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", p.Name(), err)
	}
	return []int{in[0], oh, ow}, nil
}

// FLOPs implements Layer: K²−1 comparisons per output element.
func (p *MaxPool2D) FLOPs(in []int) int64 {
	out, err := p.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(shapeProduct(out)) * int64(p.K*p.K-1)
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, errShape(p.Name(), "(N,C,H,W)", x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out, err := p.OutShape([]int{c, h, w})
	if err != nil {
		return nil, err
	}
	oh, ow := out[1], out[2]
	p.y = ws.Obtain(p.y, n, c, oh, ow)
	y := p.y
	if train {
		if cap(p.argmax) < y.Len() {
			p.argmax = make([]int, y.Len())
		}
		p.argmax = p.argmax[:y.Len()]
		p.inShape = append(p.inShape[:0], n, c, h, w)
	}
	xd, yd := x.Data(), y.Data()
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := -1
					best := 0.0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if bestIdx < 0 || xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					// A window fully in padding (impossible for pad < k)
					// would leave bestIdx = -1; guard anyway.
					if bestIdx < 0 {
						best = 0
					}
					yd[oi] = best
					if train {
						p.argmax[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer: the gradient routes to each window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if p.argmax == nil {
		return nil, fmt.Errorf("nn: %s: Backward without prior training Forward", p.Name())
	}
	if grad.Len() != len(p.argmax) {
		return nil, fmt.Errorf("nn: %s: gradient has %d elements, expected %d", p.Name(), grad.Len(), len(p.argmax))
	}
	// Zeroed: the gradient scatters sparsely into the pooled buffer.
	dx := ws.ObtainZeroed(p.dx, p.inShape...)
	p.dx = dx
	dd, gd := dx.Data(), grad.Data()
	for oi, idx := range p.argmax {
		if idx >= 0 {
			dd[idx] += gd[oi]
		}
	}
	return dx, nil
}

// GlobalAvgPool2D averages each channel's spatial map to a single value,
// turning (N, C, H, W) into (N, C). It replaces large dense layers at the
// head of the genome-decoded networks, keeping FLOPs low.
type GlobalAvgPool2D struct {
	inShape []int
	y, dx   *tensor.Tensor
}

// NewGlobalAvgPool2D creates the layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Name implements Layer.
func (g *GlobalAvgPool2D) Name() string { return "gap" }

// Params implements Layer.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (g *GlobalAvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, errShape("gap", "(C,H,W)", in)
	}
	return []int{in[0]}, nil
}

// FLOPs implements Layer.
func (g *GlobalAvgPool2D) FLOPs(in []int) int64 { return int64(shapeProduct(in)) }

// Forward implements Layer.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, errShape("gap", "(N,C,H,W)", x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	spat := h * w
	g.y = ws.Obtain(g.y, n, c)
	y := g.y
	xd, yd := x.Data(), y.Data()
	inv := 1 / float64(spat)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for _, v := range xd[(i*c+ch)*spat : (i*c+ch+1)*spat] {
				s += v
			}
			yd[i*c+ch] = s * inv
		}
	}
	if train {
		g.inShape = append(g.inShape[:0], n, c, h, w)
	}
	return y, nil
}

// Backward implements Layer.
func (g *GlobalAvgPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if g.inShape == nil {
		return nil, fmt.Errorf("nn: gap: Backward without prior training Forward")
	}
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != c {
		return nil, errShape("gap backward", []int{n, c}, grad.Shape())
	}
	spat := h * w
	inv := 1 / float64(spat)
	dx := ws.Obtain(g.dx, n, c, h, w)
	g.dx = dx
	dd, gd := dx.Data(), grad.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			v := gd[i*c+ch] * inv
			row := dd[(i*c+ch)*spat : (i*c+ch+1)*spat]
			for s := range row {
				row[s] = v
			}
		}
	}
	return dx, nil
}
