package nn

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"a4nn/internal/obs"
	"a4nn/internal/tensor"
)

// Profiler accounts per-layer forward/backward wall time and FLOPs
// into labelled series of a metrics registry:
//
//	a4nn_nn_layer_forward_seconds{layer="conv3x3"}   histogram
//	a4nn_nn_layer_backward_seconds{layer="conv3x3"}  histogram
//	a4nn_nn_layer_flops_total{layer="conv3x3"}       counter
//	a4nn_nn_layer_calls_total{layer="conv3x3"}       counter
//
// Layers are keyed by kind — the layer Name() truncated at its first
// configuration delimiter ('(' or '/'), so every conv3x3 shares one
// series and metric cardinality stays bounded by the layer vocabulary,
// not the search space.
//
// One profiler is installed process-wide with SetProfiler, mirroring
// the package's workspace: training runs one network per goroutine,
// and an atomic global keeps the disabled path at a single load and
// branch with zero allocations (see BenchmarkDisabledProfiler and the
// bench-gate).
type Profiler struct {
	reg   *obs.Registry
	mu    sync.Mutex
	kinds map[string]*layerInstr

	matmulCalls  *obs.Gauge
	matmulFLOPs  *obs.Gauge
	matmulPacked *obs.Gauge
}

// layerInstr holds the resolved handles of one layer kind.
type layerInstr struct {
	fwd   *obs.Histogram
	bwd   *obs.Histogram
	flops *obs.Counter
	calls *obs.Counter
}

// NewProfiler returns a profiler writing into reg (nil reg returns
// nil: installing a nil profiler disables profiling).
func NewProfiler(reg *obs.Registry) *Profiler {
	if reg == nil {
		return nil
	}
	return &Profiler{
		reg:          reg,
		kinds:        make(map[string]*layerInstr),
		matmulCalls:  reg.Gauge("a4nn_tensor_matmul_calls"),
		matmulFLOPs:  reg.Gauge("a4nn_tensor_matmul_flops"),
		matmulPacked: reg.Gauge("a4nn_tensor_matmul_packed_calls"),
	}
}

// activeProf is the process-wide installed profiler (nil = disabled).
var activeProf atomic.Pointer[Profiler]

// SetProfiler installs p as the process-wide layer profiler (nil
// uninstalls). It also switches the tensor package's GEMM kernel
// counters on or off to match.
func SetProfiler(p *Profiler) {
	if p == nil {
		activeProf.Store(nil)
		tensor.EnableKernelCounters(false)
		return
	}
	activeProf.Store(p)
	tensor.EnableKernelCounters(true)
}

// ActiveProfiler returns the installed profiler (nil when disabled).
func ActiveProfiler() *Profiler { return activeProf.Load() }

// SyncKernelCounters copies the tensor package's GEMM kernel totals
// into the profiler's gauges; call at shutdown (or any snapshot point)
// before flushing metrics. Nil-safe.
func (p *Profiler) SyncKernelCounters() {
	if p == nil {
		return
	}
	calls, flops := tensor.KernelCounters()
	p.matmulCalls.Set(float64(calls))
	p.matmulFLOPs.Set(float64(flops))
	p.matmulPacked.Set(float64(tensor.PackedKernelCalls()))
}

// layerKind maps a layer Name() to its metric label: the name up to
// the first configuration delimiter.
func layerKind(name string) string {
	if i := strings.IndexAny(name, "(/"); i >= 0 {
		return name[:i]
	}
	return name
}

// instr resolves (registering on first use) the handles for a kind.
func (p *Profiler) instr(kind string) *layerInstr {
	p.mu.Lock()
	defer p.mu.Unlock()
	li, ok := p.kinds[kind]
	if !ok {
		li = &layerInstr{
			fwd:   p.reg.Histogram(`a4nn_nn_layer_forward_seconds{layer="`+kind+`"}`, obs.LayerSecondsBuckets),
			bwd:   p.reg.Histogram(`a4nn_nn_layer_backward_seconds{layer="`+kind+`"}`, obs.LayerSecondsBuckets),
			flops: p.reg.Counter(`a4nn_nn_layer_flops_total{layer="` + kind + `"}`),
			calls: p.reg.Counter(`a4nn_nn_layer_calls_total{layer="` + kind + `"}`),
		}
		p.kinds[kind] = li
	}
	return li
}

// profBinding caches a network's per-layer handles and per-sample
// FLOPs so the profiled hot loop does no map lookups and no shape
// walking. It is rebuilt when the installed profiler changes.
type profBinding struct {
	p     *Profiler
	slots []*layerInstr
	flops []int64 // per-sample forward FLOPs per layer
}

// binding returns the network's binding for p, building it on first
// use. Networks are trained by a single goroutine (see Layer), so the
// cached binding needs no lock.
func (n *Network) binding(p *Profiler) *profBinding {
	if n.prof != nil && n.prof.p == p {
		return n.prof
	}
	b := &profBinding{
		p:     p,
		slots: make([]*layerInstr, len(n.Layers)),
		flops: make([]int64, len(n.Layers)),
	}
	shape := n.InShape
	for i, l := range n.Layers {
		b.slots[i] = p.instr(layerKind(l.Name()))
		b.flops[i] = l.FLOPs(shape)
		out, err := l.OutShape(shape)
		if err != nil {
			break // downstream layers keep zero FLOPs; timing still works
		}
		shape = out
	}
	n.prof = b
	return b
}

// forwardProfiled is Network.Forward with per-layer accounting.
func (n *Network) forwardProfiled(p *Profiler, x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	b := n.binding(p)
	batch := int64(1)
	if x.Rank() > 0 {
		batch = int64(x.Dim(0))
	}
	var err error
	for i, l := range n.Layers {
		start := time.Now()
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, wrapLayerErr(n, i, "forward", err)
		}
		s := b.slots[i]
		s.fwd.Observe(time.Since(start).Seconds())
		s.calls.Inc()
		s.flops.Add(int(batch * b.flops[i]))
	}
	return x, nil
}

// backwardProfiled is Network.Backward with per-layer accounting.
func (n *Network) backwardProfiled(p *Profiler, grad *tensor.Tensor) error {
	b := n.binding(p)
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		start := time.Now()
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return wrapLayerErr(n, i, "backward", err)
		}
		b.slots[i].bwd.Observe(time.Since(start).Seconds())
	}
	return nil
}
