package nn

import (
	"math/rand"
	"testing"

	"a4nn/internal/obs"
	"a4nn/internal/tensor"
)

// profNet builds a network containing every layer type the decoded
// genomes can produce, plus one training batch.
func profNet(t testing.TB) (*Network, []Batch) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	conv, err := NewConv2D(rng, 3, 4, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm2D(4)
	if err != nil {
		t.Fatal(err)
	}
	maxp, err := NewMaxPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	avgp, err := NewAvgPool2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := NewDropout(rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDense(rng, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// gap collapses (N,4,2,2) to (N,4); the trailing flatten is a rank-2
	// no-op, present so its instrumentation is exercised too.
	net, err := NewNetwork("prof", []int{3, 8, 8},
		conv, bn, NewReLU(), maxp, avgp, drop, NewGlobalAvgPool2D(), NewFlatten(), dense)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 8, 3, 8, 8)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	return net, []Batch{{X: x, Labels: labels}}
}

func TestLayerKind(t *testing.T) {
	cases := map[string]string{
		"conv3x3(3->4,s1,p1)":       "conv3x3",
		"bn(4)":                     "bn",
		"relu":                      "relu",
		"maxpool2x2/s2,p0":          "maxpool2x2",
		"avgpool2x2/s2,p0":          "avgpool2x2",
		"dropout(0.5)":              "dropout",
		"gap":                       "gap",
		"flatten":                   "flatten",
		"dense(4->10)":              "dense",
		"phase(w=8,nodes=4,skip=t)": "phase",
		"cell(w=8,nodes=3,outs=1)":  "cell",
	}
	for name, want := range cases {
		if got := layerKind(name); got != want {
			t.Errorf("layerKind(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestProfilerCoversEveryLayerType runs a real TrainEpoch through a
// network containing every layer type and checks that each kind has
// forward and backward time observed and (except the pure-reshape
// flatten) FLOPs accounted.
func TestProfilerCoversEveryLayerType(t *testing.T) {
	reg := obs.NewRegistry()
	tensor.ResetKernelCounters()
	SetProfiler(NewProfiler(reg))
	defer SetProfiler(nil)

	net, batches := profNet(t)
	opt, err := NewSGD(0.01, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainEpoch(net, opt, batches); err != nil {
		t.Fatal(err)
	}

	kinds := []string{"conv3x3", "bn", "relu", "maxpool2x2", "avgpool2x2", "dropout", "gap", "flatten", "dense"}
	for _, kind := range kinds {
		fwd := reg.Histogram(`a4nn_nn_layer_forward_seconds{layer="`+kind+`"}`, nil)
		bwd := reg.Histogram(`a4nn_nn_layer_backward_seconds{layer="`+kind+`"}`, nil)
		calls := reg.Counter(`a4nn_nn_layer_calls_total{layer="` + kind + `"}`)
		flops := reg.Counter(`a4nn_nn_layer_flops_total{layer="` + kind + `"}`)
		if fwd.Count() == 0 {
			t.Errorf("%s: no forward time observed", kind)
		}
		if bwd.Count() == 0 {
			t.Errorf("%s: no backward time observed", kind)
		}
		if calls.Value() == 0 {
			t.Errorf("%s: no calls counted", kind)
		}
		if kind != "flatten" && flops.Value() == 0 {
			t.Errorf("%s: no FLOPs accounted", kind)
		}
	}

	// The conv and dense layers run on the GEMM kernels, so the tensor
	// kernel counters must have moved, and syncing must surface them as
	// gauges.
	calls, flops := tensor.KernelCounters()
	if calls == 0 || flops == 0 {
		t.Fatalf("kernel counters calls=%d flops=%d, want both > 0", calls, flops)
	}
	ActiveProfiler().SyncKernelCounters()
	if got := reg.Gauge("a4nn_tensor_matmul_calls").Value(); got != float64(calls) {
		t.Fatalf("a4nn_tensor_matmul_calls gauge = %v, want %d", got, calls)
	}
	if got := reg.Gauge("a4nn_tensor_matmul_flops").Value(); got != float64(flops) {
		t.Fatalf("a4nn_tensor_matmul_flops gauge = %v, want %d", got, flops)
	}
	if got := reg.Gauge("a4nn_tensor_matmul_packed_calls").Value(); got != float64(tensor.PackedKernelCalls()) {
		t.Fatalf("a4nn_tensor_matmul_packed_calls gauge = %v, want %d", got, tensor.PackedKernelCalls())
	}
}

// TestProfilerFLOPsScaleWithBatch pins the accounting contract: booked
// FLOPs are per-sample layer FLOPs times the batch size.
func TestProfilerFLOPsScaleWithBatch(t *testing.T) {
	reg := obs.NewRegistry()
	SetProfiler(NewProfiler(reg))
	defer SetProfiler(nil)

	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork("flops", []int{6}, NewReLU())
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 0, 1, 4, 6) // batch 4, 6 features
	if _, err := net.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	want := uint64(4 * 6) // one comparison per element
	if got := reg.Counter(`a4nn_nn_layer_flops_total{layer="relu"}`).Value(); got != want {
		t.Fatalf("relu FLOPs = %d, want %d", got, want)
	}
}

// TestDisabledProfilerIsFree pins the disabled path at zero
// allocations: with no profiler installed, the steady-state
// forward/backward of a pooled-buffer network must not allocate.
func TestDisabledProfilerIsFree(t *testing.T) {
	SetProfiler(nil)
	net, x, grad := reluNet(t)
	// Warm the pooled buffers and caches.
	if _, err := net.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := net.Forward(x, true); err != nil {
			t.Fatal(err)
		}
		if err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled profiler forward/backward allocates %.0f per op, want 0", allocs)
	}
}

// reluNet builds a ReLU-only network whose steady-state training pass
// is allocation-free (pooled y/dx buffers, cached masks).
func reluNet(t testing.TB) (*Network, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	net, err := NewNetwork("relu-only", []int{64}, NewReLU(), NewReLU(), NewReLU())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 0, 1, 16, 64)
	grad := tensor.Ones(16, 64)
	return net, x, grad
}

// BenchmarkDisabledProfiler is the bench-gate's disabled-path probe:
// per-layer hooks off must stay at 0 allocs/op.
func BenchmarkDisabledProfiler(b *testing.B) {
	SetProfiler(nil)
	net, x, grad := reluNet(b)
	if _, err := net.Forward(x, true); err != nil {
		b.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x, true); err != nil {
			b.Fatal(err)
		}
		if err := net.Backward(grad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiledTrainStep measures the same train step as
// BenchmarkTrainStep with the profiler installed, so the hook overhead
// is visible next to the baseline.
func BenchmarkProfiledTrainStep(b *testing.B) {
	reg := obs.NewRegistry()
	SetProfiler(NewProfiler(reg))
	defer SetProfiler(nil)
	net, batches := benchConvNet(b)
	opt, err := NewSGD(0.01, 0.9, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainEpoch(net, opt, batches); err != nil {
			b.Fatal(err)
		}
	}
}
