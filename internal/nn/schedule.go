package nn

import (
	"fmt"
	"math"
)

// LRScheduler maps a 1-based epoch to a learning rate. The training loop
// (core.RealTrainer) queries it before each epoch and applies the rate to
// the optimizer.
type LRScheduler interface {
	// Name identifies the schedule.
	Name() string
	// LR returns the learning rate for the given epoch (1-based).
	LR(epoch int) float64
}

// SetLR is implemented by optimizers whose learning rate can be changed
// between epochs; both SGD and Adam implement it.
type SetLR interface {
	SetLR(lr float64)
}

// SetLR implements the SetLR interface for SGD.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// SetLR implements the SetLR interface for Adam.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// ConstantLR keeps a fixed learning rate.
type ConstantLR struct{ Base float64 }

// Name implements LRScheduler.
func (c ConstantLR) Name() string { return fmt.Sprintf("const(%g)", c.Base) }

// LR implements LRScheduler.
func (c ConstantLR) LR(epoch int) float64 { return c.Base }

// StepLR multiplies the base rate by Gamma every StepSize epochs.
type StepLR struct {
	Base     float64
	Gamma    float64
	StepSize int
}

// NewStepLR validates and builds a step schedule.
func NewStepLR(base, gamma float64, stepSize int) (StepLR, error) {
	if base <= 0 || gamma <= 0 || gamma > 1 || stepSize < 1 {
		return StepLR{}, fmt.Errorf("nn: invalid StepLR(base=%v, gamma=%v, step=%d)", base, gamma, stepSize)
	}
	return StepLR{Base: base, Gamma: gamma, StepSize: stepSize}, nil
}

// Name implements LRScheduler.
func (s StepLR) Name() string {
	return fmt.Sprintf("step(%g,x%g/%d)", s.Base, s.Gamma, s.StepSize)
}

// LR implements LRScheduler.
func (s StepLR) LR(epoch int) float64 {
	if epoch < 1 {
		epoch = 1
	}
	return s.Base * math.Pow(s.Gamma, float64((epoch-1)/s.StepSize))
}

// CosineLR anneals the rate from Base to Min over TotalEpochs following a
// half cosine, the schedule NSGA-Net itself trains with.
type CosineLR struct {
	Base, Min   float64
	TotalEpochs int
}

// NewCosineLR validates and builds a cosine schedule.
func NewCosineLR(base, min float64, totalEpochs int) (CosineLR, error) {
	if base <= 0 || min < 0 || min > base || totalEpochs < 1 {
		return CosineLR{}, fmt.Errorf("nn: invalid CosineLR(base=%v, min=%v, total=%d)", base, min, totalEpochs)
	}
	return CosineLR{Base: base, Min: min, TotalEpochs: totalEpochs}, nil
}

// Name implements LRScheduler.
func (c CosineLR) Name() string {
	return fmt.Sprintf("cosine(%g->%g/%d)", c.Base, c.Min, c.TotalEpochs)
}

// LR implements LRScheduler.
func (c CosineLR) LR(epoch int) float64 {
	if epoch < 1 {
		epoch = 1
	}
	if epoch > c.TotalEpochs {
		epoch = c.TotalEpochs
	}
	t := float64(epoch-1) / float64(maxInt(c.TotalEpochs-1, 1))
	return c.Min + (c.Base-c.Min)*(1+math.Cos(math.Pi*t))/2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
