package nn

import "a4nn/internal/tensor"

// ws is the package-wide kernel workspace. Every layer obtains its forward
// caches, gradient buffers, and rearrange scratch from here, so in steady
// state (same shapes step after step) a training step performs no tensor
// allocations: buffers are reused in place, and when shapes change (last
// partial batch, next NAS candidate) the old storage is recycled through
// the workspace's size-classed pools instead of being garbage.
//
// The workspace is safe for concurrent use, so networks trained on
// different goroutines (the resource manager trains one network per
// simulated device) share one pool of scratch memory. Each buffer is
// privately owned by exactly one layer between Obtain and the next
// Obtain/Put, which is what makes the reuse race-free.
var ws = tensor.NewWorkspace()
