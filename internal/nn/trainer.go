package nn

import (
	"fmt"

	"a4nn/internal/tensor"
)

// Batch is one mini-batch of classification data: images (N, C, H, W) or
// feature vectors (N, D), plus integer class labels.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// TrainEpoch runs one optimisation epoch: for every batch, a forward pass,
// softmax cross-entropy, a backward pass, and an optimizer step. It
// returns the mean loss across batches.
func TrainEpoch(net *Network, opt Optimizer, batches []Batch) (meanLoss float64, err error) {
	return TrainEpochClipped(net, opt, batches, 0)
}

// TrainEpochClipped is TrainEpoch with global gradient-norm clipping at
// maxNorm before each optimizer step (0 disables clipping).
func TrainEpochClipped(net *Network, opt Optimizer, batches []Batch, maxNorm float64) (meanLoss float64, err error) {
	if len(batches) == 0 {
		return 0, fmt.Errorf("nn: TrainEpoch with no batches")
	}
	var ce SoftmaxCrossEntropy
	// One pooled loss-gradient buffer serves every batch of the epoch.
	var grad *tensor.Tensor
	defer func() { ws.Put(grad) }()
	for bi, b := range batches {
		logits, err := net.Forward(b.X, true)
		if err != nil {
			return 0, fmt.Errorf("nn: batch %d: %w", bi, err)
		}
		if logits.Rank() != 2 {
			return 0, fmt.Errorf("nn: batch %d: network produced rank-%d logits", bi, logits.Rank())
		}
		grad = ws.Obtain(grad, logits.Dim(0), logits.Dim(1))
		loss, err := ce.LossInto(logits, b.Labels, grad)
		if err != nil {
			return 0, fmt.Errorf("nn: batch %d: %w", bi, err)
		}
		if err := net.Backward(grad); err != nil {
			return 0, fmt.Errorf("nn: batch %d: %w", bi, err)
		}
		params := net.Params()
		ClipGradNorm(params, maxNorm)
		opt.Step(params)
		meanLoss += loss
	}
	return meanLoss / float64(len(batches)), nil
}

// EvaluateClassifier computes classification accuracy (percent) over the
// batches with the network in evaluation mode.
func EvaluateClassifier(net *Network, batches []Batch) (accuracy float64, err error) {
	total, correctWeighted := 0, 0.0
	for bi, b := range batches {
		logits, err := net.Forward(b.X, false)
		if err != nil {
			return 0, fmt.Errorf("nn: eval batch %d: %w", bi, err)
		}
		acc, err := Accuracy(logits, b.Labels)
		if err != nil {
			return 0, fmt.Errorf("nn: eval batch %d: %w", bi, err)
		}
		n := len(b.Labels)
		correctWeighted += acc * float64(n)
		total += n
	}
	if total == 0 {
		return 0, fmt.Errorf("nn: EvaluateClassifier with no samples")
	}
	return correctWeighted / float64(total), nil
}
