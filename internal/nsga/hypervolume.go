package nsga

import (
	"fmt"
	"sort"
)

// Hypervolume2D computes the hypervolume indicator of a two-objective
// (minimisation) point set with respect to a reference point: the area
// dominated by the set and bounded by ref. It is the standard scalar
// measure of Pareto-front quality — larger is better — and is what the
// experiment harness uses to compare A4NN's frontiers against the
// standalone baseline (Figure 6) beyond eyeballing.
//
// Points outside the reference box contribute nothing. The input need not
// be mutually non-dominated; dominated points simply add no area.
func Hypervolume2D(points [][]float64, ref [2]float64) (float64, error) {
	var front [][]float64
	for i, p := range points {
		if len(p) != 2 {
			return 0, fmt.Errorf("nsga: hypervolume point %d has %d objectives, want 2", i, len(p))
		}
		if p[0] < ref[0] && p[1] < ref[1] {
			front = append(front, p)
		}
	}
	if len(front) == 0 {
		return 0, nil
	}
	// Sort by the first objective ascending; sweep, keeping the running
	// best (lowest) second objective.
	sort.Slice(front, func(a, b int) bool {
		if front[a][0] != front[b][0] {
			return front[a][0] < front[b][0]
		}
		return front[a][1] < front[b][1]
	})
	hv := 0.0
	prevX := front[0][0]
	bestY := front[0][1]
	for _, p := range front[1:] {
		if p[1] >= bestY {
			continue // dominated: no new area
		}
		hv += (p[0] - prevX) * (ref[1] - bestY)
		prevX = p[0]
		bestY = p[1]
	}
	hv += (ref[0] - prevX) * (ref[1] - bestY)
	return hv, nil
}
