package nsga

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Individual pairs a candidate payload with its evaluated objectives and
// the selection metadata NSGA-II assigns.
type Individual[T any] struct {
	Payload    T
	Objectives []float64 // minimised
	Rank       int       // Pareto front index (0 = non-dominated)
	Crowding   float64
	Generation int // generation the individual was created in
}

// Operators supplies the variation operators for payload type T.
type Operators[T any] interface {
	// Random draws a fresh candidate.
	Random(rng *rand.Rand) (T, error)
	// Crossover combines two parents into one child.
	Crossover(rng *rand.Rand, a, b T) (T, error)
	// Mutate perturbs a candidate (returning a new value).
	Mutate(rng *rand.Rand, t T) (T, error)
}

// Evaluator scores one generation of candidates. A4NN plugs in here: its
// evaluator trains the candidates on the resource manager with the
// prediction engine attached.
type Evaluator[T any] interface {
	// EvaluateAll returns one objective vector (minimised) per candidate.
	EvaluateAll(generation int, candidates []T) ([][]float64, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc[T any] func(generation int, candidates []T) ([][]float64, error)

// EvaluateAll implements Evaluator.
func (f EvaluatorFunc[T]) EvaluateAll(generation int, candidates []T) ([][]float64, error) {
	return f(generation, candidates)
}

// Config mirrors Table 2 of the paper: the NSGA-Net settings.
type Config struct {
	// PopulationSize is the size of the starting population (paper: 10).
	PopulationSize int
	// Offspring is the number of children per generation (paper: 10).
	Offspring int
	// Generations is the number of evolution steps (paper: 10).
	Generations int
	// Seed drives all stochastic choices.
	Seed int64
}

// DefaultConfig returns Table 2's values: population 10, offspring 10,
// 10 generations (the epoch budget lives with the evaluator).
func DefaultConfig() Config {
	return Config{PopulationSize: 10, Offspring: 10, Generations: 10, Seed: 1}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if c.PopulationSize < 2 {
		return fmt.Errorf("nsga: population must be ≥ 2, got %d", c.PopulationSize)
	}
	if c.Offspring < 1 {
		return fmt.Errorf("nsga: offspring must be ≥ 1, got %d", c.Offspring)
	}
	if c.Generations < 1 {
		return fmt.Errorf("nsga: generations must be ≥ 1, got %d", c.Generations)
	}
	return nil
}

// Result is the outcome of a run.
type Result[T any] struct {
	// Population is the final population after environmental selection.
	Population []Individual[T]
	// Evaluated holds every individual ever evaluated, in evaluation
	// order — the paper's "100 networks per test" (population +
	// offspring × generations... population + offspring·(generations−1)
	// with the first generation counted as generation 0).
	Evaluated []Individual[T]
}

// Run executes NSGA-II. Generation 0 evaluates the random initial
// population; each subsequent generation creates Offspring children by
// binary tournament selection, crossover, and mutation, evaluates them,
// and keeps the best PopulationSize individuals of parents ∪ children.
func Run[T any](cfg Config, ops Operators[T], eval Evaluator[T]) (*Result[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ops == nil || eval == nil {
		return nil, fmt.Errorf("nsga: operators and evaluator must be non-nil")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Generation 0: random population.
	candidates := make([]T, cfg.PopulationSize)
	for i := range candidates {
		c, err := ops.Random(rng)
		if err != nil {
			return nil, fmt.Errorf("nsga: random candidate %d: %w", i, err)
		}
		candidates[i] = c
	}
	res := &Result[T]{}
	pop, err := evaluateGeneration(0, candidates, eval, res)
	if err != nil {
		return nil, err
	}
	assignRankAndCrowding(pop)

	for gen := 1; gen < cfg.Generations; gen++ {
		children := make([]T, cfg.Offspring)
		for i := range children {
			pa := tournament(rng, pop)
			pb := tournament(rng, pop)
			child, err := ops.Crossover(rng, pa.Payload, pb.Payload)
			if err != nil {
				return nil, fmt.Errorf("nsga: crossover in generation %d: %w", gen, err)
			}
			child, err = ops.Mutate(rng, child)
			if err != nil {
				return nil, fmt.Errorf("nsga: mutation in generation %d: %w", gen, err)
			}
			children[i] = child
		}
		offspring, err := evaluateGeneration(gen, children, eval, res)
		if err != nil {
			return nil, err
		}
		pop = environmentalSelection(append(pop, offspring...), cfg.PopulationSize)
	}
	res.Population = pop
	return res, nil
}

// evaluateGeneration scores candidates and appends them to the run's
// evaluation log.
func evaluateGeneration[T any](gen int, candidates []T, eval Evaluator[T], res *Result[T]) ([]Individual[T], error) {
	objs, err := eval.EvaluateAll(gen, candidates)
	if err != nil {
		return nil, fmt.Errorf("nsga: evaluate generation %d: %w", gen, err)
	}
	if len(objs) != len(candidates) {
		return nil, fmt.Errorf("nsga: evaluator returned %d vectors for %d candidates", len(objs), len(candidates))
	}
	if err := validateObjectives(objs); err != nil {
		return nil, err
	}
	inds := make([]Individual[T], len(candidates))
	for i := range candidates {
		inds[i] = Individual[T]{Payload: candidates[i], Objectives: objs[i], Generation: gen}
	}
	res.Evaluated = append(res.Evaluated, inds...)
	return inds, nil
}

// assignRankAndCrowding fills in Rank and Crowding for a population.
func assignRankAndCrowding[T any](pop []Individual[T]) {
	objs := make([][]float64, len(pop))
	for i := range pop {
		objs[i] = pop[i].Objectives
	}
	for rank, front := range FastNonDominatedSort(objs) {
		dist := CrowdingDistance(objs, front)
		for _, i := range front {
			pop[i].Rank = rank
			pop[i].Crowding = dist[i]
		}
	}
}

// tournament runs a binary tournament: lower rank wins; ties break on
// larger crowding distance; remaining ties go to the first pick.
func tournament[T any](rng *rand.Rand, pop []Individual[T]) Individual[T] {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if b.Rank < a.Rank || (b.Rank == a.Rank && b.Crowding > a.Crowding) {
		return b
	}
	return a
}

// environmentalSelection keeps the n best of the combined population by
// (front, crowding distance), the elitist NSGA-II survivor selection.
func environmentalSelection[T any](combined []Individual[T], n int) []Individual[T] {
	assignRankAndCrowding(combined)
	objs := make([][]float64, len(combined))
	for i := range combined {
		objs[i] = combined[i].Objectives
	}
	var out []Individual[T]
	for _, front := range FastNonDominatedSort(objs) {
		if len(out)+len(front) <= n {
			for _, i := range front {
				out = append(out, combined[i])
			}
			continue
		}
		// Partial front: take the most crowded-out (largest distance) first.
		dist := CrowdingDistance(objs, front)
		sorted := append([]int(nil), front...)
		sort.Slice(sorted, func(a, b int) bool {
			da, db := dist[sorted[a]], dist[sorted[b]]
			if math.IsInf(da, 1) && math.IsInf(db, 1) {
				return sorted[a] < sorted[b]
			}
			return da > db
		})
		for _, i := range sorted[:n-len(out)] {
			out = append(out, combined[i])
		}
		break
	}
	return out
}
