package nsga

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false},
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{1}, []float64{1, 2}, false}, // mismatched lengths
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFastNonDominatedSortKnown(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // front 0
		{2, 3}, // front 0
		{4, 1}, // front 0
		{3, 4}, // front 1 (dominated by {2,3})
		{5, 5}, // front 2 (dominated by {3,4} and others)
	}
	fronts := FastNonDominatedSort(objs)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts: %v", len(fronts), fronts)
	}
	if len(fronts[0]) != 3 || len(fronts[1]) != 1 || fronts[1][0] != 3 || fronts[2][0] != 4 {
		t.Fatalf("fronts = %v", fronts)
	}
}

// Property: front assignment is sound — nothing in front k is dominated
// by anything in front k or later, and every member of front k>0 is
// dominated by someone in front k−1.
func TestFrontsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{math.Round(rng.Float64() * 10), math.Round(rng.Float64() * 10)}
		}
		fronts := FastNonDominatedSort(objs)
		covered := 0
		for k, front := range fronts {
			covered += len(front)
			for _, i := range front {
				for kk := k; kk < len(fronts); kk++ {
					for _, j := range fronts[kk] {
						if Dominates(objs[j], objs[i]) {
							return false
						}
					}
				}
				if k > 0 {
					dominated := false
					for _, j := range fronts[k-1] {
						if Dominates(objs[j], objs[i]) {
							dominated = true
							break
						}
					}
					if !dominated {
						return false
					}
				}
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrowdingDistance(t *testing.T) {
	objs := [][]float64{{1, 5}, {2, 3}, {4, 1}}
	d := CrowdingDistance(objs, []int{0, 1, 2})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("boundary distances must be +Inf: %v", d)
	}
	if math.IsInf(d[1], 1) || d[1] <= 0 {
		t.Fatalf("interior distance = %v", d[1])
	}
	// Degenerate front: identical objectives → zero spans handled.
	same := [][]float64{{1, 1}, {1, 1}}
	ds := CrowdingDistance(same, []int{0, 1})
	for _, v := range ds {
		if math.IsNaN(v) {
			t.Fatal("NaN crowding on degenerate front")
		}
	}
	if len(CrowdingDistance(objs, nil)) != 0 {
		t.Fatal("empty front must give empty map")
	}
}

func TestParetoFrontSorted(t *testing.T) {
	objs := [][]float64{{4, 1}, {1, 5}, {3, 4}, {2, 3}}
	front := ParetoFront(objs)
	want := []int{1, 3, 0} // sorted by first objective: (1,5), (2,3), (4,1)
	if len(front) != len(want) {
		t.Fatalf("front = %v", front)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
	if ParetoFront(nil) != nil {
		t.Fatal("empty input must give nil")
	}
}

// intOps evolves integers toward the two-objective problem
// minimise (x², (x−10)²) whose Pareto set is 0..10.
type intOps struct{}

func (intOps) Random(rng *rand.Rand) (int, error) { return rng.Intn(201) - 100, nil }
func (intOps) Crossover(rng *rand.Rand, a, b int) (int, error) {
	if rng.Intn(2) == 0 {
		return a, nil
	}
	return b, nil
}
func (intOps) Mutate(rng *rand.Rand, x int) (int, error) { return x + rng.Intn(7) - 3, nil }

func intEval(gen int, xs []int) ([][]float64, error) {
	objs := make([][]float64, len(xs))
	for i, x := range xs {
		fx := float64(x)
		objs[i] = []float64{fx * fx, (fx - 10) * (fx - 10)}
	}
	return objs, nil
}

func TestRunConvergesToParetoSet(t *testing.T) {
	cfg := Config{PopulationSize: 20, Offspring: 20, Generations: 30, Seed: 5}
	res, err := Run[int](cfg, intOps{}, EvaluatorFunc[int](intEval))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != 20 {
		t.Fatalf("final population %d", len(res.Population))
	}
	inSet := 0
	for _, ind := range res.Population {
		if ind.Payload >= 0 && ind.Payload <= 10 {
			inSet++
		}
	}
	if inSet < 15 {
		t.Fatalf("only %d/20 individuals in the Pareto set [0,10]", inSet)
	}
	wantEvals := 20 + 20*29
	if len(res.Evaluated) != wantEvals {
		t.Fatalf("evaluated %d individuals, want %d", len(res.Evaluated), wantEvals)
	}
}

func TestRunEvaluationCountMatchesPaper(t *testing.T) {
	// Table 2: pop 10, offspring 10, 10 generations → 100 networks/test.
	cfg := DefaultConfig()
	res, err := Run[int](cfg, intOps{}, EvaluatorFunc[int](intEval))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluated) != 100 {
		t.Fatalf("evaluated %d networks, want 100", len(res.Evaluated))
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := Config{PopulationSize: 8, Offspring: 8, Generations: 5, Seed: 42}
	r1, err := Run[int](cfg, intOps{}, EvaluatorFunc[int](intEval))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run[int](cfg, intOps{}, EvaluatorFunc[int](intEval))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Evaluated {
		if r1.Evaluated[i].Payload != r2.Evaluated[i].Payload {
			t.Fatal("runs with identical seeds diverged")
		}
	}
}

func TestRunValidation(t *testing.T) {
	bad := Config{PopulationSize: 1, Offspring: 1, Generations: 1}
	if _, err := Run[int](bad, intOps{}, EvaluatorFunc[int](intEval)); err == nil {
		t.Fatal("population < 2 must fail")
	}
	if _, err := Run[int](DefaultConfig(), nil, EvaluatorFunc[int](intEval)); err == nil {
		t.Fatal("nil operators must fail")
	}
	if err := (Config{PopulationSize: 5, Offspring: 0, Generations: 1}).Validate(); err == nil {
		t.Fatal("offspring=0 must fail")
	}
	if err := (Config{PopulationSize: 5, Offspring: 5, Generations: 0}).Validate(); err == nil {
		t.Fatal("generations=0 must fail")
	}
}

func TestRunRejectsBadEvaluator(t *testing.T) {
	wrongCount := EvaluatorFunc[int](func(gen int, xs []int) ([][]float64, error) {
		return [][]float64{{1, 1}}, nil
	})
	if _, err := Run[int](DefaultConfig(), intOps{}, wrongCount); err == nil {
		t.Fatal("short objective list must fail")
	}
	nanEval := EvaluatorFunc[int](func(gen int, xs []int) ([][]float64, error) {
		objs := make([][]float64, len(xs))
		for i := range objs {
			objs[i] = []float64{math.NaN(), 1}
		}
		return objs, nil
	})
	if _, err := Run[int](DefaultConfig(), intOps{}, nanEval); err == nil {
		t.Fatal("NaN objectives must fail")
	}
	failing := EvaluatorFunc[int](func(gen int, xs []int) ([][]float64, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, err := Run[int](DefaultConfig(), intOps{}, failing); err == nil {
		t.Fatal("evaluator errors must propagate")
	}
}

func TestEnvironmentalSelectionElitism(t *testing.T) {
	// The single best individual must always survive selection.
	pop := []Individual[int]{
		{Payload: 0, Objectives: []float64{0, 0}}, // dominates everything
		{Payload: 1, Objectives: []float64{5, 5}},
		{Payload: 2, Objectives: []float64{6, 4}},
		{Payload: 3, Objectives: []float64{4, 6}},
		{Payload: 4, Objectives: []float64{9, 9}},
	}
	out := environmentalSelection(pop, 2)
	if len(out) != 2 {
		t.Fatalf("selected %d", len(out))
	}
	found := false
	for _, ind := range out {
		if ind.Payload == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("elitism violated: best individual dropped")
	}
}

func TestValidateObjectives(t *testing.T) {
	if err := validateObjectives(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if err := validateObjectives([][]float64{{}}); err == nil {
		t.Fatal("zero-dim must fail")
	}
	if err := validateObjectives([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged must fail")
	}
	if err := validateObjectives([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolume2DKnown(t *testing.T) {
	ref := [2]float64{10, 10}
	// Single point.
	hv, err := Hypervolume2D([][]float64{{1, 5}}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hv != 45 { // (10-1)×(10-5)
		t.Fatalf("hv = %v, want 45", hv)
	}
	// Two non-dominated points: 45 + 16.
	hv, err = Hypervolume2D([][]float64{{1, 5}, {2, 3}}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hv != 61 {
		t.Fatalf("hv = %v, want 61", hv)
	}
	// Dominated point adds nothing.
	hv2, err := Hypervolume2D([][]float64{{1, 5}, {2, 3}, {3, 6}}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hv2 != 61 {
		t.Fatalf("dominated point changed hv: %v", hv2)
	}
	// Points outside the reference box are ignored.
	hv3, err := Hypervolume2D([][]float64{{11, 1}, {1, 11}}, ref)
	if err != nil || hv3 != 0 {
		t.Fatalf("out-of-box hv = %v, %v", hv3, err)
	}
	if _, err := Hypervolume2D([][]float64{{1, 2, 3}}, ref); err == nil {
		t.Fatal("3-objective point must fail")
	}
	if hv, _ := Hypervolume2D(nil, ref); hv != 0 {
		t.Fatal("empty set must have hv 0")
	}
}

// Property: adding a point never decreases the hypervolume, and any
// point's individual box is a lower bound.
func TestHypervolumeMonotonicity(t *testing.T) {
	ref := [2]float64{100, 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 90, rng.Float64() * 90}
		}
		hv, err := Hypervolume2D(pts, ref)
		if err != nil {
			return false
		}
		extra := []float64{rng.Float64() * 90, rng.Float64() * 90}
		hv2, err := Hypervolume2D(append(pts, extra), ref)
		if err != nil {
			return false
		}
		if hv2 < hv-1e-9 {
			return false
		}
		// Any single point's box bounds the total from below.
		box := (ref[0] - pts[0][0]) * (ref[1] - pts[0][1])
		return hv >= box-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
