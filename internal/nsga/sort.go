// Package nsga implements the NSGA-II multi-objective evolutionary
// algorithm (Deb et al.) that powers NSGA-Net: fast non-dominated
// sorting, crowding distance, binary tournament selection, and elitist
// environmental selection. The paper's NAS minimises two objectives —
// (100 − validation accuracy) and FLOPs — but the engine is generic over
// both the payload type and the number of objectives.
//
// The evaluator is handed one whole generation at a time, which is the
// hook A4NN uses: its evaluator trains candidates across the simulated
// accelerators with the prediction engine attached, while the standalone
// baseline trains every candidate for the full epoch budget.
package nsga

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether objective vector a Pareto-dominates b: a is
// no worse in every objective and strictly better in at least one. All
// objectives are minimised.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// FastNonDominatedSort partitions indices 0..len(objs)-1 into Pareto
// fronts: fronts[0] is the non-dominated set, fronts[1] the set dominated
// only by fronts[0], and so on.
func FastNonDominatedSort(objs [][]float64) [][]int {
	n := len(objs)
	dominated := make([][]int, n) // dominated[i] = indices i dominates
	count := make([]int, n)       // count[i] = how many dominate i
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(objs[i], objs[j]) {
				dominated[i] = append(dominated[i], j)
			} else if Dominates(objs[j], objs[i]) {
				count[i]++
			}
		}
		if count[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				count[j]--
				if count[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// CrowdingDistance computes the crowding distance of each member of a
// front (indices into objs). Boundary solutions get +Inf so they are
// always preferred, preserving objective-space spread.
func CrowdingDistance(objs [][]float64, front []int) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) == 0 {
		return dist
	}
	m := len(objs[front[0]])
	idx := append([]int(nil), front...)
	for obj := 0; obj < m; obj++ {
		sort.Slice(idx, func(a, b int) bool { return objs[idx[a]][obj] < objs[idx[b]][obj] })
		lo, hi := objs[idx[0]][obj], objs[idx[len(idx)-1]][obj]
		dist[idx[0]] = math.Inf(1)
		dist[idx[len(idx)-1]] = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			dist[idx[k]] += (objs[idx[k+1]][obj] - objs[idx[k-1]][obj]) / span
		}
	}
	return dist
}

// ParetoFront returns the indices of the non-dominated members of objs,
// sorted by the first objective. It is what the analyzer uses to draw the
// accuracy-vs-FLOPs frontiers of Figure 6.
func ParetoFront(objs [][]float64) []int {
	fronts := FastNonDominatedSort(objs)
	if len(fronts) == 0 {
		return nil
	}
	front := append([]int(nil), fronts[0]...)
	sort.Slice(front, func(a, b int) bool { return objs[front[a]][0] < objs[front[b]][0] })
	return front
}

// validateObjectives checks that every vector has the same non-zero
// dimensionality and finite values.
func validateObjectives(objs [][]float64) error {
	if len(objs) == 0 {
		return fmt.Errorf("nsga: no objective vectors")
	}
	m := len(objs[0])
	if m == 0 {
		return fmt.Errorf("nsga: empty objective vector")
	}
	for i, o := range objs {
		if len(o) != m {
			return fmt.Errorf("nsga: objective vector %d has %d entries, want %d", i, len(o), m)
		}
		for j, v := range o {
			if math.IsNaN(v) {
				return fmt.Errorf("nsga: objective %d of vector %d is NaN", j, i)
			}
		}
	}
	return nil
}
