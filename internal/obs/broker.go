package obs

import (
	"sync"
	"sync/atomic"
)

// Broker fan-out defaults.
const (
	// DefaultSubscriberBuffer is the per-subscriber queue depth.
	DefaultSubscriberBuffer = 256
	// DefaultEvictAfter is the number of *consecutive* dropped events
	// after which a subscriber is considered stalled and evicted. A
	// subscriber that drains even occasionally keeps its slot; one that
	// has stopped reading loses it after one buffer-and-a-bit of missed
	// traffic instead of leaking forever.
	DefaultEvictAfter = 64
)

// Broker is an in-process publish/subscribe fanout for events. Publish
// never blocks: each subscriber has a bounded queue, a full queue
// counts a drop, and a subscriber that drops too many events in a row
// is evicted (its channel is closed). This is what lets hundreds of
// dashboard connections watch a search without ever stalling the
// search loop.
type Broker struct {
	mu         sync.Mutex
	subs       map[*Subscriber]struct{}
	evictAfter int

	dropped *Counter // nil-safe accounting, bound by the journal
	evicted *Counter
}

// NewBroker returns an empty broker with the default eviction policy.
func NewBroker() *Broker {
	return &Broker{
		subs:       make(map[*Subscriber]struct{}),
		evictAfter: DefaultEvictAfter,
	}
}

// Subscriber is one receiver on a broker. Read events from C; the
// channel is closed when the subscriber is evicted or Close is called.
type Subscriber struct {
	ch     chan Event
	b      *Broker
	drops  atomic.Uint64
	consec int  // consecutive drops; guarded by b.mu
	closed bool // guarded by b.mu
}

// Subscribe registers a new subscriber with the given queue depth
// (DefaultSubscriberBuffer when buf <= 0).
func (b *Broker) Subscribe(buf int) *Subscriber {
	if b == nil {
		return nil
	}
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	s := &Subscriber{ch: make(chan Event, buf), b: b}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers e to every subscriber that has queue room, counts a
// drop for each that does not, and evicts subscribers whose
// consecutive-drop count reaches the threshold. It never blocks.
func (b *Broker) Publish(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	var evict []*Subscriber
	for s := range b.subs {
		select {
		case s.ch <- e:
			s.consec = 0
		default:
			s.drops.Add(1)
			b.dropped.Inc()
			s.consec++
			if s.consec >= b.evictAfter {
				evict = append(evict, s)
			}
		}
	}
	for _, s := range evict {
		delete(b.subs, s)
		s.closed = true
		close(s.ch)
		b.evicted.Inc()
	}
	b.mu.Unlock()
}

// CloseAll evicts every subscriber, closing their channels, so blocked
// readers (SSE handlers, follow loops) return. New subscriptions after
// CloseAll still work — this is a tenant-teardown sweep, not a
// terminal shutdown. Nil-safe.
func (b *Broker) CloseAll() {
	if b == nil {
		return
	}
	b.mu.Lock()
	for s := range b.subs {
		delete(b.subs, s)
		s.closed = true
		close(s.ch)
	}
	b.mu.Unlock()
}

// Subscribers returns the number of attached subscribers.
func (b *Broker) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// C returns the subscriber's event channel (nil on a nil subscriber,
// which blocks forever in a select — pair it with a context).
func (s *Subscriber) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Drops returns how many events this subscriber missed to a full
// queue.
func (s *Subscriber) Drops() uint64 {
	if s == nil {
		return 0
	}
	return s.drops.Load()
}

// Close detaches the subscriber and closes its channel. Safe to call
// after eviction and on a nil subscriber.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	s.b.mu.Lock()
	if !s.closed {
		delete(s.b.subs, s)
		s.closed = true
		close(s.ch)
	}
	s.b.mu.Unlock()
}
