package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBrokerDeliversInOrder(t *testing.T) {
	j := NewJournal(16)
	sub := j.Subscribe(16)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Type: EventEpoch, Epoch: i})
	}
	for i := 0; i < 10; i++ {
		select {
		case e := <-sub.C():
			if e.Seq != uint64(i+1) {
				t.Fatalf("delivery %d has seq %d, want %d", i, e.Seq, i+1)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
	sub.Close()
	if n := j.Broker().Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after Close, want 0", n)
	}
}

func TestBrokerStalledSubscriberEvictedWithDropsCounted(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(16)
	j.bindMetrics(reg)
	// A stalled subscriber: tiny buffer, never read from.
	stalled := j.Subscribe(2)
	// A healthy subscriber draining concurrently must see everything.
	healthy := j.Subscribe(4096)

	total := 2*DefaultEvictAfter + 10
	var seen int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range healthy.C() {
			seen++
			if seen == total {
				return
			}
		}
	}()

	start := time.Now()
	for i := 0; i < total; i++ {
		j.Emit(Event{Type: EventTaskDispatch, Task: i})
	}
	elapsed := time.Since(start)
	// Publishing must never block on the stalled subscriber; this is a
	// generous ceiling — a blocking send would hang forever.
	if elapsed > 5*time.Second {
		t.Fatalf("publishing %d events took %v — broker blocked", total, elapsed)
	}

	<-done
	if s := j.Broker().Subscribers(); s != 1 {
		t.Fatalf("%d subscribers left, want 1 (stalled one evicted)", s)
	}
	// The stalled channel must have been closed by the eviction.
	deadline := time.After(time.Second)
	var closed bool
	for !closed {
		select {
		case _, ok := <-stalled.C():
			closed = !ok
		case <-deadline:
			t.Fatal("stalled subscriber channel never closed")
		}
	}
	if stalled.Drops() == 0 {
		t.Fatal("stalled subscriber has no drops counted")
	}
	if got := reg.Counter("a4nn_events_dropped_total").Value(); got != stalled.Drops() {
		t.Fatalf("registry drop counter = %d, subscriber drops = %d", got, stalled.Drops())
	}
	if got := reg.Counter("a4nn_events_subscribers_evicted_total").Value(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}
	// Eviction must not have lost events for the healthy subscriber.
	if seen != total {
		t.Fatalf("healthy subscriber saw %d/%d events", seen, total)
	}
	stalled.Close() // double-close after eviction must be safe
	healthy.Close()
}

// TestBrokerStressManySubscribers hammers one journal from several
// publishers into hundreds of subscribers (some reading, some
// stalled), under -race in ci. Publishing must finish promptly no
// matter how many subscribers stall.
func TestBrokerStressManySubscribers(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(1024)
	j.bindMetrics(reg)

	const (
		readers    = 100
		stalled    = 100
		publishers = 8
		perPub     = 500
	)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		sub := j.Subscribe(64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.C() { // drain until closed
			}
		}()
	}
	subs := make([]*Subscriber, 0, stalled)
	for i := 0; i < stalled; i++ {
		subs = append(subs, j.Subscribe(1)) // never read
	}

	var pubs sync.WaitGroup
	start := time.Now()
	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < perPub; i++ {
				j.Emit(Event{Type: EventTaskDispatch, Device: p, Task: i})
			}
		}(p)
	}
	pubs.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stress publish took %v", elapsed)
	}

	if got := j.LastSeq(); got != publishers*perPub {
		t.Fatalf("LastSeq = %d, want %d", got, publishers*perPub)
	}
	// Every stalled subscriber must be long evicted (a busy reader may
	// occasionally be evicted too under unlucky scheduling, so this is
	// a floor, not an exact count).
	if got := reg.Counter("a4nn_events_subscribers_evicted_total").Value(); got < stalled {
		t.Fatalf("evicted = %d, want >= %d", got, stalled)
	}
	if reg.Counter("a4nn_events_dropped_total").Value() == 0 {
		t.Fatal("no drops counted under stress")
	}

	// Close everything still attached so the reader goroutines exit
	// (Close after eviction is a safe no-op).
	for _, s := range subs {
		s.Close()
	}
	b := j.Broker()
	b.mu.Lock()
	remaining := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		remaining = append(remaining, s)
	}
	b.mu.Unlock()
	for _, s := range remaining {
		s.Close()
	}
	wg.Wait()
}

func TestBrokerNilSafe(t *testing.T) {
	var b *Broker
	b.Publish(Event{}) // must not panic
	if b.Subscribe(1) != nil {
		t.Fatal("nil broker Subscribe should return nil")
	}
	if b.Subscribers() != 0 {
		t.Fatal("nil broker should have 0 subscribers")
	}
	var s *Subscriber
	s.Close()
	if s.Drops() != 0 {
		t.Fatal("nil subscriber drops should be 0")
	}
	if s.C() != nil {
		t.Fatal("nil subscriber channel should be nil")
	}
}
