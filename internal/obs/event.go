package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"a4nn/internal/chaos"
)

// EventsFile holds the run's event journal as JSON Lines, appended
// next to the lineage records in the commons directory.
const EventsFile = "events.jsonl"

// Event types emitted by the workflow. Consumers switch on Type; the
// remaining Event fields are a union and only the ones meaningful for
// the type are set (zero values are omitted from the JSON encoding, so
// a missing field reads as 0/""/false — generation 0 arrives without a
// "gen" key).
const (
	EventRunStart         = "run_start"
	EventRunEnd           = "run_end"
	EventGenerationStart  = "generation_start"
	EventGenerationEnd    = "generation_end"
	EventTaskDispatch     = "task_dispatch"
	EventTaskRetry        = "task_retry"
	EventTaskFault        = "task_fault"
	EventStraggler        = "straggler"
	EventEpoch            = "epoch"
	EventModelDone        = "model_done"
	EventPredictConverge  = "predict_converge"
	EventPredictTerminate = "predict_terminate"
	EventParetoUpdate     = "pareto_update"
	EventAlert            = "alert"
	EventAlertResolved    = "alert_resolved"
	// EventModelResume marks a model continuing from a mid-training
	// checkpoint after a crash; Epoch is the checkpointed epoch count.
	EventModelResume = "model_resume"
	// EventRecovery reports a corruption-recovery action (a quarantined
	// file, a lost record); Reason carries the typed corruption reason.
	EventRecovery = "recovery"
	// EventRuntimeSample carries process runtime metrics (goroutines,
	// heap, GC pause) so a follower in another process can health-check
	// the producer.
	EventRuntimeSample = "runtime_sample"
	// EventAlertCmd logs one -alert-cmd execution and its exit code.
	EventAlertCmd = "alert_cmd"
)

// ParetoPoint is one model on the current Pareto front, carried by
// pareto_update events.
type ParetoPoint struct {
	ID       string  `json:"id"`
	Accuracy float64 `json:"acc"`
	MFLOPs   float64 `json:"mflops"`
}

// Event is one structured record in the run's journal. Seq is assigned
// by the journal, strictly increasing from 1; Time is unix nanoseconds
// at emission.
type Event struct {
	Seq  uint64 `json:"seq"`
	Time int64  `json:"t"`
	Type string `json:"type"`

	Gen     int    `json:"gen,omitempty"`
	Task    int    `json:"task,omitempty"`
	Device  int    `json:"device,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Model   string `json:"model,omitempty"`
	Epoch   int    `json:"epoch,omitempty"`
	Tasks   int    `json:"tasks,omitempty"`
	Devices int    `json:"devices,omitempty"`

	ValAcc      float64 `json:"val_acc,omitempty"`
	Loss        float64 `json:"loss,omitempty"`
	Fitness     float64 `json:"fitness,omitempty"`
	Predicted   float64 `json:"predicted,omitempty"`
	Actual      float64 `json:"actual,omitempty"`
	MFLOPs      float64 `json:"mflops,omitempty"`
	Epochs      int     `json:"epochs,omitempty"`
	SavedEpochs int     `json:"saved_epochs,omitempty"`
	Terminated  bool    `json:"terminated,omitempty"`

	SimSeconds  float64   `json:"sim_seconds,omitempty"`
	WallSeconds float64   `json:"wall_seconds,omitempty"`
	IdleSeconds float64   `json:"idle_seconds,omitempty"`
	LostSeconds float64   `json:"lost_seconds,omitempty"`
	DeviceBusy  []float64 `json:"device_busy,omitempty"`
	Retries     int       `json:"retries,omitempty"`
	Faults      int       `json:"faults,omitempty"`
	SlowFactor  float64   `json:"slow_factor,omitempty"`
	Err         string    `json:"err,omitempty"`

	Front []ParetoPoint `json:"front,omitempty"`

	// Alert events (emitted by the health engine; see internal/health).
	AlertID  string `json:"alert,omitempty"`
	Monitor  string `json:"monitor,omitempty"`
	Severity string `json:"severity,omitempty"`
	Msg      string `json:"msg,omitempty"`
	Count    int    `json:"count,omitempty"`

	// Recovery events.
	Reason string `json:"reason,omitempty"`
	Path   string `json:"path,omitempty"`

	// Runtime-sample events. RSSBytes and FDs are OS-level readings
	// (resident set size and open file descriptors); zero when the
	// platform offers no /proc-style view of the process.
	Goroutines int     `json:"goroutines,omitempty"`
	HeapBytes  uint64  `json:"heap_bytes,omitempty"`
	GCPauseSec float64 `json:"gc_pause_s,omitempty"`
	RSSBytes   uint64  `json:"rss_bytes,omitempty"`
	FDs        int     `json:"fds,omitempty"`
}

// DefaultJournalCapacity bounds the in-memory replay ring. At the
// paper's scale (100 networks × ≤25 epochs × ~20 generations) a full
// run emits a few tens of thousands of events; the ring holds the
// recent window for Last-Event-ID replay, the JSONL file holds
// everything.
const DefaultJournalCapacity = 8192

// Journal is the run's event sink: every Emit assigns the next
// sequence number, stores the event in a bounded in-memory ring (for
// replay), appends one JSON line to the events file when one is open
// (crash-safe: append-only, one line per event, so a crash tears at
// most the final line, which readers skip), and fans the event out
// through the broker to live subscribers. A nil Journal ignores all
// calls, so instrumented code pays one branch when events are off.
type Journal struct {
	mu     sync.Mutex
	ring   []Event // circular, fixed capacity
	head   int     // index of the oldest stored event
	n      int     // number of stored events
	next   uint64  // next sequence number to assign (starts at 1)
	file   *os.File
	broker *Broker
	buf    []byte // marshal scratch, reused under mu

	// rec is the attached flight recorder; one atomic load per Emit
	// when none is attached (the disabled-recorder cost the bench gate
	// holds at 0 allocs/op).
	rec atomic.Pointer[Recorder]

	emitted  *Counter // nil-safe accounting hooks
	fileErrs *Counter
}

// NewJournal returns a journal with a replay ring of the given
// capacity (DefaultJournalCapacity when capacity <= 0) and a fresh
// broker. No file is attached until OpenFile.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{
		ring:   make([]Event, capacity),
		next:   1,
		broker: NewBroker(),
	}
}

// bindMetrics points the journal's (and its broker's) accounting at
// registry counters so drops and evictions show up on /metrics.
func (j *Journal) bindMetrics(reg *Registry) {
	if j == nil || reg == nil {
		return
	}
	j.emitted = reg.Counter("a4nn_events_emitted_total")
	j.fileErrs = reg.Counter("a4nn_events_file_errors_total")
	j.broker.dropped = reg.Counter("a4nn_events_dropped_total")
	j.broker.evicted = reg.Counter("a4nn_events_subscribers_evicted_total")
}

// Broker returns the journal's fanout broker (nil on a nil journal).
func (j *Journal) Broker() *Broker {
	if j == nil {
		return nil
	}
	return j.broker
}

// Subscribe attaches a live subscriber with the given channel buffer
// (DefaultSubscriberBuffer when buf <= 0). Nil-safe: returns nil on a
// nil journal, and a nil Subscriber's methods are inert.
func (j *Journal) Subscribe(buf int) *Subscriber {
	if j == nil {
		return nil
	}
	return j.broker.Subscribe(buf)
}

// OpenFile attaches an append-only events file at path. Safe to call
// once before the run starts; events emitted earlier live only in the
// ring. Appending to an existing journal (a resumed run) continues its
// sequence numbering, so seq stays strictly increasing across the whole
// file no matter how many times the process was killed and relaunched.
func (j *Journal) OpenFile(path string) error {
	if j == nil {
		return fmt.Errorf("obs: OpenFile on nil journal")
	}
	last, torn := scanTail(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: open events file: %w", err)
	}
	if torn {
		// Terminate the torn final line of a crashed run, so the next
		// append starts on its own line instead of gluing onto garbage.
		f.Write([]byte{'\n'})
	}
	j.mu.Lock()
	old := j.file
	j.file = f
	if last >= j.next {
		j.next = last + 1
	}
	j.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// scanTail inspects the final window of an events file, returning the
// highest valid sequence number (0 when the file is missing, empty, or
// unreadable) and whether the file ends mid-line — the signature of a
// crash during an append. Only the tail is scanned, so opening a
// long-lived journal stays O(1).
func scanTail(path string) (last uint64, torn bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return 0, false
	}
	const window = 256 * 1024
	off := st.Size() - window
	if off < 0 {
		off = 0
	}
	buf := make([]byte, st.Size()-off)
	if _, err := f.ReadAt(buf, off); err != nil {
		return 0, false
	}
	torn = buf[len(buf)-1] != '\n'
	lines := bytes.Split(buf, []byte{'\n'})
	if off > 0 && len(lines) > 0 {
		lines = lines[1:] // first line of a mid-file window may be partial
	}
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn tail or foreign line
		}
		if e.Seq > last {
			last = e.Seq
		}
	}
	return last, torn
}

// Sync forces the attached events file to stable storage (no-op when
// no file is open or on a nil journal).
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	f := j.file
	j.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Sync()
}

// Close syncs and detaches the events file (keeping the ring and the
// broker usable). Nil-safe; returns the first error from sync/close.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	f := j.file
	j.file = nil
	j.mu.Unlock()
	if f == nil {
		return nil
	}
	err := f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Emit assigns the next sequence number and timestamp to e, records it
// in the ring, appends it to the events file, and publishes it to live
// subscribers. Publication order matches sequence order. Never blocks
// on slow subscribers. No-op on a nil journal.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	e.Time = time.Now().UnixNano()
	j.mu.Lock()
	e.Seq = j.next
	j.next++
	j.store(e)
	if j.file != nil {
		err := chaos.Point(chaos.PointJournalAppend)
		if err == nil {
			var line []byte
			if line, err = json.Marshal(e); err == nil {
				j.buf = append(append(j.buf[:0], line...), '\n')
				_, err = j.file.Write(j.buf)
			}
		}
		if err != nil {
			j.fileErrs.Inc()
		}
	}
	// The recorder hook sits after the file append so the black-box
	// ring never runs ahead of the durable journal: an injected crash
	// at the append point leaves ring tail == file tail, which the
	// postmortem e2e asserts.
	j.rec.Load().Record(e)
	// Publishing under mu keeps broker delivery in sequence order for
	// concurrent emitters; Publish never blocks, so this is cheap.
	j.broker.Publish(e)
	j.mu.Unlock()
	j.emitted.Inc()
}

// AttachRecorder points the journal's flight-recorder hook at r (nil
// detaches). Nil-safe.
func (j *Journal) AttachRecorder(r *Recorder) {
	if j == nil {
		return
	}
	j.rec.Store(r)
}

// Ingest records an externally produced event (e.g. tailed from
// another process's events file) preserving its sequence number, and
// publishes it. Used by follow mode; no file write.
func (j *Journal) Ingest(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if e.Seq >= j.next {
		j.next = e.Seq + 1
	}
	j.store(e)
	j.rec.Load().Record(e)
	j.broker.Publish(e)
	j.mu.Unlock()
	j.emitted.Inc()
}

// store appends e to the circular ring. Caller holds j.mu.
func (j *Journal) store(e Event) {
	if j.n < len(j.ring) {
		j.ring[(j.head+j.n)%len(j.ring)] = e
		j.n++
		return
	}
	j.ring[j.head] = e
	j.head = (j.head + 1) % len(j.ring)
}

// Since returns a copy of the ring's events with Seq > seq, oldest
// first. Pass 0 for everything still in the ring. Nil-safe.
func (j *Journal) Since(seq uint64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		e := j.ring[(j.head+i)%len(j.ring)]
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// LastSeq returns the highest sequence number assigned so far (0 when
// nothing has been emitted). Nil-safe.
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next - 1
}

// Emitted returns the number of events emitted or ingested (0 without
// bound metrics). Nil-safe.
func (j *Journal) Emitted() uint64 {
	if j == nil {
		return 0
	}
	return j.emitted.Value()
}

// ReadEvents loads an events JSONL file, skipping blank lines and a
// torn final line (the crash case for an append-only sink).
func ReadEvents(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn or foreign line
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: read events: %w", err)
	}
	return out, nil
}
