package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalSeqAndSince(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Emit(Event{Type: EventEpoch, Epoch: i + 1})
	}
	if got := j.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	all := j.Since(0)
	if len(all) != 5 {
		t.Fatalf("Since(0) returned %d events, want 5", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Time == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	tail := j.Since(3)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("Since(3) = %+v, want seqs 4,5", tail)
	}
}

func TestJournalRingEvictsOldest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Type: EventEpoch})
	}
	got := j.Since(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestJournalFileAppendAndTornLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, EventsFile)
	j := NewJournal(0)
	if err := j.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: EventRunStart, Tasks: 3})
	j.Emit(Event{Type: EventEpoch, Model: "m1", Epoch: 1, ValAcc: 0.5})
	j.Emit(Event{Type: EventRunEnd})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn final line must be skipped.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"type":"trun`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events, want 3 (torn line skipped)", len(events))
	}
	if events[0].Type != EventRunStart || events[0].Tasks != 3 {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].Model != "m1" || events[1].ValAcc != 0.5 {
		t.Fatalf("epoch event = %+v", events[1])
	}
	if events[2].Seq != 3 {
		t.Fatalf("last event seq = %d, want 3", events[2].Seq)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: EventEpoch}) // must not panic
	j.Ingest(Event{Seq: 9})
	if j.Since(0) != nil {
		t.Fatal("nil journal Since should be nil")
	}
	if j.LastSeq() != 0 || j.Emitted() != 0 {
		t.Fatal("nil journal should report zeros")
	}
	if s := j.Subscribe(1); s != nil {
		t.Fatal("nil journal Subscribe should return nil")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	var o *Observer
	if o.Journal() != nil {
		t.Fatal("nil observer Journal should be nil")
	}
}

func TestJournalIngestPreservesSeq(t *testing.T) {
	j := NewJournal(8)
	j.Ingest(Event{Seq: 41, Type: EventEpoch})
	j.Ingest(Event{Seq: 42, Type: EventEpoch})
	if got := j.LastSeq(); got != 42 {
		t.Fatalf("LastSeq = %d, want 42", got)
	}
	// A subsequent Emit continues past the ingested sequence.
	j.Emit(Event{Type: EventRunEnd})
	got := j.Since(41)
	if len(got) != 2 || got[0].Seq != 42 || got[1].Seq != 43 {
		t.Fatalf("Since(41) = %+v, want seqs 42,43", got)
	}
}

func TestObserverJournalMetrics(t *testing.T) {
	o := NewObserver()
	o.Journal().Emit(Event{Type: EventEpoch})
	o.Journal().Emit(Event{Type: EventEpoch})
	if got := o.Registry().Counter("a4nn_events_emitted_total").Value(); got != 2 {
		t.Fatalf("a4nn_events_emitted_total = %d, want 2", got)
	}
	if got := o.Journal().Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}
}
