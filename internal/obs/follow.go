package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"os"
	"time"
)

// FollowFile tails an events JSONL file written by another process
// into j (preserving the writer's sequence numbers via Ingest), so a
// viewer process can replay and stream a run it did not start. It
// polls for appended data every interval (a sane default is used when
// interval <= 0), tolerates the file not existing yet, and never
// ingests a torn final line — a partial line is retried once the
// writer completes it.
//
// The follower also survives truncation and rotation: when the file
// shrinks below the offset already consumed (a new run truncated it,
// or the path was atomically replaced by a smaller file), it reopens
// the path and resyncs from the start instead of tailing a stale
// offset forever. A rotation that replaces the file with one of equal
// or larger size is indistinguishable from an append by size alone
// and is not detected — event journals only ever grow within a run,
// so in practice rotation means "new, initially small file".
// Blocks until ctx is done.
func FollowFile(ctx context.Context, path string, j *Journal, interval time.Duration) error {
	if j == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	var (
		f       *os.File
		rd      *bufio.Reader
		offset  int64 // bytes consumed from the current file, partial included
		partial []byte
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	wait := func() error {
		t := time.NewTimer(interval)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	reopen := func() {
		if f != nil {
			f.Close()
		}
		f, rd = nil, nil
		offset = 0
		partial = partial[:0]
	}
	for {
		if f == nil {
			var err error
			f, err = os.Open(path)
			if err != nil {
				if err := wait(); err != nil {
					return nil
				}
				continue
			}
			rd = bufio.NewReader(f)
			offset = 0
			partial = partial[:0]
		}
		line, err := rd.ReadBytes('\n')
		offset += int64(len(line))
		if len(line) > 0 && err == nil {
			line = append(partial, line...)
			partial = partial[:0]
			var e Event
			if jerr := json.Unmarshal(line, &e); jerr == nil {
				j.Ingest(e)
			}
			continue
		}
		if len(line) > 0 {
			// Incomplete tail: stash it and retry after the writer
			// finishes the line.
			partial = append(partial, line...)
		}
		if err != nil && err != io.EOF {
			reopen()
		} else if fi, serr := os.Stat(path); serr != nil || fi.Size() < offset {
			// The file shrank below what we already consumed (or the
			// path vanished): it was truncated or rotated. Start over
			// from the new file's beginning; Ingest keeps downstream
			// sequence numbering monotonic.
			reopen()
		}
		if err := wait(); err != nil {
			return nil
		}
	}
}
