package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"os"
	"time"
)

// FollowFile tails an events JSONL file written by another process
// into j (preserving the writer's sequence numbers via Ingest), so a
// viewer process can replay and stream a run it did not start. It
// polls for appended data every interval (a sane default is used when
// interval <= 0), tolerates the file not existing yet, and never
// ingests a torn final line — a partial line is retried once the
// writer completes it. Blocks until ctx is done.
func FollowFile(ctx context.Context, path string, j *Journal, interval time.Duration) error {
	if j == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	var (
		f       *os.File
		rd      *bufio.Reader
		partial []byte
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	wait := func() error {
		t := time.NewTimer(interval)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	for {
		if f == nil {
			var err error
			f, err = os.Open(path)
			if err != nil {
				if err := wait(); err != nil {
					return nil
				}
				continue
			}
			rd = bufio.NewReader(f)
			partial = partial[:0]
		}
		line, err := rd.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			line = append(partial, line...)
			partial = partial[:0]
			var e Event
			if jerr := json.Unmarshal(line, &e); jerr == nil {
				j.Ingest(e)
			}
			continue
		}
		if len(line) > 0 {
			// Incomplete tail: stash it and retry after the writer
			// finishes the line.
			partial = append(partial, line...)
		}
		if err != nil && err != io.EOF {
			f.Close()
			f = nil
		}
		if err := wait(); err != nil {
			return nil
		}
	}
}
