package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitSeq polls until the journal has ingested an event with Seq >= want.
func waitSeq(t *testing.T, j *Journal, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.LastSeq() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("journal never reached seq %d (at %d)", want, j.LastSeq())
}

// TestFollowFileTornTail checks that a partial final line is never
// ingested early and is delivered once the writer completes it.
func TestFollowFileTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, EventsFile)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	line := func(seq int) string {
		return fmt.Sprintf(`{"seq":%d,"t":1,"type":"epoch","epoch":%d}`+"\n", seq, seq)
	}
	full := line(1) + line(2)
	torn := line(3)
	half := torn[:len(torn)/2]
	if _, err := f.WriteString(full + half); err != nil {
		t.Fatal(err)
	}

	j := NewJournal(16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go FollowFile(ctx, path, j, time.Millisecond)

	waitSeq(t, j, 2)
	// The torn line must not have been ingested as garbage.
	for _, e := range j.Since(0) {
		if e.Seq == 3 {
			t.Fatalf("torn line ingested early: %+v", e)
		}
	}
	if _, err := f.WriteString(torn[len(half):]); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, j, 3)
	evs := j.Since(2)
	if len(evs) != 1 || evs[0].Epoch != 3 {
		t.Fatalf("completed torn line = %+v", evs)
	}
}

// TestFollowFileRotation checks that the follower detects a size shrink
// (truncation or atomic replacement by a new, smaller file) and resyncs
// from the new file instead of tailing a stale offset.
func TestFollowFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, EventsFile)
	line := func(seq int) string {
		return fmt.Sprintf(`{"seq":%d,"t":1,"type":"epoch","epoch":%d}`+"\n", seq, seq)
	}
	// A long first run so the replacement is strictly smaller.
	var first string
	for i := 1; i <= 10; i++ {
		first += line(i)
	}
	if err := os.WriteFile(path, []byte(first), 0o644); err != nil {
		t.Fatal(err)
	}

	j := NewJournal(64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go FollowFile(ctx, path, j, time.Millisecond)
	waitSeq(t, j, 10)

	// Rotate: atomically replace the journal with a shorter one whose
	// sequence numbers continue (a resumed run re-opens its journal).
	next := filepath.Join(dir, "next.jsonl")
	if err := os.WriteFile(next, []byte(line(11)+line(12)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, j, 12)

	// Truncate in place (a brand-new run recreated the file) and write
	// an event with a fresh, low sequence number: the follower must
	// still pick it up after resync.
	if err := os.WriteFile(path, []byte(`{"seq":1,"t":2,"type":"run_start","devices":4}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, e := range j.Since(0) {
			if e.Type == EventRunStart && e.Devices == 4 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never resynced after truncation; ring = %+v", j.Since(0))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
