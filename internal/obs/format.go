package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// BucketCount is one cumulative histogram bucket in a snapshot. Le is
// the rendered upper bound ("+Inf" for the last bucket) so snapshots
// survive JSON, which cannot encode infinities.
type BucketCount struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time view of a whole registry, the payload of
// the expvar-style JSON endpoint and the metrics.json sink.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values, including every
// live scope's series decorated with the scope's label pair (so a
// scoped `x{d="0"}` under Scope("job","a") appears as
// `x{d="0",job="a"}`). A nil registry yields an empty (but
// non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := math.Inf(1)
			if i < len(h.upper) {
				le = h.upper[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{Le: bucketLabel(le), Count: cum})
		}
		snap.Histograms[name] = hs
	}
	scopes := make(map[string]*Registry, len(r.scopes))
	for key, s := range r.scopes {
		scopes[key] = s
	}
	r.mu.Unlock()
	// Scopes snapshot outside the parent lock: a scope is itself a
	// registry (possibly with scopes of its own), and its series merge
	// in under the scope's label pair.
	for key, s := range scopes {
		sub := s.Snapshot()
		for name, v := range sub.Counters {
			snap.Counters[decorateName(name, key)] = v
		}
		for name, v := range sub.Gauges {
			snap.Gauges[decorateName(name, key)] = v
		}
		for name, v := range sub.Histograms {
			snap.Histograms[decorateName(name, key)] = v
		}
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Series are sorted by name; series sharing a
// base name (labelled variants) share one TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastType := ""
	typeHeader := func(name, kind string) {
		if base := baseName(name); base != lastType {
			emit("# TYPE %s %s\n", base, kind)
			lastType = base
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		typeHeader(name, "counter")
		emit("%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		typeHeader(name, "gauge")
		emit("%s %s\n", name, formatValue(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		typeHeader(name, "histogram")
		hs := snap.Histograms[name]
		for _, b := range hs.Buckets {
			emit("%s %d\n", bucketSeries(name, b.Le), b.Count)
		}
		emit("%s %s\n", suffixSeries(name, "_sum"), formatValue(hs.Sum))
		emit("%s %d\n", suffixSeries(name, "_count"), hs.Count)
	}
	return err
}

// suffixSeries inserts a name suffix before any embedded label set:
// (`x{a="b"}`, _sum) → `x_sum{a="b"}`.
func suffixSeries(name, suffix string) string {
	base := baseName(name)
	return base + suffix + name[len(base):]
}

// bucketSeries renders one cumulative-bucket series name, merging the
// le label into any label set the series name already carries:
// (`x`, 5) → `x_bucket{le="5"}`; (`x{a="b"}`, 5) → `x_bucket{a="b",le="5"}`.
func bucketSeries(name, le string) string {
	base := baseName(name)
	labels := name[len(base):]
	if labels == "" {
		return fmt.Sprintf(`%s_bucket{le=%q}`, base, le)
	}
	return fmt.Sprintf(`%s_bucket{%s,le=%q}`, base, labels[1:len(labels)-1], le)
}

// formatValue renders a float the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the expvar-style JSON snapshot.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
