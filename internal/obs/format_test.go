package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition format:
// sorted series, shared TYPE headers for labelled variants, cumulative
// buckets with the le label merged into existing label sets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a4nn_tasks_total").Add(3)
	r.Gauge(`busy{device="0"}`).Set(2)
	r.Gauge(`busy{device="1"}`).Set(3)
	r.Gauge("temp").Set(1.5)
	h := r.Histogram(`lat{q="hi"}`, []float64{1, 5})
	for _, v := range []float64{0.5, 3, 10} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a4nn_tasks_total counter
a4nn_tasks_total 3
# TYPE busy gauge
busy{device="0"} 2
busy{device="1"} 3
# TYPE temp gauge
temp 1.5
# TYPE lat histogram
lat_bucket{q="hi",le="1"} 1
lat_bucket{q="hi",le="5"} 2
lat_bucket{q="hi",le="+Inf"} 3
lat_sum{q="hi"} 13.5
lat_count{q="hi"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.25)
	r.Histogram("h", []float64{10}).Observe(4)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 7 || snap.Gauges["g"] != 0.25 {
		t.Fatalf("round-tripped snapshot %+v", snap)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 4 || len(hs.Buckets) != 2 {
		t.Fatalf("round-tripped histogram %+v", hs)
	}
	// The +Inf bound survives JSON as a string label.
	if hs.Buckets[1].Le != "+Inf" || hs.Buckets[1].Count != 1 {
		t.Fatalf("+Inf bucket %+v", hs.Buckets[1])
	}
}

func TestBucketLabelRendering(t *testing.T) {
	for le, want := range map[float64]string{10: "10", 0.5: "0.5", 2.5: "2.5"} {
		if got := bucketLabel(le); got != want {
			t.Fatalf("bucketLabel(%v) = %q, want %q", le, got, want)
		}
	}
}
