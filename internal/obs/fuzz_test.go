package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadEvents asserts the journal reader never panics on torn,
// truncated, or bit-flipped input: invalid lines are skipped, valid
// ones decoded, and the only error surface is the line-length cap.
func FuzzReadEvents(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t":1,"type":"run_start"}` + "\n" + `{"seq":2,"t":2,"type":"epoch","model":"m","epoch":1}` + "\n"))
	f.Add([]byte(`{"seq":1,"t":1,"type":"run_start"}` + "\n" + `{"seq":2,"t":2,"ty`)) // torn tail
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "events.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		events, err := ReadEvents(path)
		if err != nil {
			return // oversized line: reported, never panicked
		}
		for _, e := range events {
			_ = e.Seq // decoded events are usable
		}
	})
}

func TestOpenFileContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")

	j := NewJournal(8)
	if err := j.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Emit(Event{Type: EventEpoch, Epoch: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: tear the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh journal (a relaunched process) must continue after the
	// highest intact seq, not restart at 1.
	j2 := NewJournal(8)
	if err := j2.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	j2.Emit(Event{Type: EventRunStart})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for _, e := range events {
		if e.Seq <= prev {
			t.Fatalf("seq not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
	last := events[len(events)-1]
	if last.Type != EventRunStart || last.Seq != 3 {
		t.Fatalf("resumed event = %+v, want run_start with seq 3 (after intact seqs 1,2)", last)
	}
}

func TestOpenFileFreshStartsAtOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j := NewJournal(8)
	if err := j.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: EventRunStart})
	j.Close()
	events, err := ReadEvents(path)
	if err != nil || len(events) != 1 || events[0].Seq != 1 {
		t.Fatalf("fresh journal events = %+v, %v", events, err)
	}
}
