package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
)

// File names of the per-run telemetry sinks, written into the run's
// commons directory alongside the lineage records.
const (
	// SpansFile holds the span ring as JSON Lines.
	SpansFile = "spans.jsonl"
	// MetricsFile holds the final registry snapshot as JSON.
	MetricsFile = "metrics.json"
)

// Observer bundles a metrics registry, a span tracer, and an event
// journal — the handle a run threads through the workflow. A nil
// Observer disables all observability: Registry, Tracer, and Journal
// return nil, whose instrument handles, spans, and Emit calls are
// no-ops.
type Observer struct {
	reg     *Registry
	tracer  *Tracer
	journal *Journal
}

// NewObserver returns an observer with a fresh registry, a tracer of
// DefaultSpanCapacity, and an event journal (ring only — attach a
// file with Journal().OpenFile to persist events).
func NewObserver() *Observer {
	return NewObserverWith(nil)
}

// NewObserverWith builds an observer over a supplied registry — the
// multi-tenant hook: passing a parent registry's Scope gives the run
// its own instrument namespace while its series roll up, labelled,
// into the parent's /metrics. A nil registry gets a fresh one.
func NewObserverWith(reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Observer{reg: reg, tracer: NewTracer(0), journal: NewJournal(0)}
	o.journal.bindMetrics(o.reg)
	return o
}

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the span tracer (nil on a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// AttachRecorder points the observer's journal at the flight recorder
// (nil detaches). Nil-safe.
func (o *Observer) AttachRecorder(r *Recorder) {
	if o == nil {
		return
	}
	o.journal.AttachRecorder(r)
}

// Journal returns the event journal (nil on a nil observer).
func (o *Observer) Journal() *Journal {
	if o == nil {
		return nil
	}
	return o.journal
}

// FlushTo atomically writes the spans JSONL and the metrics snapshot
// into dir (creating it if needed). Each file is written via a temp
// file renamed into place, so a crash mid-flush can never leave a torn
// sink next to the lineage records. A nil observer flushes nothing.
func (o *Observer) FlushTo(dir string) error {
	if o == nil {
		return nil
	}
	if dir == "" {
		return fmt.Errorf("obs: empty flush directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: create flush dir: %w", err)
	}
	spans, err := o.tracer.MarshalJSONL()
	if err != nil {
		return fmt.Errorf("obs: marshal spans: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, SpansFile), spans); err != nil {
		return fmt.Errorf("obs: write %s: %w", SpansFile, err)
	}
	var buf bytes.Buffer
	if err := o.reg.WriteJSON(&buf); err != nil {
		return fmt.Errorf("obs: marshal metrics: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, MetricsFile), buf.Bytes()); err != nil {
		return fmt.Errorf("obs: write %s: %w", MetricsFile, err)
	}
	// The event journal is append-per-event already; just push it to
	// stable storage so a fatal exit right after the flush loses
	// nothing.
	if err := o.journal.Sync(); err != nil {
		return fmt.Errorf("obs: sync %s: %w", EventsFile, err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file in the same directory
// renamed into place.
func atomicWrite(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Handler serves the observer's live endpoints:
//
//	GET /metrics       Prometheus text format
//	GET /metrics.json  expvar-style JSON snapshot
//	GET /debug/spans   span ring as a JSON array
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", o.Registry().MetricsHandler())
	mux.Handle("GET /metrics.json", o.Registry().JSONHandler())
	mux.Handle("GET /debug/spans", o.Tracer().SpansHandler())
	return mux
}
