package obs

// The flight recorder is the observability stack's black box: a
// bounded in-memory ring of the most recent journal events, the active
// alerts derived from them, periodic metrics snapshots, and — at dump
// time — a goroutine dump, heap statistics, the span ring, and the
// job manifest, all framed into one versioned, CRC-checked postmortem
// bundle. It exists for the paths where the usual sinks are useless:
// the process is dying *right now* (a fatal error, an unresolved
// critical alert at shutdown, an injected chaos kill) and the question
// "what was this job doing in its last seconds" must be answerable
// from a single self-contained file.
//
// Recording follows the stack's disabled-is-free rule: a journal with
// no recorder attached pays one atomic load per event
// (BenchmarkDisabledRecorder, gated at 0 allocs/op by the bench gate),
// and Record on an armed recorder is a ring store under a mutex with
// no allocation outside the rare alert-transition events.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"a4nn/internal/chaos"
)

// PostmortemDir is the subdirectory bundles are written into, next to
// the run's other sinks (events.jsonl, alerts.jsonl, job.json).
const PostmortemDir = "postmortem"

// BundleVersion is the current postmortem bundle format version.
const BundleVersion = 1

// bundleMagic opens every bundle file.
var bundleMagic = [4]byte{'A', '4', 'P', 'M'}

// Bundle section names. Decoders must tolerate unknown sections (a
// newer writer) and missing ones (a section whose source was empty).
const (
	SectionMeta           = "meta"            // BundleMeta JSON
	SectionGoroutines     = "goroutines"      // full runtime.Stack dump
	SectionHeap           = "heap"            // HeapStats JSON
	SectionEvents         = "events"          // recorder ring, JSONL
	SectionSpans          = "spans"           // span ring, JSONL
	SectionMetrics        = "metrics"         // final registry Snapshot JSON
	SectionMetricsHistory = "metrics_history" // periodic samples, JSONL
	SectionAlerts         = "alerts"          // active alert events, JSONL
	SectionManifest       = "manifest"        // job.json verbatim
)

// BundleMeta is the bundle's header section.
type BundleMeta struct {
	Version      int    `json:"version"`
	Reason       string `json:"reason"`
	TimeUnixNano int64  `json:"t"`
	PID          int    `json:"pid"`
	GoVersion    string `json:"go_version"`
}

// HeapStats is the subset of runtime.MemStats a postmortem cares
// about.
type HeapStats struct {
	HeapAlloc    uint64 `json:"heap_alloc"`
	HeapSys      uint64 `json:"heap_sys"`
	HeapObjects  uint64 `json:"heap_objects"`
	TotalAlloc   uint64 `json:"total_alloc"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"pause_total_ns"`
	Goroutines   int    `json:"goroutines"`
}

// MetricsSample is one periodic registry snapshot in the recorder's
// history ring.
type MetricsSample struct {
	TimeUnixNano int64    `json:"t"`
	Snap         Snapshot `json:"snap"`
}

// RecorderConfig sizes and wires one Recorder.
type RecorderConfig struct {
	// Events is the event-ring capacity (default 512).
	Events int
	// Snapshots is the metrics-history ring capacity (default 16).
	Snapshots int
	// Dir is where Dump writes bundles, under Dir/postmortem.
	Dir string
	// Registry and Tracer are snapshotted at dump time (nil: skipped).
	Registry *Registry
	Tracer   *Tracer
	// ManifestPath, when set, is a file (the job manifest) embedded
	// verbatim in the bundle at dump time.
	ManifestPath string
}

// Recorder is one run's black box. Create with NewRecorder, attach to
// the run's journal with Observer.AttachRecorder (or
// Journal.AttachRecorder), optionally Arm it for crash dumps and Start
// its metrics sampler, and Close it when the run reaches a terminal
// state. All methods are nil-safe.
type Recorder struct {
	cfg RecorderConfig

	mu     sync.Mutex
	ring   []Event
	head   int
	n      int
	alerts map[string]Event // active alerts by ID, from alert events
	snaps  []MetricsSample
	shead  int
	sn     int

	stop chan struct{} // sampler lifecycle
	done chan struct{}
}

// NewRecorder builds a recorder. Rings are preallocated so Record
// never allocates.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Events <= 0 {
		cfg.Events = 512
	}
	if cfg.Snapshots <= 0 {
		cfg.Snapshots = 16
	}
	return &Recorder{
		cfg:    cfg,
		ring:   make([]Event, cfg.Events),
		alerts: make(map[string]Event),
		snaps:  make([]MetricsSample, cfg.Snapshots),
	}
}

// Record stores one event in the ring and tracks alert transitions so
// the bundle's "alerts" section reflects what was active at the crash.
// It deliberately reads nothing outside the recorder (no registry, no
// journal), because it runs inside Journal.Emit under the journal
// lock. Nil-safe.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.ring) {
		r.ring[(r.head+r.n)%len(r.ring)] = e
		r.n++
	} else {
		r.ring[r.head] = e
		r.head = (r.head + 1) % len(r.ring)
	}
	switch e.Type {
	case EventAlert:
		r.alerts[e.AlertID] = e
	case EventAlertResolved:
		delete(r.alerts, e.AlertID)
	}
	r.mu.Unlock()
}

// LastSeq returns the highest sequence number in the ring (0 when
// empty). Nil-safe.
func (r *Recorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	return r.ring[(r.head+r.n-1)%len(r.ring)].Seq
}

// SampleMetrics appends one registry snapshot to the history ring (a
// no-op without a registry). Called by the Start sampler; exported so
// tests and synchronous callers can force a sample.
func (r *Recorder) SampleMetrics() {
	if r == nil || r.cfg.Registry == nil {
		return
	}
	s := MetricsSample{TimeUnixNano: time.Now().UnixNano(), Snap: r.cfg.Registry.Snapshot()}
	r.mu.Lock()
	if r.sn < len(r.snaps) {
		r.snaps[(r.shead+r.sn)%len(r.snaps)] = s
		r.sn++
	} else {
		r.snaps[r.shead] = s
		r.shead = (r.shead + 1) % len(r.snaps)
	}
	r.mu.Unlock()
}

// Start launches the periodic metrics sampler (default interval 5s).
// Calling Start twice, or on a nil recorder, is a no-op.
func (r *Recorder) Start(interval time.Duration) {
	if r == nil {
		return
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	r.stop, r.done = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				r.SampleMetrics()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the sampler and disarms the recorder (removing it from
// the crash-dump set). The rings stay readable; Dump still works.
// Safe to call more than once and on a nil recorder.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.Disarm()
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// armed is the process-wide set of recorders DumpArmed flushes — the
// crash-dump fan-out an injected chaos kill triggers through the hook
// installed in init below.
var armed struct {
	mu   sync.Mutex
	recs map[*Recorder]struct{}
}

func init() {
	// Any process that links the observability stack dumps its armed
	// black boxes before an injected crash exits. With nothing armed
	// this is a map iteration over an empty set.
	chaos.SetCrashHook(func() { DumpArmed("chaos kill") })
}

// Arm adds the recorder to the crash-dump set. Idempotent; nil-safe.
func (r *Recorder) Arm() {
	if r == nil {
		return
	}
	armed.mu.Lock()
	if armed.recs == nil {
		armed.recs = make(map[*Recorder]struct{})
	}
	armed.recs[r] = struct{}{}
	armed.mu.Unlock()
}

// Disarm removes the recorder from the crash-dump set. Nil-safe.
func (r *Recorder) Disarm() {
	if r == nil {
		return
	}
	armed.mu.Lock()
	delete(armed.recs, r)
	armed.mu.Unlock()
}

// ArmedRecorders returns the crash-dump set's size (leak tests).
func ArmedRecorders() int {
	armed.mu.Lock()
	defer armed.mu.Unlock()
	return len(armed.recs)
}

// DumpArmed dumps every armed recorder with the given reason,
// reporting failures on stderr (the caller is a crash path with no one
// to return an error to).
func DumpArmed(reason string) {
	armed.mu.Lock()
	recs := make([]*Recorder, 0, len(armed.recs))
	for r := range armed.recs {
		recs = append(recs, r)
	}
	armed.mu.Unlock()
	for _, r := range recs {
		if _, err := r.Dump(reason); err != nil {
			fmt.Fprintln(os.Stderr, "obs: postmortem dump failed:", err)
		}
	}
}

// Dump writes one postmortem bundle into cfg.Dir/postmortem and
// returns its path. The file is written once, appended nowhere, and
// synced — no temp-and-rename, because the dump itself runs on crash
// paths; a bundle torn by a harder kill mid-dump fails its CRC frames
// and decodes as an error, never as wrong data. Nil-safe (returns "").
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	if r.cfg.Dir == "" {
		return "", fmt.Errorf("obs: recorder has no dump directory")
	}
	data := r.encode(reason)
	dir := filepath.Join(r.cfg.Dir, PostmortemDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: postmortem dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("pm-%d.a4pm", time.Now().UnixNano()))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("obs: postmortem create: %w", err)
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			return path, fmt.Errorf("obs: postmortem write: %w", e)
		}
	}
	return path, nil
}

// encode frames the recorder's state into bundle bytes.
func (r *Recorder) encode(reason string) []byte {
	var buf bytes.Buffer
	buf.Write(bundleMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(BundleVersion))

	meta, _ := json.Marshal(BundleMeta{
		Version:      BundleVersion,
		Reason:       reason,
		TimeUnixNano: time.Now().UnixNano(),
		PID:          os.Getpid(),
		GoVersion:    runtime.Version(),
	})
	writeSection(&buf, SectionMeta, meta)

	stack := make([]byte, 1<<20)
	stack = stack[:runtime.Stack(stack, true)]
	writeSection(&buf, SectionGoroutines, stack)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap, _ := json.Marshal(HeapStats{
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		HeapObjects:  ms.HeapObjects,
		TotalAlloc:   ms.TotalAlloc,
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
		Goroutines:   runtime.NumGoroutine(),
	})
	writeSection(&buf, SectionHeap, heap)

	r.mu.Lock()
	events := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		events = append(events, r.ring[(r.head+i)%len(r.ring)])
	}
	alerts := make([]Event, 0, len(r.alerts))
	for _, id := range sortedKeys(r.alerts) {
		alerts = append(alerts, r.alerts[id])
	}
	samples := make([]MetricsSample, 0, r.sn)
	for i := 0; i < r.sn; i++ {
		samples = append(samples, r.snaps[(r.shead+i)%len(r.snaps)])
	}
	r.mu.Unlock()
	writeSection(&buf, SectionEvents, marshalJSONL(events))
	writeSection(&buf, SectionAlerts, marshalJSONL(alerts))
	writeSection(&buf, SectionMetricsHistory, marshalJSONL(samples))

	if r.cfg.Tracer != nil {
		if spans, err := r.cfg.Tracer.MarshalJSONL(); err == nil {
			writeSection(&buf, SectionSpans, spans)
		}
	}
	if r.cfg.Registry != nil {
		snap, _ := json.Marshal(r.cfg.Registry.Snapshot())
		writeSection(&buf, SectionMetrics, snap)
	}
	if r.cfg.ManifestPath != "" {
		if man, err := os.ReadFile(r.cfg.ManifestPath); err == nil {
			writeSection(&buf, SectionManifest, man)
		}
	}
	return buf.Bytes()
}

// marshalJSONL renders a slice as JSON Lines.
func marshalJSONL[T any](items []T) []byte {
	var buf bytes.Buffer
	for _, it := range items {
		line, err := json.Marshal(it)
		if err != nil {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// maxSectionName bounds a decoded section-name length; anything longer
// is garbage, not a bundle.
const maxSectionName = 256

// writeSection frames one named section: u32 name length, name, u32
// payload length, payload, u32 CRC-32 (IEEE) of the payload.
func writeSection(buf *bytes.Buffer, name string, payload []byte) {
	binary.Write(buf, binary.LittleEndian, uint32(len(name)))
	buf.WriteString(name)
	binary.Write(buf, binary.LittleEndian, uint32(len(payload)))
	buf.Write(payload)
	binary.Write(buf, binary.LittleEndian, crc32.ChecksumIEEE(payload))
}

// Postmortem is one decoded bundle.
type Postmortem struct {
	// Path is where the bundle was read from ("" for DecodeBundleBytes).
	Path string
	// Meta is the parsed header section.
	Meta BundleMeta
	// Sections holds every section's payload by name, including ones
	// this version of the decoder has no typed accessor for.
	Sections map[string][]byte
}

// DecodeBundle reads and decodes one bundle file.
func DecodeBundle(path string) (*Postmortem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read bundle: %w", err)
	}
	pm, err := DecodeBundleBytes(data)
	if err != nil {
		return nil, fmt.Errorf("obs: decode %s: %w", filepath.Base(path), err)
	}
	pm.Path = path
	return pm, nil
}

// DecodeBundleBytes decodes bundle bytes. Torn, truncated, or
// corrupted input returns an error — never a panic and never silently
// wrong data: every length is bounds-checked against the remaining
// input and every payload is CRC-verified.
func DecodeBundleBytes(data []byte) (*Postmortem, error) {
	rd := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return nil, fmt.Errorf("bundle too short for magic")
	}
	if magic != bundleMagic {
		return nil, fmt.Errorf("bad magic %q", magic[:])
	}
	var version uint32
	if err := binary.Read(rd, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("bundle too short for version")
	}
	if version == 0 || version > BundleVersion {
		return nil, fmt.Errorf("unsupported bundle version %d", version)
	}
	pm := &Postmortem{Sections: make(map[string][]byte)}
	for rd.Len() > 0 {
		var nameLen uint32
		if err := binary.Read(rd, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("torn section header")
		}
		if nameLen == 0 || nameLen > maxSectionName || int(nameLen) > rd.Len() {
			return nil, fmt.Errorf("section name length %d out of range", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(rd, name); err != nil {
			return nil, fmt.Errorf("torn section name")
		}
		var payloadLen uint32
		if err := binary.Read(rd, binary.LittleEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("section %s: torn payload length", name)
		}
		if int64(payloadLen) > int64(rd.Len()) {
			return nil, fmt.Errorf("section %s: payload length %d exceeds remaining %d", name, payloadLen, rd.Len())
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return nil, fmt.Errorf("section %s: torn payload", name)
		}
		var sum uint32
		if err := binary.Read(rd, binary.LittleEndian, &sum); err != nil {
			return nil, fmt.Errorf("section %s: torn checksum", name)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("section %s: checksum mismatch (got %08x want %08x)", name, got, sum)
		}
		pm.Sections[string(name)] = payload
	}
	meta, ok := pm.Sections[SectionMeta]
	if !ok {
		return nil, fmt.Errorf("bundle has no meta section")
	}
	if err := json.Unmarshal(meta, &pm.Meta); err != nil {
		return nil, fmt.Errorf("bad meta section: %v", err)
	}
	return pm, nil
}

// Events parses the bundle's event-ring section (nil when absent).
func (p *Postmortem) Events() []Event { return decodeJSONL[Event](p.Sections[SectionEvents]) }

// Alerts parses the bundle's active-alert section (nil when absent).
func (p *Postmortem) Alerts() []Event { return decodeJSONL[Event](p.Sections[SectionAlerts]) }

// Spans parses the bundle's span section (nil when absent).
func (p *Postmortem) Spans() []SpanRecord { return decodeJSONL[SpanRecord](p.Sections[SectionSpans]) }

// MetricsHistory parses the periodic snapshot section (nil when
// absent).
func (p *Postmortem) MetricsHistory() []MetricsSample {
	return decodeJSONL[MetricsSample](p.Sections[SectionMetricsHistory])
}

// Heap parses the heap-stats section (zero value when absent).
func (p *Postmortem) Heap() HeapStats {
	var h HeapStats
	json.Unmarshal(p.Sections[SectionHeap], &h)
	return h
}

// decodeJSONL parses a JSONL payload, skipping torn or foreign lines
// the way ReadEvents does.
func decodeJSONL[T any](data []byte) []T {
	var out []T
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(line, &v); err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}

// FindBundles returns every postmortem bundle under dir's postmortem
// subdirectory, sorted oldest first (the filename embeds the dump
// time).
func FindBundles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, PostmortemDir, "pm-*.a4pm"))
	if err != nil {
		return nil, err
	}
	return paths, nil
}
