package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// buildTestRecorder wires a recorder the way a job does: journal hook,
// registry, tracer, manifest — and feeds it a recognisable history.
func buildTestRecorder(t *testing.T, dir string) (*Recorder, *Journal) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("a4nn_events_emitted_total").Add(5)
	tracer := NewTracer(16)
	ctx, span := StartSpan(WithTracer(context.Background(), tracer), "generation")
	_ = ctx
	span.End()

	manifest := filepath.Join(dir, "job.json")
	if err := os.WriteFile(manifest, []byte(`{"config":{"id":"pm-test"},"state":"running"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(RecorderConfig{
		Events:       8,
		Snapshots:    4,
		Dir:          dir,
		Registry:     reg,
		Tracer:       tracer,
		ManifestPath: manifest,
	})
	j := NewJournal(32)
	j.AttachRecorder(r)
	j.Emit(Event{Type: EventRunStart})
	j.Emit(Event{Type: EventAlert, AlertID: "slo:turnaround", Severity: "critical", Msg: "budget exhausted"})
	j.Emit(Event{Type: EventAlert, AlertID: "sched:straggler", Severity: "warning", Msg: "device 2 slow"})
	j.Emit(Event{Type: EventAlertResolved, AlertID: "sched:straggler"})
	j.Emit(Event{Type: EventGenerationStart, Gen: 1})
	r.SampleMetrics()
	return r, j
}

func TestRecorderBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, j := buildTestRecorder(t, dir)

	path, err := r.Dump("test crash")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := DecodeBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Meta.Reason != "test crash" || pm.Meta.Version != BundleVersion || pm.Meta.PID != os.Getpid() {
		t.Fatalf("bad meta: %+v", pm.Meta)
	}

	events := pm.Events()
	if len(events) != 5 {
		t.Fatalf("ring events = %d, want 5", len(events))
	}
	// Crash consistency: the ring tail is the journal tail.
	if last := events[len(events)-1]; last.Seq != j.LastSeq() || last.Type != EventGenerationStart {
		t.Fatalf("ring tail %+v does not match journal seq %d", last, j.LastSeq())
	}
	if r.LastSeq() != j.LastSeq() {
		t.Fatalf("LastSeq = %d, journal seq = %d", r.LastSeq(), j.LastSeq())
	}

	// Only the unresolved alert is active at dump time.
	alerts := pm.Alerts()
	if len(alerts) != 1 || alerts[0].AlertID != "slo:turnaround" {
		t.Fatalf("active alerts = %+v, want the one unresolved slo alert", alerts)
	}

	if spans := pm.Spans(); len(spans) != 1 || spans[0].Name != "generation" {
		t.Fatalf("spans = %+v", spans)
	}
	if hist := pm.MetricsHistory(); len(hist) != 1 || hist[0].Snap.Counters["a4nn_events_emitted_total"] != 5 {
		t.Fatalf("metrics history = %+v", hist)
	}
	if heap := pm.Heap(); heap.HeapSys == 0 || heap.Goroutines == 0 {
		t.Fatalf("heap stats missing: %+v", heap)
	}
	if string(pm.Sections[SectionManifest]) != `{"config":{"id":"pm-test"},"state":"running"}` {
		t.Fatalf("manifest section = %q", pm.Sections[SectionManifest])
	}
	if len(pm.Sections[SectionGoroutines]) == 0 {
		t.Fatal("goroutine dump missing")
	}

	// FindBundles sees the dump.
	found, err := FindBundles(dir)
	if err != nil || len(found) != 1 || found[0] != path {
		t.Fatalf("FindBundles = %v, %v", found, err)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(RecorderConfig{Events: 4})
	for i := 1; i <= 10; i++ {
		r.Record(Event{Seq: uint64(i), Type: EventEpoch})
	}
	if r.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", r.LastSeq())
	}
	dir := t.TempDir()
	r.cfg.Dir = dir
	path, err := r.Dump("eviction")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := DecodeBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	events := pm.Events()
	if len(events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d (oldest evicted first)", i, e.Seq, want)
		}
	}
}

func TestDecodeBundleRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	r, _ := buildTestRecorder(t, dir)
	path, err := r.Dump("corruption source")
	if err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The decoder tolerates missing trailing sections (a crash can cut
	// the dump between frames), so a truncation landing exactly on a
	// section boundary past the meta section decodes cleanly. Every
	// other truncation — mid-frame — must error, never panic.
	boundaries := map[int]bool{}
	metaEnd := 0
	for off := 8; off < len(valid); {
		nameLen := int(uint32(valid[off]) | uint32(valid[off+1])<<8 | uint32(valid[off+2])<<16 | uint32(valid[off+3])<<24)
		plOff := off + 4 + nameLen
		payloadLen := int(uint32(valid[plOff]) | uint32(valid[plOff+1])<<8 | uint32(valid[plOff+2])<<16 | uint32(valid[plOff+3])<<24)
		off = plOff + 4 + payloadLen + 4
		if metaEnd == 0 {
			metaEnd = off // the meta section is written first
		}
		boundaries[off] = true
	}
	for n := 0; n < len(valid); n++ {
		_, err := DecodeBundleBytes(valid[:n])
		if wantClean := boundaries[n] && n >= metaEnd; wantClean != (err == nil) {
			t.Fatalf("truncation to %d bytes: err=%v, boundary=%v", n, err, wantClean)
		}
	}
	// A single flipped payload byte must fail its section CRC. Flip one
	// inside the meta payload (magic 4 + version 4 + nameLen 4 + name 4
	// + payloadLen 4 = offset 20 starts the meta JSON).
	flipped := append([]byte(nil), valid...)
	flipped[24] ^= 0x01
	if _, err := DecodeBundleBytes(flipped); err == nil {
		t.Fatal("bit flip decoded cleanly")
	}
	// Wrong magic and unsupported version.
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	if _, err := DecodeBundleBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	future := append([]byte(nil), valid...)
	future[4] = 0xFF
	if _, err := DecodeBundleBytes(future); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := DecodeBundleBytes(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestArmDisarmAndDumpArmed(t *testing.T) {
	base := ArmedRecorders()
	d1, d2 := t.TempDir(), t.TempDir()
	r1 := NewRecorder(RecorderConfig{Dir: d1})
	r2 := NewRecorder(RecorderConfig{Dir: d2})
	r1.Record(Event{Seq: 1, Type: EventRunStart})
	r1.Arm()
	r1.Arm() // idempotent
	r2.Arm()
	if got := ArmedRecorders(); got != base+2 {
		t.Fatalf("ArmedRecorders = %d, want %d", got, base+2)
	}
	r2.Close() // Close disarms
	if got := ArmedRecorders(); got != base+1 {
		t.Fatalf("ArmedRecorders after close = %d, want %d", got, base+1)
	}

	DumpArmed("drill")
	r1.Disarm()
	if got := ArmedRecorders(); got != base {
		t.Fatalf("ArmedRecorders after disarm = %d, want %d", got, base)
	}
	b1, _ := FindBundles(d1)
	if len(b1) != 1 {
		t.Fatalf("armed recorder wrote %d bundles, want 1", len(b1))
	}
	pm, err := DecodeBundle(b1[0])
	if err != nil {
		t.Fatal(err)
	}
	if pm.Meta.Reason != "drill" || len(pm.Events()) != 1 {
		t.Fatalf("bundle = %+v", pm.Meta)
	}
	if b2, _ := FindBundles(d2); len(b2) != 0 {
		t.Fatalf("closed recorder dumped anyway: %v", b2)
	}
}

func FuzzDecodeBundle(f *testing.F) {
	dir := f.TempDir()
	reg := NewRegistry()
	reg.Counter("c").Inc()
	r := NewRecorder(RecorderConfig{Events: 4, Dir: dir, Registry: reg})
	r.Record(Event{Seq: 1, Type: EventRunStart})
	path, err := r.Dump("fuzz seed")
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("A4PM"))
	f.Add([]byte{})
	torn := append([]byte(nil), valid...)
	torn[len(torn)/2] ^= 0xFF
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The contract: arbitrary bytes either decode into a bundle
		// whose every section passed its CRC, or error — never panic.
		pm, err := DecodeBundleBytes(data)
		if err == nil {
			if pm == nil || pm.Meta.Version == 0 {
				t.Fatalf("clean decode without meta: %+v", pm)
			}
			// Typed accessors must also hold up on whatever decoded.
			pm.Events()
			pm.Alerts()
			pm.Spans()
			pm.MetricsHistory()
			pm.Heap()
		}
	})
}

// BenchmarkDisabledRecorder measures the per-event cost a journal pays
// for the flight-recorder hook when no recorder is attached: one
// atomic load and a nil-receiver branch. The bench gate holds this at
// 0 allocs/op.
func BenchmarkDisabledRecorder(b *testing.B) {
	j := NewJournal(64)
	e := Event{Type: EventEpoch, Model: "g1-m1", Epoch: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Emit(e)
	}
}
