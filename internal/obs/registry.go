// Package obs is the workflow's observability layer: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms) with
// expvar-style JSON and Prometheus text-format output, lightweight span
// tracing with a bounded in-memory ring and an atomic JSONL sink, and a
// per-run Telemetry aggregate the analyzer loads to report utilisation,
// queue wait, and prediction savings per generation.
//
// The package is stdlib-only and built for instrumentation of hot
// paths: every instrument handle is nil-safe, so code instrumented
// against a disabled (nil) registry pays ~one branch per call and zero
// allocations — the zero-allocation training hot path stays
// zero-allocation (see BenchmarkDisabledObs).
//
// Metric names may embed Prometheus labels verbatim, e.g.
// `a4nn_sched_device_busy_sim_seconds{device="2"}`; the text formatter
// groups series of the same base name under a single TYPE header.
package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v to the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed cumulative bucket layout
// chosen at registration. All methods are safe for concurrent use and
// are no-ops on a nil receiver. Observations are lock-free: one atomic
// add for the bucket, one for the count, one CAS loop for the sum.
type Histogram struct {
	upper  []float64 // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// BelowCount returns the number of observations at or below the
// smallest bucket upper bound ≥ t — the histogram's best answer to
// "how many observations were ≤ t", bucket-granular and rounded in
// t's favor. Nil-safe.
func (h *Histogram) BelowCount(t float64) uint64 {
	if h == nil {
		return 0
	}
	limit := sort.SearchFloat64s(h.upper, t) + 1
	if limit > len(h.upper) {
		return h.count.Load() // t beyond the last bound: everything
	}
	var sum uint64
	for i := 0; i < limit; i++ {
		sum += h.counts[i].Load()
	}
	return sum
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Common fixed bucket layouts.
var (
	// SecondsBuckets spans sub-second engine interactions to multi-minute
	// simulated epochs.
	SecondsBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}
	// EpochBuckets spans the paper's 25-epoch training budget; used for
	// the predictor's stop-epoch distribution.
	EpochBuckets = []float64{2, 4, 6, 8, 10, 12, 16, 20, 25}
	// LayerSecondsBuckets spans per-layer forward/backward wall times,
	// from microsecond activations to multi-millisecond convolutions.
	LayerSecondsBuckets = []float64{
		1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
		1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1,
	}
)

// Registry holds named instruments. Lookups take a mutex; handles are
// meant to be resolved once at setup and then updated lock-free on the
// hot path. All methods are nil-safe: on a nil registry they return nil
// handles, whose updates are no-ops.
//
// A registry can hold child scopes (Scope), each a full registry whose
// series are exported with one extra label — the multi-tenant job
// service gives every job its own scope so per-job series roll up into
// the service /metrics as `...{job="id"}`. Scopes are retired (Retire)
// when their tenant reaches a terminal state, so the parent's
// cardinality is bounded by the number of live tenants, not by the
// service's lifetime submission count.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	scopes     map[string]*Registry // key: rendered label, e.g. `job="a"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// scopeKey renders the label pair a scope's series are decorated with.
// Values are escaped the way Prometheus label values are, so a hostile
// tenant id cannot break the exposition format.
func scopeKey(label, value string) string {
	var b strings.Builder
	b.WriteString(label)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Scope returns (creating if needed) the child registry whose series
// export with the extra label `label="value"`. The child is a full
// registry: instruments registered on it are invisible to the parent's
// instrument lookups but appear, decorated, in the parent's Snapshot,
// Prometheus, and JSON output. Nil-safe: a nil registry scopes to nil.
func (r *Registry) Scope(label, value string) *Registry {
	if r == nil {
		return nil
	}
	key := scopeKey(label, value)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.scopes == nil {
		r.scopes = make(map[string]*Registry)
	}
	s, ok := r.scopes[key]
	if !ok {
		s = NewRegistry()
		r.scopes[key] = s
	}
	return s
}

// Retire detaches the scope for `label="value"`, removing its series
// from the parent's output. Handles into the detached scope stay valid
// (updates just no longer surface), so a tenant that is shutting down
// concurrently cannot crash the export path. Nil-safe; retiring an
// unknown scope is a no-op.
func (r *Registry) Retire(label, value string) {
	if r == nil {
		return
	}
	key := scopeKey(label, value)
	r.mu.Lock()
	delete(r.scopes, key)
	r.mu.Unlock()
}

// Scopes returns the number of live child scopes (leak tests and the
// cardinality bound). Nil-safe.
func (r *Registry) Scopes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.scopes)
}

// NumSeries counts the registry's series including every live scope's
// (histograms count as one series each). This is the number the
// cardinality bound is stated in: own instruments + Σ scope series.
// Nil-safe.
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := len(r.counters) + len(r.gauges) + len(r.histograms)
	scopes := make([]*Registry, 0, len(r.scopes))
	for _, s := range r.scopes {
		scopes = append(scopes, s)
	}
	r.mu.Unlock()
	for _, s := range scopes {
		n += s.NumSeries()
	}
	return n
}

// decorateName merges a scope's label pair into a series name:
// (`x`, `job="a"`) → `x{job="a"}`; (`x{d="0"}`, `job="a"`) →
// `x{d="0",job="a"}`.
func decorateName(name, labelPair string) string {
	base := baseName(name)
	labels := name[len(base):]
	if labels == "" {
		return base + "{" + labelPair + "}"
	}
	return base + "{" + labels[1:len(labels)-1] + "," + labelPair + "}"
}

// Counter returns (registering if needed) the counter with the name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the gauge with the name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the histogram with the
// name. The bucket layout is fixed by the first registration; later
// calls return the existing histogram regardless of buckets. Bounds are
// sorted ascending and deduplicated; an empty layout falls back to
// SecondsBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(buckets) == 0 {
			buckets = SecondsBuckets
		}
		upper := append([]float64(nil), buckets...)
		sort.Float64s(upper)
		dedup := upper[:0]
		for i, b := range upper {
			if i == 0 || b != upper[i-1] {
				dedup = append(dedup, b)
			}
		}
		h = &Histogram{upper: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
		r.histograms[name] = h
	}
	return h
}

// baseName strips an embedded Prometheus label set from a series name:
// `x{device="0"}` → `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// sortedKeys returns the map's keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bucketLabel renders a histogram upper bound the way Prometheus does.
func bucketLabel(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}
