// Package obs is the workflow's observability layer: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms) with
// expvar-style JSON and Prometheus text-format output, lightweight span
// tracing with a bounded in-memory ring and an atomic JSONL sink, and a
// per-run Telemetry aggregate the analyzer loads to report utilisation,
// queue wait, and prediction savings per generation.
//
// The package is stdlib-only and built for instrumentation of hot
// paths: every instrument handle is nil-safe, so code instrumented
// against a disabled (nil) registry pays ~one branch per call and zero
// allocations — the zero-allocation training hot path stays
// zero-allocation (see BenchmarkDisabledObs).
//
// Metric names may embed Prometheus labels verbatim, e.g.
// `a4nn_sched_device_busy_sim_seconds{device="2"}`; the text formatter
// groups series of the same base name under a single TYPE header.
package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v to the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed cumulative bucket layout
// chosen at registration. All methods are safe for concurrent use and
// are no-ops on a nil receiver. Observations are lock-free: one atomic
// add for the bucket, one for the count, one CAS loop for the sum.
type Histogram struct {
	upper  []float64 // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Common fixed bucket layouts.
var (
	// SecondsBuckets spans sub-second engine interactions to multi-minute
	// simulated epochs.
	SecondsBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}
	// EpochBuckets spans the paper's 25-epoch training budget; used for
	// the predictor's stop-epoch distribution.
	EpochBuckets = []float64{2, 4, 6, 8, 10, 12, 16, 20, 25}
	// LayerSecondsBuckets spans per-layer forward/backward wall times,
	// from microsecond activations to multi-millisecond convolutions.
	LayerSecondsBuckets = []float64{
		1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
		1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1,
	}
)

// Registry holds named instruments. Lookups take a mutex; handles are
// meant to be resolved once at setup and then updated lock-free on the
// hot path. All methods are nil-safe: on a nil registry they return nil
// handles, whose updates are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (registering if needed) the counter with the name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the gauge with the name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the histogram with the
// name. The bucket layout is fixed by the first registration; later
// calls return the existing histogram regardless of buckets. Bounds are
// sorted ascending and deduplicated; an empty layout falls back to
// SecondsBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(buckets) == 0 {
			buckets = SecondsBuckets
		}
		upper := append([]float64(nil), buckets...)
		sort.Float64s(upper)
		dedup := upper[:0]
		for i, b := range upper {
			if i == 0 || b != upper[i-1] {
				dedup = append(dedup, b)
			}
		}
		h = &Histogram{upper: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
		r.histograms[name] = h
	}
	return h
}

// baseName strips an embedded Prometheus label set from a series name:
// `x{device="0"}` → `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// sortedKeys returns the map's keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bucketLabel renders a histogram upper bound the way Prometheus does.
func bucketLabel(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}
