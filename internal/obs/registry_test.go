package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	// Unsorted with a duplicate: registration sorts and dedups.
	h := r.Histogram("h", []float64{5, 1, 5})
	for _, v := range []float64{0.5, 1, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 14.5 {
		t.Fatalf("count %d sum %v, want 4 and 14.5", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms["h"]
	want := []BucketCount{{"1", 2}, {"5", 3}, {"+Inf", 4}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, hs.Buckets[i], b)
		}
	}
	// The layout is fixed by the first registration.
	if r.Histogram("h", []float64{99}) != h {
		t.Fatal("re-registration returned a different histogram")
	}
	// Empty layouts fall back to SecondsBuckets.
	if got := len(r.Histogram("s", nil).upper); got != len(SecondsBuckets) {
		t.Fatalf("default layout has %d bounds, want %d", got, len(SecondsBuckets))
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %v per run, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestConcurrentHammering drives every instrument kind, including the
// registry lookups themselves, from many goroutines; run with -race.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("busy")
			h := r.Histogram("lat", []float64{1, 10})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	const total = workers * iters
	if got := r.Counter("hits").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("busy").Value(); got != total {
		t.Fatalf("gauge = %v, want %v", got, float64(total))
	}
	h := r.Histogram("lat", nil)
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	hs := r.Snapshot().Histograms["lat"]
	if last := hs.Buckets[len(hs.Buckets)-1]; last.Count != total {
		t.Fatalf("+Inf bucket = %d, want %d", last.Count, total)
	}
}
