package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestScopeSnapshotDecoration(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("root_total").Add(3)

	a := reg.Scope("job", "a")
	a.Counter("a4nn_events_emitted_total").Add(7)
	a.Gauge(`a4nn_sched_device_busy{device="0"}`).Set(1.5)

	snap := reg.Snapshot()
	if got := snap.Counters["root_total"]; got != 3 {
		t.Fatalf("root_total = %d, want 3", got)
	}
	if got := snap.Counters[`a4nn_events_emitted_total{job="a"}`]; got != 7 {
		t.Fatalf("scoped counter = %d, want 7 (counters: %v)", got, snap.Counters)
	}
	// A series with embedded labels merges the scope pair in.
	if got := snap.Gauges[`a4nn_sched_device_busy{device="0",job="a"}`]; got != 1.5 {
		t.Fatalf("scoped labelled gauge = %v, want 1.5 (gauges: %v)", got, snap.Gauges)
	}
	// Scope instruments are invisible to the parent's own lookups: the
	// parent returns a fresh counter, not the child's.
	if got := reg.Counter("a4nn_events_emitted_total").Value(); got != 0 {
		t.Fatalf("parent lookup sees scoped counter (value %d)", got)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `a4nn_events_emitted_total{job="a"} 7`) {
		t.Fatalf("prometheus output missing scoped series:\n%s", buf.String())
	}
}

func TestScopeRetireBoundsCardinality(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("base").Set(1)
	baseline := reg.NumSeries()

	scope := reg.Scope("job", "tenant")
	c := scope.Counter("work_total")
	c.Inc()
	if reg.Scopes() != 1 {
		t.Fatalf("Scopes = %d, want 1", reg.Scopes())
	}
	if got := reg.NumSeries(); got != baseline+1 {
		t.Fatalf("NumSeries = %d, want %d", got, baseline+1)
	}

	reg.Retire("job", "tenant")
	if reg.Scopes() != 0 {
		t.Fatalf("Scopes after retire = %d, want 0", reg.Scopes())
	}
	if got := reg.NumSeries(); got != baseline {
		t.Fatalf("NumSeries after retire = %d, want baseline %d", got, baseline)
	}
	if _, ok := reg.Snapshot().Counters[`work_total{job="tenant"}`]; ok {
		t.Fatal("retired scope still exported")
	}
	// Handles into a retired scope stay valid: the tenant's teardown
	// can race the export path without crashing anything.
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("retired handle value = %d, want 2", c.Value())
	}
	// Retiring twice and retiring the unknown is a no-op.
	reg.Retire("job", "tenant")
	reg.Retire("job", "never-existed")

	// Re-scoping the same tenant id starts a fresh registry.
	if got := reg.Scope("job", "tenant").Counter("work_total").Value(); got != 0 {
		t.Fatalf("re-created scope inherited old counter (value %d)", got)
	}
}

func TestScopeKeyEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := "a\"b\\c\nd"
	reg.Scope("job", hostile).Counter("x").Inc()
	snap := reg.Snapshot()
	want := `x{job="a\"b\\c\nd"}`
	if _, ok := snap.Counters[want]; !ok {
		t.Fatalf("escaped series %q missing (counters: %v)", want, snap.Counters)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\nd\"}") {
		t.Fatalf("raw newline leaked into exposition format:\n%s", buf.String())
	}
}

func TestHistogramBelowCount(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 10} {
		h.Observe(v)
	}
	cases := []struct {
		t    float64
		want uint64
	}{
		{1, 1},   // ≤1 bucket
		{2, 3},   // ≤2
		{5, 4},   // ≤5
		{3, 4},   // rounds up to the ≤5 bucket, in t's favor
		{100, 5}, // beyond the last bound: everything
	}
	for _, c := range cases {
		if got := h.BelowCount(c.t); got != c.want {
			t.Errorf("BelowCount(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	var nilH *Histogram
	if nilH.BelowCount(1) != 0 {
		t.Fatal("nil histogram BelowCount != 0")
	}
}

// TestScopeConcurrentChurn drives scope creation, instrument updates,
// export, and retirement from concurrent goroutines; run under -race
// by `make race-obs`.
func TestScopeConcurrentChurn(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				s := reg.Scope("job", id)
				s.Counter("work_total").Inc()
				s.Gauge("depth").Set(float64(i))
				if i%10 == 0 {
					reg.Snapshot()
				}
				if i%25 == 0 {
					reg.Retire("job", id)
				}
			}
			reg.Retire("job", id)
		}(g)
	}
	wg.Wait()
	if got := reg.Scopes(); got != 0 {
		t.Fatalf("Scopes after churn = %d, want 0", got)
	}
	if got := reg.NumSeries(); got != 0 {
		t.Fatalf("NumSeries after churn = %d, want 0", got)
	}
}
