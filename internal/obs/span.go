package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is the completed, serialisable form of a span — one line
// of the spans JSONL sink.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUnixNano and DurationNanos are real (wall-clock) time; the
	// workflow's simulated-time accounting travels in Attrs.
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationNanos int64             `json:"duration_ns"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// Tracer collects completed spans into a bounded in-memory ring; once
// the ring is full the oldest spans are dropped (Dropped counts them).
// A Tracer is safe for concurrent use.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []SpanRecord
	start   int // index of the oldest record
	n       int // records currently held
	dropped uint64
}

// DefaultSpanCapacity bounds the ring at a size that comfortably holds
// a paper-scale run (100 models × ≤25 epoch spans + scheduler spans).
const DefaultSpanCapacity = 16384

// NewTracer returns a tracer whose ring holds up to capacity completed
// spans (≤ 0 selects DefaultSpanCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// add books a completed span into the ring.
func (t *Tracer) add(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == len(t.ring) {
		t.ring[t.start] = rec
		t.start = (t.start + 1) % len(t.ring)
		t.dropped++
		return
	}
	t.ring[(t.start+t.n)%len(t.ring)] = rec
	t.n++
}

// Snapshot returns the completed spans, oldest first, plus the count of
// spans dropped to the ring bound.
func (t *Tracer) Snapshot() (spans []SpanRecord, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans = make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		spans = append(spans, t.ring[(t.start+i)%len(t.ring)])
	}
	return spans, t.dropped
}

// MarshalJSONL renders the ring as JSON Lines, one span per line,
// oldest first.
func (t *Tracer) MarshalJSONL() ([]byte, error) {
	spans, _ := t.Snapshot()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// SpansHandler serves the ring as a JSON array (the /debug/spans
// endpoint).
func (t *Tracer) SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		spans, dropped := t.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Dropped uint64       `json:"dropped"`
			Spans   []SpanRecord `json:"spans"`
		}{Dropped: dropped, Spans: spans})
	})
}

// Span is one in-flight operation. It is created by StartSpan, carries
// string attributes, and books itself into its tracer's ring on End.
// All methods are no-ops on a nil receiver, so code instrumented
// against a context without a tracer costs one branch per call.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
	start  time.Time
	ended  bool
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying the tracer; StartSpan calls on
// the returned context (and its children) record into it. A nil tracer
// returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFromContext returns the context's current (innermost) span, or
// nil — for annotating a span started further up the call chain.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span named name under the context's current span
// (if any) and returns a derived context carrying the new span as
// parent for nested StartSpan calls. When the context carries no tracer
// it returns (ctx, nil) without allocating — instrumentation against a
// disabled tracer is free.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		start:  time.Now(),
		rec:    SpanRecord{ID: t.nextID.Add(1), Name: name},
	}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		s.rec.Parent = parent.rec.ID
	}
	s.rec.StartUnixNano = s.start.UnixNano()
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr attaches a string attribute to the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = val
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int) {
	s.SetAttr(key, strconv.Itoa(v))
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// End completes the span and books it into the tracer. Ending twice is
// a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.DurationNanos = time.Since(s.start).Nanoseconds()
	s.tracer.add(s.rec)
}

// IntAttr parses an integer attribute of a completed span record;
// missing or malformed attributes return 0.
func (r SpanRecord) IntAttr(key string) int {
	v, _ := strconv.Atoi(r.Attrs[key])
	return v
}

// FloatAttr parses a float attribute; missing or malformed return 0.
func (r SpanRecord) FloatAttr(key string) float64 {
	v, _ := strconv.ParseFloat(r.Attrs[key], 64)
	return v
}

// BoolAttr parses a boolean attribute; missing or malformed return false.
func (r SpanRecord) BoolAttr(key string) bool {
	v, _ := strconv.ParseBool(r.Attrs[key])
	return v
}
