package obs

import (
	"context"
	"testing"
)

func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)

	gctx, gen := StartSpan(ctx, SpanGeneration)
	tctx, task := StartSpan(gctx, SpanTask)
	_, epoch := StartSpan(tctx, SpanEpoch)
	if SpanFromContext(tctx) != task {
		t.Fatal("SpanFromContext must return the innermost span")
	}
	epoch.SetInt("epoch", 1)
	epoch.End()
	task.End()
	task.End() // double End is a no-op
	gen.End()

	spans, dropped := tr.Snapshot()
	if dropped != 0 || len(spans) != 3 {
		t.Fatalf("got %d spans (%d dropped), want 3 and 0", len(spans), dropped)
	}
	// Spans book in end order: innermost first.
	if spans[0].Name != SpanEpoch || spans[1].Name != SpanTask || spans[2].Name != SpanGeneration {
		t.Fatalf("span order %q %q %q", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("epoch parent %d, want task ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != spans[2].ID {
		t.Fatalf("task parent %d, want generation ID %d", spans[1].Parent, spans[2].ID)
	}
	if spans[2].Parent != 0 {
		t.Fatalf("root span has parent %d", spans[2].Parent)
	}
	if spans[0].IntAttr("epoch") != 1 {
		t.Fatalf("epoch attrs %+v", spans[0].Attrs)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, "x")
		s.End()
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("got %d spans, %d dropped; want 4 and 6", len(spans), dropped)
	}
	// The ring keeps the newest spans, oldest first.
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Fatalf("span %d has ID %d, want %d", i, s.ID, want)
		}
	}
}

func TestSpanAttrTypes(t *testing.T) {
	tr := NewTracer(4)
	_, s := StartSpan(WithTracer(context.Background(), tr), "x")
	s.SetFloat("f", 2.5)
	s.SetBool("b", true)
	s.SetAttr("s", "v")
	s.End()
	spans, _ := tr.Snapshot()
	rec := spans[0]
	if rec.FloatAttr("f") != 2.5 || !rec.BoolAttr("b") || rec.Attrs["s"] != "v" {
		t.Fatalf("attrs %+v", rec.Attrs)
	}
	if rec.IntAttr("missing") != 0 || rec.FloatAttr("missing") != 0 || rec.BoolAttr("missing") {
		t.Fatal("missing attrs must read as zero values")
	}
}

// TestDisabledTracingIsFree pins the overhead contract: instrumented
// code running without a tracer in its context must not allocate.
func TestDisabledTracingIsFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, s := StartSpan(ctx, "epoch")
		s.SetInt("epoch", 3)
		s.SetFloat("val_acc", 91.5)
		s.End()
		if sctx != ctx {
			t.Fatal("disabled StartSpan must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per span, want 0", allocs)
	}
	if s := SpanFromContext(ctx); s != nil {
		t.Fatal("no span expected in a bare context")
	}
}

// BenchmarkDisabledObs measures the full disabled-instrumentation path
// the hot loops pay: a would-be span plus a handful of nil instrument
// updates. The contract is 0 allocs/op (asserted by
// TestDisabledTracingIsFree and TestNilRegistryAndInstrumentsAreNoops).
func BenchmarkDisabledObs(b *testing.B) {
	ctx := context.Background()
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "epoch")
		s.SetInt("epoch", i)
		s.End()
		c.Inc()
		g.Set(1)
		h.Observe(1)
	}
}
