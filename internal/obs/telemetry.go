package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Span names and attribute keys the instrumented workflow emits; the
// telemetry loader keys off them.
const (
	SpanGeneration = "generation"
	SpanTask       = "task"
	SpanEpoch      = "epoch"
)

// GenTelemetry aggregates one generation's spans: the scheduler
// accounting from its generation span plus the training/prediction
// accounting summed over its task spans.
type GenTelemetry struct {
	Generation int `json:"generation"`
	// Tasks counts the generation's training tasks.
	Tasks int `json:"tasks"`
	// WallSeconds, BusySeconds, and IdleSeconds are the generation's
	// simulated makespan, summed device busy time, and barrier idle time.
	WallSeconds float64 `json:"wall_seconds"`
	BusySeconds float64 `json:"busy_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
	// Utilisation is BusySeconds / (BusySeconds + IdleSeconds); 0 when
	// the generation did no work.
	Utilisation float64 `json:"utilisation"`
	// MeanQueueWaitSeconds averages, across task dispatches, the
	// simulated time each task waited behind the FIFO queue before its
	// device picked it up.
	MeanQueueWaitSeconds float64 `json:"mean_queue_wait_seconds"`
	// Retries and Faults are the generation's re-dispatches and fault
	// events.
	Retries int `json:"retries"`
	Faults  int `json:"faults"`
	// EpochsTrained and EpochsSaved sum the epochs the generation's
	// models actually trained and the epochs the prediction engine cut
	// from their full budgets. Terminated counts early-stopped models.
	EpochsTrained int `json:"epochs_trained"`
	EpochsSaved   int `json:"epochs_saved"`
	Terminated    int `json:"terminated"`
}

// Telemetry is the per-run aggregate loaded back from a run's commons
// directory — the analyzer's view of the spans JSONL and metrics
// snapshot the workflow flushed.
type Telemetry struct {
	// Spans is the number of spans loaded; DroppedToRing is how many the
	// bounded ring had discarded before the flush (0 when the run fit).
	Spans int `json:"spans"`
	// Generations holds one aggregate per NAS generation, ascending.
	Generations []GenTelemetry `json:"generations"`
	// EpochsTrained, EpochsSaved and Terminated are run-level sums.
	EpochsTrained int `json:"epochs_trained"`
	EpochsSaved   int `json:"epochs_saved"`
	Terminated    int `json:"terminated"`
	// Metrics is the final registry snapshot, when metrics.json was
	// present (zero-valued otherwise).
	Metrics Snapshot `json:"metrics"`
}

// ReadSpans parses a spans JSONL file.
func ReadSpans(path string) ([]SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spans []SpanRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var s SpanRecord
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("obs: %s line %d: %w", path, line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read %s: %w", path, err)
	}
	return spans, nil
}

// LoadTelemetry loads a run's telemetry from the directory its observer
// flushed to (normally the commons root): spans from SpansFile and,
// when present, the final metrics snapshot from MetricsFile.
func LoadTelemetry(dir string) (*Telemetry, error) {
	spans, err := ReadSpans(filepath.Join(dir, SpansFile))
	if err != nil {
		return nil, err
	}
	t := AggregateSpans(spans)
	if data, err := os.ReadFile(filepath.Join(dir, MetricsFile)); err == nil {
		if err := json.Unmarshal(data, &t.Metrics); err != nil {
			return nil, fmt.Errorf("obs: %s: %w", MetricsFile, err)
		}
	}
	return t, nil
}

// AggregateSpans computes the per-generation telemetry from a span set.
func AggregateSpans(spans []SpanRecord) *Telemetry {
	t := &Telemetry{Spans: len(spans)}
	gens := make(map[int]*GenTelemetry)
	waitSum := make(map[int]float64)
	waitN := make(map[int]int)
	at := func(gen int) *GenTelemetry {
		g, ok := gens[gen]
		if !ok {
			g = &GenTelemetry{Generation: gen}
			gens[gen] = g
		}
		return g
	}
	for _, s := range spans {
		switch s.Name {
		case SpanGeneration:
			g := at(s.IntAttr("gen"))
			g.Tasks = s.IntAttr("tasks")
			g.WallSeconds = s.FloatAttr("wall_s")
			g.BusySeconds = s.FloatAttr("busy_s")
			g.IdleSeconds = s.FloatAttr("idle_s")
			g.Retries = s.IntAttr("retries")
			g.Faults = s.IntAttr("faults")
		case SpanTask:
			gen := s.IntAttr("gen")
			g := at(gen)
			g.EpochsTrained += s.IntAttr("epochs")
			g.EpochsSaved += s.IntAttr("saved")
			if s.BoolAttr("terminated") {
				g.Terminated++
			}
			waitSum[gen] += s.FloatAttr("queue_wait_s")
			waitN[gen]++
		}
	}
	for gen, g := range gens {
		if n := waitN[gen]; n > 0 {
			g.MeanQueueWaitSeconds = waitSum[gen] / float64(n)
		}
		if total := g.BusySeconds + g.IdleSeconds; total > 0 {
			g.Utilisation = g.BusySeconds / total
		}
		t.EpochsTrained += g.EpochsTrained
		t.EpochsSaved += g.EpochsSaved
		t.Terminated += g.Terminated
		t.Generations = append(t.Generations, *g)
	}
	sort.Slice(t.Generations, func(i, j int) bool {
		return t.Generations[i].Generation < t.Generations[j].Generation
	})
	return t
}
