package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// emitRunSpans records the span shapes the instrumented workflow emits:
// one generation span enclosing two task spans, with the simulated-time
// accounting as attributes.
func emitRunSpans(o *Observer) {
	ctx := WithTracer(context.Background(), o.Tracer())
	gctx, gen := StartSpan(ctx, SpanGeneration)
	for i, saved := range []int{5, 0} {
		_, task := StartSpan(gctx, SpanTask)
		task.SetInt("gen", 0)
		task.SetInt("task", i)
		task.SetFloat("queue_wait_s", float64(i*10))
		task.SetInt("epochs", 25-saved)
		task.SetInt("saved", saved)
		task.SetBool("terminated", saved > 0)
		task.End()
	}
	gen.SetInt("gen", 0)
	gen.SetInt("tasks", 2)
	gen.SetFloat("wall_s", 300)
	gen.SetFloat("busy_s", 540)
	gen.SetFloat("idle_s", 60)
	gen.SetInt("retries", 1)
	gen.SetInt("faults", 2)
	gen.End()
}

func TestFlushLoadTelemetryRoundTrip(t *testing.T) {
	o := NewObserver()
	o.Registry().Counter("a4nn_train_epochs_total").Add(45)
	emitRunSpans(o)

	dir := t.TempDir()
	if err := o.FlushTo(dir); err != nil {
		t.Fatal(err)
	}
	// No temp files may survive the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || strings.Contains(strings.Join(names, " "), ".tmp-") {
		t.Fatalf("flush dir contents %v, want exactly [metrics.json spans.jsonl]", names)
	}

	tel, err := LoadTelemetry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Spans != 3 || len(tel.Generations) != 1 {
		t.Fatalf("telemetry spans=%d generations=%d", tel.Spans, len(tel.Generations))
	}
	g := tel.Generations[0]
	if g.Tasks != 2 || g.WallSeconds != 300 || g.Retries != 1 || g.Faults != 2 {
		t.Fatalf("generation aggregate %+v", g)
	}
	if want := 540.0 / 600.0; math.Abs(g.Utilisation-want) > 1e-12 {
		t.Fatalf("utilisation %v, want %v", g.Utilisation, want)
	}
	if g.MeanQueueWaitSeconds != 5 {
		t.Fatalf("mean queue wait %v, want 5", g.MeanQueueWaitSeconds)
	}
	if g.EpochsTrained != 45 || g.EpochsSaved != 5 || g.Terminated != 1 {
		t.Fatalf("savings %+v", g)
	}
	if tel.EpochsTrained != 45 || tel.EpochsSaved != 5 || tel.Terminated != 1 {
		t.Fatalf("run-level sums %+v", tel)
	}
	if tel.Metrics.Counters["a4nn_train_epochs_total"] != 45 {
		t.Fatalf("metrics snapshot %+v", tel.Metrics.Counters)
	}
}

func TestReadSpansRejectsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SpansFile)
	if err := os.WriteFile(path, []byte("{\"id\":1,\"name\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpans(path); err == nil {
		t.Fatal("want an error for a malformed line")
	}
}

func TestAggregateSpansEmpty(t *testing.T) {
	tel := AggregateSpans(nil)
	if tel.Spans != 0 || len(tel.Generations) != 0 {
		t.Fatalf("empty aggregate %+v", tel)
	}
}

func TestObserverHandlerEndpoints(t *testing.T) {
	o := NewObserver()
	o.Registry().Counter("a4nn_tasks_total").Inc()
	emitRunSpans(o)
	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "a4nn_tasks_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json content type %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a4nn_tasks_total"] != 1 {
		t.Fatalf("/metrics.json counters %+v", snap.Counters)
	}

	body, _ = get("/debug/spans")
	var spans struct {
		Dropped uint64       `json:"dropped"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans.Spans) != 3 || spans.Dropped != 0 {
		t.Fatalf("/debug/spans returned %d spans, %d dropped", len(spans.Spans), spans.Dropped)
	}
}

func TestNilObserver(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer must hand out nil components")
	}
	if err := o.FlushTo(t.TempDir()); err != nil {
		t.Fatalf("nil observer flush: %v", err)
	}
}
