package obs

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram's
// observations by linear interpolation inside the owning bucket, the
// standard Prometheus histogram_quantile estimate. The open-ended +Inf
// bucket degrades to the largest finite bound. Returns 0 for an empty
// histogram or a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.upper) {
				// Open-ended bucket: the best bounded answer is the
				// largest finite upper bound.
				if len(h.upper) == 0 {
					return 0
				}
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			return lo + (h.upper[i]-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.upper) == 0 {
		return 0
	}
	return h.upper[len(h.upper)-1]
}

// VisitSeries calls fn once per sampleable series: counters and gauges
// by current value, histograms expanded to `_count`, `_sum` and `_p99`
// series (suffixes merge before any embedded label set, matching the
// Prometheus formatter). Child scopes are visited with their series
// decorated by the scope's label pair, outside the parent's lock —
// the same two-phase discipline as Snapshot. The time-series sampler
// is the consumer. fn must not call back into the registry. Nil-safe.
func (r *Registry) VisitSeries(fn func(name string, v float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, name := range sortedKeys(r.counters) {
		fn(name, float64(r.counters[name].Value()))
	}
	for _, name := range sortedKeys(r.gauges) {
		fn(name, r.gauges[name].Value())
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		fn(suffixSeries(name, "_count"), float64(h.Count()))
		fn(suffixSeries(name, "_sum"), h.Sum())
		fn(suffixSeries(name, "_p99"), h.Quantile(0.99))
	}
	type scopePair struct {
		label string
		reg   *Registry
	}
	scopes := make([]scopePair, 0, len(r.scopes))
	for _, label := range sortedKeys(r.scopes) {
		scopes = append(scopes, scopePair{label, r.scopes[label]})
	}
	r.mu.Unlock()
	for _, s := range scopes {
		s.reg.VisitSeries(func(name string, v float64) {
			fn(decorateName(name, s.label), v)
		})
	}
}
