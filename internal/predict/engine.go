package predict

import (
	"errors"
	"fmt"
	"math"

	"a4nn/internal/fit"
	"a4nn/internal/obs"
)

// Config mirrors Table 1 of the paper: the prediction engine's
// user-supplied settings.
type Config struct {
	// Family is the parametric function F used to model fitness curves.
	// The paper uses F(x) = a − b^(c−x) (ExpApproach).
	Family CurveFamily
	// CMin is the minimum number of fitness observations required before
	// the engine makes its first prediction (paper: 3).
	CMin int
	// EPred is the epoch for which final fitness is predicted (paper: 25,
	// the NAS's full training length).
	EPred int
	// N is the number of most recent predictions that must agree for the
	// analyzer to declare convergence (paper: 3).
	N int
	// R is the dispersion tolerated among those N predictions (paper:
	// 0.5). Dispersion is measured as the range max−min of the window,
	// the strictest of the common readings of the paper's "variance of
	// prediction to tolerate".
	R float64
	// MinFitness and MaxFitness bound valid fitness values; predictions
	// outside (MinFitness, MaxFitness) are invalid and block convergence.
	// The paper uses validation accuracy, so [0, 100].
	MinFitness, MaxFitness float64
	// RecencyWeight, when positive, weights observation i (1-based epoch
	// e of n) by (e/n)^RecencyWeight in the fit, so late epochs dominate
	// the extrapolation. 0 (the paper's implicit setting) weights all
	// epochs equally. Exposed for the curve-fitting ablations.
	RecencyWeight float64
}

// DefaultConfig returns the exact configuration of Table 1: F(x)=a−b^(c−x),
// CMin=3, e_pred=25, N=3, r=0.5, fitness bounds [0,100].
func DefaultConfig() Config {
	return Config{
		Family:     ExpApproach{},
		CMin:       3,
		EPred:      25,
		N:          3,
		R:          0.5,
		MinFitness: 0,
		MaxFitness: 100,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if c.Family == nil {
		return errors.New("predict: Config.Family must be set")
	}
	if c.CMin < 1 {
		return fmt.Errorf("predict: CMin must be ≥ 1, got %d", c.CMin)
	}
	if c.CMin < c.Family.NumParams() {
		return fmt.Errorf("predict: CMin=%d is fewer observations than the %d parameters of family %s",
			c.CMin, c.Family.NumParams(), c.Family.Name())
	}
	if c.EPred < 1 {
		return fmt.Errorf("predict: EPred must be ≥ 1, got %d", c.EPred)
	}
	if c.N < 1 {
		return fmt.Errorf("predict: N must be ≥ 1, got %d", c.N)
	}
	if c.R < 0 {
		return fmt.Errorf("predict: R must be ≥ 0, got %v", c.R)
	}
	if c.MaxFitness <= c.MinFitness {
		return fmt.Errorf("predict: fitness bounds [%v,%v] are empty", c.MinFitness, c.MaxFitness)
	}
	if c.RecencyWeight < 0 {
		return fmt.Errorf("predict: RecencyWeight must be ≥ 0, got %v", c.RecencyWeight)
	}
	return nil
}

// Engine is the self-contained, externally controllable parametric
// prediction engine (paper §2.1). It is stateless across networks: per-NN
// state (fitness history H and prediction history P) lives in Tracker or
// with the caller, matching Algorithm 1 where H and P are owned by the
// training loop.
type Engine struct {
	cfg     Config
	metrics Metrics
}

// Metrics holds the engine's nil-safe instrument handles; the zero
// value disables instrumentation. Handles are updated atomically, so
// one Metrics set serves every goroutine sharing the engine.
type Metrics struct {
	// Predictions counts successful fits; FitFailures counts fit
	// attempts that produced no usable prediction.
	Predictions *obs.Counter
	FitFailures *obs.Counter
	// Convergences counts networks whose prediction window converged
	// (one per Tracker, at the convergence transition).
	Convergences *obs.Counter
	// Events, when non-nil, receives a predict_converge event at each
	// Tracker's convergence transition, carrying the tracker's Label and
	// the converged prediction.
	Events *obs.Journal
}

// NewEngine validates cfg and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// SetMetrics installs instrument handles. Call before the engine is
// shared across training goroutines.
func (e *Engine) SetMetrics(m Metrics) { e.metrics = m }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Predict implements the Parametric Modeling step (§2.1.1): given the
// fitness history — history[i] is the fitness observed after epoch i+1 —
// it fits the configured family and extrapolates the fitness at EPred.
// ok is false while len(history) < CMin or when the fit fails; Algorithm 1
// then simply continues training.
func (e *Engine) Predict(history []float64) (pred float64, ok bool) {
	if len(history) < e.cfg.CMin {
		return 0, false
	}
	xs := make([]float64, len(history))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return e.PredictAt(xs, history, float64(e.cfg.EPred))
}

// PredictAt fits the family to arbitrary (epoch, fitness) pairs and
// evaluates the fitted curve at epoch x. It is the engine's low-level
// entry point; Predict wraps it for the dense 1..e histories produced by
// Algorithm 1.
func (e *Engine) PredictAt(xs, ys []float64, x float64) (pred float64, ok bool) {
	fam := e.cfg.Family
	if len(xs) != len(ys) || len(xs) < fam.NumParams() {
		return 0, false
	}
	if fam.NumParams() == 1 && fam.Name() == (LastValue{}).Name() {
		// Trivial family: no fit required.
		e.metrics.Predictions.Inc()
		return fam.Eval(fam.InitialGuess(xs, ys), x), true
	}
	lo, hi := fam.Bounds()
	var weights []float64
	if e.cfg.RecencyWeight > 0 {
		weights = make([]float64, len(xs))
		n := float64(len(xs))
		for i := range weights {
			weights[i] = math.Pow(float64(i+1)/n, e.cfg.RecencyWeight)
		}
	}
	opts := &fit.LMOptions{MaxIterations: 100, Lower: lo, Upper: hi, Weights: weights}

	// Multi-start: begin from the linearised initial guess; only when
	// that fit explains the data poorly (a suspected local minimum), try
	// deterministic perturbations of the rate-like parameter and keep the
	// lowest-residual fit. The gate keeps the common case at one fit per
	// engine interaction.
	guess := fam.InitialGuess(xs, ys)
	best := math.Inf(1)
	var bestParams []float64
	variance := 0.0
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		d := y - mean
		variance += d * d
	}
	for si, scale := range []float64{1, 0.5, 2} {
		p0 := append([]float64(nil), guess...)
		if scale != 1 && len(p0) > 1 {
			p0[1] *= scale // perturb the rate-like parameter
		}
		res, err := fit.CurveFit(fam.Eval, xs, ys, p0, opts)
		if err == nil && res.Residual < best {
			best = res.Residual
			bestParams = res.Params
		}
		// First fit good enough (≥95% of variance explained): accept.
		if si == 0 && bestParams != nil && best <= 0.05*variance {
			break
		}
	}
	if bestParams == nil {
		e.metrics.FitFailures.Inc()
		return 0, false
	}
	v := fam.Eval(bestParams, x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		e.metrics.FitFailures.Inc()
		return 0, false
	}
	e.metrics.Predictions.Inc()
	return v, true
}

// Converged implements the Prediction Analyzer (§2.1.2): it reports
// whether the most recent N predictions are all valid fitness values
// (strictly within [MinFitness, MaxFitness]) and mutually within R of one
// another. Fewer than N predictions never converge.
func (e *Engine) Converged(predictions []float64) bool {
	n := e.cfg.N
	if len(predictions) < n {
		return false
	}
	window := predictions[len(predictions)-n:]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range window {
		if math.IsNaN(p) || p < e.cfg.MinFitness || p > e.cfg.MaxFitness {
			return false
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return hi-lo <= e.cfg.R
}

// Tracker carries the per-network state of Algorithm 1: the fitness
// history H, the prediction history P, and whether the analyzer has
// declared convergence. One Tracker is created per NN being trained.
type Tracker struct {
	engine *Engine
	// Label identifies the network in emitted events (typically its
	// lineage record ID); optional.
	Label string
	// Gen is the network's NAS generation, carried into events; optional.
	Gen int
	// H is the fitness history: H[i] is the fitness after epoch i+1.
	H []float64
	// P is the prediction history: every successful prediction, in order.
	P []float64
	// PredEpochs records the epoch (1-based) at which each entry of P was
	// produced, for lineage records and Figure-2-style plots.
	PredEpochs []int
	converged  bool
}

// NewTracker returns a Tracker bound to the engine.
func NewTracker(e *Engine) *Tracker { return &Tracker{engine: e} }

// Observe appends the fitness measured after one more training epoch and
// runs one iteration of the prediction engine (lines 5–9 of Algorithm 1).
// It returns whether the predictions have now converged; once true, the
// training loop should terminate and use FinalFitness.
func (t *Tracker) Observe(fitness float64) (converged bool) {
	if t.converged {
		return true
	}
	t.H = append(t.H, fitness)
	if p, ok := t.engine.Predict(t.H); ok {
		t.P = append(t.P, p)
		t.PredEpochs = append(t.PredEpochs, len(t.H))
	}
	t.converged = t.engine.Converged(t.P)
	if t.converged {
		t.engine.metrics.Convergences.Inc()
		// Actual carries the fitness observed at the convergence epoch, so
		// calibration monitors can track |predicted − actual| drift live.
		t.engine.metrics.Events.Emit(obs.Event{
			Type:      obs.EventPredictConverge,
			Model:     t.Label,
			Gen:       t.Gen,
			Epoch:     len(t.H),
			Predicted: t.P[len(t.P)-1],
			Actual:    fitness,
		})
	}
	return t.converged
}

// Restore rehydrates the tracker from persisted state (a model-level
// checkpoint): the fitness history H, the prediction history P with the
// epochs that produced it, and whether the analyzer had already declared
// convergence. Subsequent Observe calls continue exactly where the
// persisted run stopped — no convergence event is re-emitted for an
// already-converged tracker.
func (t *Tracker) Restore(h, p []float64, predEpochs []int, converged bool) {
	t.H = append(t.H[:0], h...)
	t.P = append(t.P[:0], p...)
	t.PredEpochs = append(t.PredEpochs[:0], predEpochs...)
	t.converged = converged
}

// Converged reports whether the analyzer has declared convergence.
func (t *Tracker) Converged() bool { return t.converged }

// Epoch returns the number of epochs observed so far.
func (t *Tracker) Epoch() int { return len(t.H) }

// FinalFitness implements lines 17–21 of Algorithm 1: the last prediction
// when converged, otherwise the last observed fitness. ok is false when
// nothing has been observed yet.
func (t *Tracker) FinalFitness() (fitness float64, ok bool) {
	if t.converged && len(t.P) > 0 {
		return t.P[len(t.P)-1], true
	}
	if len(t.H) > 0 {
		return t.H[len(t.H)-1], true
	}
	return 0, false
}
