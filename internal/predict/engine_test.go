package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthCurve generates a learning curve from the paper family with
// asymptote a, rate b=e^beta, and offset c, plus Gaussian noise.
func synthCurve(a, beta, c float64, epochs int, noise float64, rng *rand.Rand) []float64 {
	ys := make([]float64, epochs)
	for e := 1; e <= epochs; e++ {
		v := a - math.Exp(beta*(c-float64(e)))
		if noise > 0 {
			v += rng.NormFloat64() * noise
		}
		ys[e-1] = v
	}
	return ys
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Family.Name() != "a-b^(c-x)" {
		t.Fatalf("family = %s", cfg.Family.Name())
	}
	if cfg.CMin != 3 || cfg.EPred != 25 || cfg.N != 3 || cfg.R != 0.5 {
		t.Fatalf("config deviates from Table 1: %+v", cfg)
	}
	if cfg.MinFitness != 0 || cfg.MaxFitness != 100 {
		t.Fatalf("fitness bounds deviate: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil family", func(c *Config) { c.Family = nil }},
		{"zero cmin", func(c *Config) { c.CMin = 0 }},
		{"cmin below params", func(c *Config) { c.CMin = 2 }},
		{"zero epred", func(c *Config) { c.EPred = 0 }},
		{"zero n", func(c *Config) { c.N = 0 }},
		{"negative r", func(c *Config) { c.R = -1 }},
		{"empty bounds", func(c *Config) { c.MaxFitness = c.MinFitness }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("%s: NewEngine must reject invalid config", tc.name)
		}
	}
}

func TestPredictRequiresCMin(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	if _, ok := e.Predict([]float64{50}); ok {
		t.Fatal("prediction with fewer than CMin observations must fail")
	}
	if _, ok := e.Predict([]float64{50, 60}); ok {
		t.Fatal("prediction with fewer than CMin observations must fail")
	}
	if _, ok := e.Predict([]float64{50, 60, 65}); !ok {
		t.Fatal("prediction with CMin observations should succeed")
	}
}

// TestPredictExtrapolatesCleanCurve: on a noiseless curve the engine's
// extrapolation at e_pred=25 must approach the true value.
func TestPredictExtrapolatesCleanCurve(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	a, beta, c := 95.0, 0.35, 2.0
	truth := a - math.Exp(beta*(c-25))
	ys := synthCurve(a, beta, c, 10, 0, nil)
	pred, ok := e.Predict(ys)
	if !ok {
		t.Fatal("prediction failed")
	}
	if math.Abs(pred-truth) > 0.5 {
		t.Fatalf("pred = %v, want ≈%v", pred, truth)
	}
}

// TestPredictNoisyCurveConverges mirrors Figure 2: on a realistic noisy
// curve the per-epoch predictions stabilise well before full training.
func TestPredictNoisyCurveConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := mustEngine(t, DefaultConfig())
	ys := synthCurve(93, 0.4, 1.5, 25, 0.25, rng)
	tr := NewTracker(e)
	terminated := 0
	for epoch, y := range ys {
		if tr.Observe(y) {
			terminated = epoch + 1
			break
		}
	}
	if terminated == 0 {
		t.Fatal("tracker never converged on a well-behaved curve")
	}
	if terminated >= 25 {
		t.Fatalf("converged only at epoch %d; expected early termination", terminated)
	}
	got, ok := tr.FinalFitness()
	if !ok {
		t.Fatal("FinalFitness unavailable after convergence")
	}
	if math.Abs(got-93) > 2.5 {
		t.Fatalf("final fitness %v, want ≈93", got)
	}
}

func TestConvergedValidityBounds(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	// Any prediction outside [0,100] in the window blocks convergence
	// (paper §2.1.2).
	if e.Converged([]float64{101, 101, 101}) {
		t.Fatal("out-of-bounds predictions must not converge")
	}
	if e.Converged([]float64{-1, -1, -1}) {
		t.Fatal("negative predictions must not converge")
	}
	if e.Converged([]float64{90, 90.2, math.NaN()}) {
		t.Fatal("NaN prediction must not converge")
	}
	if !e.Converged([]float64{90, 90.2, 90.4}) {
		t.Fatal("in-bounds tight window must converge")
	}
	// Earlier out-of-bounds values outside the window are irrelevant.
	if !e.Converged([]float64{150, 90, 90.2, 90.4}) {
		t.Fatal("only the last N predictions matter")
	}
}

func TestConvergedWindowDispersion(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	if e.Converged([]float64{90, 90.3, 90.6}) {
		t.Fatal("window range 0.6 > r=0.5 must not converge")
	}
	if !e.Converged([]float64{90, 90.1, 90.5}) {
		t.Fatal("window range 0.5 ≤ r=0.5 must converge")
	}
	if e.Converged([]float64{90, 90.1}) {
		t.Fatal("fewer than N predictions must not converge")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	tr := NewTracker(e)
	if _, ok := tr.FinalFitness(); ok {
		t.Fatal("FinalFitness before any observation must report !ok")
	}
	if tr.Epoch() != 0 || tr.Converged() {
		t.Fatal("fresh tracker state wrong")
	}
	tr.Observe(50)
	if tr.Epoch() != 1 {
		t.Fatalf("Epoch = %d", tr.Epoch())
	}
	// Before convergence the final fitness is the last observation
	// (Algorithm 1, line 20).
	got, ok := tr.FinalFitness()
	if !ok || got != 50 {
		t.Fatalf("FinalFitness = %v, %v; want 50, true", got, ok)
	}
}

func TestTrackerStopsObservingAfterConvergence(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	tr := NewTracker(e)
	ys := synthCurve(95, 0.5, 1, 25, 0, nil)
	var et int
	for i, y := range ys {
		if tr.Observe(y) {
			et = i + 1
			break
		}
	}
	if et == 0 {
		t.Fatal("no convergence on clean curve")
	}
	h := len(tr.H)
	if tr.Observe(1234) != true {
		t.Fatal("Observe after convergence must keep reporting converged")
	}
	if len(tr.H) != h {
		t.Fatal("Observe after convergence must not extend the history")
	}
}

// TestFlatCurveNeverPredictsWildly: a pathological constant history should
// either predict the constant or fail, never diverge.
func TestFlatCurve(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	pred, ok := e.Predict([]float64{50, 50, 50, 50, 50})
	if ok && math.Abs(pred-50) > 1 {
		t.Fatalf("flat history predicted %v, want ≈50", pred)
	}
}

// TestDecreasingCurve: fitness that degrades (failed network) should not
// produce a convergent over-100 prediction.
func TestDecreasingCurveStaysInvalidOrLow(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	tr := NewTracker(e)
	ys := []float64{60, 55, 50, 46, 43, 41, 40, 39, 38, 37}
	for _, y := range ys {
		tr.Observe(y)
	}
	if tr.Converged() {
		if p, _ := tr.FinalFitness(); p > 100 || p < 0 {
			t.Fatalf("converged on invalid fitness %v", p)
		}
	}
}

func TestPredictAtLengthMismatch(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	if _, ok := e.PredictAt([]float64{1, 2}, []float64{1}, 25); ok {
		t.Fatal("length mismatch must fail")
	}
}

func TestLastValueFamily(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Family = LastValue{}
	cfg.CMin = 1
	e := mustEngine(t, cfg)
	pred, ok := e.Predict([]float64{10, 20, 30})
	if !ok || pred != 30 {
		t.Fatalf("LastValue predicted %v, %v; want 30, true", pred, ok)
	}
}

func TestPowerLawFamilyFits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Family = PowerLaw{}
	e := mustEngine(t, cfg)
	// Generate from the power-law family itself: F(x) = 92 − 30·x^(−1).
	var ys []float64
	for x := 1; x <= 12; x++ {
		ys = append(ys, 92-30*math.Pow(float64(x), -1))
	}
	pred, ok := e.Predict(ys)
	if !ok {
		t.Fatal("power-law prediction failed")
	}
	want := 92 - 30*math.Pow(25, -1)
	if math.Abs(pred-want) > 1 {
		t.Fatalf("pred = %v, want ≈%v", pred, want)
	}
}

func TestFamilyMetadata(t *testing.T) {
	for _, f := range []CurveFamily{ExpApproach{}, PowerLaw{}, LastValue{}} {
		if f.Name() == "" {
			t.Error("family must have a name")
		}
		if f.NumParams() < 1 {
			t.Errorf("%s: NumParams = %d", f.Name(), f.NumParams())
		}
	}
	lo, hi := ExpApproach{}.Bounds()
	if len(lo) != 3 || len(hi) != 3 {
		t.Fatal("ExpApproach bounds must cover 3 params")
	}
}

// Property: for any monotone noiseless curve from the family, the tracker
// either converges to within a few points of the true asymptotic fitness
// or never claims convergence.
func TestTrackerConvergenceSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 60 + rng.Float64()*39       // asymptote in [60, 99]
		beta := 0.15 + rng.Float64()*0.6 // rate
		c := rng.Float64() * 4           // offset
		e := mustEngineQuick(DefaultConfig())
		tr := NewTracker(e)
		ys := synthCurve(a, beta, c, 25, 0.1*rng.Float64(), rng)
		for _, y := range ys {
			if tr.Observe(y) {
				break
			}
		}
		if !tr.Converged() {
			return true // not converging is always sound
		}
		truth := a - math.Exp(beta*(c-25))
		got, _ := tr.FinalFitness()
		return math.Abs(got-truth) < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustEngineQuick(cfg Config) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// BenchmarkEngineInteraction measures one Algorithm-1 interaction with the
// prediction engine (fit + extrapolate + convergence check); the paper
// reports an average of 28.07 ms per interaction on their platform.
func BenchmarkEngineInteraction(b *testing.B) {
	e := mustEngineQuick(DefaultConfig())
	ys := synthCurve(93, 0.4, 1.5, 12, 0.25, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := e.Predict(ys)
		if ok {
			e.Converged([]float64{p, p, p})
		}
	}
}

func TestLogisticFamilyFits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Family = Logistic{}
	e := mustEngine(t, cfg)
	// Generate from the logistic family: a=95, k=0.6, m=6.
	truth := []float64{95, 0.6, 6}
	var ys []float64
	for x := 1; x <= 14; x++ {
		ys = append(ys, Logistic{}.Eval(truth, float64(x)))
	}
	pred, ok := e.Predict(ys)
	if !ok {
		t.Fatal("logistic prediction failed")
	}
	want := Logistic{}.Eval(truth, 25)
	if math.Abs(pred-want) > 1.5 {
		t.Fatalf("logistic pred %v, want ≈%v", pred, want)
	}
	if (Logistic{}).Name() == "" || (Logistic{}).NumParams() != 3 {
		t.Fatal("logistic metadata")
	}
	lo, hi := Logistic{}.Bounds()
	if len(lo) != 3 || len(hi) != 3 {
		t.Fatal("logistic bounds")
	}
}

func TestRecencyWeightValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecencyWeight = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative recency weight must fail")
	}
}

// TestRecencyWeightTracksLateEpochs: on a curve with an early outlier
// regime, recency weighting pulls the extrapolation toward the late
// behaviour.
func TestRecencyWeightTracksLateEpochs(t *testing.T) {
	// First 4 epochs sit far below the trend the last 8 establish.
	ys := []float64{20, 22, 24, 26, 80, 84, 87, 89, 90.5, 91.5, 92.2, 92.6}
	base := mustEngine(t, DefaultConfig())
	weightedCfg := DefaultConfig()
	weightedCfg.RecencyWeight = 3
	weighted := mustEngine(t, weightedCfg)
	pb, okB := base.Predict(ys)
	pw, okW := weighted.Predict(ys)
	if !okB || !okW {
		t.Fatalf("predictions failed: %v %v", okB, okW)
	}
	// The weighted prediction must be at least as close to the late
	// asymptote (~93-94) as the unweighted one.
	target := 93.5
	if math.Abs(pw-target) > math.Abs(pb-target)+0.5 {
		t.Fatalf("weighted pred %v further from %v than unweighted %v", pw, target, pb)
	}
}
