// Package predict implements the A4NN parametric fitness-prediction
// engine (paper §2.1): it fits a parametric function to the partial
// learning curve of a neural network during training, extrapolates the
// fitness the network is expected to attain at a future epoch e_pred, and
// decides — via the prediction analyzer — when those extrapolations have
// converged to a stable value so that training can be terminated early.
//
// The engine is deliberately decoupled from any particular NAS: it
// consumes only (epoch, fitness) histories and produces predictions, which
// is what makes the A4NN workflow composable (paper §2.2).
package predict

import (
	"math"

	"a4nn/internal/fit"
)

// CurveFamily describes a parametric learning-curve family F(params, x)
// together with the initialisation and box constraints that make the
// nonlinear fit well-posed. x is the training epoch, F the fitness
// (validation accuracy, in percent, for the paper's use case).
type CurveFamily interface {
	// Name identifies the family, e.g. "a-b^(c-x)".
	Name() string
	// NumParams returns the dimensionality of the parameter vector.
	NumParams() int
	// Eval evaluates the curve at epoch x.
	Eval(params []float64, x float64) float64
	// InitialGuess seeds the nonlinear fit from the observed partial
	// learning curve (xs = epochs, ys = fitness values).
	InitialGuess(xs, ys []float64) []float64
	// Bounds returns box constraints (lower, upper) for the fit; either
	// may be nil for an unconstrained family.
	Bounds() (lower, upper []float64)
}

// ExpApproach is the paper's learning-curve family F(x) = a − b^(c−x)
// (Table 1): a concave, increasing curve that rises quickly at first and
// saturates at the asymptote a. Internally the curve is parameterised as
// (a, β, c) with b = e^β so that b stays positive during the fit.
type ExpApproach struct{}

// Name implements CurveFamily.
func (ExpApproach) Name() string { return "a-b^(c-x)" }

// NumParams implements CurveFamily.
func (ExpApproach) NumParams() int { return 3 }

// Eval implements CurveFamily: F(x) = a − e^{β(c−x)}.
func (ExpApproach) Eval(p []float64, x float64) float64 {
	e := p[1] * (p[2] - x)
	if e > 700 { // avoid overflow to +Inf; the fit rejects such steps anyway
		e = 700
	}
	return p[0] - math.Exp(e)
}

// InitialGuess implements CurveFamily. It seeds a just above the best
// observed fitness and linearises log(a−y) = β(c−x), so that an ordinary
// least-squares line through (x, log(a−y)) yields β and c. This
// initialisation keeps Levenberg–Marquardt out of the degenerate
// constant-fit basin the family has when β(c−x) underflows.
func (f ExpApproach) InitialGuess(xs, ys []float64) []float64 {
	a0 := ys[0]
	for _, y := range ys {
		if y > a0 {
			a0 = y
		}
	}
	a0 += 1.0
	zs := make([]float64, len(ys))
	for i, y := range ys {
		d := a0 - y
		if d < 1e-6 {
			d = 1e-6
		}
		zs[i] = math.Log(d)
	}
	c, err := fit.PolyFit(xs, zs, 1)
	beta, cc := 0.3, xs[0]
	if err == nil && c[1] < 0 {
		beta = -c[1]
		cc = c[0] / beta
	}
	lo, hi := f.Bounds()
	g := []float64{a0, beta, cc}
	for i := range g {
		if g[i] < lo[i] {
			g[i] = lo[i]
		}
		if g[i] > hi[i] {
			g[i] = hi[i]
		}
	}
	return g
}

// Bounds implements CurveFamily. The asymptote is allowed slightly outside
// [0,100] so the analyzer's validity check (not the fit) is what rejects
// implausible extrapolations, exactly as in the paper.
func (ExpApproach) Bounds() (lower, upper []float64) {
	return []float64{-50, 1e-4, -100}, []float64{200, 5, 100}
}

// PowerLaw is an alternative concave family F(x) = a − b·x^(−c) used by the
// learning-curve-extrapolation literature; it is included for the ablation
// comparing curve families (DESIGN.md §4).
type PowerLaw struct{}

// Name implements CurveFamily.
func (PowerLaw) Name() string { return "a-b*x^(-c)" }

// NumParams implements CurveFamily.
func (PowerLaw) NumParams() int { return 3 }

// Eval implements CurveFamily: F(x) = a − b·x^(−c), defined for x > 0.
func (PowerLaw) Eval(p []float64, x float64) float64 {
	if x <= 0 {
		x = 1e-9
	}
	return p[0] - p[1]*math.Pow(x, -p[2])
}

// InitialGuess implements CurveFamily: a just above the best observation,
// b from the first observation, c = 1.
func (f PowerLaw) InitialGuess(xs, ys []float64) []float64 {
	a0 := ys[0]
	for _, y := range ys {
		if y > a0 {
			a0 = y
		}
	}
	a0 += 1.0
	b0 := math.Max(a0-ys[0], 1e-3) * math.Max(xs[0], 1)
	return []float64{a0, b0, 1}
}

// Bounds implements CurveFamily.
func (PowerLaw) Bounds() (lower, upper []float64) {
	return []float64{-50, 1e-6, 0.05}, []float64{200, 1e4, 8}
}

// LastValue is a trivial "family" that predicts the most recent observed
// fitness regardless of epoch. It needs no fitting and serves as the
// ablation baseline for the parametric families.
type LastValue struct{}

// Name implements CurveFamily.
func (LastValue) Name() string { return "last-value" }

// NumParams implements CurveFamily.
func (LastValue) NumParams() int { return 1 }

// Eval implements CurveFamily: the single parameter is the prediction.
func (LastValue) Eval(p []float64, x float64) float64 { return p[0] }

// InitialGuess implements CurveFamily.
func (LastValue) InitialGuess(xs, ys []float64) []float64 {
	return []float64{ys[len(ys)-1]}
}

// Bounds implements CurveFamily.
func (LastValue) Bounds() (lower, upper []float64) { return nil, nil }
