package predict

import (
	"math"

	"a4nn/internal/fit"
)

// Logistic is the sigmoid family F(x) = a / (1 + e^{−k(x−m)}): an
// S-shaped learning curve with a slow start, used by the
// learning-curve-extrapolation literature for networks that need several
// epochs before the loss starts moving. Parameters are (a, k, m).
type Logistic struct{}

// Name implements CurveFamily.
func (Logistic) Name() string { return "a/(1+e^-k(x-m))" }

// NumParams implements CurveFamily.
func (Logistic) NumParams() int { return 3 }

// Eval implements CurveFamily.
func (Logistic) Eval(p []float64, x float64) float64 {
	e := -p[1] * (x - p[2])
	if e > 700 {
		e = 700
	}
	return p[0] / (1 + math.Exp(e))
}

// InitialGuess implements CurveFamily: a slightly above the best
// observation; (k, m) from linearising the logit of y/a.
func (f Logistic) InitialGuess(xs, ys []float64) []float64 {
	a0 := ys[0]
	for _, y := range ys {
		if y > a0 {
			a0 = y
		}
	}
	a0 += 1.0
	zs := make([]float64, len(ys))
	for i, y := range ys {
		r := y / a0
		if r < 1e-6 {
			r = 1e-6
		}
		if r > 1-1e-6 {
			r = 1 - 1e-6
		}
		zs[i] = math.Log(r / (1 - r))
	}
	c, err := fit.PolyFit(xs, zs, 1)
	k, m := 0.4, xs[len(xs)/2]
	if err == nil && c[1] > 0 {
		k = c[1]
		m = -c[0] / k
	}
	lo, hi := f.Bounds()
	g := []float64{a0, k, m}
	for i := range g {
		if g[i] < lo[i] {
			g[i] = lo[i]
		}
		if g[i] > hi[i] {
			g[i] = hi[i]
		}
	}
	return g
}

// Bounds implements CurveFamily.
func (Logistic) Bounds() (lower, upper []float64) {
	return []float64{1, 1e-3, -100}, []float64{200, 5, 100}
}
