package sched

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the fault model of the resource manager: a deterministic,
// seedable FaultPlan that injects device crashes, transient task errors,
// and slowdown (straggler) factors per device×generation; a RetryPolicy
// with exponential backoff and a per-generation retry budget; and the
// transient/fatal error vocabulary shared with the workflow runner. The
// paper's scaling claim (§4.4) assumes every accelerator survives a
// multi-hour search; these knobs let the scheduler be exercised — and
// tested — under the failures real NAS campaigns actually see.

// ErrInjectedFault marks a transient task failure injected by a FaultPlan.
var ErrInjectedFault = errors.New("injected transient fault")

// ErrDeadline marks a task attempt abandoned because its simulated cost
// exceeded the pool's per-attempt deadline (a straggler).
var ErrDeadline = errors.New("task deadline exceeded")

// TransientError marks an error as retryable: the scheduler re-dispatches
// the attempt (on a different device when possible) instead of failing
// the task. Producers wrap with Transient; consumers test with IsTransient.
type TransientError struct {
	// Reason is a short classification label ("injected", "deadline",
	// "train step", ...).
	Reason string
	Err    error
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("transient (%s): %v", e.Reason, e.Err)
}

func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a retryable failure.
func Transient(reason string, err error) error {
	return &TransientError{Reason: reason, Err: err}
}

// IsTransient reports whether err (or anything it wraps) is retryable.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// DeviceCrash schedules one explicit device failure.
type DeviceCrash struct {
	// Device is the crashing device's ID.
	Device int
	// Generation is the pool generation (0-based RunGeneration call
	// index) in which the device dies.
	Generation int
	// AfterTasks is how many attempts the device completes in that
	// generation before dying mid-task; the doomed attempt's work is
	// lost and redistributed. Negative selects the default (1).
	AfterTasks int
}

// FaultPlan deterministically injects faults into a Pool. All decisions
// are pure functions of (Seed, generation, device/task, attempt), so the
// same plan reproduces the same fault sequence on every run — the fault
// analogue of the workflow's seeded searches.
//
// Three fault classes are modelled:
//
//   - Device crashes: a device dies mid-generation (explicitly via
//     Crashes, or with probability CrashProb per device×generation). The
//     dead device is drained — its queued work is redistributed FIFO to
//     the survivors — and it stays dead for the rest of the search. The
//     last surviving device never crashes.
//   - Transient task errors: with probability TransientProb an attempt
//     fails before running; the scheduler retries it under the pool's
//     RetryPolicy.
//   - Slowdowns: with probability SlowdownProb a device is a straggler
//     for a generation; its TaskCtx.SlowFactor is SlowdownFactor, which
//     cooperative tasks (the workflow runner) apply to their per-epoch
//     cost — tripping the pool deadline and re-dispatching elsewhere.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Crashes are explicit scheduled device failures.
	Crashes []DeviceCrash
	// CrashProb is the per-device×generation crash probability.
	CrashProb float64
	// CrashAfterTasks is how many attempts a probabilistically crashed
	// device completes before dying (default 1).
	CrashAfterTasks int
	// TransientProb is the per-attempt transient failure probability.
	TransientProb float64
	// FailPoint is the fraction of a typical attempt's duration wasted
	// by an injected failure or crash (default 0.5).
	FailPoint float64
	// SlowdownProb is the per-device×generation straggler probability.
	SlowdownProb float64
	// SlowdownFactor is the cost multiplier of a slowed device
	// (default 4).
	SlowdownFactor float64
}

// Validate reports the first problem with the plan, or nil.
func (f *FaultPlan) Validate() error {
	for name, p := range map[string]float64{
		"CrashProb": f.CrashProb, "TransientProb": f.TransientProb,
		"SlowdownProb": f.SlowdownProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sched: fault plan %s %v outside [0,1]", name, p)
		}
	}
	if f.FailPoint < 0 || f.FailPoint > 1 {
		return fmt.Errorf("sched: fault plan FailPoint %v outside [0,1]", f.FailPoint)
	}
	if f.SlowdownFactor != 0 && f.SlowdownFactor < 1 {
		return fmt.Errorf("sched: SlowdownFactor %v must be ≥ 1", f.SlowdownFactor)
	}
	for _, c := range f.Crashes {
		if c.Device < 0 || c.Generation < 0 {
			return fmt.Errorf("sched: crash %+v has negative device or generation", c)
		}
	}
	return nil
}

// crashPoint reports whether (and after how many completed attempts) the
// device crashes in the generation.
func (f *FaultPlan) crashPoint(gen, dev int) (after int, ok bool) {
	for _, c := range f.Crashes {
		if c.Device == dev && c.Generation == gen {
			if c.AfterTasks < 0 {
				return 1, true
			}
			return c.AfterTasks, true
		}
	}
	if f.CrashProb > 0 && f.uniform(1, gen, dev) < f.CrashProb {
		after = f.CrashAfterTasks
		if after < 1 {
			after = 1
		}
		return after, true
	}
	return 0, false
}

// transient reports whether the attempt fails with an injected error.
func (f *FaultPlan) transient(gen, task, attempt int) bool {
	return f.TransientProb > 0 && f.uniform(2, gen, task, attempt) < f.TransientProb
}

// slowFactor returns the device's cost multiplier for the generation
// (1 when not slowed).
func (f *FaultPlan) slowFactor(gen, dev int) float64 {
	if f.SlowdownProb > 0 && f.uniform(3, gen, dev) < f.SlowdownProb {
		if f.SlowdownFactor >= 1 {
			return f.SlowdownFactor
		}
		return 4
	}
	return 1
}

// failPointLoss is the simulated time an injected failure wastes, given
// the running mean attempt duration of the generation.
func (f *FaultPlan) failPointLoss(meanDur float64) float64 {
	fp := f.FailPoint
	if fp == 0 {
		fp = 0.5
	}
	return fp * meanDur
}

// uniform derives a deterministic uniform in [0,1) from the seed and an
// integer key (splitmix64 over the mixed-in parts).
func (f *FaultPlan) uniform(parts ...int) float64 {
	h := uint64(f.Seed) ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h = splitmix64(h ^ uint64(uint32(p)))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ParseFaultPlan parses a compact CLI fault specification: ';'- or
// ','-separated key=value fields:
//
//	seed=N            probabilistic decision seed
//	transient=P       per-attempt transient failure probability
//	crash=D@G         explicit crash of device D in generation G
//	crash=D@G+K       ... after completing K attempts (default 1)
//	crash=P           per-device×generation crash probability
//	slowdown=P        per-device×generation straggler probability
//	slowfactor=F      straggler cost multiplier (default 4)
//	failpoint=F       fraction of an attempt wasted per failure
//
// Example: "transient=0.05;crash=1@2;slowdown=0.1;seed=7".
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("sched: empty fault plan spec")
	}
	for _, field := range fields {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("sched: fault plan field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseInt(val, 10, 64)
		case "transient":
			plan.TransientProb, err = strconv.ParseFloat(val, 64)
		case "slowdown":
			plan.SlowdownProb, err = strconv.ParseFloat(val, 64)
		case "slowfactor":
			plan.SlowdownFactor, err = strconv.ParseFloat(val, 64)
		case "failpoint":
			plan.FailPoint, err = strconv.ParseFloat(val, 64)
		case "crash":
			if !strings.Contains(val, "@") {
				plan.CrashProb, err = strconv.ParseFloat(val, 64)
				break
			}
			devStr, genStr, _ := strings.Cut(val, "@")
			c := DeviceCrash{AfterTasks: -1}
			if genStr, afterStr, hasAfter := strings.Cut(genStr, "+"); hasAfter {
				if c.AfterTasks, err = strconv.Atoi(afterStr); err != nil {
					break
				}
				c.Generation, err = strconv.Atoi(genStr)
			} else {
				c.Generation, err = strconv.Atoi(genStr)
			}
			if err != nil {
				break
			}
			if c.Device, err = strconv.Atoi(devStr); err != nil {
				break
			}
			plan.Crashes = append(plan.Crashes, c)
		default:
			return nil, fmt.Errorf("sched: unknown fault plan key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("sched: fault plan field %q: %v", field, err)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// RetryPolicy tunes per-task retry of transient failures. The zero value
// retries nothing unless a fault plan is installed, in which case it
// defaults to 3 attempts with a 2-simulated-second base backoff.
type RetryPolicy struct {
	// MaxAttempts is the per-task attempt ceiling (0 selects the
	// default: 1 without a fault plan, 3 with one).
	MaxAttempts int
	// BackoffSeconds is the simulated backoff before the second attempt;
	// it doubles per subsequent attempt (default 2).
	BackoffSeconds float64
	// MaxBackoffSeconds caps the backoff (default 30).
	MaxBackoffSeconds float64
	// Budget caps total retries per generation (0 = unlimited).
	Budget int
}

// Validate reports the first problem with the policy, or nil.
func (rp RetryPolicy) Validate() error {
	if rp.MaxAttempts < 0 || rp.Budget < 0 {
		return fmt.Errorf("sched: negative retry policy %+v", rp)
	}
	if rp.BackoffSeconds < 0 || rp.MaxBackoffSeconds < 0 {
		return fmt.Errorf("sched: negative retry backoff %+v", rp)
	}
	return nil
}

// maxAttempts resolves the per-task attempt ceiling.
func (rp RetryPolicy) maxAttempts(faultsPlanned bool) int {
	if rp.MaxAttempts > 0 {
		return rp.MaxAttempts
	}
	if faultsPlanned {
		return 3
	}
	return 1
}

// backoff returns the simulated delay before the given (2-based) attempt.
func (rp RetryPolicy) backoff(attempt int) float64 {
	base := rp.BackoffSeconds
	if base <= 0 {
		base = 2
	}
	cap := rp.MaxBackoffSeconds
	if cap <= 0 {
		cap = 30
	}
	d := base * math.Pow(2, float64(attempt-2))
	if d > cap {
		d = cap
	}
	return d
}
