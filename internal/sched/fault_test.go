package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFaultPlanDeterminism(t *testing.T) {
	plan := &FaultPlan{Seed: 7, TransientProb: 0.3, CrashProb: 0.2, SlowdownProb: 0.4}
	for g := 0; g < 5; g++ {
		for d := 0; d < 4; d++ {
			a1, ok1 := plan.crashPoint(g, d)
			a2, ok2 := plan.crashPoint(g, d)
			if a1 != a2 || ok1 != ok2 {
				t.Fatalf("crashPoint(%d,%d) not deterministic", g, d)
			}
			if plan.slowFactor(g, d) != plan.slowFactor(g, d) {
				t.Fatalf("slowFactor(%d,%d) not deterministic", g, d)
			}
			for a := 1; a <= 3; a++ {
				if plan.transient(g, d, a) != plan.transient(g, d, a) {
					t.Fatalf("transient(%d,%d,%d) not deterministic", g, d, a)
				}
			}
		}
	}
	// A different seed must change at least one decision across the grid.
	other := &FaultPlan{Seed: 8, TransientProb: 0.3, CrashProb: 0.2, SlowdownProb: 0.4}
	diff := false
	for g := 0; g < 10 && !diff; g++ {
		for d := 0; d < 4 && !diff; d++ {
			_, ok1 := plan.crashPoint(g, d)
			_, ok2 := other.crashPoint(g, d)
			if ok1 != ok2 || plan.transient(g, d, 1) != other.transient(g, d, 1) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fault decisions")
	}
}

func TestFaultPlanUniformRange(t *testing.T) {
	plan := &FaultPlan{Seed: 42}
	for i := 0; i < 1000; i++ {
		u := plan.uniform(0, i)
		if u < 0 || u >= 1 {
			t.Fatalf("uniform out of range: %v", u)
		}
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3}); err != nil {
		t.Fatal(err)
	}
	attempts := make(map[int]int)
	flaky := func(tc TaskCtx) (float64, error) {
		attempts[tc.Task]++
		if tc.Task == 1 && tc.Attempt == 1 {
			return 0.5, Transient("flaky", fmt.Errorf("spurious"))
		}
		return 2, nil
	}
	rep, err := p.RunGeneration(context.Background(), []Task{flaky, flaky, flaky})
	if err != nil {
		t.Fatalf("retry should recover: %v", err)
	}
	if attempts[1] != 2 {
		t.Fatalf("task 1 ran %d times, want 2", attempts[1])
	}
	if rep.Retries != 1 || rep.Faults != 1 {
		t.Fatalf("retries=%d faults=%d, want 1/1", rep.Retries, rep.Faults)
	}
	if math.Abs(rep.LostSeconds-0.5) > 1e-9 {
		t.Fatalf("lost = %v, want 0.5", rep.LostSeconds)
	}
	tot := p.Totals()
	if tot.Retries != 1 || tot.Faults != 1 || tot.Tasks != 3 {
		t.Fatalf("totals %+v", tot)
	}
}

func TestRetryMovesToDifferentDevice(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3}); err != nil {
		t.Fatal(err)
	}
	var devs []int
	task := func(tc TaskCtx) (float64, error) {
		if tc.Task == 0 {
			devs = append(devs, tc.Dev.ID)
			if tc.Attempt == 1 {
				return 1, Transient("flaky", fmt.Errorf("spurious"))
			}
		}
		return 1, nil
	}
	if _, err := p.RunGeneration(context.Background(), []Task{task, task}); err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 || devs[0] == devs[1] {
		t.Fatalf("retry stayed on same device: %v", devs)
	}
}

func TestRetryExhaustionAggregatesErrors(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 2}); err != nil {
		t.Fatal(err)
	}
	cause := fmt.Errorf("persistently broken")
	alwaysFail := func(tc TaskCtx) (float64, error) {
		if tc.Task == 0 {
			return 1, Transient("broken", cause)
		}
		return 3, nil
	}
	rep, err := p.RunGeneration(context.Background(), []Task{alwaysFail, alwaysFail, alwaysFail})
	if err == nil {
		t.Fatal("exhausted retries must surface an error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("error should mention attempts: %v", err)
	}
	// Satellite 1: accounting is committed even though a task failed.
	if rep == nil {
		t.Fatal("report must be returned alongside the error")
	}
	if rep.Faults != 2 || rep.Retries != 1 {
		t.Fatalf("faults=%d retries=%d, want 2/1", rep.Faults, rep.Retries)
	}
	if math.Abs(rep.LostSeconds-2) > 1e-9 {
		t.Fatalf("lost = %v, want 2", rep.LostSeconds)
	}
	tot := p.Totals()
	if tot.Tasks != 3 || tot.BusySeconds == 0 || tot.WallSeconds == 0 {
		t.Fatalf("accounting dropped on error: %+v", tot)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	p, _ := NewPool(1, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 10, Budget: 1}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	alwaysFail := func(tc TaskCtx) (float64, error) {
		calls++
		return 1, Transient("broken", fmt.Errorf("nope"))
	}
	_, err := p.RunGeneration(context.Background(), []Task{alwaysFail})
	if err == nil {
		t.Fatal("must fail once the retry budget is spent")
	}
	if calls != 2 { // initial attempt + the single budgeted retry
		t.Fatalf("task ran %d times, want 2", calls)
	}
}

func TestFatalErrorNotRetried(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 5}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	fatal := func(tc TaskCtx) (float64, error) {
		calls++
		return 1, fmt.Errorf("bad genome")
	}
	if _, err := p.RunGeneration(context.Background(), []Task{fatal}); err == nil {
		t.Fatal("fatal error must propagate")
	}
	if calls != 1 {
		t.Fatalf("fatal task retried %d times", calls)
	}
}

func TestExplicitCrashRedistributesWork(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	plan := &FaultPlan{Crashes: []DeviceCrash{{Device: 1, Generation: 0, AfterTasks: 1}}}
	if err := p.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	perDev := make(map[int]int)
	task := func(tc TaskCtx) (float64, error) {
		perDev[tc.Dev.ID]++
		return 1, nil
	}
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = task
	}
	rep, err := p.RunGeneration(context.Background(), tasks)
	if err != nil {
		t.Fatalf("crash with survivors must not fail the generation: %v", err)
	}
	// Every task still completed; the dead device ran at most its quota.
	total := 0
	for _, c := range perDev {
		total += c
	}
	if total != 6 {
		t.Fatalf("completed %d task runs, want 6", total)
	}
	if perDev[1] > 1 {
		t.Fatalf("crashed device ran %d tasks after its quota of 1", perDev[1])
	}
	if rep.Faults == 0 {
		t.Fatal("crash must count as a fault")
	}
	if got := p.DeadDevices(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("dead devices %v, want [1]", got)
	}
	if p.Totals().DeadDevices != 1 {
		t.Fatalf("totals %+v", p.Totals())
	}
	// The next generation runs entirely on the survivor.
	perDev = make(map[int]int)
	if _, err := p.RunGeneration(context.Background(), tasks[:3]); err != nil {
		t.Fatal(err)
	}
	if perDev[1] != 0 || perDev[0] != 3 {
		t.Fatalf("dead device got work: %v", perDev)
	}
}

func TestCrashAccountingConsistent(t *testing.T) {
	p, _ := NewPool(3, 1e9)
	plan := &FaultPlan{Crashes: []DeviceCrash{{Device: 2, Generation: 0, AfterTasks: 1}}}
	if err := p.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	// Real execution is near-instant, so without care one worker could
	// drain the whole queue. Block the first three tasks until all three
	// devices hold one, then keep the survivors busy in real time so the
	// doomed device (quota 1) pops its second attempt while work is
	// still queued — a guaranteed mid-generation crash.
	var startCount atomic.Int32
	release := make(chan struct{})
	tasks := make([]Task, 9)
	for i := range tasks {
		tasks[i] = func(tc TaskCtx) (float64, error) {
			if startCount.Add(1) == 3 {
				close(release)
			}
			<-release
			if tc.Dev.ID != 2 {
				time.Sleep(30 * time.Millisecond)
			}
			return 2, nil
		}
	}
	rep, err := p.RunGeneration(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	var busy float64
	for _, b := range rep.DeviceBusy {
		busy += b
	}
	// Busy covers the 9 successful runs plus the lost partial attempt.
	want := 9*2.0 + rep.LostSeconds
	if math.Abs(busy-want) > 1e-9 {
		t.Fatalf("busy %v, want %v (9 tasks + lost %v)", busy, want, rep.LostSeconds)
	}
	if rep.WallSeconds < 2 || rep.WallSeconds > 9*2+rep.LostSeconds {
		t.Fatalf("wall %v outside [2, serial]", rep.WallSeconds)
	}
	if rep.IdleSeconds < 0 {
		t.Fatalf("negative idle %v", rep.IdleSeconds)
	}
	if rep.LostSeconds <= 0 {
		t.Fatalf("crash lost no time: %+v", rep)
	}
}

func TestLastSurvivorNeverCrashes(t *testing.T) {
	p, _ := NewPool(1, 1e9)
	plan := &FaultPlan{Crashes: []DeviceCrash{{Device: 0, Generation: 0, AfterTasks: 0}}}
	if err := p.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	rep, err := p.RunGeneration(context.Background(), []Task{constTask(1), constTask(1)})
	if err != nil {
		t.Fatalf("last survivor must keep working: %v", err)
	}
	if rep.WallSeconds != 2 {
		t.Fatalf("wall %v", rep.WallSeconds)
	}
	if len(p.DeadDevices()) != 0 {
		t.Fatal("sole device must not die")
	}
}

func TestAllDevicesDeadFailsCleanly(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	plan := &FaultPlan{Crashes: []DeviceCrash{
		{Device: 0, Generation: 0, AfterTasks: 0},
		{Device: 1, Generation: 1, AfterTasks: 0},
	}}
	if err := p.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	gen := func() error {
		_, err := p.RunGeneration(context.Background(), []Task{constTask(1), constTask(1)})
		return err
	}
	if err := gen(); err != nil { // device 0 dies, device 1 survives
		t.Fatal(err)
	}
	if err := gen(); err != nil { // device 1 is last survivor → guarded
		t.Fatal(err)
	}
	if len(p.DeadDevices()) != 1 {
		t.Fatalf("dead %v", p.DeadDevices())
	}
	p.Reset()
	if len(p.DeadDevices()) != 0 {
		t.Fatal("Reset must revive devices")
	}
}

func TestInjectedTransientFaultsRetryAndComplete(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetFaultPlan(&FaultPlan{Seed: 3, TransientProb: 0.2}); err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = constTask(1)
	}
	rep, err := p.RunGeneration(context.Background(), tasks)
	if err != nil {
		t.Fatalf("default retry policy should absorb 20%% transients: %v", err)
	}
	if rep.Faults == 0 || rep.Retries == 0 {
		t.Fatalf("seed 3 at 20%% should inject faults: %+v", rep)
	}
	for i, d := range rep.TaskSeconds {
		if d != 1 {
			t.Fatalf("task %d duration %v", i, d)
		}
	}
}

func TestSlowFactorReachesTask(t *testing.T) {
	p, _ := NewPool(1, 1e9)
	if err := p.SetFaultPlan(&FaultPlan{Seed: 1, SlowdownProb: 1, SlowdownFactor: 3}); err != nil {
		t.Fatal(err)
	}
	var seen float64
	task := func(tc TaskCtx) (float64, error) {
		seen = tc.SlowFactor
		return 1, nil
	}
	if _, err := p.RunGeneration(context.Background(), []Task{task}); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("SlowFactor %v, want 3", seen)
	}
}

func TestDeadlineRedispatch(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if err := p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetTaskDeadline(5); err != nil {
		t.Fatal(err)
	}
	var firstDev = -1
	straggler := func(tc TaskCtx) (float64, error) {
		if tc.Task == 0 && tc.Attempt == 1 {
			firstDev = tc.Dev.ID
			// Cooperative straggler: notices the deadline and gives up.
			return tc.DeadlineSeconds, Transient("deadline", ErrDeadline)
		}
		return 2, nil
	}
	rep, err := p.RunGeneration(context.Background(), []Task{straggler, straggler, straggler})
	if err != nil {
		t.Fatalf("straggler should be re-dispatched: %v", err)
	}
	if firstDev < 0 {
		t.Fatal("straggler never ran")
	}
	if rep.Retries != 1 || math.Abs(rep.LostSeconds-5) > 1e-9 {
		t.Fatalf("retries=%d lost=%v, want 1/5", rep.Retries, rep.LostSeconds)
	}
}

func TestRunGenerationContextCancel(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 8)
	task := func(tc TaskCtx) (float64, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-tc.Ctx.Done()
		return 0, tc.Ctx.Err()
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := p.RunGeneration(ctx, []Task{task, task, task, task})
	if err == nil {
		t.Fatal("canceled generation must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTransientErrorVocabulary(t *testing.T) {
	base := fmt.Errorf("boom")
	err := Transient("test", base)
	if !IsTransient(err) {
		t.Fatal("Transient not recognised")
	}
	if !errors.Is(err, base) {
		t.Fatal("Unwrap broken")
	}
	if IsTransient(base) {
		t.Fatal("plain error must not be transient")
	}
	wrapped := fmt.Errorf("outer: %w", Transient("inner", ErrDeadline))
	if !IsTransient(wrapped) || !errors.Is(wrapped, ErrDeadline) {
		t.Fatal("nested transient lost")
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("transient=0.05;crash=1@2;slowdown=0.1;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if plan.TransientProb != 0.05 || plan.SlowdownProb != 0.1 || plan.Seed != 7 {
		t.Fatalf("parsed %+v", plan)
	}
	if len(plan.Crashes) != 1 || plan.Crashes[0] != (DeviceCrash{Device: 1, Generation: 2, AfterTasks: -1}) {
		t.Fatalf("crashes %+v", plan.Crashes)
	}

	plan, err = ParseFaultPlan("crash=0@1+3,crash=0.01,failpoint=0.25,slowfactor=2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Crashes[0] != (DeviceCrash{Device: 0, Generation: 1, AfterTasks: 3}) {
		t.Fatalf("crash with quota %+v", plan.Crashes[0])
	}
	if plan.CrashProb != 0.01 || plan.FailPoint != 0.25 || plan.SlowdownFactor != 2 {
		t.Fatalf("parsed %+v", plan)
	}

	for _, bad := range []string{
		"", "transient", "transient=x", "bogus=1", "transient=2",
		"crash=1@", "crash=x@1", "slowfactor=0.5",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q must fail", bad)
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	var rp RetryPolicy
	if rp.maxAttempts(false) != 1 || rp.maxAttempts(true) != 3 {
		t.Fatalf("default attempts %d/%d", rp.maxAttempts(false), rp.maxAttempts(true))
	}
	if rp.backoff(2) != 2 || rp.backoff(3) != 4 || rp.backoff(4) != 8 {
		t.Fatalf("backoff sequence %v %v %v", rp.backoff(2), rp.backoff(3), rp.backoff(4))
	}
	if rp.backoff(10) != 30 {
		t.Fatalf("backoff cap %v", rp.backoff(10))
	}
	custom := RetryPolicy{BackoffSeconds: 1, MaxBackoffSeconds: 3}
	if custom.backoff(2) != 1 || custom.backoff(3) != 2 || custom.backoff(4) != 3 {
		t.Fatalf("custom backoff %v %v %v", custom.backoff(2), custom.backoff(3), custom.backoff(4))
	}
	if err := (RetryPolicy{MaxAttempts: -1}).Validate(); err == nil {
		t.Fatal("negative attempts must fail")
	}
	if err := (&FaultPlan{CrashProb: 1.5}).Validate(); err == nil {
		t.Fatal("probability above 1 must fail")
	}
	if err := (&FaultPlan{SlowdownFactor: 0.1}).Validate(); err == nil {
		t.Fatal("slow factor below 1 must fail")
	}
}

func TestFaultFreeGenerationMatchesLegacyAccounting(t *testing.T) {
	// With a fault plan installed but no faults firing, accounting must
	// still match the deterministic FIFO reconstruction.
	p, _ := NewPool(2, 1e9)
	if err := p.SetFaultPlan(&FaultPlan{Seed: 9}); err != nil { // all probs 0
		t.Fatal(err)
	}
	rep, err := p.RunGeneration(context.Background(), []Task{constTask(4), constTask(1), constTask(1), constTask(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 4 || rep.IdleSeconds != 1 {
		t.Fatalf("wall=%v idle=%v, want 4/1", rep.WallSeconds, rep.IdleSeconds)
	}
}
