package sched

// Fleet generalises the single-search FIFO pool to a multi-job device
// arbiter: one fixed set of device slots shared by many concurrent
// searches, granted a generation at a time under weighted fair-share
// (stride) scheduling. Each job keeps its own Pool — and therefore its
// own deterministic task→device assignment, so a job's results are
// byte-identical to the same-seed single-job run — while the fleet
// decides only *when* each generation's slots are available. Preemption
// is at generation boundaries: a grant is never revoked mid-generation;
// a paused or deprioritised job simply stops winning new grants.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Fleet arbitrates a fixed number of device slots across jobs.
type Fleet struct {
	capacity int

	mu     sync.Mutex
	cond   *sync.Cond
	free   int
	jobs   map[string]*fleetJob
	seq    uint64 // FIFO tiebreak for equal passes
	closed bool

	clock func() time.Time // injectable for tests
}

// fleetJob is one registered job's scheduling state.
type fleetJob struct {
	id     string
	weight float64
	pass   float64 // stride-scheduling virtual time; lowest pass wins
	paused bool

	waiting   bool   // an Acquire is blocked for this job
	want      int    // slots the blocked Acquire needs
	seq       uint64 // arrival order, tiebreak for equal passes
	granted   int    // slots currently held
	grants    int    // generations granted so far
	waitSecs  float64
	slotSecs  float64 // slot-seconds held (wall clock), for utilisation
	waitSince time.Time
}

// NewFleet creates a fleet of capacity device slots.
func NewFleet(capacity int) (*Fleet, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sched: fleet needs ≥ 1 slot, got %d", capacity)
	}
	f := &Fleet{
		capacity: capacity,
		free:     capacity,
		jobs:     make(map[string]*fleetJob),
		clock:    time.Now,
	}
	f.cond = sync.NewCond(&f.mu)
	return f, nil
}

// Capacity returns the fleet's total device slots.
func (f *Fleet) Capacity() int { return f.capacity }

// Register adds a job with the given scheduling weight (≥ 1; a job with
// twice the weight is granted generations twice as often under
// contention). The job starts at the minimum pass of the registered
// jobs so it gets its fair share from now on, not retroactive credit
// for the time before it existed.
func (f *Fleet) Register(id string, weight float64) error {
	if id == "" {
		return fmt.Errorf("sched: fleet job needs an id")
	}
	if weight < 1 {
		return fmt.Errorf("sched: fleet job %q weight %v < 1", id, weight)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("sched: fleet closed")
	}
	if _, ok := f.jobs[id]; ok {
		return fmt.Errorf("sched: fleet job %q already registered", id)
	}
	f.jobs[id] = &fleetJob{id: id, weight: weight, pass: f.minPassLocked()}
	return nil
}

// Unregister removes a job. Held slots are returned; a blocked Acquire
// for the job fails on its next wakeup.
func (f *Fleet) Unregister(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if j, ok := f.jobs[id]; ok {
		f.free += j.granted
		delete(f.jobs, id)
		f.cond.Broadcast()
	}
}

// SetWeight changes a job's fair-share weight; it takes effect at the
// job's next grant (preemption stays at generation boundaries).
func (f *Fleet) SetWeight(id string, weight float64) error {
	if weight < 1 {
		return fmt.Errorf("sched: fleet job %q weight %v < 1", id, weight)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return fmt.Errorf("sched: fleet job %q not registered", id)
	}
	j.weight = weight
	f.cond.Broadcast()
	return nil
}

// Pause stops granting new generations to the job. Slots it already
// holds are kept until released — preemption is at generation
// boundaries, never mid-generation.
func (f *Fleet) Pause(id string) error { return f.setPaused(id, true) }

// Resume re-enables granting to a paused job.
func (f *Fleet) Resume(id string) error { return f.setPaused(id, false) }

func (f *Fleet) setPaused(id string, paused bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return fmt.Errorf("sched: fleet job %q not registered", id)
	}
	j.paused = paused
	f.cond.Broadcast()
	return nil
}

// Close fails all blocked and future Acquires.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Acquire blocks until the job is granted n device slots, then returns
// a release function to call at the generation barrier. Grants are
// ordered by stride scheduling: among unpaused jobs with a blocked
// Acquire, the one with the lowest pass wins as soon as its request
// fits the free slots; its pass then advances by n/weight. A
// low-weight job's pass advances faster, so it wins less often under
// contention but its pass eventually undercuts everyone else's — no
// job starves. The head job (lowest pass) is never bypassed by a
// smaller request behind it, so wide jobs cannot be starved by narrow
// ones either.
//
// At most one Acquire may be outstanding per job at a time.
func (f *Fleet) Acquire(ctx context.Context, id string, n int) (release func(), err error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: fleet job %q acquiring %d slots", id, n)
	}
	if n > f.capacity {
		return nil, fmt.Errorf("sched: fleet job %q needs %d slots, fleet has %d", id, n, f.capacity)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	f.mu.Lock()
	j, ok := f.jobs[id]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("sched: fleet job %q not registered", id)
	}
	if j.waiting {
		f.mu.Unlock()
		return nil, fmt.Errorf("sched: fleet job %q already has an Acquire outstanding", id)
	}
	j.waiting = true
	j.want = n
	f.seq++
	j.seq = f.seq
	j.waitSince = f.clock()
	f.mu.Unlock()

	// Wake the cond loop when the context is canceled.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			f.cond.Broadcast()
		case <-stop:
		}
	}()

	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		// The job may have been unregistered (canceled) while waiting.
		cur, ok := f.jobs[id]
		if !ok || cur != j {
			return nil, fmt.Errorf("sched: fleet job %q unregistered while waiting", id)
		}
		if f.closed {
			j.waiting = false
			return nil, fmt.Errorf("sched: fleet closed")
		}
		if err := ctx.Err(); err != nil {
			j.waiting = false
			return nil, err
		}
		if !j.paused && f.headLocked() == j && j.want <= f.free {
			break
		}
		f.cond.Wait()
	}

	// Granted: charge the stride and hand out the slots.
	j.waiting = false
	j.granted += n
	j.grants++
	j.pass += float64(n) / j.weight
	j.waitSecs += f.clock().Sub(j.waitSince).Seconds()
	f.free -= n
	start := f.clock()
	// Another waiter may now be head (or fit in the remaining slots).
	f.cond.Broadcast()

	var once sync.Once
	return func() {
		once.Do(func() {
			f.mu.Lock()
			// The job may have been unregistered after the grant; its
			// slots were already returned then.
			if cur, ok := f.jobs[id]; ok && cur == j {
				j.granted -= n
				j.slotSecs += f.clock().Sub(start).Seconds() * float64(n)
				f.free += n
			}
			f.cond.Broadcast()
			f.mu.Unlock()
		})
	}, nil
}

// headLocked returns the unpaused waiting job with the lowest pass
// (ties to arrival order), or nil. Callers hold f.mu.
func (f *Fleet) headLocked() *fleetJob {
	var head *fleetJob
	for _, j := range f.jobs {
		if !j.waiting || j.paused {
			continue
		}
		if head == nil || j.pass < head.pass || (j.pass == head.pass && j.seq < head.seq) {
			head = j
		}
	}
	return head
}

// minPassLocked returns the lowest pass among registered jobs, or 0.
func (f *Fleet) minPassLocked() float64 {
	min, any := 0.0, false
	for _, j := range f.jobs {
		if !any || j.pass < min {
			min, any = j.pass, true
		}
	}
	return min
}

// FleetJobStatus is one job's slice of a fleet snapshot.
type FleetJobStatus struct {
	ID          string  `json:"id"`
	Weight      float64 `json:"weight"`
	Pass        float64 `json:"pass"`
	Paused      bool    `json:"paused"`
	Waiting     bool    `json:"waiting"`
	WantSlots   int     `json:"want_slots,omitempty"`
	HeldSlots   int     `json:"held_slots"`
	Grants      int     `json:"grants"`
	WaitSeconds float64 `json:"wait_seconds"`
	SlotSeconds float64 `json:"slot_seconds"`
	// EntitledShare is the job's stride entitlement: weight over the sum
	// of registered weights. MeasuredShare is what it actually received:
	// its device-seconds over the fleet's total. Comparing the two per
	// job is the fairness audit the fleet metrics endpoint exports.
	EntitledShare float64 `json:"entitled_share"`
	MeasuredShare float64 `json:"measured_share"`
}

// FleetStatus is a point-in-time view of the arbiter, for /api/fleet.
type FleetStatus struct {
	Capacity int              `json:"capacity"`
	InUse    int              `json:"in_use"`
	Waiting  int              `json:"waiting"`
	Jobs     []FleetJobStatus `json:"jobs"`
}

// Status snapshots the fleet: slot occupancy and each job's scheduling
// state, sorted by job ID.
func (f *Fleet) Status() FleetStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStatus{Capacity: f.capacity, InUse: f.capacity - f.free}
	var totalWeight, totalSlotSecs float64
	for _, j := range f.jobs {
		totalWeight += j.weight
		totalSlotSecs += j.slotSecs
	}
	for _, j := range f.jobs {
		js := FleetJobStatus{
			ID:          j.id,
			Weight:      j.weight,
			Pass:        j.pass,
			Paused:      j.paused,
			Waiting:     j.waiting,
			HeldSlots:   j.granted,
			Grants:      j.grants,
			WaitSeconds: j.waitSecs,
			SlotSeconds: j.slotSecs,
		}
		if totalWeight > 0 {
			js.EntitledShare = j.weight / totalWeight
		}
		if totalSlotSecs > 0 {
			js.MeasuredShare = j.slotSecs / totalSlotSecs
		}
		if j.waiting {
			js.WantSlots = j.want
			st.Waiting++
		}
		st.Jobs = append(st.Jobs, js)
	}
	sort.Slice(st.Jobs, func(a, b int) bool { return st.Jobs[a].ID < st.Jobs[b].ID })
	return st
}
