package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(0); err == nil {
		t.Fatal("NewFleet(0) must fail")
	}
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Register("", 1); err == nil {
		t.Error("empty job id must fail")
	}
	if err := f.Register("a", 0.5); err == nil {
		t.Error("weight < 1 must fail")
	}
	if err := f.Register("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("a", 1); err == nil {
		t.Error("duplicate registration must fail")
	}
	if _, err := f.Acquire(context.Background(), "a", 3); err == nil {
		t.Error("acquiring beyond capacity must fail")
	}
	if _, err := f.Acquire(context.Background(), "a", 0); err == nil {
		t.Error("acquiring 0 slots must fail")
	}
	if _, err := f.Acquire(context.Background(), "ghost", 1); err == nil {
		t.Error("unregistered job must fail")
	}
	if err := f.Pause("ghost"); err == nil {
		t.Error("pausing unregistered job must fail")
	}
	if err := f.SetWeight("a", 0); err == nil {
		t.Error("SetWeight < 1 must fail")
	}
}

func TestFleetGrantAndRelease(t *testing.T) {
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := f.Register(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	relA, err := f.Acquire(context.Background(), "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := f.Acquire(context.Background(), "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.InUse != 2 || st.Capacity != 2 {
		t.Fatalf("status: in_use %d / cap %d, want 2/2", st.InUse, st.Capacity)
	}
	relA()
	relA() // idempotent
	relB()
	if st := f.Status(); st.InUse != 0 {
		t.Fatalf("after release: in_use %d, want 0", st.InUse)
	}
}

func TestFleetAcquireCancel(t *testing.T) {
	f, _ := NewFleet(1)
	f.Register("hold", 1)
	f.Register("wait", 1)
	rel, err := f.Acquire(context.Background(), "hold", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := f.Acquire(ctx, "wait", 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled Acquire returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Acquire did not return")
	}
}

func TestFleetPauseBlocksNextGrant(t *testing.T) {
	f, _ := NewFleet(1)
	f.Register("a", 1)
	if err := f.Pause("a"); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		rel, err := f.Acquire(context.Background(), "a", 1)
		if err != nil {
			t.Error(err)
			close(granted)
			return
		}
		close(granted)
		rel()
	}()
	select {
	case <-granted:
		t.Fatal("paused job was granted slots")
	case <-time.After(50 * time.Millisecond):
	}
	if err := f.Resume("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("resumed job never granted")
	}
}

func TestFleetUnregisterReturnsSlots(t *testing.T) {
	f, _ := NewFleet(1)
	f.Register("a", 1)
	f.Register("b", 1)
	if _, err := f.Acquire(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel, err := f.Acquire(context.Background(), "b", 1)
		if err == nil {
			rel()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Unregister("a") // never released, but unregister returns the slot
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("b's acquire after unregister: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slot was not returned by Unregister")
	}
}

func TestFleetCloseFailsWaiters(t *testing.T) {
	f, _ := NewFleet(1)
	f.Register("hold", 1)
	f.Register("wait", 1)
	rel, _ := f.Acquire(context.Background(), "hold", 1)
	defer rel()
	errc := make(chan error, 1)
	go func() {
		_, err := f.Acquire(context.Background(), "wait", 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Acquire on closed fleet returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the waiter")
	}
}

// TestFleetWideJobNotBypassed: the head job (lowest pass) waiting for
// the whole fleet must not be starved by narrow requests that would
// otherwise fit the free slots.
func TestFleetWideJobNotBypassed(t *testing.T) {
	f, _ := NewFleet(4)
	f.Register("wide", 1)
	f.Register("narrow", 100)
	rel, err := f.Acquire(context.Background(), "narrow", 1)
	if err != nil {
		t.Fatal(err)
	}
	wideGranted := make(chan struct{})
	go func() {
		wrel, err := f.Acquire(context.Background(), "wide", 4)
		if err != nil {
			t.Error(err)
		} else {
			defer wrel()
		}
		close(wideGranted)
	}()
	// Wait until wide is queued (lowest pass: both start at 0, wide
	// has an earlier... narrow already advanced its pass by 1/100).
	deadline := time.Now().Add(2 * time.Second)
	for f.Status().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wide request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// A narrow re-acquire must queue behind wide even though 3 slots
	// are free: wide's pass (0) is lower than narrow's (1/100).
	narrowGranted := make(chan struct{})
	go func() {
		nrel, err := f.Acquire(context.Background(), "narrow", 1)
		if err != nil {
			t.Error(err)
		} else {
			nrel()
		}
		close(narrowGranted)
	}()
	select {
	case <-narrowGranted:
		t.Fatal("narrow request bypassed the waiting wide job")
	case <-time.After(50 * time.Millisecond):
	}
	rel() // all 4 slots free → wide runs, then narrow
	for _, ch := range []chan struct{}{wideGranted, narrowGranted} {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatal("grants did not drain after release")
		}
	}
}

// TestFleetFairShareNeverStarves is the scheduler property test: under
// sustained contention from high-weight jobs, the lowest-priority job
// still completes its generations, and long-run grant shares track
// weights. Seeded, so failures reproduce.
func TestFleetFairShareNeverStarves(t *testing.T) {
	const (
		capacity = 4
		rounds   = 60
	)
	f, err := NewFleet(capacity)
	if err != nil {
		t.Fatal(err)
	}
	weights := map[string]float64{"low": 1, "mid": 4, "high": 16}
	for id, w := range weights {
		if err := f.Register(id, w); err != nil {
			t.Fatal(err)
		}
	}

	grants := make(map[string]*int64)
	maxLowWait := int64(0) // grants to others while low waited, worst case
	var othersSinceLow int64
	var mu sync.Mutex
	for id := range weights {
		var n int64
		grants[id] = &n
	}

	var wg sync.WaitGroup
	for id, w := range weights {
		id, w := id, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(id)) * int64(w*1000)))
			for r := 0; r < rounds; r++ {
				n := 1 + rng.Intn(2)
				rel, err := f.Acquire(context.Background(), id, n)
				if err != nil {
					t.Error(err)
					return
				}
				atomic.AddInt64(grants[id], 1)
				mu.Lock()
				if id == "low" {
					if othersSinceLow > maxLowWait {
						maxLowWait = othersSinceLow
					}
					othersSinceLow = 0
				} else {
					othersSinceLow++
				}
				mu.Unlock()
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				rel()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("fair-share deadlocked or starved a job: %+v", f.Status())
	}

	// Every job completed all its rounds — the hard no-starvation bound.
	for id := range weights {
		if got := atomic.LoadInt64(grants[id]); got != rounds {
			t.Errorf("job %s completed %d/%d rounds", id, got, rounds)
		}
	}
	// The low-priority job never sat out unboundedly: with weights
	// 1:4:16 and ~2 slots per grant, stride guarantees low wins at
	// least every Σw/w_low ≈ 21 grants; allow generous slack for
	// scheduling noise and the 2-slot variance.
	if maxLowWait > 3*(1+4+16) {
		t.Errorf("low-priority job waited %d grants between wins (bound %d)", maxLowWait, 3*(1+4+16))
	}
	t.Logf("fair-share: grants %v, worst low wait %d", func() map[string]int64 {
		out := map[string]int64{}
		for id := range weights {
			out[id] = atomic.LoadInt64(grants[id])
		}
		return out
	}(), maxLowWait)
}

// TestFleetSharesTrackWeights drives unequal-weight jobs to a fixed
// wall-clock budget and checks relative grant counts order by weight.
func TestFleetSharesTrackWeights(t *testing.T) {
	f, _ := NewFleet(2)
	weights := map[string]float64{"w1": 1, "w8": 8}
	for id, w := range weights {
		f.Register(id, w)
	}
	stop := make(chan struct{})
	counts := map[string]*int64{"w1": new(int64), "w8": new(int64)}
	var wg sync.WaitGroup
	for id := range weights {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := f.Acquire(context.Background(), id, 2)
				if err != nil {
					return
				}
				atomic.AddInt64(counts[id], 1)
				time.Sleep(200 * time.Microsecond)
				rel()
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	f.Close() // unblock any final Acquire
	wg.Wait()
	c1, c8 := atomic.LoadInt64(counts["w1"]), atomic.LoadInt64(counts["w8"])
	if c1 == 0 || c8 == 0 {
		t.Fatalf("a job starved outright: w1=%d w8=%d", c1, c8)
	}
	// Expect roughly 8×; accept anything clearly ordered (> 2×) to stay
	// robust on loaded CI runners.
	if c8 < 2*c1 {
		t.Errorf("weight-8 job got %d grants vs weight-1's %d — shares do not track weights", c8, c1)
	}
	t.Logf("shares: w1=%d w8=%d (ratio %.1f)", c1, c8, float64(c8)/float64(c1))
}

func TestFleetStatusFields(t *testing.T) {
	f, _ := NewFleet(3)
	f.Register("a", 2)
	rel, err := f.Acquire(context.Background(), "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if len(st.Jobs) != 1 {
		t.Fatalf("status jobs: %d", len(st.Jobs))
	}
	j := st.Jobs[0]
	if j.ID != "a" || j.HeldSlots != 2 || j.Grants != 1 || j.Weight != 2 {
		t.Fatalf("job status: %+v", j)
	}
	if j.Pass != 1 { // 2 slots / weight 2
		t.Fatalf("pass after one 2-slot grant at weight 2: %v", j.Pass)
	}
	rel()
	if got := f.Status().Jobs[0].HeldSlots; got != 0 {
		t.Fatalf("held slots after release: %d", got)
	}
	if f.Status().Jobs[0].SlotSeconds < 0 {
		t.Fatal("slot seconds negative")
	}
	_ = fmt.Sprintf("%+v", st) // keep fmt imported for debugging ease
}
